//! Simulator-engine microbenchmarks: the hot paths every experiment leans
//! on (event scheduling, ECMP hashing, queue operations, RNG, and raw
//! packet-forwarding throughput through the full simulator).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use netsim::testutil::{Blaster, CountingSink, RxLog};
use netsim::{
    DetRng, EcmpHasher, EcnQueue, FlowKey, HashConfig, LinkSpec, Packet, Proto, RoutingTable,
    SimTime, Simulator, SwitchConfig, MSS,
};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter_batched(
            netsim::event::Scheduler::new,
            |mut s| {
                let mut rng = DetRng::new(1, 1);
                for i in 0..10_000u64 {
                    let t = SimTime::from_ns(rng.gen_range(1_000_000) as u64);
                    s.schedule(t, netsim::event::EventKind::Timer { host: 0, token: i });
                }
                while let Some(e) = s.pop() {
                    black_box(e.time);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let hasher = EcmpHasher::new(HashConfig::FiveTupleAndVField, 0xDEADBEEF);
    let key = FlowKey { src: 17, dst: 99, sport: 5555, dport: 80, proto: Proto::Tcp };
    let pkt = Packet::data(0, key, 3, 0, MSS, SimTime::ZERO);
    let mut g = c.benchmark_group("hashing");
    g.throughput(Throughput::Elements(1));
    g.bench_function("ecmp_select_8way", |b| {
        b.iter(|| black_box(hasher.select(black_box(&pkt), 8)))
    });
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let key = FlowKey { src: 1, dst: 2, sport: 3, dport: 4, proto: Proto::Tcp };
    let mut g = c.benchmark_group("queue");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("enqueue_dequeue_1k", |b| {
        b.iter_batched(
            || EcnQueue::new(10_000_000, 90_000),
            |mut q| {
                for i in 0..1_000u64 {
                    let pkt = Packet::data(0, key, 0, i * MSS as u64, MSS, SimTime::ZERO);
                    q.enqueue(pkt);
                }
                while let Some(p) = q.dequeue() {
                    black_box(p.seq);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("detrng_u64_1k", |b| {
        let mut rng = DetRng::new(7, 7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Raw forwarding throughput: blast 5 000 packets through one switch and
/// report events per second via Criterion's element throughput.
fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("blast_5k_packets_through_switch", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(1);
                let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
                let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
                let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
                sim.connect(h0, sw, LinkSpec::host_10g());
                sim.connect(h1, sw, LinkSpec::host_10g());
                let mut rt = RoutingTable::new(2);
                rt.set(0, vec![0]);
                rt.set(1, vec![1]);
                sim.set_routes(sw, rt);
                let log = RxLog::shared();
                sim.set_agent(h0, Box::new(Blaster::new(1, 5_000, log.clone())));
                sim.set_agent(h1, Box::new(CountingSink { log }));
                sim
            },
            |mut sim| {
                sim.run_to_quiescence();
                black_box(sim.events_processed())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_hashing,
    bench_queue,
    bench_rng,
    bench_forwarding
);
criterion_main!(benches);
