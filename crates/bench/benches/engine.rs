//! Simulator-engine microbenchmarks: the hot paths every experiment leans
//! on (event scheduling, ECMP hashing, queue operations, RNG, and raw
//! packet-forwarding throughput through the full simulator).

use std::hint::black_box;

use fb_bench::Harness;
use netsim::testutil::{Blaster, CountingSink, RxLog};
use netsim::{
    DetRng, EcmpHasher, EcnQueue, FlowKey, HashConfig, LinkSpec, Packet, Proto, RoutingTable,
    SimTime, Simulator, SwitchConfig, MSS, MTU,
};

fn bench_scheduler(h: &Harness) {
    h.bench_with_setup(
        "scheduler/push_pop_10k",
        10_000,
        netsim::event::Scheduler::new,
        |mut s| {
            let mut rng = DetRng::new(1, 1);
            for i in 0..10_000u64 {
                let t = SimTime::from_ns(rng.gen_range(1_000_000) as u64);
                s.schedule(t, netsim::event::EventKind::Timer { host: 0, token: i });
            }
            while let Some(e) = s.pop() {
                black_box(e.time);
            }
        },
    );
}

fn bench_hashing(h: &Harness) {
    let hasher = EcmpHasher::new(HashConfig::FiveTupleAndVField, 0xDEADBEEF);
    let key = FlowKey {
        src: 17,
        dst: 99,
        sport: 5555,
        dport: 80,
        proto: Proto::Tcp,
    };
    let pkt = Packet::data(0, key, 3, 0, MSS, SimTime::ZERO);
    h.bench("hashing/ecmp_select_8way_1k", 1_000, || {
        let mut acc = 0usize;
        for _ in 0..1_000 {
            acc ^= hasher.select(black_box(&pkt), 8);
        }
        black_box(acc)
    });
}

fn bench_queue(h: &Harness) {
    h.bench_with_setup(
        "queue/enqueue_dequeue_1k",
        1_000,
        || EcnQueue::new(10_000_000, 90_000),
        |mut q| {
            for i in 0..1_000u32 {
                q.enqueue(i, MTU, true);
            }
            while let Some(id) = q.dequeue() {
                black_box(id);
            }
        },
    );
}

fn bench_rng(h: &Harness) {
    let mut rng = DetRng::new(7, 7);
    h.bench("rng/detrng_u64_1k", 1_000, || {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc ^= rng.next_u64();
        }
        black_box(acc)
    });
}

/// Raw forwarding throughput: blast 5 000 packets through one switch.
fn bench_forwarding(h: &Harness) {
    h.bench_with_setup(
        "simulator/blast_5k_packets_through_switch",
        5_000,
        || {
            let mut sim = Simulator::new(1);
            let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
            sim.connect(h0, sw, LinkSpec::host_10g());
            sim.connect(h1, sw, LinkSpec::host_10g());
            let mut rt = RoutingTable::new(2);
            rt.set(0, vec![0]);
            rt.set(1, vec![1]);
            sim.set_routes(sw, rt);
            let log = RxLog::shared();
            sim.set_agent(h0, Box::new(Blaster::new(1, 5_000, log.clone())));
            sim.set_agent(h1, Box::new(CountingSink { log }));
            sim
        },
        |mut sim| {
            sim.run_to_quiescence();
            black_box(sim.events_processed())
        },
    );
}

/// Flight-recorder overhead on the same 5 000-packet blast.
/// `simulator/blast_5k_packets_through_switch` above is the recorder-off
/// baseline (the disabled check is a single branch); here the recorder is
/// (a) on but watching a flow that never appears — the hot-path membership
/// check — and (b) on for the blasted flow itself — full event recording.
fn bench_forwarding_traced(h: &Harness) {
    let setup = |cfg: netsim::TraceConfig| {
        move || {
            let mut sim = Simulator::new(1);
            let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
            sim.connect(h0, sw, LinkSpec::host_10g());
            sim.connect(h1, sw, LinkSpec::host_10g());
            let mut rt = RoutingTable::new(2);
            rt.set(0, vec![0]);
            rt.set(1, vec![1]);
            sim.set_routes(sw, rt);
            sim.set_trace(cfg.clone());
            let log = RxLog::shared();
            sim.set_agent(h0, Box::new(Blaster::new(1, 5_000, log.clone())));
            sim.set_agent(h1, Box::new(CountingSink { log }));
            sim
        }
    };
    let run = |mut sim: Simulator| {
        sim.run_to_quiescence();
        black_box(sim.events_processed())
    };
    h.bench_with_setup(
        "simulator/blast_5k_packets_trace_other_flow",
        5_000,
        setup(netsim::TraceConfig::flows(vec![999])),
        run,
    );
    h.bench_with_setup(
        "simulator/blast_5k_packets_trace_blasted_flow",
        5_000,
        setup(netsim::TraceConfig::flows(vec![0])),
        run,
    );
}

/// INT-stamping overhead on the same 5 000-packet blast:
/// `simulator/blast_5k_packets_through_switch` above is the feedback-off
/// baseline (the disabled check is one `Option` branch); here the switch
/// appends a per-hop INT record to every forwarded packet
/// ([`netsim::FeedbackConfig::int_only`]) — pricing the lazy stack
/// allocation plus the per-hop push on the forwarding hot path.
fn bench_int_stamp(h: &Harness) {
    h.bench_with_setup(
        "feedback/int_stamp_overhead",
        5_000,
        || {
            let mut sim = Simulator::new(1);
            let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let sw = sim.add_switch(
                SwitchConfig::commodity(HashConfig::FiveTuple)
                    .with_feedback(netsim::FeedbackConfig::int_only()),
            );
            sim.connect(h0, sw, LinkSpec::host_10g());
            sim.connect(h1, sw, LinkSpec::host_10g());
            let mut rt = RoutingTable::new(2);
            rt.set(0, vec![0]);
            rt.set(1, vec![1]);
            sim.set_routes(sw, rt);
            let log = RxLog::shared();
            sim.set_agent(h0, Box::new(Blaster::new(1, 5_000, log.clone())));
            sim.set_agent(h1, Box::new(CountingSink { log }));
            sim
        },
        |mut sim| {
            sim.run_to_quiescence();
            black_box(sim.events_processed())
        },
    );
}

/// Flowcut pin-table overhead on the same 5 000-packet blast:
/// `simulator/blast_5k_packets_through_switch` above is the stateless-hash
/// baseline; here the switch runs flowcut switching
/// ([`netsim::SwitchConfig::flowcut_sw`]), so every forwarded packet pays
/// the pin-table lookup, idle-gap comparison, and last-seen update. The
/// blast never goes idle for 100 µs, so no boundary fires — this prices
/// the steady-state (pinned) path, the one every packet of a long flow
/// takes.
fn bench_flowcut_pin(h: &Harness) {
    h.bench_with_setup(
        "flowcut/pin_overhead",
        5_000,
        || {
            let mut sim = Simulator::new(1);
            let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
            let sw = sim.add_switch(SwitchConfig::flowcut_sw(netsim::FlowcutConfig::new(
                SimTime::from_us(100),
            )));
            sim.connect(h0, sw, LinkSpec::host_10g());
            sim.connect(h1, sw, LinkSpec::host_10g());
            let mut rt = RoutingTable::new(2);
            rt.set(0, vec![0]);
            rt.set(1, vec![1]);
            sim.set_routes(sw, rt);
            let log = RxLog::shared();
            sim.set_agent(h0, Box::new(Blaster::new(1, 5_000, log.clone())));
            sim.set_agent(h1, Box::new(CountingSink { log }));
            sim
        },
        |mut sim| {
            sim.run_to_quiescence();
            black_box(sim.events_processed())
        },
    );
}

/// Workload-engine throughput: the trace-scale generation+aggregation
/// curve. Each iteration streams `flows` websearch-CDF flows out of the
/// registry workload, scores them with the analytic FCT model, and feeds
/// the mergeable quantile sketch — the exact pipeline the `trace-scale`
/// experiment runs. `elements` is the flow count, so the recorded
/// `elems_per_sec` *is* the flows/sec figure, commit over commit.
fn bench_workload_engine(h: &Harness) {
    let p = topology::FatTreeParams::paper();
    let wl = workloads::find("websearch").expect("websearch is registered");
    for (label, flows) in [("10k", 10_000u64), ("100k", 100_000), ("1m", 1_000_000)] {
        h.bench(
            &format!("workload/websearch_gen_agg_{label}"),
            flows,
            || {
                let pt = experiments::trace_scale::run_point(&p, wl.as_ref(), flows, 3);
                black_box((pt.flows, pt.acc.bucket_count()))
            },
        );
    }
}

/// Sharded-engine scaling: the same fig3-style Poisson all-to-all on a
/// k=16 fat-tree (1024 hosts), executed by 1, 2, and 4 worker shards.
/// Every run produces byte-identical results (enforced by the
/// `sharded_determinism` test), so the three medians are a pure
/// wall-clock scaling curve for the conservative barrier-epoch engine.
/// `elements` is the run's event count (identical at every shard count),
/// so `elems_per_sec` is engine throughput in events/sec.
fn bench_sharding(h: &Harness) {
    let params = topology::FatTreeParams::k_ary(16).expect("k=16 is valid");
    let scheme = experiments::schemes::flowbender(Default::default());
    let rng = DetRng::new(3, 0xFAB);
    let specs: Vec<netsim::FlowSpec> = workloads::PoissonStream::new(
        &params,
        0.3,
        SimTime::from_ms(1),
        workloads::FlowSizeDist::web_search(),
        &rng,
    )
    .collect();
    let until = SimTime::from_ms(25);
    // One untimed probe run sizes `elements` with the real event count.
    let events = experiments::run_fat_tree_sharded(params, &scheme, &specs, until, 3, 1)
        .expect("1 shard always partitions")
        .events;
    for shards in [1usize, 2, 4] {
        h.bench(&format!("shard/alltoall_1024h_s{shards}"), events, || {
            let out = experiments::run_fat_tree_sharded(params, &scheme, &specs, until, 3, shards)
                .expect("shard counts divide k=16's 16 pods");
            black_box(out.events)
        });
    }
}

/// Chaos-engine overhead: the same 1024-host Poisson all-to-all as
/// `shard/alltoall_1024h_s4`, but with the chaos experiment's scripted
/// incident (gray ramp → core crash → flap storm → recovery) and the
/// reconvergence SLO probe armed — the fault-injection hot paths
/// (per-port fault RNG draws, directed-fault events, per-epoch
/// conservation asserts, delivery-probe hook) priced against the healthy
/// run above. `elements` is the faulted run's own event count, so
/// `elems_per_sec` stays engine throughput in events/sec.
fn bench_chaos(h: &Harness) {
    let params = topology::FatTreeParams::k_ary(16).expect("k=16 is valid");
    let scheme = experiments::schemes::flowbender(Default::default());
    let rng = DetRng::new(3, 0xFAB);
    let specs: Vec<netsim::FlowSpec> = workloads::PoissonStream::new(
        &params,
        0.3,
        SimTime::from_ms(1),
        workloads::FlowSizeDist::web_search(),
        &rng,
    )
    .collect();
    let until = SimTime::from_ms(25);
    let incident = experiments::chaos::Incident::over(SimTime::from_ms(1));
    let slo = Some(netsim::SloConfig {
        fail_at: incident.fail_at,
        bin: SimTime::from_us(50),
    });
    let run = |shards: usize| {
        experiments::run_fat_tree_sharded_faults(
            params,
            &scheme,
            &specs,
            until,
            3,
            shards,
            slo,
            |ft| incident.plan(ft),
        )
        .expect("shard counts divide k=16's 16 pods")
    };
    let events = run(1).events;
    for shards in [1usize, 4] {
        h.bench(&format!("shard/chaos_1024h_s{shards}"), events, || {
            black_box(run(shards).events)
        });
    }
}

/// Sketch ingestion alone: 1M pre-drawn FCT values into a fresh
/// [`stats::QuantileSketch`], isolating aggregation from generation.
fn bench_sketch(h: &Harness) {
    let mut rng = DetRng::new(9, 9);
    let values: Vec<f64> = (0..1_000_000)
        .map(|_| 1e-5 * (1e6f64).powf(rng.gen_f64()))
        .collect();
    h.bench("stats/sketch_add_1m", 1_000_000, || {
        let mut sk = stats::QuantileSketch::for_fct();
        for &v in &values {
            sk.add(v);
        }
        black_box(sk.quantile(0.99))
    });
}

fn main() {
    let h = Harness::from_args();
    bench_scheduler(&h);
    bench_hashing(&h);
    bench_queue(&h);
    bench_rng(&h);
    bench_forwarding(&h);
    bench_forwarding_traced(&h);
    bench_int_stamp(&h);
    bench_flowcut_pin(&h);
    bench_workload_engine(&h);
    bench_sharding(&h);
    bench_chaos(&h);
    bench_sketch(&h);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    h.write_json(out).expect("write BENCH_engine.json");
}
