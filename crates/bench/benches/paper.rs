//! One benchmark per paper table/figure, each running a scaled-down
//! instance of the corresponding experiment. These are regression canaries
//! for simulation throughput: `cargo bench` regenerates a miniature of
//! every artifact; the full-size numbers come from the `experiments`
//! binary (see EXPERIMENTS.md).

use std::hint::black_box;

use experiments::schemes::{self, SchemeSpec};
use experiments::{run_fat_tree, run_testbed, Window};
use fb_bench::Harness;
use netsim::{DetRng, SimTime, Simulator};
use topology::{build_fat_tree, FatTreeParams, TestbedParams};
use transport::install_agents;
use workloads::{
    all_to_all, hotspot, microbench, partition_aggregate, testbed_one_tor, FlowSizeDist,
};

fn fb() -> SchemeSpec {
    schemes::flowbender(flowbender::Config::default())
}

/// Table 1 miniature: 8 x 1 MB ToR-to-ToR flows under FlowBender.
fn bench_table1(h: &Harness) {
    let params = FatTreeParams::paper();
    let specs = microbench(&params, 8, 1_000_000);
    h.bench("paper/table1_microbench", 0, || {
        black_box(run_fat_tree(params, &fb(), &specs, SimTime::from_secs(5), 1).events)
    });
}

/// Figures 3/4 miniature: a 3 ms all-to-all slice at 40 % (the mean and
/// the p99 of the same run feed Fig 3 and Fig 4).
fn bench_fig3_fig4(h: &Harness) {
    let params = FatTreeParams::paper();
    let duration = SimTime::from_ms(3);
    let window = Window::for_duration(duration, SimTime::from_ms(100));
    let mut rng = DetRng::new(1, 1);
    let specs = all_to_all(
        &params,
        0.4,
        duration,
        &FlowSizeDist::web_search(),
        &mut rng,
    );
    for (name, scheme) in [
        ("paper/fig3_alltoall_mean_flowbender", fb()),
        ("paper/fig4_alltoall_tail_ecmp", schemes::ecmp()),
    ] {
        h.bench(name, 0, || {
            let out = run_fat_tree(params, &scheme, &specs, window.drain_until, 1);
            let s = stats::samples(&out.flows, window.start, window.end);
            let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
            black_box((stats::mean(&fcts), stats::percentile(&fcts, 0.99)))
        });
    }
}

/// Figure 5 miniature: partition-aggregate jobs at fan-in 8 for 3 ms.
fn bench_fig5(h: &Harness) {
    let params = FatTreeParams::paper();
    let mut rng = DetRng::new(1, 2);
    let specs = partition_aggregate(&params, 0.4, 8, 1_000_000, SimTime::from_ms(3), &mut rng);
    h.bench("paper/fig5_incast", 0, || {
        let out = run_fat_tree(params, &fb(), &specs, SimTime::from_ms(200), 1);
        black_box(stats::avg_job_completion(&out.flows))
    });
}

/// Figures 6/7 miniature: one non-default knob each (N = 3, T = 1 %).
fn bench_fig6_fig7(h: &Harness) {
    let params = FatTreeParams::paper();
    let duration = SimTime::from_ms(3);
    let mut rng = DetRng::new(1, 3);
    let specs = all_to_all(
        &params,
        0.4,
        duration,
        &FlowSizeDist::web_search(),
        &mut rng,
    );
    for (name, cfg) in [
        (
            "paper/fig6_sensitivity_n",
            flowbender::Config::default().with_n(3),
        ),
        (
            "paper/fig7_sensitivity_t",
            flowbender::Config::default().with_t(0.01),
        ),
    ] {
        h.bench(name, 0, || {
            black_box(
                run_fat_tree(
                    params,
                    &schemes::flowbender(cfg),
                    &specs,
                    SimTime::from_ms(200),
                    1,
                )
                .events,
            )
        });
    }
}

/// Figure 8 miniature: 10 ms of the one-ToR testbed workload at 40 %.
fn bench_fig8(h: &Harness) {
    let params = TestbedParams::paper();
    let mut rng = DetRng::new(1, 4);
    let specs = testbed_one_tor(
        &params,
        0..params.servers_per_tor[0],
        params.n_hosts(),
        0.4,
        1_000_000,
        SimTime::from_ms(10),
        &mut rng,
    );
    h.bench("paper/fig8_testbed", 0, || {
        black_box(run_testbed(params.clone(), &fb(), &specs, SimTime::from_ms(300), 1, &[]).events)
    });
}

/// §4.3.1 miniature: 5 ms of the 14 Gbps TCP + 6 Gbps UDP hotspot.
fn bench_hotspot(h: &Harness) {
    let params = TestbedParams::paper();
    let duration = SimTime::from_ms(5);
    let mut rng = DetRng::new(1, 5);
    let s0 = params.servers_per_tor[0];
    let specs = hotspot(
        0..s0,
        s0..s0 + params.servers_per_tor[1],
        14e9,
        6_000_000_000,
        1_000_000,
        duration,
        &mut rng,
    );
    let watch: Vec<(usize, usize)> = (0..params.aggs).map(|a| (0usize, a)).collect();
    h.bench("paper/hotspot_decongest", 0, || {
        let out = run_testbed(params.clone(), &fb(), &specs, duration, 1, &watch);
        black_box(out.port_stats.iter().map(|p| p.tx_bytes_tcp).sum::<u64>())
    });
}

/// §3.3.2 miniature: link failure under 8 x 1 MB flows.
fn bench_link_failure(h: &Harness) {
    let params = FatTreeParams::paper();
    let specs = microbench(&params, 8, 1_000_000);
    h.bench("paper/link_failure_recovery", 0, || {
        let mut sim = Simulator::new(9);
        let ft = build_fat_tree(&mut sim, params, fb().switch_config());
        install_agents(&mut sim, &specs, &fb().tcp_config());
        let (node, port) = ft.agg_core_link(0, 0);
        sim.schedule_link_state(node, port, false, SimTime::from_us(200));
        sim.run_until(SimTime::from_secs(5));
        black_box(sim.recorder().completed_count())
    });
}

/// Ablation miniature: two FlowBender variants on the same 3 ms slice
/// (paper default vs the §5.1 cooldown guard).
fn bench_ablation(h: &Harness) {
    let params = FatTreeParams::paper();
    let mut rng = DetRng::new(1, 6);
    let specs = all_to_all(
        &params,
        0.4,
        SimTime::from_ms(3),
        &FlowSizeDist::web_search(),
        &mut rng,
    );
    for (name, cfg) in [
        ("paper/ablation_default", flowbender::Config::default()),
        (
            "paper/ablation_cooldown",
            flowbender::Config::default().with_cooldown(3),
        ),
    ] {
        h.bench(name, 0, || {
            black_box(
                run_fat_tree(
                    params,
                    &schemes::flowbender(cfg),
                    &specs,
                    SimTime::from_ms(200),
                    1,
                )
                .events,
            )
        });
    }
}

/// §4.3.1 asymmetry miniature: one degraded agg->core link under the
/// microbenchmark with FlowBender compensating.
fn bench_asym(h: &Harness) {
    h.bench("paper/asym_wcmp_compensation", 0, || {
        black_box(experiments::asym::run_config(
            &fb(),
            false,
            1_000_000,
            5_000_000_000,
            1,
        ))
    });
}

/// §4.3.3 miniature: the same slice on the tiny fabric (path-diversity
/// scaling uses `paper_wide` in the full experiment; benches stay small).
fn bench_topo_dep(h: &Harness) {
    let params = FatTreeParams::tiny();
    let mut rng = DetRng::new(1, 7);
    let specs = all_to_all(
        &params,
        0.4,
        SimTime::from_ms(5),
        &FlowSizeDist::web_search(),
        &mut rng,
    );
    h.bench("paper/topo_dep_tiny_fabric", 0, || {
        black_box(run_fat_tree(params, &fb(), &specs, SimTime::from_ms(300), 1).events)
    });
}

fn main() {
    let h = Harness::from_args();
    bench_table1(&h);
    bench_fig3_fig4(&h);
    bench_fig5(&h);
    bench_fig6_fig7(&h);
    bench_fig8(&h);
    bench_hotspot(&h);
    bench_link_failure(&h);
    bench_ablation(&h);
    bench_asym(&h);
    bench_topo_dep(&h);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_paper.json");
    h.write_json(out).expect("write BENCH_paper.json");
}
