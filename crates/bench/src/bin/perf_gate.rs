//! `perf-gate` — the CI perf-regression gate.
//!
//! Compares a freshly generated bench JSON (`BENCH_engine.json`) against
//! the checked-in baseline (`BENCH_baseline.json`) and exits non-zero if
//! any benchmark present in both regressed beyond the tolerance.
//!
//! ```text
//! perf-gate <fresh.json> <baseline.json> [tolerance]
//! ```
//!
//! * `tolerance` is a fraction (default `0.15`, i.e. a fresh median more
//!   than 15 % above baseline fails); it can also come from the
//!   `PERF_GATE_TOLERANCE` environment variable.
//! * Benchmarks only in the fresh file (newly added) or only in the
//!   baseline (renamed/removed) are reported but never fail the gate —
//!   the baseline is refreshed by checking in a new `BENCH_baseline.json`.
//! * A fresh file produced by `--smoke` mode is skipped with exit 0:
//!   single-iteration medians are compile-and-run checks, not timings.
//!
//! The parser is a tiny scanner over the known `Harness::write_json`
//! layout (`"name": "..."` followed by `"median_ns": N`), matching the
//! repo-wide no-new-dependencies rule — there is no JSON parser to lean
//! on, and the format is ours.

use std::process::ExitCode;

/// `("name", median_ns)` pairs scanned out of a bench JSON file.
fn parse_benchmarks(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"name\": \"") {
        let after = &rest[i + "\"name\": \"".len()..];
        let Some(end) = after.find('"') else { break };
        let name = after[..end].to_string();
        let tail = &after[end..];
        let Some(m) = tail.find("\"median_ns\": ") else {
            break;
        };
        let digits: String = tail[m + "\"median_ns\": ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u64>() {
            out.push((name, v));
        }
        rest = &tail[m..];
    }
    out
}

/// Whether the file records a `--smoke` run (single-iteration timings).
fn is_smoke(text: &str) -> bool {
    text.contains("\"smoke\": true")
}

fn usage() -> ExitCode {
    eprintln!("usage: perf-gate <fresh.json> <baseline.json> [tolerance]");
    eprintln!("       tolerance: allowed fractional slowdown, default 0.15");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(fresh_path), Some(base_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let tolerance: f64 = match args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("PERF_GATE_TOLERANCE").ok())
    {
        Some(s) => match s.parse() {
            Ok(t) => t,
            Err(_) => {
                eprintln!("perf-gate: bad tolerance {s:?}");
                return usage();
            }
        },
        None => 0.15,
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("perf-gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh_text = read(fresh_path);
    let base_text = read(base_path);
    if is_smoke(&fresh_text) {
        println!(
            "perf-gate: {fresh_path} is a --smoke run (single iteration); skipping comparison"
        );
        return ExitCode::SUCCESS;
    }
    let fresh = parse_benchmarks(&fresh_text);
    let base = parse_benchmarks(&base_text);
    if fresh.is_empty() || base.is_empty() {
        eprintln!(
            "perf-gate: no benchmarks parsed (fresh {}, baseline {})",
            fresh.len(),
            base.len()
        );
        return ExitCode::from(2);
    }
    let base_by_name: std::collections::HashMap<&str, u64> =
        base.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let fresh_names: std::collections::HashSet<&str> =
        fresh.iter().map(|(n, _)| n.as_str()).collect();

    let mut failures = 0usize;
    for (name, fresh_ns) in &fresh {
        match base_by_name.get(name.as_str()) {
            Some(&base_ns) if base_ns > 0 => {
                let ratio = *fresh_ns as f64 / base_ns as f64;
                let verdict = if ratio > 1.0 + tolerance {
                    failures += 1;
                    "REGRESSED"
                } else if ratio < 1.0 - tolerance {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{verdict:>10}  {name:<44} {fresh_ns:>12} ns vs {base_ns:>12} ns  ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
            }
            _ => println!("{:>10}  {name:<44} {fresh_ns:>12} ns (no baseline)", "new"),
        }
    }
    for (name, _) in &base {
        if !fresh_names.contains(name.as_str()) {
            println!("{:>10}  {name:<44} (in baseline only)", "missing");
        }
    }
    if failures > 0 {
        eprintln!(
            "perf-gate: {failures} benchmark(s) regressed beyond {:.0}% — \
             investigate, or refresh BENCH_baseline.json if intentional",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf-gate: all shared benchmarks within {:.0}% of baseline",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "smoke": false,
  "benchmarks": [
    {
      "name": "scheduler/push_pop_10k",
      "median_ns": 1200345,
      "elements": 10000,
      "elems_per_sec": 8331.0,
      "iters": 17
    },
    {
      "name": "workload/websearch_gen_agg_1m",
      "median_ns": 450000000,
      "elements": 1000000,
      "elems_per_sec": 2222222.0,
      "iters": 5
    }
  ]
}"#;

    #[test]
    fn scanner_extracts_names_and_medians_in_order() {
        let parsed = parse_benchmarks(SAMPLE);
        assert_eq!(
            parsed,
            vec![
                ("scheduler/push_pop_10k".to_string(), 1_200_345),
                ("workload/websearch_gen_agg_1m".to_string(), 450_000_000),
            ]
        );
    }

    #[test]
    fn smoke_flag_is_detected() {
        assert!(!is_smoke(SAMPLE));
        assert!(is_smoke(
            &SAMPLE.replace("\"smoke\": false", "\"smoke\": true")
        ));
    }

    #[test]
    fn scanner_survives_truncated_input() {
        assert!(parse_benchmarks("{\"benchmarks\": []}").is_empty());
        assert!(parse_benchmarks("\"name\": \"dangling").is_empty());
        let cut = &SAMPLE[..SAMPLE.find("450000000").unwrap()];
        assert_eq!(parse_benchmarks(cut).len(), 1);
    }
}
