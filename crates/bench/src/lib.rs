//! # fb-bench — benchmark crate for the FlowBender reproduction
//!
//! This crate hosts the two benchmark targets plus the tiny self-contained
//! harness they run on (the container builds fully offline, so the usual
//! external benchmark frameworks are out of reach):
//!
//! * `benches/engine.rs` — simulator hot-path microbenchmarks (event
//!   scheduling, ECMP hashing, queue operations, RNG, raw forwarding
//!   throughput);
//! * `benches/paper.rs` — one scaled-down run per paper table/figure,
//!   acting as throughput-regression canaries for every experiment.
//!
//! Run them with `cargo bench` (optionally passing a substring filter:
//! `cargo bench -- queue`). Each benchmark prints its median wall-clock
//! time per iteration and, where an element count is declared, the derived
//! elements-per-second throughput. Full-size artifact reproduction lives
//! in the `experiments` binary.
//!
//! Passing `--smoke` runs every benchmark exactly once — a CI-friendly
//! compile-and-run check that costs seconds, not minutes. Each bench
//! target also records its results and writes them as machine-readable
//! JSON (`BENCH_engine.json` / `BENCH_paper.json` at the repo root) via
//! [`Harness::write_json`], so perf can be tracked commit over commit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::hint::black_box;
use std::time::{Duration, Instant};

use stats::Json;

/// Target wall-clock budget per benchmark (measurement phase).
const BUDGET: Duration = Duration::from_millis(500);
/// Hard cap on measured iterations, so heavyweight benches stay quick.
const MAX_ITERS: usize = 50;
/// Minimum measured iterations, so the median is meaningful.
const MIN_ITERS: usize = 5;

/// One finished benchmark: what [`Harness::write_json`] serializes.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    median_ns: u64,
    elements: u64,
    iters: usize,
}

/// A minimal wall-clock benchmark runner.
///
/// Construct one with [`Harness::from_args`] at the top of a bench
/// target's `main`, then call [`Harness::bench`] (or
/// [`Harness::bench_with_setup`] when per-iteration state must be built
/// outside the timed region) once per benchmark, and finish with
/// [`Harness::write_json`] to persist the results.
pub struct Harness {
    filter: Option<String>,
    smoke: bool,
    results: RefCell<Vec<BenchRecord>>,
}

impl Harness {
    /// Build a harness from the process arguments. `cargo bench` passes
    /// `--bench` (and sometimes other flags); any non-flag argument is
    /// treated as a substring filter on benchmark names, and `--smoke`
    /// switches to single-iteration smoke mode.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
        Harness {
            filter,
            smoke,
            results: RefCell::new(Vec::new()),
        }
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Time `routine`, reporting the median of several iterations.
    /// `elements` is the number of logical items one iteration processes
    /// (packets, events, draws); pass 0 to suppress the throughput line.
    pub fn bench<R>(&self, name: &str, elements: u64, mut routine: impl FnMut() -> R) {
        self.bench_with_setup(name, elements, || (), |()| routine());
    }

    /// Like [`Harness::bench`], but re-runs `setup` before every timed
    /// iteration; only `routine` is measured.
    pub fn bench_with_setup<S, R>(
        &self,
        name: &str,
        elements: u64,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        if self.skip(name) {
            return;
        }
        // Warm-up (and a first duration estimate to size the sample count).
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let first = t0.elapsed();

        let (median, iters) = if self.smoke {
            // Smoke mode: the warm-up run is the measurement. This keeps a
            // CI check to one execution per benchmark.
            (first, 1)
        } else {
            let budgeted = (BUDGET.as_nanos() / first.as_nanos().max(1)) as usize;
            let iters = budgeted.clamp(MIN_ITERS, MAX_ITERS);
            let mut samples = Vec::with_capacity(iters);
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                samples.push(t.elapsed());
            }
            samples.sort();
            (samples[samples.len() / 2], iters)
        };
        report(name, elements, median, iters);
        self.results.borrow_mut().push(BenchRecord {
            name: name.to_string(),
            median_ns: median.as_nanos() as u64,
            elements,
            iters,
        });
    }

    /// Serialize every recorded result to `path` as pretty-printed JSON:
    /// `{"smoke": bool, "benchmarks": [{name, median_ns, elements,
    /// elems_per_sec, iters}, ...]}` in run order.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut benches = Json::arr();
        for r in self.results.borrow().iter() {
            let mut b = Json::obj();
            b.set("name", Json::str(r.name.as_str()));
            b.set("median_ns", Json::U64(r.median_ns));
            b.set("elements", Json::U64(r.elements));
            let eps = if r.elements > 0 {
                Json::Num(r.elements as f64 / (r.median_ns as f64 / 1e9).max(1e-12))
            } else {
                Json::Null
            };
            b.set("elems_per_sec", eps);
            b.set("iters", Json::U64(r.iters as u64));
            benches.push(b);
        }
        let mut root = Json::obj();
        root.set("smoke", Json::Bool(self.smoke));
        root.set("benchmarks", benches);
        std::fs::write(path, root.to_string_pretty())?;
        println!("wrote {} results to {path}", self.results.borrow().len());
        Ok(())
    }
}

fn report(name: &str, elements: u64, median: Duration, iters: usize) {
    let per_iter = fmt_duration(median);
    if elements > 0 {
        let eps = elements as f64 / median.as_secs_f64().max(1e-12);
        println!(
            "{name:<40} {per_iter:>12}/iter  {:>14}/s  ({iters} iters)",
            fmt_rate(eps)
        );
    } else {
        println!("{name:<40} {per_iter:>12}/iter  ({iters} iters)");
    }
}

/// Render a duration with a unit matched to its magnitude.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Render an elements-per-second rate with a thousands unit.
fn fmt_rate(eps: f64) -> String {
    if eps >= 1e9 {
        format!("{:.2} Gelem", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:.2} Melem", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.2} Kelem", eps / 1e3)
    } else {
        format!("{eps:.1} elem")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn rate_formatting_picks_sane_units() {
        assert_eq!(fmt_rate(5.0), "5.0 elem");
        assert_eq!(fmt_rate(5_000.0), "5.00 Kelem");
        assert_eq!(fmt_rate(5_000_000.0), "5.00 Melem");
        assert_eq!(fmt_rate(5_000_000_000.0), "5.00 Gelem");
    }

    #[test]
    fn harness_runs_and_respects_filter() {
        let h = Harness {
            filter: Some("match".into()),
            smoke: false,
            results: RefCell::new(Vec::new()),
        };
        let mut ran = 0;
        h.bench("no_hit", 0, || 1u32);
        h.bench("does_match", 1, || {
            ran += 1;
            42u32
        });
        assert!(ran >= 1, "filtered-in benchmark must run");
        let results = h.results.borrow();
        assert_eq!(results.len(), 1, "skipped benches must not be recorded");
        assert_eq!(results[0].name, "does_match");
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let h = Harness {
            filter: None,
            smoke: true,
            results: RefCell::new(Vec::new()),
        };
        let mut ran = 0;
        h.bench("quick", 10, || ran += 1);
        assert_eq!(ran, 1, "smoke mode must run the routine exactly once");
        assert_eq!(h.results.borrow()[0].iters, 1);
    }

    #[test]
    fn write_json_emits_all_records() {
        let h = Harness {
            filter: None,
            smoke: true,
            results: RefCell::new(Vec::new()),
        };
        h.bench("a", 100, || 1u32);
        h.bench("b", 0, || 2u32);
        let path = std::env::temp_dir().join("fb_bench_write_json_test.json");
        let path = path.to_str().unwrap();
        h.write_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"name\": \"a\""));
        assert!(text.contains("\"name\": \"b\""));
        assert!(text.contains("\"median_ns\""));
        assert!(text.contains("\"smoke\": true"));
        // elements == 0 suppresses the throughput figure.
        assert!(text.contains("\"elems_per_sec\": null"));
    }
}
