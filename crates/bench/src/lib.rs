//! # fb-bench — benchmark crate for the FlowBender reproduction
//!
//! This crate exists only to host the Criterion benchmark targets:
//!
//! * `benches/engine.rs` — simulator hot-path microbenchmarks (event
//!   scheduling, ECMP hashing, queue operations, RNG, raw forwarding
//!   throughput);
//! * `benches/paper.rs` — one scaled-down run per paper table/figure,
//!   acting as throughput-regression canaries for every experiment.
//!
//! Run them with `cargo bench`. Full-size artifact reproduction lives in
//! the `experiments` binary.

#![forbid(unsafe_code)]
