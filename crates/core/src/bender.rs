//! The FlowBender state machine — the paper's §3.3/§3.4 algorithm.
//!
//! One [`FlowBender`] instance rides along each flow's sender. The transport
//! feeds it two things:
//!
//! 1. every ACK, via [`FlowBender::on_ack`], with whether it carried the ECN
//!    echo, and
//! 2. RTT-epoch boundaries, via [`FlowBender::on_rtt_end`] (transports that
//!    run DCTCP already track per-RTT windows for the alpha estimate, and
//!    reuse those), plus retransmission timeouts via
//!    [`FlowBender::on_timeout`].
//!
//! In return the transport reads [`FlowBender::vfield`] and stamps it into
//! every outgoing packet's flexible header field. When the per-RTT marked
//! fraction `F` exceeds `T` for `N` consecutive RTTs — or an RTO fires —
//! the instance picks a new `V`, which re-hashes the flow onto a different
//! ECMP path at every switch that includes the field in its hash.
//!
//! This file is, deliberately, about as long as the "50 lines of kernel
//! code" the paper advertises (plus configuration, statistics, and the
//! optional refinements of §3.4/§5).

use std::collections::VecDeque;

use crate::config::Config;
use crate::rng::Rng;

/// How many closed epochs [`FlowBender::history`] retains.
pub const HISTORY_CAP: usize = 64;

/// One closed RTT epoch, for diagnostics and analysis tooling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// The (possibly EWMA-smoothed) marked fraction the decision used.
    pub f: f64,
    /// Whether this epoch ended in a reroute.
    pub rerouted: bool,
    /// The V value in effect *after* the decision.
    pub v_after: u8,
}

/// What the state machine decided at an epoch boundary or timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current path.
    Stay,
    /// The flow was rerouted: packets must now carry `to` in the flexible
    /// field.
    Reroute {
        /// Previous V value.
        from: u8,
        /// New V value (differs from `from` whenever `v_range > 1`).
        to: u8,
    },
}

impl Decision {
    /// True if this decision changed the path.
    pub fn rerouted(&self) -> bool {
        matches!(self, Decision::Reroute { .. })
    }
}

/// Why a reroute happened (for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Congestion,
    Timeout,
}

/// Lifetime statistics of one FlowBender instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BenderStats {
    /// RTT epochs observed (with at least one ACK).
    pub rtts: u64,
    /// Epochs whose (possibly smoothed) marked fraction exceeded `T`.
    pub congested_rtts: u64,
    /// Reroutes triggered by congestion.
    pub congestion_reroutes: u64,
    /// Reroutes triggered by retransmission timeouts.
    pub timeout_reroutes: u64,
}

impl BenderStats {
    /// Total reroutes from all causes.
    pub fn total_reroutes(&self) -> u64 {
        self.congestion_reroutes + self.timeout_reroutes
    }
}

/// Per-flow FlowBender state. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct FlowBender {
    cfg: Config,
    /// Current value of the flexible header field.
    v: u8,
    /// ACKs seen in the current RTT epoch.
    total_acks: u64,
    /// ECN-echo ACKs seen in the current RTT epoch.
    marked_acks: u64,
    /// Consecutive congested RTT epochs so far.
    num_congested_rtts: u32,
    /// Effective N for the current countdown (re-drawn when randomizing).
    n_target: u32,
    /// Smoothed F (only read when `cfg.ewma_gamma` is set).
    f_smooth: f64,
    /// Epochs remaining in the post-reroute cooldown.
    cooldown_left: u32,
    /// Ring buffer of the most recent closed epochs.
    history: VecDeque<EpochRecord>,
    stats: BenderStats,
}

impl FlowBender {
    /// Create an instance with a uniformly random initial `V`, so that
    /// concurrent flows between the same host pair start spread out.
    pub fn new<R: Rng + ?Sized>(cfg: Config, rng: &mut R) -> Self {
        cfg.validate();
        let v = rng.gen_range(cfg.v_range as u32) as u8;
        Self::with_initial_v(cfg, v)
    }

    /// Create an instance with a caller-chosen initial `V` (must be within
    /// `cfg.v_range`).
    pub fn with_initial_v(cfg: Config, v: u8) -> Self {
        cfg.validate();
        assert!(
            v < cfg.v_range,
            "initial V {v} out of range {}",
            cfg.v_range
        );
        FlowBender {
            cfg,
            v,
            total_acks: 0,
            marked_acks: 0,
            num_congested_rtts: 0,
            n_target: cfg.n,
            f_smooth: 0.0,
            cooldown_left: 0,
            history: VecDeque::with_capacity(HISTORY_CAP),
            stats: BenderStats::default(),
        }
    }

    /// The value the transport must stamp into the flexible header field of
    /// every outgoing packet of this flow.
    #[inline]
    pub fn vfield(&self) -> u8 {
        self.v
    }

    /// The configuration in use.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> BenderStats {
        self.stats
    }

    /// The most recent closed epochs (oldest first, capped at
    /// [`HISTORY_CAP`]); a debugging/analysis aid, not part of the
    /// algorithm.
    pub fn history(&self) -> impl Iterator<Item = &EpochRecord> {
        self.history.iter()
    }

    fn record_epoch(&mut self, f: f64, rerouted: bool) {
        if self.history.len() == HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(EpochRecord {
            f,
            rerouted,
            v_after: self.v,
        });
    }

    /// Count one received ACK (and whether it carried the ECN echo) into
    /// the current RTT epoch.
    #[inline]
    pub fn on_ack(&mut self, ecn_echo: bool) {
        self.total_acks += 1;
        if ecn_echo {
            self.marked_acks += 1;
        }
    }

    /// The marked-ACK fraction accumulated in the current (incomplete)
    /// epoch; `None` if no ACK has arrived yet.
    pub fn current_fraction(&self) -> Option<f64> {
        (self.total_acks > 0).then(|| self.marked_acks as f64 / self.total_acks as f64)
    }

    /// Close the current RTT epoch: evaluate `F` against `T`, update the
    /// consecutive-congestion counter, and possibly reroute.
    ///
    /// This is the paper's §3.4.1 pseudocode, with the optional EWMA,
    /// randomized-N, and cooldown refinements folded in.
    pub fn on_rtt_end<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Decision {
        if self.total_acks == 0 {
            // No feedback this epoch: no information, no decision.
            return Decision::Stay;
        }
        let f_raw = self.marked_acks as f64 / self.total_acks as f64;
        self.total_acks = 0;
        self.marked_acks = 0;
        self.stats.rtts += 1;

        let f = match self.cfg.ewma_gamma {
            Some(g) => {
                self.f_smooth = g * f_raw + (1.0 - g) * self.f_smooth;
                self.f_smooth
            }
            None => f_raw,
        };

        if self.cooldown_left > 0 {
            // §5.1: right after a reroute, congestion feedback still
            // reflects the old path; hold off.
            self.cooldown_left -= 1;
            self.num_congested_rtts = 0;
            self.record_epoch(f, false);
            return Decision::Stay;
        }

        if f > self.cfg.t {
            self.stats.congested_rtts += 1;
            self.num_congested_rtts += 1;
            if self.num_congested_rtts >= self.n_target {
                self.num_congested_rtts = 0;
                let d = self.reroute(rng, Cause::Congestion);
                self.record_epoch(f, true);
                return d;
            }
        } else {
            self.num_congested_rtts = 0;
        }
        self.record_epoch(f, false);
        Decision::Stay
    }

    /// A retransmission timeout fired for this flow. Per §3.3.2 this is the
    /// strongest signal — the path may be broken outright — so FlowBender
    /// reroutes immediately (unless disabled), which is what bounds failure
    /// recovery to roughly one RTO.
    pub fn on_timeout<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Decision {
        // The epoch's counts refer to the stalled path; start clean.
        self.total_acks = 0;
        self.marked_acks = 0;
        self.num_congested_rtts = 0;
        if !self.cfg.reroute_on_timeout {
            return Decision::Stay;
        }
        self.reroute(rng, Cause::Timeout)
    }

    fn reroute<R: Rng + ?Sized>(&mut self, rng: &mut R, cause: Cause) -> Decision {
        let from = self.v;
        let to = self.pick_new_v(rng);
        self.v = to;
        self.cooldown_left = self.cfg.cooldown_rtts;
        match cause {
            Cause::Congestion => self.stats.congestion_reroutes += 1,
            Cause::Timeout => self.stats.timeout_reroutes += 1,
        }
        if self.cfg.randomize_n {
            // Draw the next countdown target from {N-1, N, N+1}, floor 1.
            let lo = self.cfg.n.saturating_sub(1).max(1);
            let hi = self.cfg.n + 1;
            self.n_target = rng.gen_range_incl(lo, hi);
        }
        Decision::Reroute { from, to }
    }

    /// Uniform pick over the other `v_range - 1` values (or the sole value
    /// when `v_range == 1`, in which case "rerouting" is a no-op — useful
    /// as a degenerate control in experiments).
    fn pick_new_v<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u8 {
        let range = self.cfg.v_range as u32;
        if range == 1 {
            return self.v;
        }
        let step = 1 + rng.gen_range(range - 1);
        ((self.v as u32 + step) % range) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counting "RNG" that returns a fixed sequence, for deterministic
    /// unit tests of the decision logic.
    struct FixedRng(Vec<u64>, usize);
    impl FixedRng {
        fn new(vals: Vec<u64>) -> Self {
            FixedRng(vals, 0)
        }
    }
    impl Rng for FixedRng {
        fn next_u32(&mut self) -> u32 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v as u32
        }
    }

    fn det_rng() -> impl Rng {
        FixedRng::new(vec![0, 1, 2, 3, 4, 5, 6, 7])
    }

    fn run_epoch(fb: &mut FlowBender, marked: u64, clean: u64, rng: &mut impl Rng) -> Decision {
        for _ in 0..marked {
            fb.on_ack(true);
        }
        for _ in 0..clean {
            fb.on_ack(false);
        }
        fb.on_rtt_end(rng)
    }

    #[test]
    fn stays_below_threshold() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        // 4% marked < 5% threshold.
        for _ in 0..50 {
            assert_eq!(run_epoch(&mut fb, 4, 96, &mut rng), Decision::Stay);
        }
        assert_eq!(fb.stats().total_reroutes(), 0);
        assert_eq!(fb.stats().rtts, 50);
        assert_eq!(fb.stats().congested_rtts, 0);
    }

    #[test]
    fn reroutes_above_threshold_with_n1() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        let d = run_epoch(&mut fb, 10, 90, &mut rng); // 10% > 5%
        assert!(d.rerouted());
        assert_ne!(fb.vfield(), 0);
        assert_eq!(fb.stats().congestion_reroutes, 1);
    }

    #[test]
    fn threshold_is_strict_inequality() {
        // The paper's pseudocode says `if F > T`; F == T must not trigger.
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_t(0.10), 0);
        assert_eq!(run_epoch(&mut fb, 10, 90, &mut rng), Decision::Stay);
        assert!(run_epoch(&mut fb, 11, 89, &mut rng).rerouted());
    }

    #[test]
    fn n2_requires_consecutive_congestion() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_n(2), 0);
        assert_eq!(run_epoch(&mut fb, 50, 50, &mut rng), Decision::Stay);
        // A clean RTT resets the count.
        assert_eq!(run_epoch(&mut fb, 0, 100, &mut rng), Decision::Stay);
        assert_eq!(run_epoch(&mut fb, 50, 50, &mut rng), Decision::Stay);
        assert!(run_epoch(&mut fb, 50, 50, &mut rng).rerouted());
    }

    #[test]
    fn empty_epoch_is_no_information() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_n(2), 0);
        assert_eq!(run_epoch(&mut fb, 50, 50, &mut rng), Decision::Stay);
        // Epoch with zero ACKs: neither congested nor clean.
        assert_eq!(fb.on_rtt_end(&mut rng), Decision::Stay);
        assert_eq!(fb.stats().rtts, 1);
        // The consecutive count survives the empty epoch.
        assert!(run_epoch(&mut fb, 50, 50, &mut rng).rerouted());
    }

    #[test]
    fn timeout_reroutes_and_counts_separately() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        fb.on_ack(false);
        let d = fb.on_timeout(&mut rng);
        assert!(d.rerouted());
        assert_eq!(fb.stats().timeout_reroutes, 1);
        assert_eq!(fb.stats().congestion_reroutes, 0);
        // The partial epoch was discarded.
        assert_eq!(fb.current_fraction(), None);
    }

    #[test]
    fn timeout_reroute_can_be_disabled() {
        let mut rng = det_rng();
        let cfg = Config {
            reroute_on_timeout: false,
            ..Config::default()
        };
        let mut fb = FlowBender::with_initial_v(cfg, 0);
        assert_eq!(fb.on_timeout(&mut rng), Decision::Stay);
        assert_eq!(fb.stats().total_reroutes(), 0);
    }

    #[test]
    fn new_v_always_differs_when_range_allows() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_v_range(2), 0);
        for i in 0..20 {
            let before = fb.vfield();
            let d = run_epoch(&mut fb, 100, 0, &mut rng);
            match d {
                Decision::Reroute { from, to } => {
                    assert_eq!(from, before);
                    assert_ne!(from, to, "iteration {i}");
                    assert!(to < 2);
                }
                Decision::Stay => panic!("fully marked epoch must reroute"),
            }
        }
    }

    #[test]
    fn v_range_one_is_a_harmless_no_op() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_v_range(1), 0);
        let d = run_epoch(&mut fb, 100, 0, &mut rng);
        assert_eq!(d, Decision::Reroute { from: 0, to: 0 });
        assert_eq!(fb.vfield(), 0);
    }

    #[test]
    fn cooldown_suppresses_back_to_back_reroutes() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default().with_cooldown(2), 0);
        assert!(run_epoch(&mut fb, 100, 0, &mut rng).rerouted());
        // Two fully-congested epochs are ignored during cooldown...
        assert_eq!(run_epoch(&mut fb, 100, 0, &mut rng), Decision::Stay);
        assert_eq!(run_epoch(&mut fb, 100, 0, &mut rng), Decision::Stay);
        // ...then rerouting resumes.
        assert!(run_epoch(&mut fb, 100, 0, &mut rng).rerouted());
        assert_eq!(fb.stats().congestion_reroutes, 2);
    }

    #[test]
    fn ewma_smooths_bursty_marking() {
        let mut rng = det_rng();
        // gamma = 0.5: one fully-marked epoch after a clean history gives
        // f_smooth = 0.5 > T, but a *single spike* after many clean epochs
        // with a small gamma does not.
        let cfg = Config::default().with_ewma(0.05);
        let mut fb = FlowBender::with_initial_v(cfg, 0);
        for _ in 0..20 {
            assert_eq!(run_epoch(&mut fb, 0, 100, &mut rng), Decision::Stay);
        }
        // Spike epoch: raw F = 1.0 but smoothed = 0.05*1.0 = 0.05, not > T.
        assert_eq!(run_epoch(&mut fb, 100, 0, &mut rng), Decision::Stay);
        // Sustained marking eventually crosses the threshold.
        let mut rerouted = false;
        for _ in 0..20 {
            if run_epoch(&mut fb, 100, 0, &mut rng).rerouted() {
                rerouted = true;
                break;
            }
        }
        assert!(
            rerouted,
            "sustained congestion must still trigger under EWMA"
        );
    }

    #[test]
    fn randomized_n_stays_within_one_of_n() {
        let mut rng = det_rng();
        let cfg = Config::default().with_n(3).with_randomized_n();
        let mut fb = FlowBender::with_initial_v(cfg, 0);
        // Force many reroutes; after each, count how many congested epochs
        // the next reroute takes: must be within {2, 3, 4}.
        for _ in 0..30 {
            let mut epochs = 0;
            loop {
                epochs += 1;
                if run_epoch(&mut fb, 100, 0, &mut rng).rerouted() {
                    break;
                }
                assert!(epochs < 10, "runaway: no reroute after {epochs} epochs");
            }
            assert!((2..=4).contains(&epochs), "took {epochs} epochs");
        }
    }

    #[test]
    fn current_fraction_tracks_partial_epoch() {
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        assert_eq!(fb.current_fraction(), None);
        fb.on_ack(true);
        fb.on_ack(false);
        fb.on_ack(false);
        fb.on_ack(false);
        assert_eq!(fb.current_fraction(), Some(0.25));
    }

    #[test]
    fn history_records_epochs_with_decisions() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        run_epoch(&mut fb, 0, 100, &mut rng); // clean
        run_epoch(&mut fb, 50, 50, &mut rng); // congested -> reroute (N=1)
        let h: Vec<_> = fb.history().cloned().collect();
        assert_eq!(h.len(), 2);
        assert!(!h[0].rerouted);
        assert_eq!(h[0].f, 0.0);
        assert_eq!(h[0].v_after, 0);
        assert!(h[1].rerouted);
        assert_eq!(h[1].f, 0.5);
        assert_eq!(h[1].v_after, fb.vfield());
    }

    #[test]
    fn history_is_capped() {
        let mut rng = det_rng();
        let mut fb = FlowBender::with_initial_v(Config::default(), 0);
        for _ in 0..(HISTORY_CAP + 10) {
            run_epoch(&mut fb, 0, 10, &mut rng);
        }
        assert_eq!(fb.history().count(), HISTORY_CAP);
    }

    #[test]
    #[should_panic]
    fn initial_v_out_of_range_panics() {
        FlowBender::with_initial_v(Config::default().with_v_range(4), 4);
    }

    #[test]
    fn random_initial_v_within_range() {
        let mut rng = det_rng();
        for _ in 0..50 {
            let fb = FlowBender::new(Config::default(), &mut rng);
            assert!(fb.vfield() < 8);
        }
    }
}
