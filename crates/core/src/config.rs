//! FlowBender tuning parameters.
//!
//! The paper's central claim about tuning (§3.4) is that there is very
//! little of it: one threshold `T` and, optionally, a patience parameter
//! `N`. The remaining fields implement the optional refinements the paper
//! sketches in §3.4 and §5 (randomized `N` for desynchronization, EWMA
//! smoothing of the marked fraction, and a reroute cooldown against
//! pathological path-thrashing).

/// Configuration of one FlowBender instance (one instance per flow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// `T`: the congestion threshold on the per-RTT fraction of ECN-marked
    /// ACKs. If the fraction exceeds `T`, the RTT counts as congested.
    /// Paper default 5% (effective anywhere in 1–10%, §3.4).
    pub t: f64,
    /// `N`: how many *consecutive* congested RTTs trigger a reroute.
    /// Paper default 1; `N = 2` trades response time for even less
    /// reordering (§3.4.1).
    pub n: u32,
    /// Number of distinct values the flexible header field `V` may take —
    /// the per-flow path-choice fan-out. The paper empirically settled on
    /// 8 and notes even 2 remains extremely effective (§3.3.2, footnote 2).
    pub v_range: u8,
    /// §3.4.2 desynchronization: instead of rerouting after exactly `N`
    /// congested RTTs, draw the target uniformly from {N-1, N, N+1}
    /// (clamped to ≥ 1) after every reroute, so synchronized flows don't
    /// cascade into a fabric-wide rerouting wave.
    pub randomize_n: bool,
    /// §3.4.1 footnote: exponentially average `F` across RTTs with this
    /// gain before comparing against `T` (`None` = use the raw per-RTT
    /// fraction, the paper's basic design).
    pub ewma_gamma: Option<f64>,
    /// §5.1 stability guard: after a reroute, ignore congestion signals for
    /// this many RTT epochs, bounding the path-change rate of a flow that
    /// keeps landing on congested paths (0 = off, the paper's basic design).
    pub cooldown_rtts: u32,
    /// §3.3.2: also change `V` when a retransmission timeout fires, which
    /// is what lets FlowBender route around link failures within ~an RTO.
    pub reroute_on_timeout: bool,
}

impl Default for Config {
    /// The paper's evaluated defaults: `T = 5%`, `N = 1`, 8 path options,
    /// timeout rerouting on, no optional refinements.
    fn default() -> Self {
        Config {
            t: 0.05,
            n: 1,
            v_range: 8,
            randomize_n: false,
            ewma_gamma: None,
            cooldown_rtts: 0,
            reroute_on_timeout: true,
        }
    }
}

impl Config {
    /// Validate invariants; called by [`crate::FlowBender::new`].
    ///
    /// # Panics
    /// If any field is out of its meaningful range.
    pub fn validate(&self) {
        assert!(
            self.t >= 0.0 && self.t <= 1.0,
            "T must be a fraction in [0, 1], got {}",
            self.t
        );
        assert!(self.n >= 1, "N must be at least 1");
        assert!(self.v_range >= 1, "v_range must be at least 1");
        if let Some(g) = self.ewma_gamma {
            assert!(g > 0.0 && g <= 1.0, "EWMA gamma must be in (0, 1], got {g}");
        }
    }

    /// Builder-style: set the congestion threshold `T`.
    pub fn with_t(mut self, t: f64) -> Self {
        self.t = t;
        self
    }

    /// Builder-style: set the consecutive-RTT count `N`.
    pub fn with_n(mut self, n: u32) -> Self {
        self.n = n;
        self
    }

    /// Builder-style: set the number of `V` options.
    pub fn with_v_range(mut self, v_range: u8) -> Self {
        self.v_range = v_range;
        self
    }

    /// Builder-style: enable randomized `N` desynchronization.
    pub fn with_randomized_n(mut self) -> Self {
        self.randomize_n = true;
        self
    }

    /// Builder-style: enable EWMA smoothing of `F` with gain `gamma`.
    pub fn with_ewma(mut self, gamma: f64) -> Self {
        self.ewma_gamma = Some(gamma);
        self
    }

    /// Builder-style: set the post-reroute cooldown in RTTs.
    pub fn with_cooldown(mut self, rtts: u32) -> Self {
        self.cooldown_rtts = rtts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.t, 0.05);
        assert_eq!(c.n, 1);
        assert_eq!(c.v_range, 8);
        assert!(c.reroute_on_timeout);
        assert!(!c.randomize_n);
        assert_eq!(c.ewma_gamma, None);
        assert_eq!(c.cooldown_rtts, 0);
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = Config::default()
            .with_t(0.01)
            .with_n(2)
            .with_v_range(2)
            .with_randomized_n()
            .with_ewma(0.5)
            .with_cooldown(3);
        assert_eq!(c.t, 0.01);
        assert_eq!(c.n, 2);
        assert_eq!(c.v_range, 2);
        assert!(c.randomize_n);
        assert_eq!(c.ewma_gamma, Some(0.5));
        assert_eq!(c.cooldown_rtts, 3);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn rejects_t_above_one() {
        Config::default().with_t(1.5).validate();
    }

    #[test]
    #[should_panic]
    fn rejects_zero_n() {
        Config::default().with_n(0).validate();
    }

    #[test]
    #[should_panic]
    fn rejects_zero_v_range() {
        Config::default().with_v_range(0).validate();
    }

    #[test]
    #[should_panic]
    fn rejects_bad_gamma() {
        Config::default().with_ewma(0.0).validate();
    }
}
