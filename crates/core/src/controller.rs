//! The host-side path-control abstraction.
//!
//! The paper's framing (§3.3) is that FlowBender is *one* member of a
//! family of end-host policies that steer a flow by rewriting a flexible
//! header field ("the V-field") that commodity ECMP switches fold into
//! their hash. [`PathController`] captures the seam those policies share:
//! the transport reports ACKs, RTT-epoch boundaries, and retransmission
//! timeouts; the controller answers with a [`Decision`] and exposes the
//! V-field value to stamp into every outgoing packet.
//!
//! Three controllers live here:
//!
//! * [`FlowBender`] — the paper's algorithm (the trait impl simply
//!   delegates to the state machine);
//! * [`StaticPath`] — the no-op ECMP controller: a fixed V, never any
//!   reroute, never any RNG draw. With a non-zero V it doubles as the
//!   building block for replication schemes (RepFlow-style duplicates
//!   that differ from their primary only in V);
//! * [`FlowcutGap`] — host-side flowlet/"flowcut" switching (Bonato et
//!   al. style): when the ACK stream goes idle for longer than a
//!   configured gap, the pipe has drained and the flow can re-hash onto
//!   a new path without risking reordering.
//!
//! The trait is object-safe — transports hold a `Box<dyn PathController>`
//! — which is why the hooks take `&mut dyn Rng` rather than a generic
//! parameter.

use crate::bender::{Decision, FlowBender};
use crate::rng::Rng;

/// A switch-assisted congestion signal delivered to the sender, carrying
/// the *blamed hop* — the precise `(node, port)` whose queue is the
/// problem — instead of FlowBender's anonymous end-to-end ECN fraction.
///
/// Field types are plain integers so this crate stays free of any
/// simulator's id/time types (the transport layer converts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// INT telemetry echoed end-to-end: the receiver reflected the data
    /// packet's per-hop stack on the ACK, and the transport extracted the
    /// deepest-queue hop.
    IntEcho {
        /// The blamed switch.
        node: u32,
        /// The blamed egress port on that switch.
        port: u16,
        /// That queue's occupancy in bytes when the packet enqueued.
        qbytes: u64,
        /// Whether that hop also ECN-marked the packet.
        marked: bool,
    },
    /// A switch-generated early congestion notification: the blamed hop
    /// sent this straight back to the sender, ahead of any ACK.
    Cn {
        /// The blamed switch.
        node: u32,
        /// The blamed egress port on that switch.
        port: u16,
        /// That queue's occupancy in bytes when the CN fired.
        qbytes: u64,
    },
}

impl Feedback {
    /// The blamed `(node, port)` hop, whatever the signal's transport.
    pub fn blamed(&self) -> (u32, u16) {
        match *self {
            Feedback::IntEcho { node, port, .. } | Feedback::Cn { node, port, .. } => (node, port),
        }
    }

    /// Does this signal indicate congestion right now? CNs always do;
    /// an INT echo only when the blamed hop also marked the packet.
    pub fn congested(&self) -> bool {
        match *self {
            Feedback::IntEcho { marked, .. } => marked,
            Feedback::Cn { .. } => true,
        }
    }
}

/// A host-side path-control policy for one flow.
///
/// All time arguments are picoseconds since simulation start (a plain
/// `u64`, so this crate stays free of any simulator's time type).
pub trait PathController: std::fmt::Debug {
    /// The value the transport must stamp into the flexible header field
    /// of every outgoing packet of this flow.
    fn vfield(&self) -> u8;

    /// Whether this controller can ever change the path. Passive
    /// controllers (fixed-V) return `false`, letting transports skip
    /// per-flow telemetry anchors for them.
    fn active(&self) -> bool {
        true
    }

    /// One ACK arrived (`ecn_echo` = it carried the ECN echo) at
    /// `now_ps`. Controllers that react between RTT boundaries (e.g.
    /// gap-based flowlet switching) may return a reroute here; pure
    /// per-epoch controllers accumulate and return [`Decision::Stay`].
    fn on_ack(&mut self, ecn_echo: bool, now_ps: u64, rng: &mut dyn Rng) -> Decision;

    /// A switch-assisted feedback signal (INT echo or CN) arrived at
    /// `now_ps`, mid-RTT. Controllers that exploit per-hop blame react
    /// here; the default ignores the signal — existing controllers keep
    /// their exact behavior (and RNG draw sequence) with feedback on.
    fn on_feedback(&mut self, fb: Feedback, now_ps: u64, rng: &mut dyn Rng) -> Decision {
        let _ = (fb, now_ps, rng);
        Decision::Stay
    }

    /// The current RTT epoch closed (the transport's congestion-window
    /// round ended).
    fn on_rtt_end(&mut self, rng: &mut dyn Rng) -> Decision;

    /// A retransmission timeout fired.
    fn on_timeout(&mut self, rng: &mut dyn Rng) -> Decision;

    /// Downcast to the FlowBender state machine, when this controller is
    /// one (diagnostics: per-flow reroute statistics and epoch history).
    fn as_flowbender(&self) -> Option<&FlowBender> {
        None
    }
}

impl PathController for FlowBender {
    fn vfield(&self) -> u8 {
        FlowBender::vfield(self)
    }

    fn on_ack(&mut self, ecn_echo: bool, _now_ps: u64, _rng: &mut dyn Rng) -> Decision {
        FlowBender::on_ack(self, ecn_echo);
        Decision::Stay
    }

    fn on_rtt_end(&mut self, rng: &mut dyn Rng) -> Decision {
        FlowBender::on_rtt_end(self, rng)
    }

    fn on_timeout(&mut self, rng: &mut dyn Rng) -> Decision {
        FlowBender::on_timeout(self, rng)
    }

    fn as_flowbender(&self) -> Option<&FlowBender> {
        Some(self)
    }
}

/// The no-op ECMP controller: the flow keeps whatever V it was born with.
///
/// This is what every oblivious scheme (ECMP, RPS, DeTail) runs — the
/// V-field stays constant so the switches' hash never re-maps the flow.
/// Replication schemes reuse it with distinct initial values to pin a
/// primary and its duplicate onto independently hashed paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPath {
    v: u8,
}

impl StaticPath {
    /// A controller pinned to `v`.
    pub fn new(v: u8) -> Self {
        StaticPath { v }
    }
}

impl PathController for StaticPath {
    fn vfield(&self) -> u8 {
        self.v
    }

    fn active(&self) -> bool {
        false
    }

    fn on_ack(&mut self, _ecn_echo: bool, _now_ps: u64, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }

    fn on_rtt_end(&mut self, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }

    fn on_timeout(&mut self, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }
}

/// Host-side flowlet/"flowcut" switching: re-draw V whenever the ACK
/// stream has been idle for longer than `gap_ps`.
///
/// The safety argument is the flowlet one, applied at the sender: if no
/// ACK arrived for longer than the path's drain time, no packet of this
/// flow is still queued along the old path, so switching paths cannot
/// reorder. Unlike switch-side flowlet tables (LetFlow), this needs no
/// fabric support beyond the same V-field hash FlowBender uses.
#[derive(Debug, Clone)]
pub struct FlowcutGap {
    gap_ps: u64,
    v_range: u8,
    v: u8,
    /// Time of the last observed ACK (or the last reroute), ps.
    last_seen_ps: Option<u64>,
    /// Gap-triggered path switches so far.
    switches: u64,
}

impl FlowcutGap {
    /// A gap controller with `v_range` path options and a uniformly
    /// random initial V, like [`FlowBender::new`].
    pub fn new<R: Rng + ?Sized>(gap_ps: u64, v_range: u8, rng: &mut R) -> Self {
        assert!(gap_ps > 0, "flowcut gap must be positive");
        assert!(v_range >= 1, "v_range must be at least 1");
        let v = rng.gen_range(v_range as u32) as u8;
        FlowcutGap {
            gap_ps,
            v_range,
            v,
            last_seen_ps: None,
            switches: 0,
        }
    }

    /// Gap-triggered path switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn redraw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Decision {
        let from = self.v;
        let range = self.v_range as u32;
        if range > 1 {
            let step = 1 + rng.gen_range(range - 1);
            self.v = ((self.v as u32 + step) % range) as u8;
        }
        self.switches += 1;
        Decision::Reroute { from, to: self.v }
    }
}

impl PathController for FlowcutGap {
    fn vfield(&self) -> u8 {
        self.v
    }

    fn on_ack(&mut self, _ecn_echo: bool, now_ps: u64, rng: &mut dyn Rng) -> Decision {
        let idle = self
            .last_seen_ps
            .map(|last| now_ps.saturating_sub(last) > self.gap_ps);
        self.last_seen_ps = Some(now_ps);
        match idle {
            Some(true) => self.redraw(rng),
            _ => Decision::Stay,
        }
    }

    fn on_rtt_end(&mut self, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }

    fn on_timeout(&mut self, rng: &mut dyn Rng) -> Decision {
        // An RTO is a longer silence than any gap threshold: the pipe is
        // certainly drained (and possibly broken) — switch immediately,
        // measuring the next gap from the reroute itself.
        self.last_seen_ps = None;
        self.redraw(rng)
    }
}

/// FlowBender with per-hop blame: bend away from the *specific* hop the
/// switch-assisted feedback names, instead of reacting to an anonymous
/// end-to-end ECN fraction.
///
/// The reaction loop: every congested [`Feedback`] signal (a CN, or an
/// INT echo whose blamed hop marked the packet) naming the *same*
/// `(node, port)` grows a streak; `confirm` consecutive signals trigger a
/// bend. The new V is a **deterministic** function of the current V and
/// the blamed hop — a hash of `(node, port)` picks the step — so the flow
/// re-hashes *around that port* consistently, and the controller draws
/// **zero** RNG (pinned by test): byte-identical runs at every shard
/// count come for free. After a bend the controller holds its path for
/// `hold_ps` (one RTT-ish) so in-flight feedback from the *old* path
/// cannot trigger a second bend before the first takes effect.
#[derive(Debug, Clone)]
pub struct BenderInt {
    v_range: u8,
    v: u8,
    confirm: u32,
    hold_ps: u64,
    /// Current blame streak: the hop and how many consecutive congested
    /// signals have named it.
    streak: Option<((u32, u16), u32)>,
    /// End of the post-bend hold-down, ps.
    hold_until_ps: u64,
    bends: u64,
}

impl BenderInt {
    /// A controller over `v_range` path options starting at `initial_v`,
    /// bending after `confirm` consecutive same-hop congestion signals
    /// and holding the new path for `hold_ps` afterwards.
    pub fn new(v_range: u8, initial_v: u8, confirm: u32, hold_ps: u64) -> Self {
        assert!(v_range >= 1, "v_range must be at least 1");
        assert!(initial_v < v_range, "initial V outside the range");
        assert!(confirm >= 1, "confirm must be at least 1");
        BenderInt {
            v_range,
            v: initial_v,
            confirm,
            hold_ps,
            streak: None,
            hold_until_ps: 0,
            bends: 0,
        }
    }

    /// Blame-triggered bends so far.
    pub fn bends(&self) -> u64 {
        self.bends
    }

    /// Deterministic step away from `hop`: a SplitMix64-style finalizer
    /// of the hop identity picks how far around the V ring to jump, so
    /// the same blamed port always produces the same re-hash and no RNG
    /// is ever consulted.
    fn hop_step(&self, hop: (u32, u16)) -> u32 {
        let range = self.v_range as u32;
        if range <= 1 {
            return 0;
        }
        let x = ((hop.0 as u64) << 16) | hop.1 as u64;
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        1 + (z as u32 % (range - 1))
    }

    fn bend(&mut self, hop: (u32, u16), now_ps: u64) -> Decision {
        let from = self.v;
        self.v = ((self.v as u32 + self.hop_step(hop)) % self.v_range as u32) as u8;
        self.streak = None;
        self.hold_until_ps = now_ps.saturating_add(self.hold_ps);
        self.bends += 1;
        Decision::Reroute { from, to: self.v }
    }
}

impl PathController for BenderInt {
    fn vfield(&self) -> u8 {
        self.v
    }

    fn on_ack(&mut self, _ecn_echo: bool, _now_ps: u64, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }

    fn on_feedback(&mut self, fb: Feedback, now_ps: u64, _rng: &mut dyn Rng) -> Decision {
        if !fb.congested() {
            // A clean echo breaks the streak: blame must be consecutive,
            // mirroring FlowBender's N-consecutive-RTTs guard.
            self.streak = None;
            return Decision::Stay;
        }
        if now_ps < self.hold_until_ps {
            // Hold-down: this signal raced our last bend along the old
            // path; judging the new path by it would be unfair.
            return Decision::Stay;
        }
        let hop = fb.blamed();
        let n = match self.streak {
            Some((h, n)) if h == hop => n + 1,
            _ => 1,
        };
        if n >= self.confirm {
            self.bend(hop, now_ps)
        } else {
            self.streak = Some((hop, n));
            Decision::Stay
        }
    }

    fn on_rtt_end(&mut self, _rng: &mut dyn Rng) -> Decision {
        Decision::Stay
    }

    fn on_timeout(&mut self, _rng: &mut dyn Rng) -> Decision {
        // An RTO is the strongest congestion signal there is; bend
        // immediately like FlowBender does. With no hop to blame, step
        // one slot — deterministic, still RNG-free.
        let from = self.v;
        if self.v_range > 1 {
            self.v = ((self.v as u32 + 1) % self.v_range as u32) as u8;
        }
        self.streak = None;
        self.bends += 1;
        Decision::Reroute { from, to: self.v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::rng::SplitMix64;

    #[test]
    fn static_path_never_moves_and_never_draws() {
        let mut rng = SplitMix64::new(7);
        let before = rng.next_u32();
        let mut rng = SplitMix64::new(7);
        let mut p = StaticPath::new(3);
        assert_eq!(p.vfield(), 3);
        assert!(!p.active());
        assert_eq!(p.on_ack(true, 100, &mut rng), Decision::Stay);
        assert_eq!(p.on_rtt_end(&mut rng), Decision::Stay);
        assert_eq!(p.on_timeout(&mut rng), Decision::Stay);
        assert_eq!(p.vfield(), 3);
        assert!(p.as_flowbender().is_none());
        // The RNG was never advanced: byte-identity for oblivious schemes.
        assert_eq!(rng.next_u32(), before);
    }

    #[test]
    fn flowbender_impl_delegates_through_the_trait() {
        let mut rng = SplitMix64::new(1);
        let mut ctrl: Box<dyn PathController> =
            Box::new(FlowBender::with_initial_v(Config::default(), 0));
        for _ in 0..9 {
            assert_eq!(ctrl.on_ack(true, 0, &mut rng), Decision::Stay);
        }
        ctrl.on_ack(false, 0, &mut rng);
        let d = ctrl.on_rtt_end(&mut rng);
        assert!(d.rerouted(), "90% marked must reroute");
        assert_eq!(ctrl.as_flowbender().unwrap().stats().congestion_reroutes, 1);
        assert!(ctrl.active());
    }

    #[test]
    fn flowcut_switches_only_after_an_idle_gap() {
        let mut rng = SplitMix64::new(2);
        let gap = 1_000_000; // 1 µs in ps
        let mut fc = FlowcutGap::new(gap, 8, &mut rng);
        // A steady ACK clock: never switches.
        for t in (0..20u64).map(|i| i * 100_000) {
            assert_eq!(fc.on_ack(false, t, &mut rng), Decision::Stay);
        }
        assert_eq!(fc.switches(), 0);
        // A 2 µs silence: the next ACK triggers a switch.
        let d = fc.on_ack(false, 20 * 100_000 + 2_000_000, &mut rng);
        assert!(d.rerouted());
        assert_eq!(fc.switches(), 1);
        // And the one after that (no new gap) does not.
        let d = fc.on_ack(false, 20 * 100_000 + 2_100_000, &mut rng);
        assert_eq!(d, Decision::Stay);
    }

    #[test]
    fn flowcut_new_v_differs_when_range_allows() {
        let mut rng = SplitMix64::new(3);
        let mut fc = FlowcutGap::new(1, 2, &mut rng);
        for _ in 0..20 {
            let before = fc.vfield();
            match fc.on_timeout(&mut rng) {
                Decision::Reroute { from, to } => {
                    assert_eq!(from, before);
                    assert_ne!(from, to);
                    assert!(to < 2);
                }
                Decision::Stay => panic!("timeout must switch"),
            }
        }
    }

    #[test]
    fn flowcut_timeout_resets_the_gap_clock() {
        let mut rng = SplitMix64::new(4);
        let mut fc = FlowcutGap::new(1_000, 8, &mut rng);
        assert_eq!(fc.on_ack(false, 0, &mut rng), Decision::Stay);
        assert!(fc.on_timeout(&mut rng).rerouted());
        // First ACK after the timeout re-anchors instead of re-triggering,
        // however late it is.
        assert_eq!(fc.on_ack(false, 1_000_000_000, &mut rng), Decision::Stay);
    }

    #[test]
    fn flowcut_v_range_one_is_a_harmless_no_op() {
        let mut rng = SplitMix64::new(5);
        let mut fc = FlowcutGap::new(1, 1, &mut rng);
        let d = fc.on_timeout(&mut rng);
        assert_eq!(d, Decision::Reroute { from: 0, to: 0 });
    }

    fn cn(node: u32, port: u16) -> Feedback {
        Feedback::Cn {
            node,
            port,
            qbytes: 100_000,
        }
    }

    #[test]
    fn feedback_blame_and_congestion_semantics() {
        assert_eq!(cn(5, 2).blamed(), (5, 2));
        assert!(cn(5, 2).congested());
        let echo = Feedback::IntEcho {
            node: 3,
            port: 1,
            qbytes: 50_000,
            marked: false,
        };
        assert_eq!(echo.blamed(), (3, 1));
        assert!(!echo.congested(), "unmarked echo is a clean signal");
    }

    #[test]
    fn bender_int_bends_after_confirmed_blame_without_any_rng_draw() {
        let mut rng = SplitMix64::new(7);
        let before = rng.next_u32();
        let mut rng = SplitMix64::new(7);
        let mut b = BenderInt::new(8, 3, 3, 100_000_000);
        assert_eq!(b.vfield(), 3);
        assert!(b.active());
        // Two blames: not confirmed yet.
        assert_eq!(b.on_feedback(cn(5, 2), 10, &mut rng), Decision::Stay);
        assert_eq!(b.on_feedback(cn(5, 2), 20, &mut rng), Decision::Stay);
        // Third consecutive same-hop blame: bend, away from V=3.
        let d = b.on_feedback(cn(5, 2), 30, &mut rng);
        let Decision::Reroute { from, to } = d else {
            panic!("confirmed blame must bend")
        };
        assert_eq!(from, 3);
        assert_ne!(from, to);
        assert_eq!(b.vfield(), to);
        assert_eq!(b.bends(), 1);
        // Hold-down: feedback racing the bend cannot re-bend.
        for t in [40, 50, 60, 70] {
            assert_eq!(b.on_feedback(cn(5, 2), t, &mut rng), Decision::Stay);
        }
        // Zero RNG draws throughout: shard-count invariance for free.
        assert_eq!(rng.next_u32(), before);
    }

    #[test]
    fn bender_int_streak_requires_consecutive_same_hop_blame() {
        let mut rng = SplitMix64::new(8);
        let mut b = BenderInt::new(8, 0, 3, 0);
        assert_eq!(b.on_feedback(cn(5, 2), 1, &mut rng), Decision::Stay);
        assert_eq!(b.on_feedback(cn(5, 2), 2, &mut rng), Decision::Stay);
        // A different hop restarts the streak...
        assert_eq!(b.on_feedback(cn(9, 0), 3, &mut rng), Decision::Stay);
        assert_eq!(b.on_feedback(cn(9, 0), 4, &mut rng), Decision::Stay);
        // ...and a clean INT echo clears it entirely.
        let clean = Feedback::IntEcho {
            node: 9,
            port: 0,
            qbytes: 10,
            marked: false,
        };
        assert_eq!(b.on_feedback(clean, 5, &mut rng), Decision::Stay);
        assert_eq!(b.on_feedback(cn(9, 0), 6, &mut rng), Decision::Stay);
        assert_eq!(b.on_feedback(cn(9, 0), 7, &mut rng), Decision::Stay);
        assert!(b.on_feedback(cn(9, 0), 8, &mut rng).rerouted());
    }

    #[test]
    fn bender_int_jump_is_deterministic_per_blamed_hop() {
        let mut rng = SplitMix64::new(9);
        let run = |hop: Feedback| {
            let mut b = BenderInt::new(16, 5, 1, 0);
            let mut rng2 = SplitMix64::new(10);
            match b.on_feedback(hop, 1, &mut rng2) {
                Decision::Reroute { to, .. } => to,
                Decision::Stay => panic!("confirm=1 must bend"),
            }
        };
        // Same blamed hop -> same re-hash, twice.
        assert_eq!(run(cn(5, 2)), run(cn(5, 2)));
        // The step is hop-dependent (these two differ for this finalizer).
        assert_ne!(run(cn(5, 2)), run(cn(6, 3)));
        // And an RTO bends immediately, RNG-free.
        let mut b = BenderInt::new(8, 7, 3, 0);
        assert_eq!(b.on_timeout(&mut rng), Decision::Reroute { from: 7, to: 0 });
    }
}
