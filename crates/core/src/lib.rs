//! # flowbender — flow-level adaptive routing for datacenter networks
//!
//! A clean-room Rust implementation of the end-host algorithm from
//! *FlowBender: Flow-level Adaptive Routing for Improved Latency and
//! Throughput in Datacenter Networks* (Kabbani, Vamanan, Duchene, Hasan —
//! CoNEXT 2014).
//!
//! ## The idea
//!
//! ECMP pins each flow to one path by hashing its headers; colliding long
//! flows then share a congested path indefinitely while other paths idle.
//! FlowBender keeps ECMP's zero-reordering property but makes the mapping
//! *adaptive*: the switches' hash is configured to also cover a flexible
//! header field (TTL or VLAN id — the "V-field"), and the **sender** changes
//! that field when, and only when, the flow is congested or stalled:
//!
//! * every RTT, the sender computes `F`, the fraction of its ACKs carrying
//!   the ECN echo (DCTCP-style marking makes `F` a direct measure of path
//!   congestion);
//! * if `F > T` for `N` consecutive RTTs, the sender picks a new `V`
//!   — the flow re-hashes onto a different path at every hop;
//! * if a retransmission timeout fires, the sender reroutes immediately,
//!   which recovers from link failures within roughly one RTO, orders of
//!   magnitude faster than routing reconvergence.
//!
//! The entire mechanism is ~50 lines of sender-side logic and a few lines
//! of switch configuration — no new hardware, no receiver changes, no
//! packet scatter.
//!
//! ## This crate
//!
//! [`FlowBender`] is the per-flow state machine, deliberately decoupled
//! from any particular transport or simulator: you feed it ACK/mark counts,
//! epoch boundaries, and timeouts; it hands back [`Decision`]s and the
//! current [`FlowBender::vfield`]. The companion `transport` crate wires it
//! into a packet-level DCTCP implementation, and the `netsim`/`topology`
//! crates provide fabrics whose ECMP hash covers the V-field.
//!
//! ```
//! use flowbender::{Config, Decision, FlowBender, SplitMix64};
//! let mut rng = SplitMix64::new(42);
//! let mut fb = FlowBender::new(Config::default(), &mut rng);
//!
//! // Each RTT, report ACKs as they arrive...
//! for _ in 0..9 { fb.on_ack(false); }
//! fb.on_ack(true); // one ECN echo: F = 10% > T = 5%
//!
//! // ...then close the epoch:
//! match fb.on_rtt_end(&mut rng) {
//!     Decision::Reroute { from, to } => {
//!         assert_ne!(from, to);
//!         assert_eq!(to, fb.vfield()); // stamp into outgoing packets
//!     }
//!     Decision::Stay => unreachable!("10% marked exceeds the 5% default T"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bender;
mod config;
mod controller;
mod rng;

pub use bender::{BenderStats, Decision, EpochRecord, FlowBender, HISTORY_CAP};
pub use config::Config;
pub use controller::{BenderInt, Feedback, FlowcutGap, PathController, StaticPath};
pub use rng::{Rng, SplitMix64};
