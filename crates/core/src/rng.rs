//! The randomness interface FlowBender draws from.
//!
//! The state machine needs only a handful of small uniform draws (the
//! initial `V`, each replacement `V`, and the randomized-`N` target), so
//! instead of depending on an external RNG ecosystem this crate defines the
//! minimal trait it consumes. Simulation substrates implement [`Rng`] for
//! their own deterministic generators (the `netsim` crate implements it for
//! its PCG stream type); [`SplitMix64`] is a tiny self-contained generator
//! for tests, doctests, and standalone use.

/// A source of uniform randomness, as consumed by
/// [`FlowBender`](crate::FlowBender).
///
/// Implementors supply [`Rng::next_u32`]; the range helpers are provided
/// and use Lemire's multiply-shift rejection method, so any implementor
/// gets unbiased bounded draws for free.
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// If `bound == 0`.
    fn gen_range(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u32();
        let mut m = (x as u64) * (bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64) * (bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    /// If `lo > hi`.
    fn gen_range_incl(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u32::MAX {
            return self.next_u32();
        }
        lo + self.gen_range(hi - lo + 1)
    }
}

/// A tiny, self-contained splitmix64 generator.
///
/// Statistically solid for the small draws this crate makes, stable
/// forever (no external dependency whose internals could shift), and
/// cheap enough for doctests. Not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let x = rng.gen_range(8);
            assert!(x < 8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_incl_hits_both_ends() {
        let mut rng = SplitMix64::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..200 {
            let x = rng.gen_range_incl(2, 4);
            assert!((2..=4).contains(&x));
            lo_seen |= x == 2;
            hi_seen |= x == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic]
    fn zero_bound_panics() {
        SplitMix64::new(1).gen_range(0);
    }
}
