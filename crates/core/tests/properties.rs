//! Property-based tests of the FlowBender state machine invariants.

use flowbender::{Config, Decision, FlowBender};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary-but-valid configurations.
fn config_strategy() -> impl Strategy<Value = Config> {
    (
        0.0f64..=0.5,          // t
        1u32..=5,              // n
        1u8..=16,              // v_range
        any::<bool>(),         // randomize_n
        prop::option::of(0.01f64..=1.0), // ewma_gamma
        0u32..=4,              // cooldown
        any::<bool>(),         // reroute_on_timeout
    )
        .prop_map(|(t, n, v_range, randomize_n, ewma_gamma, cooldown_rtts, reroute_on_timeout)| Config {
            t,
            n,
            v_range,
            randomize_n,
            ewma_gamma,
            cooldown_rtts,
            reroute_on_timeout,
        })
}

/// A scripted epoch: `marked` of `total` ACKs carry the echo.
#[derive(Debug, Clone)]
struct Epoch {
    marked: u32,
    total: u32,
}

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    (0u32..=64).prop_flat_map(|total| {
        (0..=total).prop_map(move |marked| Epoch { marked, total })
    })
}

fn feed(fb: &mut FlowBender, e: &Epoch, rng: &mut StdRng) -> Decision {
    for i in 0..e.total {
        fb.on_ack(i < e.marked);
    }
    fb.on_rtt_end(rng)
}

proptest! {
    /// V always stays within the configured range, no matter the feed.
    #[test]
    fn v_always_in_range(cfg in config_strategy(), epochs in prop::collection::vec(epoch_strategy(), 0..64), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fb = FlowBender::new(cfg, &mut rng);
        prop_assert!(fb.vfield() < cfg.v_range);
        for e in &epochs {
            let d = feed(&mut fb, e, &mut rng);
            prop_assert!(fb.vfield() < cfg.v_range);
            if let Decision::Reroute { from, to } = d {
                prop_assert!(from < cfg.v_range && to < cfg.v_range);
                prop_assert_eq!(to, fb.vfield());
                if cfg.v_range > 1 {
                    prop_assert_ne!(from, to, "reroute must actually move when it can");
                }
            }
        }
    }

    /// With marking at or below T, FlowBender never reroutes for congestion.
    #[test]
    fn clean_traffic_never_reroutes(seed: u64, epochs in prop::collection::vec(1u32..=100, 1..100)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::default(); // T = 5%
        let mut fb = FlowBender::new(cfg, &mut rng);
        for &total in &epochs {
            // marked/total <= 5% guaranteed: mark at most total/20 ACKs.
            let marked = total / 20;
            let d = feed(&mut fb, &Epoch { marked, total }, &mut rng);
            prop_assert_eq!(d, Decision::Stay);
        }
        prop_assert_eq!(fb.stats().total_reroutes(), 0);
    }

    /// Fully marked traffic reroutes within every window of N consecutive
    /// epochs (basic config: no cooldown, no EWMA, fixed N).
    #[test]
    fn saturated_traffic_reroutes_every_n(seed: u64, n in 1u32..=5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::default().with_n(n);
        let mut fb = FlowBender::new(cfg, &mut rng);
        let mut since_reroute = 0u32;
        for _ in 0..50 {
            let d = feed(&mut fb, &Epoch { marked: 10, total: 10 }, &mut rng);
            since_reroute += 1;
            if d.rerouted() {
                prop_assert_eq!(since_reroute, n, "reroute cadence must be exactly N");
                since_reroute = 0;
            }
        }
        prop_assert_eq!(fb.stats().congestion_reroutes as u32, 50 / n);
    }

    /// The statistics never go backwards and stay mutually consistent.
    #[test]
    fn stats_are_monotone_and_consistent(cfg in config_strategy(), epochs in prop::collection::vec(epoch_strategy(), 0..50), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fb = FlowBender::new(cfg, &mut rng);
        let mut prev = fb.stats();
        for e in &epochs {
            feed(&mut fb, e, &mut rng);
            let s = fb.stats();
            prop_assert!(s.rtts >= prev.rtts);
            prop_assert!(s.congested_rtts >= prev.congested_rtts);
            prop_assert!(s.congestion_reroutes >= prev.congestion_reroutes);
            prop_assert!(s.congested_rtts <= s.rtts);
            prop_assert!(s.congestion_reroutes <= s.congested_rtts);
            prev = s;
        }
    }

    /// A timeout reroutes exactly when configured to, from any state.
    #[test]
    fn timeout_behaviour_matches_config(cfg in config_strategy(), epochs in prop::collection::vec(epoch_strategy(), 0..20), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fb = FlowBender::new(cfg, &mut rng);
        for e in &epochs {
            feed(&mut fb, e, &mut rng);
        }
        let before = fb.stats().timeout_reroutes;
        let d = fb.on_timeout(&mut rng);
        prop_assert_eq!(d.rerouted(), cfg.reroute_on_timeout);
        prop_assert_eq!(fb.stats().timeout_reroutes, before + u64::from(cfg.reroute_on_timeout));
        // The in-progress epoch is always discarded.
        prop_assert_eq!(fb.current_fraction(), None);
    }

    /// With a cooldown of C, two congestion reroutes are always separated
    /// by more than C epochs.
    #[test]
    fn cooldown_spaces_reroutes(seed: u64, c in 1u32..=5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::default().with_cooldown(c);
        let mut fb = FlowBender::new(cfg, &mut rng);
        let mut last_reroute: Option<u32> = None;
        for epoch in 0..100u32 {
            let d = feed(&mut fb, &Epoch { marked: 10, total: 10 }, &mut rng);
            if d.rerouted() {
                if let Some(prev) = last_reroute {
                    prop_assert!(epoch - prev > c, "reroutes at {prev} and {epoch} violate cooldown {c}");
                }
                last_reroute = Some(epoch);
            }
        }
        prop_assert!(last_reroute.is_some(), "saturated feed must reroute eventually");
    }

    /// Determinism: the same seed and feed produce the same trajectory.
    #[test]
    fn same_seed_same_trajectory(cfg in config_strategy(), epochs in prop::collection::vec(epoch_strategy(), 0..50), seed: u64) {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut fb = FlowBender::new(cfg, &mut rng);
            let mut vs = vec![fb.vfield()];
            for e in &epochs {
                feed(&mut fb, e, &mut rng);
                vs.push(fb.vfield());
            }
            (vs, fb.stats())
        };
        prop_assert_eq!(run(), run());
    }
}
