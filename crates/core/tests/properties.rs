//! Randomized invariant tests of the FlowBender state machine. Each test
//! sweeps many seeded configurations drawn from [`SplitMix64`], so every
//! failure reproduces exactly (the seed is part of the assertion message).

use flowbender::{Config, Decision, FlowBender, Rng, SplitMix64};

/// A random-but-valid configuration drawn from `rng`.
fn random_config(rng: &mut SplitMix64) -> Config {
    Config {
        t: rng.gen_range(501) as f64 / 1000.0, // 0.0..=0.5
        n: 1 + rng.gen_range(5),
        v_range: (1 + rng.gen_range(16)) as u8,
        randomize_n: rng.gen_range(2) == 1,
        ewma_gamma: if rng.gen_range(2) == 1 {
            Some((1 + rng.gen_range(100)) as f64 / 100.0) // 0.01..=1.0
        } else {
            None
        },
        cooldown_rtts: rng.gen_range(5),
        reroute_on_timeout: rng.gen_range(2) == 1,
    }
}

/// A scripted epoch: `marked` of `total` ACKs carry the echo.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    marked: u32,
    total: u32,
}

fn random_epoch(rng: &mut SplitMix64) -> Epoch {
    let total = rng.gen_range(65);
    let marked = if total == 0 {
        0
    } else {
        rng.gen_range(total + 1)
    };
    Epoch { marked, total }
}

fn feed(fb: &mut FlowBender, e: Epoch, rng: &mut SplitMix64) -> Decision {
    for i in 0..e.total {
        fb.on_ack(i < e.marked);
    }
    fb.on_rtt_end(rng)
}

/// V always stays within the configured range, no matter the feed.
#[test]
fn v_always_in_range() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let mut fb = FlowBender::new(cfg, &mut rng);
        assert!(fb.vfield() < cfg.v_range, "seed {seed}");
        for _ in 0..64 {
            let e = random_epoch(&mut rng);
            let d = feed(&mut fb, e, &mut rng);
            assert!(fb.vfield() < cfg.v_range, "seed {seed}: {cfg:?}");
            if let Decision::Reroute { from, to } = d {
                assert!(from < cfg.v_range && to < cfg.v_range, "seed {seed}");
                assert_eq!(to, fb.vfield(), "seed {seed}");
                if cfg.v_range > 1 {
                    assert_ne!(from, to, "seed {seed}: reroute must actually move");
                }
            }
        }
    }
}

/// With marking at or below T, FlowBender never reroutes for congestion.
#[test]
fn clean_traffic_never_reroutes() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = Config::default(); // T = 5%
        let mut fb = FlowBender::new(cfg, &mut rng);
        for _ in 0..100 {
            // marked/total <= 5% guaranteed: mark at most total/20 ACKs.
            let total = 1 + rng.gen_range(100);
            let marked = total / 20;
            let d = feed(&mut fb, Epoch { marked, total }, &mut rng);
            assert_eq!(d, Decision::Stay, "seed {seed}");
        }
        assert_eq!(fb.stats().total_reroutes(), 0, "seed {seed}");
    }
}

/// Fully marked traffic reroutes within every window of N consecutive
/// epochs (basic config: no cooldown, no EWMA, fixed N).
#[test]
fn saturated_traffic_reroutes_every_n() {
    for seed in 0..50u64 {
        for n in 1..=5u32 {
            let mut rng = SplitMix64::new(seed);
            let cfg = Config::default().with_n(n);
            let mut fb = FlowBender::new(cfg, &mut rng);
            let mut since_reroute = 0u32;
            for _ in 0..50 {
                let d = feed(
                    &mut fb,
                    Epoch {
                        marked: 10,
                        total: 10,
                    },
                    &mut rng,
                );
                since_reroute += 1;
                if d.rerouted() {
                    assert_eq!(since_reroute, n, "seed {seed}: cadence must be exactly N");
                    since_reroute = 0;
                }
            }
            assert_eq!(fb.stats().congestion_reroutes as u32, 50 / n, "seed {seed}");
        }
    }
}

/// The statistics never go backwards and stay mutually consistent.
#[test]
fn stats_are_monotone_and_consistent() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let mut fb = FlowBender::new(cfg, &mut rng);
        let mut prev = fb.stats();
        for _ in 0..50 {
            let e = random_epoch(&mut rng);
            feed(&mut fb, e, &mut rng);
            let s = fb.stats();
            assert!(s.rtts >= prev.rtts, "seed {seed}");
            assert!(s.congested_rtts >= prev.congested_rtts, "seed {seed}");
            assert!(
                s.congestion_reroutes >= prev.congestion_reroutes,
                "seed {seed}"
            );
            assert!(s.congested_rtts <= s.rtts, "seed {seed}");
            assert!(s.congestion_reroutes <= s.congested_rtts, "seed {seed}");
            prev = s;
        }
    }
}

/// A timeout reroutes exactly when configured to, from any state.
#[test]
fn timeout_behaviour_matches_config() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = random_config(&mut rng);
        let mut fb = FlowBender::new(cfg, &mut rng);
        for _ in 0..20 {
            let e = random_epoch(&mut rng);
            feed(&mut fb, e, &mut rng);
        }
        let before = fb.stats().timeout_reroutes;
        let d = fb.on_timeout(&mut rng);
        assert_eq!(d.rerouted(), cfg.reroute_on_timeout, "seed {seed}: {cfg:?}");
        assert_eq!(
            fb.stats().timeout_reroutes,
            before + u64::from(cfg.reroute_on_timeout),
            "seed {seed}"
        );
        // The in-progress epoch is always discarded.
        assert_eq!(fb.current_fraction(), None, "seed {seed}");
    }
}

/// With a cooldown of C, two congestion reroutes are always separated
/// by more than C epochs.
#[test]
fn cooldown_spaces_reroutes() {
    for seed in 0..50u64 {
        for c in 1..=5u32 {
            let mut rng = SplitMix64::new(seed);
            let cfg = Config::default().with_cooldown(c);
            let mut fb = FlowBender::new(cfg, &mut rng);
            let mut last_reroute: Option<u32> = None;
            for epoch in 0..100u32 {
                let d = feed(
                    &mut fb,
                    Epoch {
                        marked: 10,
                        total: 10,
                    },
                    &mut rng,
                );
                if d.rerouted() {
                    if let Some(prev) = last_reroute {
                        assert!(
                            epoch - prev > c,
                            "seed {seed}: reroutes at {prev} and {epoch} violate cooldown {c}"
                        );
                    }
                    last_reroute = Some(epoch);
                }
            }
            assert!(
                last_reroute.is_some(),
                "seed {seed}: saturated feed must reroute"
            );
        }
    }
}

/// Determinism: the same seed and feed produce the same trajectory.
#[test]
fn same_seed_same_trajectory() {
    for seed in 0..100u64 {
        let run = || {
            let mut rng = SplitMix64::new(seed);
            let cfg = random_config(&mut rng);
            let mut fb = FlowBender::new(cfg, &mut rng);
            let mut vs = vec![fb.vfield()];
            for _ in 0..50 {
                let e = random_epoch(&mut rng);
                feed(&mut fb, e, &mut rng);
                vs.push(fb.vfield());
            }
            (vs, fb.stats())
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}
