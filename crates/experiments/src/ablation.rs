//! Ablation study — the §3.4/§5 design refinements, each evaluated on the
//! 40 % all-to-all workload against the paper-default FlowBender:
//!
//! * `N = 2` (reroute only after two consecutive congested RTTs, §3.4.1 —
//!   the paper reports "very similar performance"),
//! * randomized `N` (desynchronization, §3.4.2),
//! * EWMA-smoothed `F` (§3.4.1 footnote),
//! * reroute cooldown (§5.1 stability guard),
//! * `v_range = 2` (footnote 2: "even when we restricted each flow to 2
//!   options only, FlowBender was extremely effective"),
//! * timeout rerouting disabled (isolates the congestion-driven half).

use netsim::{Counter, SimTime};
use stats::{fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Window};
use crate::schemes;

/// A named FlowBender variant.
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Its configuration.
    pub cfg: flowbender::Config,
}

/// The evaluated variants, paper default first.
pub fn variants() -> Vec<Variant> {
    let base = flowbender::Config::default();
    vec![
        Variant {
            name: "default (T=5%,N=1,V=8)",
            cfg: base,
        },
        Variant {
            name: "N=2",
            cfg: base.with_n(2),
        },
        Variant {
            name: "randomized N (N=2±1)",
            cfg: base.with_n(2).with_randomized_n(),
        },
        Variant {
            name: "EWMA F (gamma=0.25)",
            cfg: base.with_ewma(0.25),
        },
        Variant {
            name: "cooldown 3 RTTs",
            cfg: base.with_cooldown(3),
        },
        Variant {
            name: "V range 2",
            cfg: base.with_v_range(2),
        },
        Variant {
            name: "no timeout reroute",
            cfg: flowbender::Config {
                reroute_on_timeout: false,
                ..base
            },
        },
    ]
}

/// One variant's outcome.
#[derive(Debug)]
pub struct Cell {
    /// Variant name.
    pub name: &'static str,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// p99 FCT (s).
    pub p99_s: f64,
    /// Total reroutes.
    pub reroutes: u64,
    /// Out-of-order fraction.
    pub ooo_frac: f64,
}

/// Run all variants on the same workload.
pub fn sweep(opts: &Opts) -> Vec<Cell> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();

    parallel_map(variants(), |v| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xAB1A);
        let specs = all_to_all(&params, 0.4, duration, &dist, &mut rng);
        let out = run_fat_tree(
            params,
            &schemes::flowbender(v.cfg),
            &specs,
            window.drain_until,
            opts.seed,
        );
        let s = samples(&out.flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        let data = out.get(Counter::DataPktsRcvd).max(1);
        Cell {
            name: v.name,
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            p99_s: stats::percentile(&fcts, 0.99).unwrap_or(0.0),
            reroutes: out.get(Counter::Reroutes) + out.get(Counter::TimeoutReroutes),
            ooo_frac: out.get(Counter::OooPktsRcvd) as f64 / data as f64,
        }
    })
}

/// Produce the ablation report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts);
    let base = &cells[0];
    let mut table = Table::new(vec![
        "variant",
        "mean (norm.)",
        "p99 (norm.)",
        "reroutes",
        "ooo %",
        "mean abs",
    ]);
    for c in &cells {
        table.row(vec![
            c.name.to_string(),
            format!("{:.3}", c.mean_s / base.mean_s),
            format!("{:.3}", c.p99_s / base.p99_s),
            c.reroutes.to_string(),
            format!("{:.4}%", c.ooo_frac * 100.0),
            fmt_secs(c.mean_s),
        ]);
    }
    let mut r = Report::new("ablation");
    r.section(
        "Ablations: FlowBender variants on 40% all-to-all (normalized to default)",
        table,
    );
    r.note("paper: N=2 'very similar'; V range 2 still 'extremely effective'; refinements trade reroute count vs reaction time");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_covers_every_refinement_once() {
        let vs = variants();
        assert_eq!(vs.len(), 7);
        let names: std::collections::HashSet<_> = vs.iter().map(|v| v.name).collect();
        assert_eq!(names.len(), 7);
        for v in &vs {
            v.cfg.validate();
        }
        assert!(!vs[6].cfg.reroute_on_timeout);
        assert_eq!(vs[5].cfg.v_range, 2);
    }
}
