//! Figures 3 & 4 — all-to-all workload: mean and 99th-percentile flow
//! latency of DeTail / FlowBender / RPS normalized to ECMP, at 20/40/60 %
//! load, binned by flow size; plus the §4.2.3 out-of-order statistics that
//! come from the same runs.
//!
//! Paper's result: all three schemes substantially beat ECMP (up to 73 %
//! mean / 93 % tail reduction at high load for the larger bins) and land
//! within a few percent of each other; FlowBender's out-of-order rate is
//! ≈ ECMP's (+0.006 %) while DeTail reorders almost as much as RPS.

use netsim::{Counter, SimTime};
use stats::{binned, completion_fraction, fmt_ratio, paper_bins, samples, BinStats, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Scheme, Window};

/// The paper's evaluated loads (fraction of bisection bandwidth).
pub const LOADS: [f64; 3] = [0.2, 0.4, 0.6];

/// Result of one (scheme, load) all-to-all run.
#[derive(Debug)]
pub struct A2AResult {
    /// Load as a fraction.
    pub load: f64,
    /// Scheme display name.
    pub scheme: &'static str,
    /// Per-size-bin latency stats (paper bins).
    pub bins: Vec<BinStats>,
    /// Overall mean FCT (seconds).
    pub mean_s: f64,
    /// Overall p99 FCT (seconds).
    pub p99_s: f64,
    /// Out-of-order arrival fraction (ooo packets / data packets).
    pub ooo_frac: f64,
    /// Fraction of in-window flows that completed.
    pub completion: f64,
    /// FlowBender reroutes (0 for other schemes).
    pub reroutes: u64,
    /// Raw in-window FCT samples (seconds), for CDF export.
    pub fcts: Vec<f64>,
}

/// Run the all-to-all sweep over `schemes` × `loads`. All schemes see the
/// *same* flow arrivals at a given load (same generator seed), so
/// normalization compares like with like.
pub fn sweep(opts: &Opts, schemes: &[Scheme], loads: &[f64]) -> Vec<A2AResult> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(100));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();

    let mut jobs = Vec::new();
    for &load in loads {
        for scheme in schemes {
            jobs.push((load, scheme.clone()));
        }
    }
    parallel_map(jobs, |(load, scheme)| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xA2A ^ (load * 1000.0) as u64);
        let specs = all_to_all(&params, load, duration, &dist, &mut rng);
        let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
        let s = samples(&out.flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        let data = out.get(Counter::DataPktsRcvd).max(1);
        A2AResult {
            load,
            scheme: scheme.name(),
            bins: binned(&s, &paper_bins()),
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            p99_s: stats::percentile(&fcts, 0.99).unwrap_or(0.0),
            ooo_frac: out.get(Counter::OooPktsRcvd) as f64 / data as f64,
            completion: completion_fraction(&out.flows, window.start, window.end),
            reroutes: out.get(Counter::Reroutes) + out.get(Counter::TimeoutReroutes),
            fcts,
        }
    })
}

fn find<'a>(results: &'a [A2AResult], load: f64, scheme: &str) -> &'a A2AResult {
    results
        .iter()
        .find(|r| r.load == load && r.scheme == scheme)
        .unwrap_or_else(|| panic!("missing result for {scheme} at {load}"))
}

/// Build the Figure 3 (mean) or Figure 4 (p99) normalized-latency table.
fn normalized_table(results: &[A2AResult], loads: &[f64], tail: bool) -> Table {
    let mut table = Table::new(vec![
        "load",
        "flow size",
        "DeTail",
        "FlowBender",
        "RPS",
        "ECMP abs",
    ]);
    for &load in loads {
        let ecmp = find(results, load, "ECMP");
        for (bi, bin) in paper_bins().iter().enumerate() {
            let base = if tail {
                ecmp.bins[bi].p99_s
            } else {
                ecmp.bins[bi].mean_s
            };
            let cell = |name: &str| {
                let r = find(results, load, name);
                let v = if tail {
                    r.bins[bi].p99_s
                } else {
                    r.bins[bi].mean_s
                };
                if base > 0.0 {
                    fmt_ratio(v / base)
                } else {
                    "-".to_string()
                }
            };
            table.row(vec![
                format!("{:.0}%", load * 100.0),
                bin.label.to_string(),
                cell("DeTail"),
                cell("FlowBender"),
                cell("RPS"),
                stats::fmt_secs(base),
            ]);
        }
    }
    table
}

/// Figure 3: mean latency normalized to ECMP.
pub fn fig3_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut r = Report::new("fig3");
    r.section(
        "Fig 3: all-to-all MEAN latency, normalized to ECMP (lower is better)",
        normalized_table(results, loads, false),
    );
    // Full FCT CDFs per (load, scheme), CSV-only, for plotting.
    let mut cdf = Table::new(vec!["load", "scheme", "fct_s", "p"]);
    for res in results {
        for (v, p) in stats::cdf_points(&res.fcts, 200) {
            cdf.row(vec![
                format!("{:.0}", res.load * 100.0),
                res.scheme.to_string(),
                format!("{v:.9}"),
                format!("{p:.4}"),
            ]);
        }
    }
    r.data_section("fct_cdf", cdf);
    completion_note(&mut r, results);
    r.note(
        "paper: DeTail/FlowBender/RPS all well below 1.0 for >=10KB bins, within ~2% of each other",
    );
    r
}

/// Figure 4: 99th-percentile latency normalized to ECMP.
pub fn fig4_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut r = Report::new("fig4");
    r.section(
        "Fig 4: all-to-all 99th-PERCENTILE latency, normalized to ECMP (lower is better)",
        normalized_table(results, loads, true),
    );
    completion_note(&mut r, results);
    r.note("paper: tail reductions up to 93% vs ECMP at the larger bins/loads");
    r
}

/// §4.2.3: out-of-order delivery statistics.
pub fn ooo_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut table = Table::new(vec!["load", "scheme", "ooo fraction", "reroutes"]);
    for &load in loads {
        for name in ["ECMP", "FlowBender", "DeTail", "RPS"] {
            let r = find(results, load, name);
            table.row(vec![
                format!("{:.0}%", load * 100.0),
                name.to_string(),
                format!("{:.5}%", r.ooo_frac * 100.0),
                r.reroutes.to_string(),
            ]);
        }
    }
    let mut rep = Report::new("ooo");
    rep.section("§4.2.3: out-of-order packet arrivals", table);
    // The paper's two headline OOO claims, computed at the middle load.
    if loads.contains(&0.4) {
        let e = find(results, 0.4, "ECMP");
        let f = find(results, 0.4, "FlowBender");
        let d = find(results, 0.4, "DeTail");
        let p = find(results, 0.4, "RPS");
        rep.note(format!(
            "FlowBender - ECMP ooo delta at 40% load: {:+.4}% (paper: ~+0.006%)",
            (f.ooo_frac - e.ooo_frac) * 100.0
        ));
        if p.ooo_frac > 0.0 {
            rep.note(format!(
                "DeTail / RPS ooo ratio at 40% load: {:.1}% (paper: >97.9%)",
                d.ooo_frac / p.ooo_frac * 100.0
            ));
        }
    }
    rep
}

fn completion_note(r: &mut Report, results: &[A2AResult]) {
    let worst = results.iter().map(|x| x.completion).fold(1.0, f64::min);
    r.note(format!("worst in-window completion fraction: {:.4}", worst));
}

/// Run the sweep once and emit all three reports (fig3, fig4, ooo).
pub fn run_all(opts: &Opts) -> Vec<Report> {
    let results = sweep(opts, &Scheme::paper_set(), &LOADS);
    vec![
        fig3_report(&results, &LOADS),
        fig4_report(&results, &LOADS),
        ooo_report(&results, &LOADS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, small sweep: one load, ECMP + FlowBender only.
    #[test]
    fn small_sweep_produces_consistent_results() {
        let opts = Opts {
            scale: 0.2,
            seed: 5,
        };
        let schemes = vec![
            Scheme::Ecmp,
            Scheme::FlowBender(flowbender::Config::default()),
        ];
        let results = sweep(&opts, &schemes, &[0.4]);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                r.completion > 0.95,
                "{}: completion {}",
                r.scheme,
                r.completion
            );
            assert!(r.mean_s > 0.0);
            assert!(r.p99_s >= r.mean_s);
        }
        let ecmp = find(&results, 0.4, "ECMP");
        let fb = find(&results, 0.4, "FlowBender");
        assert_eq!(ecmp.reroutes, 0);
        assert!(fb.reroutes > 0, "FlowBender should reroute under 40% load");
        // FlowBender should not be slower overall.
        assert!(
            fb.mean_s <= ecmp.mean_s * 1.05,
            "fb {} vs ecmp {}",
            fb.mean_s,
            ecmp.mean_s
        );
    }

    #[test]
    fn report_tables_have_all_rows() {
        let opts = Opts {
            scale: 0.05,
            seed: 5,
        };
        let results = sweep(&opts, &Scheme::paper_set(), &[0.2]);
        let fig3 = fig3_report(&results, &[0.2]);
        assert_eq!(fig3.sections[0].1.len(), 4); // 1 load x 4 bins
        let ooo = ooo_report(&results, &[0.2]);
        assert_eq!(ooo.sections[0].1.len(), 4); // 4 schemes
    }
}
