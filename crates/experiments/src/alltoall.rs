//! Figures 3 & 4 — all-to-all workload: mean and 99th-percentile flow
//! latency of DeTail / FlowBender / RPS normalized to ECMP, at 20/40/60 %
//! load, binned by flow size; plus the §4.2.3 out-of-order statistics that
//! come from the same runs.
//!
//! Paper's result: all three schemes substantially beat ECMP (up to 73 %
//! mean / 93 % tail reduction at high load for the larger bins) and land
//! within a few percent of each other; FlowBender's out-of-order rate is
//! ≈ ECMP's (+0.006 %) while DeTail reorders almost as much as RPS.
//!
//! Tables are built from the scheme names actually swept (any registry
//! selection works, parameterized names included), with ECMP as the
//! normalization baseline when present and the first swept scheme
//! otherwise.

use netsim::{Counter, SimTime};
use stats::{completion_fraction, fmt_ratio, samples, BinSpec, BinStats, FctAccumulator, Table};
use topology::FatTreeParams;

use crate::report::{Opts, Report};
use crate::scenario::{sweep_schemes, Window};
use crate::schemes::{self, SchemeSpec};

/// The paper's evaluated loads (fraction of bisection bandwidth).
pub const LOADS: [f64; 3] = [0.2, 0.4, 0.6];

/// Result of one (scheme, load) all-to-all run.
#[derive(Debug)]
pub struct A2AResult {
    /// Load as a fraction.
    pub load: f64,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Per-size-bin latency stats (paper bins).
    pub bins: Vec<BinStats>,
    /// Overall mean FCT (seconds).
    pub mean_s: f64,
    /// Overall p99 FCT (seconds).
    pub p99_s: f64,
    /// Out-of-order arrival fraction (ooo packets / data packets).
    pub ooo_frac: f64,
    /// Fraction of in-window flows that completed.
    pub completion: f64,
    /// FlowBender reroutes (0 for other schemes).
    pub reroutes: u64,
    /// Raw in-window FCT samples (seconds), for CDF export.
    pub fcts: Vec<f64>,
}

/// Run the all-to-all sweep over `schemes` × `loads`. All schemes see the
/// *same* flow arrivals at a given load (same generator seed), so
/// normalization compares like with like.
///
/// Traffic comes from the workload registry: the historical web-search
/// all-to-all by default, or whatever `--workload` selected — the RNG
/// stream is unchanged, so the default reproduces the pre-registry flow
/// lists byte for byte. Binned statistics go through the streaming
/// [`FctAccumulator`] (the same path `trace_scale` uses at millions of
/// flows), with counts and means exact and tail percentiles within its
/// 0.5 % sketch guarantee.
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec], loads: &[f64]) -> Vec<A2AResult> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(100));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let workload = opts.workload_or("websearch");

    sweep_schemes(schemes, loads, |scheme, &load| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xA2A ^ (load * 1000.0) as u64);
        let specs = workload.generate(&params, load, duration, &mut rng);
        let out = crate::run_fat_tree(params, scheme, &specs, window.drain_until, opts.seed);
        // First-finisher-wins view: identical to `out.flows` for every
        // non-replicating scheme.
        let flows = out.effective_flows();
        let s = samples(&flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        let mut acc = FctAccumulator::new(BinSpec::paper());
        for x in &s {
            acc.record_sample(x);
        }
        let data = out.get(Counter::DataPktsRcvd).max(1);
        A2AResult {
            load,
            scheme: scheme.name().to_string(),
            bins: acc.binned(),
            mean_s: acc.overall().mean().unwrap_or(0.0),
            p99_s: acc.overall().quantile(0.99).unwrap_or(0.0),
            ooo_frac: out.get(Counter::OooPktsRcvd) as f64 / data as f64,
            completion: completion_fraction(&flows, window.start, window.end),
            reroutes: out.get(Counter::Reroutes) + out.get(Counter::TimeoutReroutes),
            fcts,
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

fn find<'a>(results: &'a [A2AResult], load: f64, scheme: &str) -> &'a A2AResult {
    results
        .iter()
        .find(|r| r.load == load && r.scheme == scheme)
        .unwrap_or_else(|| panic!("missing result for {scheme} at {load}"))
}

/// The distinct scheme names present, in first-appearance order.
fn scheme_names(results: &[A2AResult]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in results {
        if !names.contains(&r.scheme) {
            names.push(r.scheme.clone());
        }
    }
    names
}

/// The scheme everything is normalized to: ECMP when swept, otherwise the
/// first scheme in the sweep.
fn baseline_name(results: &[A2AResult]) -> String {
    let names = scheme_names(results);
    names
        .iter()
        .find(|n| n.as_str() == "ECMP")
        .unwrap_or(&names[0])
        .clone()
}

/// Build the Figure 3 (mean) or Figure 4 (p99) normalized-latency table,
/// one column per swept non-baseline scheme.
fn normalized_table(results: &[A2AResult], loads: &[f64], tail: bool) -> Table {
    let base_name = baseline_name(results);
    let others: Vec<String> = scheme_names(results)
        .into_iter()
        .filter(|n| *n != base_name)
        .collect();
    let mut header = vec!["load".to_string(), "flow size".to_string()];
    header.extend(others.iter().cloned());
    header.push(format!("{base_name} abs"));
    let mut table = Table::new(header);
    for &load in loads {
        let base = find(results, load, &base_name);
        for (bi, bin) in BinSpec::paper().bins().iter().enumerate() {
            // Empty bins carry `None` — render "-" so a binless config
            // can't masquerade as a perfect (0 s) tail.
            let abs = if tail {
                base.bins[bi].p99_s
            } else {
                base.bins[bi].mean_s
            };
            let mut row = vec![format!("{:.0}%", load * 100.0), bin.label.to_string()];
            for name in &others {
                let r = find(results, load, name);
                let v = if tail {
                    r.bins[bi].p99_s
                } else {
                    r.bins[bi].mean_s
                };
                row.push(match (v, abs) {
                    (Some(v), Some(abs)) if abs > 0.0 => fmt_ratio(v / abs),
                    _ => "-".to_string(),
                });
            }
            row.push(match abs {
                Some(abs) => stats::fmt_secs(abs),
                None => "-".to_string(),
            });
            table.row(row);
        }
    }
    table
}

/// Figure 3: mean latency normalized to ECMP.
pub fn fig3_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut r = Report::new("fig3");
    r.section(
        format!(
            "Fig 3: all-to-all MEAN latency, normalized to {} (lower is better)",
            baseline_name(results)
        ),
        normalized_table(results, loads, false),
    );
    // Full FCT CDFs per (load, scheme), CSV-only, for plotting.
    let mut cdf = Table::new(vec!["load", "scheme", "fct_s", "p"]);
    for res in results {
        for (v, p) in stats::cdf_points(&res.fcts, 200) {
            cdf.row(vec![
                format!("{:.0}", res.load * 100.0),
                res.scheme.clone(),
                format!("{v:.9}"),
                format!("{p:.4}"),
            ]);
        }
    }
    r.data_section("fct_cdf", cdf);
    completion_note(&mut r, results);
    r.note(
        "paper: DeTail/FlowBender/RPS all well below 1.0 for >=10KB bins, within ~2% of each other",
    );
    r
}

/// Figure 4: 99th-percentile latency normalized to ECMP.
pub fn fig4_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut r = Report::new("fig4");
    r.section(
        format!(
            "Fig 4: all-to-all 99th-PERCENTILE latency, normalized to {} (lower is better)",
            baseline_name(results)
        ),
        normalized_table(results, loads, true),
    );
    completion_note(&mut r, results);
    r.note("paper: tail reductions up to 93% vs ECMP at the larger bins/loads");
    r
}

/// §4.2.3: out-of-order delivery statistics.
pub fn ooo_report(results: &[A2AResult], loads: &[f64]) -> Report {
    let mut table = Table::new(vec!["load", "scheme", "ooo fraction", "reroutes"]);
    for &load in loads {
        for name in scheme_names(results) {
            let r = find(results, load, &name);
            table.row(vec![
                format!("{:.0}%", load * 100.0),
                name.clone(),
                format!("{:.5}%", r.ooo_frac * 100.0),
                r.reroutes.to_string(),
            ]);
        }
    }
    let mut rep = Report::new("ooo");
    rep.section("§4.2.3: out-of-order packet arrivals", table);
    // The paper's two headline OOO claims, computed at the middle load
    // (only meaningful when the paper's schemes were swept).
    let have = |name: &str| results.iter().any(|r| r.load == 0.4 && r.scheme == name);
    if loads.contains(&0.4) {
        if have("ECMP") && have("FlowBender") {
            let e = find(results, 0.4, "ECMP");
            let f = find(results, 0.4, "FlowBender");
            rep.note(format!(
                "FlowBender - ECMP ooo delta at 40% load: {:+.4}% (paper: ~+0.006%)",
                (f.ooo_frac - e.ooo_frac) * 100.0
            ));
        }
        if have("DeTail") && have("RPS") {
            let d = find(results, 0.4, "DeTail");
            let p = find(results, 0.4, "RPS");
            if p.ooo_frac > 0.0 {
                rep.note(format!(
                    "DeTail / RPS ooo ratio at 40% load: {:.1}% (paper: >97.9%)",
                    d.ooo_frac / p.ooo_frac * 100.0
                ));
            }
        }
    }
    rep
}

fn completion_note(r: &mut Report, results: &[A2AResult]) {
    let worst = results.iter().map(|x| x.completion).fold(1.0, f64::min);
    r.note(format!("worst in-window completion fraction: {:.4}", worst));
}

/// Run the sweep once and emit all three reports (fig3, fig4, ooo).
pub fn run_all(opts: &Opts) -> Vec<Report> {
    let selection = opts.scheme_selection(&schemes::paper_set());
    let results = sweep(opts, &selection, &LOADS);
    let mut reports = vec![
        fig3_report(&results, &LOADS),
        fig4_report(&results, &LOADS),
        ooo_report(&results, &LOADS),
    ];
    // A non-default workload changes what the tables mean — say so.
    if opts.workload.is_some() {
        let wl = opts.workload_or("websearch").name();
        for r in &mut reports {
            r.note(format!("traffic workload: {wl} (selected with --workload)"));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, small sweep: one load, ECMP + FlowBender only.
    #[test]
    fn small_sweep_produces_consistent_results() {
        let opts = Opts {
            scale: 0.2,
            seed: 5,
            ..Opts::default()
        };
        let sel = vec![
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ];
        let results = sweep(&opts, &sel, &[0.4]);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                r.completion > 0.95,
                "{}: completion {}",
                r.scheme,
                r.completion
            );
            assert!(r.mean_s > 0.0);
            assert!(r.p99_s >= r.mean_s);
        }
        let ecmp = find(&results, 0.4, "ECMP");
        let fb = find(&results, 0.4, "FlowBender");
        assert_eq!(ecmp.reroutes, 0);
        assert!(fb.reroutes > 0, "FlowBender should reroute under 40% load");
        // FlowBender should not be slower overall.
        assert!(
            fb.mean_s <= ecmp.mean_s * 1.05,
            "fb {} vs ecmp {}",
            fb.mean_s,
            ecmp.mean_s
        );
    }

    #[test]
    fn report_tables_have_all_rows() {
        let opts = Opts {
            scale: 0.05,
            seed: 5,
            ..Opts::default()
        };
        let results = sweep(&opts, &schemes::paper_set(), &[0.2]);
        let fig3 = fig3_report(&results, &[0.2]);
        assert_eq!(fig3.sections[0].1.len(), 4); // 1 load x 4 bins
        assert!(fig3.sections[0].0.contains("normalized to ECMP"));
        let ooo = ooo_report(&results, &[0.2]);
        assert_eq!(ooo.sections[0].1.len(), 4); // 4 schemes
    }

    #[test]
    fn tables_adapt_to_the_swept_schemes() {
        let opts = Opts {
            scale: 0.05,
            seed: 5,
            ..Opts::default()
        };
        // No ECMP in the selection: the first scheme becomes the baseline
        // and the column set follows the sweep.
        let sel = vec![
            schemes::flowbender(flowbender::Config::default()),
            schemes::flowbender(flowbender::Config::default().with_n(2)),
        ];
        let results = sweep(&opts, &sel, &[0.2]);
        let fig3 = fig3_report(&results, &[0.2]);
        assert!(fig3.sections[0].0.contains("normalized to FlowBender"));
        let header = fig3.sections[0].1.headers();
        assert!(header.contains(&"FlowBender(N=2)".to_string()));
        assert!(header.contains(&"FlowBender abs".to_string()));
    }
}
