//! §4.3.1 (second half) — asymmetric topologies and WCMP: one agg→core
//! link runs at half rate (a partial upgrade / degraded optic). The paper
//! argues that (a) oblivious schemes overload the slow path, (b) RPS is
//! *especially* hurt because every flow sprays onto it, and (c) FlowBender
//! compensates even when WCMP forwarding weights are missing or coarse
//! ("more robustness to forwarding weight misconfigurations or chip
//! limitations").
//!
//! We run the Table-1 style ToR-to-ToR microbenchmark across the degraded
//! pod under five configurations: ECMP, RPS, correctly-weighted WCMP,
//! FlowBender over unweighted ECMP, and FlowBender over weighted WCMP.

use netsim::{Counter, SimTime, Simulator};
use stats::{fmt_gbps, fmt_secs, Table};
use topology::{build_fat_tree, degrade_agg_core_link, FatTreeParams};
use transport::install_agents;
use workloads::microbench;

use crate::report::{Opts, Report};
use crate::scenario::parallel_map;
use crate::schemes::{self, SchemeSpec};

/// One configuration's outcome.
#[derive(Debug)]
pub struct Cell {
    /// Configuration label.
    pub label: &'static str,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// Max FCT (s).
    pub max_s: f64,
    /// Achieved throughput on the degraded (5 Gbps) link, bps.
    pub slow_link_bps: f64,
    /// Flows completed (of 16).
    pub completed: usize,
    /// FlowBender reroutes.
    pub reroutes: u64,
}

/// The evaluated configurations: `(label, scheme, install_wcmp_weights)`.
fn configs() -> Vec<(&'static str, SchemeSpec, bool)> {
    vec![
        ("ECMP (oblivious)", schemes::ecmp(), false),
        ("RPS", schemes::rps(), false),
        ("WCMP (correct weights)", schemes::ecmp(), true),
        (
            "FlowBender (no weights)",
            schemes::flowbender(flowbender::Config::default()),
            false,
        ),
        (
            "FlowBender + WCMP",
            schemes::flowbender(flowbender::Config::default()),
            true,
        ),
    ]
}

/// Run one configuration: 16 cross-pod flows with pod-0/agg-0's first core
/// uplink degraded to `slow_rate`.
pub fn run_config(
    scheme: &SchemeSpec,
    wcmp: bool,
    bytes: u64,
    slow_rate: u64,
    seed: u64,
) -> (f64, f64, f64, usize, u64) {
    let params = FatTreeParams::paper();
    let mut sim = Simulator::new(seed);
    let ft = build_fat_tree(&mut sim, params, scheme.switch_config());
    degrade_agg_core_link(&mut sim, &ft, 0, 0, 0, slow_rate, wcmp);
    let specs = microbench(&params, 16, bytes);
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    let t0 = sim.now();
    sim.run_until(SimTime::from_secs(120));
    let elapsed = (sim.now() - t0).as_secs_f64().min(
        sim.recorder()
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .fold(0.0, f64::max),
    );
    let (node, port) = ft.agg_core_link(0, 0);
    let slow = sim.port_stats(node, port);
    let rec = sim.recorder();
    let fcts: Vec<f64> = rec
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    (
        stats::mean(&fcts).unwrap_or(0.0),
        fcts.iter().cloned().fold(0.0, f64::max),
        if elapsed > 0.0 {
            slow.tx_bytes_tcp as f64 * 8.0 / elapsed
        } else {
            0.0
        },
        fcts.len(),
        rec.get(Counter::Reroutes) + rec.get(Counter::TimeoutReroutes),
    )
}

/// Run the sweep.
pub fn sweep(opts: &Opts) -> Vec<Cell> {
    opts.validate();
    let bytes = (10_000_000.0 * opts.scale) as u64;
    let slow_rate = 5_000_000_000;
    parallel_map(configs(), |(label, scheme, wcmp)| {
        let (mean_s, max_s, slow_link_bps, completed, reroutes) =
            run_config(&scheme, wcmp, bytes, slow_rate, opts.seed);
        Cell {
            label,
            mean_s,
            max_s,
            slow_link_bps,
            completed,
            reroutes,
        }
    })
}

/// Produce the report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts);
    let mut table = Table::new(vec![
        "configuration",
        "mean FCT",
        "max FCT",
        "slow-link rate",
        "completed",
        "reroutes",
    ]);
    for c in &cells {
        table.row(vec![
            c.label.to_string(),
            fmt_secs(c.mean_s),
            fmt_secs(c.max_s),
            fmt_gbps(c.slow_link_bps),
            format!("{}/16", c.completed),
            c.reroutes.to_string(),
        ]);
    }
    let mut r = Report::new("asym");
    r.section(
        "§4.3.1 asymmetry: one agg->core link at 5 Gbps under 16 cross-pod flows",
        table,
    );
    r.note("paper's discussion: oblivious schemes overload the slow path; RPS suffers most; FlowBender compensates even without (or with coarse) WCMP weights");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowbender_compensates_for_missing_weights() {
        let bytes = 3_000_000;
        let slow = 5_000_000_000;
        let ecmp = run_config(&schemes::ecmp(), false, bytes, slow, 9);
        let fb = run_config(
            &schemes::flowbender(flowbender::Config::default()),
            false,
            bytes,
            slow,
            9,
        );
        let wcmp = run_config(&schemes::ecmp(), true, bytes, slow, 9);
        // Everyone completes.
        assert_eq!(ecmp.3, 16);
        assert_eq!(fb.3, 16);
        assert_eq!(wcmp.3, 16);
        // The slow link is the straggler-maker for oblivious ECMP: the
        // worst flow takes notably longer than under FlowBender.
        assert!(
            fb.1 < ecmp.1 * 0.95,
            "FlowBender max {} should beat oblivious ECMP max {}",
            fb.1,
            ecmp.1
        );
        // FlowBender without weights lands in the same league as correctly
        // weighted WCMP (within 25% on the worst flow).
        assert!(
            fb.1 < wcmp.1 * 1.25,
            "FlowBender max {} vs WCMP max {}",
            fb.1,
            wcmp.1
        );
    }

    #[test]
    fn wcmp_weights_shift_traffic_off_the_slow_link() {
        let bytes = 3_000_000;
        let slow = 5_000_000_000;
        let ecmp = run_config(&schemes::ecmp(), false, bytes, slow, 11);
        let wcmp = run_config(&schemes::ecmp(), true, bytes, slow, 11);
        // With weights, the slow link carries (weakly) less traffic.
        assert!(
            wcmp.2 <= ecmp.2 * 1.05,
            "WCMP slow-link {} vs ECMP {}",
            wcmp.2,
            ecmp.2
        );
    }
}
