//! Substrate sensitivity — switch buffer depth: the one knob that
//! separates this reproduction's magnitudes from the paper's.
//!
//! EXPERIMENTS.md claims that with shallow buffers the ECMP-vs-adaptive
//! gap widens toward the paper's headline numbers because ECMP collisions
//! start costing drops and 10 ms RTO tails. This experiment makes that
//! claim regenerable: the 60 % all-to-all workload under ECMP, FlowBender,
//! and RPS at three per-port buffer depths.

use netsim::{Counter, QueueSpec, SimTime};
use stats::{fmt_ratio, fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{run_fat_tree, sweep_schemes, Window};
use crate::schemes::{self, SchemeSpec};

/// Evaluated per-port buffer capacities (bytes).
pub const CAPACITIES: [u64; 3] = [150_000, 400_000, 2 * 1024 * 1024];

/// One (capacity, scheme) outcome.
#[derive(Debug)]
pub struct Cell {
    /// Buffer capacity, bytes.
    pub capacity: u64,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// p99 FCT (s).
    pub p99_s: f64,
    /// Queue drops.
    pub drops: u64,
    /// RTOs.
    pub timeouts: u64,
    /// In-window completion fraction.
    pub completion: f64,
}

/// Run the sweep.
pub fn sweep(opts: &Opts) -> Vec<Cell> {
    opts.validate();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();
    let contenders: Vec<SchemeSpec> = vec![
        schemes::ecmp(),
        schemes::flowbender(flowbender::Config::default()),
        schemes::rps(),
    ];

    sweep_schemes(&contenders, &CAPACITIES, |scheme, &capacity| {
        let mut params = FatTreeParams::paper();
        params.fabric_queue = QueueSpec {
            capacity,
            mark_threshold: 90_000,
        };
        let mut rng = netsim::DetRng::new(opts.seed, 0xB0FF);
        let specs = all_to_all(&params, 0.6, duration, &dist, &mut rng);
        let out = run_fat_tree(params, scheme, &specs, window.drain_until, opts.seed);
        let s = samples(&out.flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        Cell {
            capacity,
            scheme: scheme.name().to_string(),
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            p99_s: stats::percentile(&fcts, 0.99).unwrap_or(0.0),
            drops: out.get(Counter::QueueDrops),
            timeouts: out.get(Counter::Timeouts),
            completion: stats::completion_fraction(&out.flows, window.start, window.end),
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Produce the report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts);
    let find = |capacity: u64, name: &str| {
        cells
            .iter()
            .find(|c| c.capacity == capacity && c.scheme == name)
            .unwrap_or_else(|| panic!("missing {name} at {capacity}"))
    };
    let mut table = Table::new(vec![
        "buffer/port",
        "scheme",
        "mean",
        "p99",
        "mean vs ECMP",
        "p99 vs ECMP",
        "drops",
        "RTOs",
        "compl",
    ]);
    for &capacity in &CAPACITIES {
        let ecmp = find(capacity, "ECMP");
        for name in ["ECMP", "FlowBender", "RPS"] {
            let c = find(capacity, name);
            table.row(vec![
                format!("{}KB", capacity / 1000),
                name.to_string(),
                fmt_secs(c.mean_s),
                fmt_secs(c.p99_s),
                fmt_ratio(c.mean_s / ecmp.mean_s),
                fmt_ratio(c.p99_s / ecmp.p99_s),
                c.drops.to_string(),
                c.timeouts.to_string(),
                format!("{:.3}", c.completion),
            ]);
        }
    }
    let mut r = Report::new("buffers");
    r.section(
        "Substrate sensitivity: per-port buffer depth at 60% all-to-all load",
        table,
    );
    r.note("claim under test: shallow buffers turn ECMP collisions into drops + RTO tails, widening the adaptive schemes' advantage toward the paper's magnitudes");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_buffers_drop_and_deep_buffers_do_not() {
        let opts = Opts {
            scale: 0.25,
            seed: 2,
            ..Opts::default()
        };
        let cells = sweep(&opts);
        let ecmp_shallow = cells
            .iter()
            .find(|c| c.capacity == CAPACITIES[0] && c.scheme == "ECMP")
            .unwrap();
        let ecmp_deep = cells
            .iter()
            .find(|c| c.capacity == CAPACITIES[2] && c.scheme == "ECMP")
            .unwrap();
        assert!(
            ecmp_shallow.drops > 0,
            "150KB buffers must overflow at 60% load"
        );
        assert_eq!(ecmp_deep.drops, 0, "2MB buffers should absorb 60% load");
        // Everything still completes (retransmission works).
        for c in &cells {
            assert!(
                c.completion > 0.99,
                "{} at {}: {}",
                c.scheme,
                c.capacity,
                c.completion
            );
        }
    }
}
