//! `chaos` — fabric-scale incident drill on the sharded engine: a
//! scripted timeline (gray-loss ramp → whole-core crash → flap storm →
//! recovery) hits a k=16 / 1024-host fat-tree while a Poisson all-to-all
//! runs, and every scheme is graded on *degradation SLOs* against its own
//! healthy baseline:
//!
//! * **p99 inflation** — chaos-run p99 FCT over healthy-run p99 FCT;
//! * **reconvergence latency** — per flow in flight at the crash instant,
//!   the time to its first post-crash delivered payload (p50/p99),
//!   measured by the engine-level [`netsim::SloConfig`] probe;
//! * **timeout-dominated fraction** — flows whose FCT is at least the
//!   10 ms RTO floor (or that never finished): the flows for which the
//!   incident cost at least one full retransmission timeout;
//! * **goodput dip** — depth and duration of the delivered-bytes trough,
//!   binned identically in both runs and compared bin-by-bin.
//!
//! The timeline deliberately stresses the sharded fault machinery: its
//! targets are agg↔core links — the only links that cross shard
//! boundaries under pod-granular partitioning (see
//! [`topology::ShardPlan::crosses`]) — so every fault transition of the
//! crash and storm travels through the epoch mailbox when `--shards > 1`,
//! and the per-epoch conservation assert audits the books through the
//! whole incident. Traffic comes from [`workloads::PoissonStream`]
//! (tie-free arrivals), so reports are byte-identical across shard counts.

use netsim::{DetRng, FaultPlan, SimTime, SloConfig};
use stats::{completion_fraction, fmt_secs, percentile, samples, Table};
use topology::{FatTree, FatTreeParams};
use workloads::{FlowSizeDist, PoissonStream};

use crate::fabric_scale::{arity, LOAD};
use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{run_fat_tree_sharded_faults, RunOutput, Window};
use crate::schemes;

/// RNG stream tag for the per-source Poisson streams (distinct from
/// fabric-scale's so the two experiments draw independent workloads).
const STREAM_TAG: u64 = 0x00C4_A055;

/// The transport's minimum RTO in seconds. A flow whose FCT reaches this
/// paid at least one full timeout — the "timeout-dominated" SLO bucket.
pub const RTO_MIN_S: f64 = 0.010;

/// Goodput histogram bins per arrival window (the dip metrics compare
/// chaos and healthy runs bin-by-bin over exactly this many bins).
const GOODPUT_BINS: u64 = 20;

/// The scripted incident, expressed in absolute simulation times derived
/// from the arrival-window `duration`. Pure function of the duration, so
/// every shard (and every scheme) sees the identical script.
#[derive(Debug, Clone, Copy)]
pub struct Incident {
    /// Gray loss begins (1 %) on one agg→core uplink.
    pub gray_onset: SimTime,
    /// Gray loss ramps to 4 % on the same uplink.
    pub gray_ramp: SimTime,
    /// A core switch crashes whole — the SLO probe's failure instant.
    pub fail_at: SimTime,
    /// Two more agg uplinks start flapping.
    pub storm_start: SimTime,
    /// The incident clears: core revived, gray loss zeroed.
    pub recovery_at: SimTime,
}

impl Incident {
    /// Lay the timeline out over an arrival window: ramp in the first
    /// quarter, crash at the midpoint, storm in the third quarter,
    /// recovery at three quarters — leaving a healthy final quarter so
    /// the goodput curve shows the climb back out of the trough.
    pub fn over(duration: SimTime) -> Self {
        let d = duration.as_ps();
        Incident {
            gray_onset: SimTime::from_ps(d / 8),
            gray_ramp: SimTime::from_ps(d / 4),
            fail_at: SimTime::from_ps(d / 2),
            storm_start: SimTime::from_ps(d / 2 + d / 16),
            recovery_at: SimTime::from_ps(3 * d / 4),
        }
    }

    /// Compile the timeline into a [`FaultPlan`] against a concrete
    /// fabric. Targets are agg↔core elements (the cross-shard tier):
    ///
    /// * gray ramp on agg 0's uplink 0;
    /// * whole-switch crash of the core behind agg 0's uplink 1 — every
    ///   one of its per-pod links dies at once;
    /// * flap storm on agg 0's uplink 1 and the first uplink of the last
    ///   pod's first agg (two flaps, staggered, both healed before
    ///   recovery);
    /// * at recovery: core revived, gray loss back to zero.
    pub fn plan(&self, ft: &FatTree) -> FaultPlan {
        let p = &ft.params;
        let (agg0, up0) = ft.agg_core_link(0, 0);
        let (_, up1) = ft.agg_core_link(0, 1);
        // Core index 1: attached to agg position 0, and — because cores
        // are dealt round-robin — owned by shard 1 whenever shards > 1,
        // so its crash always crosses the shard boundary.
        let sick_core = ft.cores[1];
        let far_agg = p.aggs_per_pod * (p.pods - 1);
        let (agg_far, far_up0) = ft.agg_core_link(far_agg, 0);

        let mut plan = FaultPlan::new();
        plan.gray_loss(agg0, up0, 0.01, self.gray_onset);
        plan.gray_loss(agg0, up0, 0.04, self.gray_ramp);
        plan.crash(sick_core, self.fail_at);
        let storm_len = SimTime::from_ps(self.fail_at.as_ps() / 8);
        plan.flap(agg0, up1, self.storm_start, self.storm_start + storm_len);
        let stagger = SimTime::from_ps(storm_len.as_ps() / 2);
        plan.flap(
            agg_far,
            far_up0,
            self.storm_start + stagger,
            self.storm_start + stagger + storm_len,
        );
        plan.revive(sick_core, self.recovery_at);
        plan.gray_loss(agg0, up0, 0.0, self.recovery_at);
        plan
    }
}

/// One scheme's healthy-vs-chaos digest.
#[derive(Debug)]
pub struct ChaosResult {
    /// Scheme display name.
    pub scheme: String,
    /// Fraction of in-window flows that completed under chaos.
    pub completion: f64,
    /// Chaos p99 FCT over healthy p99 FCT (1.0 = no degradation).
    pub p99_inflation: f64,
    /// Median reconvergence latency (s) of flows in flight at the crash.
    pub recon_p50_s: f64,
    /// p99 reconvergence latency (s).
    pub recon_p99_s: f64,
    /// Flows that reconverged (delivered again after the crash).
    pub recon_samples: usize,
    /// Fraction of flows whose FCT reached [`RTO_MIN_S`] (or that never
    /// finished) under chaos.
    pub timeout_dominated: f64,
    /// Deepest goodput trough: `1 - chaos/healthy` over the compared
    /// bins (0 = no dip).
    pub dip_depth: f64,
    /// Seconds of bins where chaos goodput sat below 90 % of healthy.
    pub dip_duration_s: f64,
}

/// The chaos run's shape for one invocation: fabric, workload, window,
/// incident. Shared by the healthy and chaos runs so the only difference
/// between them is the fault plan.
struct Setup {
    params: FatTreeParams,
    specs: Vec<netsim::FlowSpec>,
    window: Window,
    incident: Incident,
    slo: SloConfig,
}

fn setup(opts: &Opts) -> Setup {
    let params = FatTreeParams::k_ary(arity(opts)).expect("arity checked by Opts::check");
    // Longer windows than fabric-scale: the SLO suite needs a population
    // of flows *in flight at the crash instant*, and the drain must span
    // the 10ms RTO floor with room to spare — flows black-holed by the
    // crash retransmit one RTO later, and that reconvergence tail is
    // exactly what is being measured.
    let base = if opts.smoke {
        SimTime::from_ms(2)
    } else {
        SimTime::from_ms(4)
    };
    let duration = opts.scaled(base);
    let window = Window::for_duration(duration, SimTime::from_ms(50));
    let incident = Incident::over(duration);
    let rng = DetRng::new(opts.seed, STREAM_TAG);
    let specs: Vec<netsim::FlowSpec> =
        PoissonStream::new(&params, LOAD, duration, FlowSizeDist::web_search(), &rng).collect();
    let slo = SloConfig {
        fail_at: incident.fail_at,
        bin: SimTime::from_ps(duration.as_ps() / GOODPUT_BINS),
    };
    Setup {
        params,
        specs,
        window,
        incident,
        slo,
    }
}

/// Run one scheme twice — healthy baseline, then the scripted incident —
/// and digest the degradation SLOs. Returns the digest plus both full
/// run outputs `(healthy, chaos)` for JSON export.
pub fn run_one(opts: &Opts, scheme: &schemes::SchemeSpec) -> (ChaosResult, RunOutput, RunOutput) {
    let s = setup(opts);
    let run = |plan_fn: &(dyn Fn(&FatTree) -> FaultPlan + Sync)| {
        run_fat_tree_sharded_faults(
            s.params,
            scheme,
            &s.specs,
            s.window.drain_until,
            opts.seed,
            opts.shards,
            Some(s.slo),
            plan_fn,
        )
        .expect("shard plan checked by Opts::check")
    };
    // The healthy run arms the same SLO probe: its goodput bins are the
    // dip baseline, and its "reconvergence" samples (first delivery after
    // the would-be failure instant) calibrate what a non-incident looks
    // like.
    let healthy = run(&|_| FaultPlan::new());
    let chaos = run(&|ft| s.incident.plan(ft));

    let h_fcts: Vec<f64> = samples(&healthy.effective_flows(), s.window.start, s.window.end)
        .iter()
        .map(|x| x.fct_s)
        .collect();
    let c_flows = chaos.effective_flows();
    let c_fcts: Vec<f64> = samples(&c_flows, s.window.start, s.window.end)
        .iter()
        .map(|x| x.fct_s)
        .collect();
    let h_p99 = percentile(&h_fcts, 0.99).unwrap_or(0.0);
    let c_p99 = percentile(&c_fcts, 0.99).unwrap_or(0.0);

    let slo = chaos.slo().expect("SLO probe was armed");
    let lats: Vec<f64> = slo
        .reconvergence_latencies()
        .iter()
        .map(|t| t.as_secs_f64())
        .collect();

    // Timeout-dominated: in-window flows that either never finished or
    // paid at least one full RTO.
    let in_window: Vec<_> = c_flows
        .iter()
        .filter(|r| r.start >= s.window.start && r.start < s.window.end)
        .collect();
    let dominated = in_window
        .iter()
        .filter(|r| r.fct().is_none_or(|t| t.as_secs_f64() >= RTO_MIN_S))
        .count();

    // Goodput dip: compare the arrival-window bins only (drain-period
    // bins are stragglers in both runs and would wash the signal out).
    let h_bins = &healthy.slo().expect("SLO probe was armed").goodput_bins;
    let c_bins = &slo.goodput_bins;
    let n = (GOODPUT_BINS as usize).min(h_bins.len()).min(c_bins.len());
    let mut dip_depth: f64 = 0.0;
    let mut dip_bins = 0usize;
    for i in 0..n {
        if h_bins[i] == 0 {
            continue;
        }
        let ratio = c_bins[i] as f64 / h_bins[i] as f64;
        dip_depth = dip_depth.max(1.0 - ratio);
        if ratio < 0.9 {
            dip_bins += 1;
        }
    }

    let digest = ChaosResult {
        scheme: scheme.name().to_string(),
        completion: completion_fraction(&c_flows, s.window.start, s.window.end),
        p99_inflation: if h_p99 > 0.0 { c_p99 / h_p99 } else { 0.0 },
        recon_p50_s: percentile(&lats, 0.5).unwrap_or(0.0),
        recon_p99_s: percentile(&lats, 0.99).unwrap_or(0.0),
        recon_samples: slo.samples(),
        timeout_dominated: if in_window.is_empty() {
            0.0
        } else {
            dominated as f64 / in_window.len() as f64
        },
        dip_depth,
        dip_duration_s: dip_bins as f64 * s.slo.bin.as_secs_f64(),
    };
    (digest, healthy, chaos)
}

/// Run the chaos suite and build the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let k = arity(opts);
    let s = setup(opts);
    let selection =
        opts.scheme_selection(&[schemes::ecmp(), schemes::flowbender(Default::default())]);

    let mut table = Table::new(vec![
        "scheme",
        "complete",
        "p99 inflation",
        "recon p50",
        "recon p99",
        "timeout-dom",
        "dip depth",
        "dip duration",
    ]);
    let mut summaries = Vec::new();
    let mut results = Vec::with_capacity(selection.len());
    for scheme in &selection {
        let (r, healthy, chaos) = run_one(opts, scheme);
        for (tag, out) in [("healthy", &healthy), ("chaos", &chaos)] {
            summaries.push(RunSummary::from_run(
                format!(
                    "{}_{tag}_k{k}_shards{}_seed{}",
                    scheme.slug(),
                    opts.shards,
                    opts.seed
                ),
                scheme.name(),
                opts,
                opts.seed,
                out,
            ));
        }
        table.row(vec![
            r.scheme.clone(),
            format!("{:.1}%", r.completion * 100.0),
            format!("{:.2}x", r.p99_inflation),
            fmt_secs(r.recon_p50_s),
            fmt_secs(r.recon_p99_s),
            format!("{:.1}%", r.timeout_dominated * 100.0),
            format!("{:.0}%", r.dip_depth * 100.0),
            fmt_secs(r.dip_duration_s),
        ]);
        results.push(r);
    }

    let mut report = Report::new("chaos");
    for summary in summaries {
        report.run_summary(summary);
    }
    report.section(
        format!(
            "Chaos drill on a k={k} fat-tree ({} hosts), {} flows at {:.0}% load, \
             {} shard(s): gray ramp at {} -> core crash at {} -> flap storm -> \
             recovery at {}",
            s.params.n_hosts(),
            s.specs.len(),
            LOAD * 100.0,
            opts.shards,
            fmt_secs(s.incident.gray_onset.as_secs_f64()),
            fmt_secs(s.incident.fail_at.as_secs_f64()),
            fmt_secs(s.incident.recovery_at.as_secs_f64()),
        ),
        table,
    );
    report.note(format!(
        "SLOs vs each scheme's own healthy baseline: p99 inflation = chaos p99 FCT / \
         healthy p99 FCT; reconvergence = crash instant to a flow's first post-crash \
         delivered payload; timeout-dominated = in-window flows with FCT >= the {}ms \
         RTO floor (or unfinished); dip = binned goodput vs the healthy run",
        (RTO_MIN_S * 1e3) as u64
    ));
    report.note(
        "the incident targets agg<->core links — the only cross-shard tier — so every \
         crash/storm transition exercises the epoch-mailbox fault handoff under \
         --shards N, with packet conservation asserted every epoch",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(shards: usize) -> Opts {
        Opts {
            seed: 3,
            topo_k: Some(4),
            shards,
            smoke: true,
            schemes: vec!["flowbender".into()],
            ..Opts::default()
        }
    }

    #[test]
    fn smoke_run_reports_degradation_slos() {
        let r = run(&opts(2));
        assert_eq!(r.name, "chaos");
        assert!(r.sections[0].0.contains("core crash"));
        assert_eq!(r.sections[0].1.len(), 1, "one scheme row");
        // Healthy + chaos summaries, and the chaos one carries the
        // reconvergence section with nonzero samples.
        assert_eq!(r.runs.len(), 2);
        assert!(r.runs[0].label.contains("healthy"));
        let chaos = &r.runs[1];
        assert!(chaos.label.contains("chaos"));
        let recon = chaos.recon.as_ref().expect("SLO probe was armed");
        assert!(recon.samples > 0, "flows must reconverge after the crash");
        assert!(
            recon.latency_percentiles.iter().any(|(n, _)| n == "p99_s"),
            "percentiles digested"
        );
    }

    #[test]
    fn chaos_digest_is_identical_across_shard_counts() {
        let scheme = schemes::flowbender(Default::default());
        let (a, ah, ac) = run_one(&opts(1), &scheme);
        let (b, bh, bc) = run_one(&opts(2), &scheme);
        // The Poisson workload is tie-free, so the sharded incident run is
        // byte-identical to the classic engine — compare through the
        // exact-float digest and both conservation ledgers.
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.p99_inflation.to_bits(), b.p99_inflation.to_bits());
        assert_eq!(a.recon_p50_s.to_bits(), b.recon_p50_s.to_bits());
        assert_eq!(a.recon_p99_s.to_bits(), b.recon_p99_s.to_bits());
        assert_eq!(a.recon_samples, b.recon_samples);
        assert_eq!(a.timeout_dominated, b.timeout_dominated);
        assert_eq!(a.dip_depth.to_bits(), b.dip_depth.to_bits());
        assert_eq!(ah.events, bh.events, "healthy runs identical");
        assert_eq!(ac.events, bc.events, "chaos runs identical");
        assert_eq!(ac.conservation.delivered, bc.conservation.delivered);
    }

    #[test]
    fn incident_clears_and_flows_still_complete() {
        let scheme = schemes::flowbender(Default::default());
        let (r, _, chaos) = run_one(&opts(2), &scheme);
        assert!(r.recon_samples > 0, "crash must leave flows to reconverge");
        assert!(
            r.completion > 0.5,
            "recovery must let most flows finish: {}",
            r.completion
        );
        // The crash + revival appear in the drop audit / counters as real
        // faults: the chaos run must differ from a healthy one.
        assert!(
            r.p99_inflation >= 1.0 || r.dip_depth > 0.0 || r.timeout_dominated > 0.0,
            "the incident must leave a measurable mark: {r:?}"
        );
        assert!(chaos.conservation.holds());
    }
}
