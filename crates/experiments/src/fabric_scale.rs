//! `fabric-scale` — fig3-style all-to-all on a 1024-host k=16 fat-tree,
//! packet-simulated end to end by the sharded multi-core engine
//! ([`crate::run_fat_tree_sharded`]).
//!
//! This is the run `trace-scale` pointed at: scheme fidelity (real
//! DCTCP/FlowBender endpoints, real switches) at a fabric size the
//! single-threaded engine only reaches slowly. Traffic comes from the
//! streaming [`workloads::PoissonStream`] generator — per-source split
//! RNG streams, so the arrival process is identical no matter how the
//! fabric is partitioned — and FCT statistics are aggregated the way the
//! workers naturally produce them: one [`stats::FctAccumulator`] per
//! shard over the flows whose sources that shard owns, merged into the
//! global sketch at the end (merge-equals-bulk-feed is a sketch
//! invariant, tested in `stats`).
//!
//! `--topo k=<K>` picks the fabric arity (hosts = k³/4), `--shards N`
//! the worker count; `--smoke` shrinks to a k=8 / 128-host CI-sized run.
//! Reports stay byte-identical across shard counts — that property is
//! enforced by the `sharded_determinism` integration test; this
//! experiment is where it pays off.

use netsim::{Counter, DetRng, SimTime};
use stats::{completion_fraction, fmt_secs, samples, BinSpec, FctAccumulator, Table};
use topology::{FatTreeParams, ShardPlan};
use workloads::{FlowSizeDist, PoissonStream};

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{run_fat_tree_sharded, RunOutput, ShardStats, Window};
use crate::schemes;

/// Offered load (fraction of edge bandwidth). One point, not a sweep —
/// a 1024-host packet run is minutes, and the load sweep story is fig3's.
pub const LOAD: f64 = 0.3;

/// RNG stream tag for the per-source Poisson streams.
const STREAM_TAG: u64 = 0xFA_B51C;

/// One (scheme) result of the fabric-scale run.
#[derive(Debug)]
pub struct FsResult {
    /// Scheme display name.
    pub scheme: String,
    /// Flows the Poisson stream emitted.
    pub flows: usize,
    /// Fraction of in-window flows that completed.
    pub completion: f64,
    /// Overall mean FCT (seconds), from the merged per-shard sketches.
    pub mean_s: f64,
    /// Overall p99 FCT (seconds), same source.
    pub p99_s: f64,
    /// Out-of-order arrival fraction.
    pub ooo_frac: f64,
    /// Events the engine processed (summed over shards).
    pub events: u64,
    /// What the sharded engine did (`None` when `--shards 1`).
    pub shard_stats: Option<ShardStats>,
}

/// The fabric arity this invocation runs: `--topo k=K` if given, else
/// k=16 (1024 hosts) — or k=8 (128 hosts) under `--smoke`.
pub fn arity(opts: &Opts) -> usize {
    opts.topo_k.unwrap_or(if opts.smoke { 8 } else { 16 })
}

/// Run one scheme on the k-ary fabric through the sharded engine,
/// returning the digest alongside the full run output (for JSON export).
pub fn run_one(opts: &Opts, scheme: &schemes::SchemeSpec) -> (FsResult, RunOutput) {
    let params = FatTreeParams::k_ary(arity(opts)).expect("arity checked by Opts::check");
    let plan = ShardPlan::new(&params, opts.shards).expect("shards checked by Opts::check");
    // Short windows: a 1024-host all-to-all generates hundreds of flows
    // (and tens of millions of events) per simulated millisecond.
    let base = if opts.smoke {
        SimTime::from_us(400)
    } else {
        SimTime::from_ms(2)
    };
    let duration = opts.scaled(base);
    let window = Window::for_duration(duration, SimTime::from_ms(50));

    let rng = DetRng::new(opts.seed, STREAM_TAG);
    let stream = PoissonStream::new(&params, LOAD, duration, FlowSizeDist::web_search(), &rng);
    let specs: Vec<netsim::FlowSpec> = stream.collect();

    let out = run_fat_tree_sharded(
        params,
        scheme,
        &specs,
        window.drain_until,
        opts.seed,
        opts.shards,
    )
    .expect("shard plan checked by Opts::check");

    // Aggregate the way the workers produce results: each shard sketches
    // the flows whose sources it owns, the coordinator merges sketches.
    let flows = out.effective_flows();
    let mut per_shard: Vec<FctAccumulator> = (0..opts.shards)
        .map(|_| FctAccumulator::new(BinSpec::paper()))
        .collect();
    for r in &flows {
        let shard = plan.host_owner(r.src as usize);
        for x in samples(std::slice::from_ref(r), window.start, window.end) {
            per_shard[shard].record_sample(&x);
        }
    }
    let mut acc = per_shard.remove(0);
    for other in &per_shard {
        acc.merge(other);
    }

    let data = out.get(Counter::DataPktsRcvd).max(1);
    let digest = FsResult {
        scheme: scheme.name().to_string(),
        flows: specs.len(),
        completion: completion_fraction(&flows, window.start, window.end),
        mean_s: acc.overall().mean().unwrap_or(0.0),
        p99_s: acc.overall().quantile(0.99).unwrap_or(0.0),
        ooo_frac: out.get(Counter::OooPktsRcvd) as f64 / data as f64,
        events: out.events,
        shard_stats: out.shard_stats,
    };
    (digest, out)
}

/// Run the fabric-scale experiment and build the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let k = arity(opts);
    let params = FatTreeParams::k_ary(k).expect("arity checked by Opts::check");
    let selection =
        opts.scheme_selection(&[schemes::ecmp(), schemes::flowbender(Default::default())]);

    let mut table = Table::new(vec![
        "scheme", "flows", "complete", "mean", "p99", "ooo", "events",
    ]);
    let mut results = Vec::with_capacity(selection.len());
    let mut summaries = Vec::with_capacity(selection.len());
    for scheme in &selection {
        let (r, out) = run_one(opts, scheme);
        summaries.push(RunSummary::from_run(
            format!(
                "{}_k{k}_shards{}_seed{}",
                scheme.slug(),
                opts.shards,
                opts.seed
            ),
            scheme.name(),
            opts,
            opts.seed,
            &out,
        ));
        table.row(vec![
            r.scheme.clone(),
            r.flows.to_string(),
            format!("{:.1}%", r.completion * 100.0),
            if r.mean_s > 0.0 {
                fmt_secs(r.mean_s)
            } else {
                "-".into()
            },
            if r.p99_s > 0.0 {
                fmt_secs(r.p99_s)
            } else {
                "-".into()
            },
            format!("{:.3}%", r.ooo_frac * 100.0),
            r.events.to_string(),
        ]);
        results.push(r);
    }

    let mut report = Report::new("fabric_scale");
    for s in summaries {
        report.run_summary(s);
    }
    report.section(
        format!(
            "Fabric scale: websearch all-to-all on a k={k} fat-tree \
             ({} hosts) at {:.0}% load, {} shard(s)",
            params.n_hosts(),
            LOAD * 100.0,
            opts.shards
        ),
        table,
    );
    if let Some(ss) = results.iter().find_map(|r| r.shard_stats) {
        let mut st = Table::new(vec!["shards", "epochs", "handoffs", "lookahead"]);
        for r in &results {
            let s = r.shard_stats.expect("all runs share one shard count");
            st.row(vec![
                s.shards.to_string(),
                s.rounds.to_string(),
                s.handoffs.to_string(),
                fmt_secs(s.lookahead_ps as f64 * 1e-12),
            ]);
        }
        report.section(
            format!(
                "Sharded engine: conservative barrier-epoch sync, \
                 lookahead {}",
                fmt_secs(ss.lookahead_ps as f64 * 1e-12)
            ),
            st,
        );
        report.note(
            "every cross-shard packet handoff is ledgered; exported == imported \
             is asserted at quiesce, and results are byte-identical across shard \
             counts (see the sharded_determinism test)",
        );
    }
    report.note(
        "per-shard FctAccumulator sketches (one per worker, over the sources it \
         owns) are merged for the table above — the aggregation path the sharded \
         engine uses, exact for counts/means and within the sketch guarantee for \
         tails",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-sized end-to-end run through the sharded engine. Keep the
    /// fabric at k=4 (16 hosts) so `cargo test` stays fast; the k=16
    /// acceptance run is exercised by the CLI / CI smoke step.
    #[test]
    fn smoke_run_produces_consistent_report() {
        let opts = Opts {
            seed: 3,
            topo_k: Some(4),
            shards: 2,
            smoke: true,
            schemes: vec!["ecmp".into()],
            ..Opts::default()
        };
        let r = run(&opts);
        assert_eq!(r.name, "fabric_scale");
        assert!(r.sections[0].0.contains("k=4"));
        assert_eq!(r.sections[0].1.len(), 1, "one scheme row");
        assert!(r.sections[1].0.contains("barrier-epoch"));
        assert!(r.notes.iter().any(|n| n.contains("exported == imported")));
    }

    #[test]
    fn report_is_identical_across_shard_counts() {
        let mk = |shards| Opts {
            seed: 3,
            topo_k: Some(4),
            shards,
            smoke: true,
            schemes: vec!["flowbender".into()],
            ..Opts::default()
        };
        let (a, _) = run_one(&mk(1), &schemes::flowbender(Default::default()));
        let (b, _) = run_one(&mk(2), &schemes::flowbender(Default::default()));
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.mean_s, b.mean_s);
        assert_eq!(a.p99_s, b.p99_s);
        assert_eq!(a.ooo_frac, b.ooo_frac);
        assert!(a.shard_stats.is_none(), "--shards 1 is the classic engine");
        let ss = b.shard_stats.expect("2-shard run reports stats");
        assert_eq!(ss.shards, 2);
        assert!(ss.rounds > 0);
    }
}
