//! `feedback` — the switch-assisted feedback layer end to end: how much
//! earlier a switch-generated congestion notification (CN) reaches the
//! sender than the end-to-end ECN echo it pre-empts, and what that lead
//! buys in tail FCT.
//!
//! Four schemes by default — the two baselines (ECMP, FlowBender) and the
//! two feedback consumers (Bender-INT bending away from the INT-blamed
//! hop, FastCC cutting cwnd on CN arrival) — on the two workloads where
//! early feedback should matter most: incast (deep, short-lived queue
//! spikes at the fan-in port) and a Zipf hotspot (persistent congestion
//! on a few downlinks). Runs go through the sharded engine
//! ([`crate::run_fat_tree_sharded`]), so `--shards N` works; Poisson
//! workloads (hotspot, websearch, ...) are byte-identical across shard
//! counts. Incast is the one exception fabric-wide (not feedback-specific):
//! its *synchronized* workers create exact-timestamp arrival ties, and the
//! tie order between events on different shards is a function of the
//! partition, so ECMP's incast numbers already shift by a serialization
//! quantum between `--shards 1` and `--shards 2`. Each shard count is
//! individually deterministic either way.
//!
//! The headline `lead` column is measured, not modeled: the sender opens
//! a timer at the first CN of a congestion window and closes it when the
//! first ECE-marked ACK of that window arrives ([`Counter::FeedbackLeadPs`]
//! summed over [`Counter::FeedbackLeadSamples`] windows). With `--trace`
//! (single-shard), the CN arrivals are cross-checked against the flight
//! recorder: a traced replay must log exactly [`Counter::CnDelivered`]
//! `cn_arrive` timeline events, at timestamps consistent with the lead.

use netsim::{Counter, DetRng, FlowTimeline, SimTime, TelemetryConfig, TraceConfig};
use stats::{completion_fraction, fmt_secs, percentile, samples, Table};
use topology::FatTreeParams;

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{
    run_fat_tree_sharded, run_fat_tree_traced, slowest_flows, sweep_schemes_sharded, RunOutput,
    Window,
};
use crate::schemes::{self, SchemeSpec};

/// Offered load (fraction of edge bandwidth), the fabric-scale operating
/// point: enough congestion to emit CNs, not enough to collapse.
pub const LOAD: f64 = 0.3;

/// Workload slugs swept by default: incast (fan-in capped to half the
/// fabric, so the smoke-sized k=4 run stays legal) and the Zipf hotspot.
/// `--workload` replaces the pair with a single selection.
pub fn default_workloads(opts: &Opts) -> Vec<String> {
    let hosts = FatTreeParams::k_ary(arity(opts))
        .expect("arity checked by Opts::check")
        .n_hosts();
    vec![format!("incast:{}", 32.min(hosts / 2)), "hotspot".into()]
}

/// RNG stream tag for the workload generators.
const STREAM_TAG: u64 = 0xFEED_BACC;

/// One (workload, scheme) cell of the feedback sweep.
#[derive(Debug)]
pub struct FbResult {
    /// Scheme display name.
    pub scheme: String,
    /// Workload display name.
    pub workload: String,
    /// Flows the generator emitted.
    pub flows: usize,
    /// Fraction of in-window flows that completed.
    pub completion: f64,
    /// p99 FCT (seconds) over in-window completions.
    pub p99_s: f64,
    /// CNs switches emitted ([`Counter::CnSent`]).
    pub cn_sent: u64,
    /// CNs that reached their sender ([`Counter::CnDelivered`]).
    pub cn_delivered: u64,
    /// INT records stamped by the fabric ([`Counter::IntStamps`]).
    pub int_stamps: u64,
    /// Congestion windows where a CN preceded the ECN echo.
    pub lead_samples: u64,
    /// Mean CN-before-echo lead over those windows, in microseconds
    /// (`None` when the scheme produced no samples).
    pub lead_us: Option<f64>,
}

/// The fabric arity this invocation runs: `--topo k=K` if given, else
/// k=8 (128 hosts) — or k=4 (16 hosts) under `--smoke`.
pub fn arity(opts: &Opts) -> usize {
    opts.topo_k.unwrap_or(if opts.smoke { 4 } else { 8 })
}

/// The default scheme set: both baselines, both feedback consumers.
pub fn default_schemes() -> Vec<SchemeSpec> {
    vec![
        schemes::ecmp(),
        schemes::flowbender(Default::default()),
        schemes::bender_int(),
        schemes::fastcc(),
    ]
}

fn measurement(opts: &Opts) -> Window {
    let base = if opts.smoke {
        SimTime::from_us(400)
    } else {
        SimTime::from_ms(2)
    };
    // Generous drain: incast jobs arriving late in the window still need
    // their fan-in to finish for the completion column to mean anything.
    Window::for_duration(opts.scaled(base), SimTime::from_ms(20))
}

/// Generate the flow list for one cell (deterministic in `(seed, slug)`,
/// independent of scheme and shard count).
fn gen_specs(
    opts: &Opts,
    params: &FatTreeParams,
    wl_slug: &str,
    window: Window,
) -> Vec<netsim::FlowSpec> {
    let wl = workloads::find(wl_slug).unwrap_or_else(|| panic!("unknown workload `{wl_slug}`"));
    let mut rng = DetRng::new(opts.seed, STREAM_TAG);
    wl.generate(params, LOAD, window.end, &mut rng)
}

/// Run one (scheme, workload) cell through the sharded engine, returning
/// the digest alongside the full run output (for JSON export).
pub fn run_one(opts: &Opts, scheme: &SchemeSpec, wl_slug: &str) -> (FbResult, RunOutput) {
    let params = FatTreeParams::k_ary(arity(opts)).expect("arity checked by Opts::check");
    let window = measurement(opts);
    let specs = gen_specs(opts, &params, wl_slug, window);
    let out = run_fat_tree_sharded(
        params,
        scheme,
        &specs,
        window.drain_until,
        opts.seed,
        opts.shards,
    )
    .expect("shard plan checked by Opts::check");

    let flows = out.effective_flows();
    let fcts: Vec<f64> = samples(&flows, window.start, window.end)
        .iter()
        .map(|s| s.fct_s)
        .collect();
    let lead_samples = out.get(Counter::FeedbackLeadSamples);
    let digest = FbResult {
        scheme: scheme.name().to_string(),
        workload: workloads::find(wl_slug).expect("resolved above").name(),
        flows: specs.len(),
        completion: completion_fraction(&flows, window.start, window.end),
        p99_s: percentile(&fcts, 0.99).unwrap_or(0.0),
        cn_sent: out.get(Counter::CnSent),
        cn_delivered: out.get(Counter::CnDelivered),
        int_stamps: out.get(Counter::IntStamps),
        lead_samples,
        lead_us: (lead_samples > 0)
            .then(|| out.get(Counter::FeedbackLeadPs) as f64 / lead_samples as f64 / 1e6),
    };
    (digest, out)
}

/// Replay one cell on the classic engine with the flight recorder on.
/// Tracing is read-only, so the replay is byte-identical to the sharded
/// run — callers assert `events` match.
pub fn run_one_traced(
    opts: &Opts,
    scheme: &SchemeSpec,
    wl_slug: &str,
    trace: TraceConfig,
) -> RunOutput {
    let params = FatTreeParams::k_ary(arity(opts)).expect("arity checked by Opts::check");
    let window = measurement(opts);
    let specs = gen_specs(opts, &params, wl_slug, window);
    run_fat_tree_traced(
        params,
        scheme,
        &specs,
        window.drain_until,
        opts.seed,
        TelemetryConfig::off(),
        trace,
    )
}

/// Total `cn_arrive` events across a traced run's timelines — when every
/// flow is traced, this must equal [`Counter::CnDelivered`].
pub fn cn_arrivals_in(timelines: &[FlowTimeline]) -> usize {
    timelines.iter().map(|t| t.count_kind("cn_arrive")).sum()
}

/// Run the feedback experiment and build the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    assert!(
        opts.trace.is_off() || opts.shards == 1,
        "--trace needs --shards 1: the flight recorder rides the single-threaded engine"
    );
    let k = arity(opts);
    let params = FatTreeParams::k_ary(k).expect("arity checked by Opts::check");
    let selection = opts.scheme_selection(&default_schemes());
    let wl_slugs: Vec<String> = match &opts.workload {
        Some(w) => vec![w.clone()],
        None => default_workloads(opts),
    };

    let runs = sweep_schemes_sharded(&selection, &wl_slugs, opts.shards, |scheme, wl| {
        run_one(opts, scheme, wl)
    });

    let mut report = Report::new("feedback");
    for (wl, cells) in wl_slugs.iter().zip(runs) {
        let wl_name = cells
            .first()
            .map(|(r, _)| r.workload.clone())
            .unwrap_or_else(|| wl.clone());
        let wl_label = workloads::find(wl).expect("resolved by run_one").slug();
        let mut table = Table::new(vec![
            "scheme", "flows", "complete", "p99 FCT", "CN sent", "CN deliv", "lead",
        ]);
        for (scheme, (r, out)) in selection.iter().zip(cells) {
            let label = format!(
                "{wl_label}_{}_shards{}_seed{}",
                scheme.slug(),
                opts.shards,
                opts.seed
            );
            // Flight-recorder cross-check of the lead measurement: replay
            // this cell traced and verify the recorder saw exactly the
            // CNs the counters claim were delivered.
            if !opts.trace.is_off() {
                let cfg = opts.trace.config_with(|n| slowest_flows(&out, n));
                let traced = run_one_traced(opts, scheme, wl, cfg);
                assert_eq!(
                    traced.events, out.events,
                    "tracing must not perturb the simulation"
                );
                report.trace_timelines(label.clone(), traced.results.timelines().to_vec());
            }
            report.run_summary(RunSummary::from_run(
                label,
                scheme.name(),
                opts,
                opts.seed,
                &out,
            ));
            table.row(vec![
                r.scheme.clone(),
                r.flows.to_string(),
                format!("{:.1}%", r.completion * 100.0),
                if r.p99_s > 0.0 {
                    fmt_secs(r.p99_s)
                } else {
                    "-".into()
                },
                r.cn_sent.to_string(),
                r.cn_delivered.to_string(),
                match r.lead_us {
                    Some(us) => format!("{us:.1}us ({} wins)", r.lead_samples),
                    None if r.int_stamps > 0 => format!("{} INT stamps", r.int_stamps),
                    None => "-".into(),
                },
            ]);
        }
        report.section(
            format!(
                "Switch-assisted feedback on {wl_name}: k={k} fat-tree \
                 ({} hosts) at {:.0}% load, {} shard(s)",
                params.n_hosts(),
                LOAD * 100.0,
                opts.shards
            ),
            table,
        );
    }
    report.note(
        "lead = mean time by which the first CN of a congestion window preceded \
         the first ECE-marked ACK of that window (FeedbackLeadPs / \
         FeedbackLeadSamples); it is what FastCC's early cut buys over waiting \
         for the echo",
    );
    report.note(
        "CNs are switch-generated at the ECN mark point and race the data \
         packet's receiver round-trip back to the sender; Bender-INT consumes \
         per-hop INT stamps instead and emits no CNs",
    );
    if !opts.trace.is_off() {
        report.note(
            "traced replays verified: flight-recorder cn_arrive timelines are \
             byte-identical to the untraced runs (same event counts)",
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TraceSel;

    fn smoke_opts() -> Opts {
        Opts {
            seed: 7,
            topo_k: Some(4),
            smoke: true,
            ..Opts::default()
        }
    }

    fn cnt(s: &RunSummary, name: &str) -> Option<u64> {
        s.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Smoke-sized end-to-end sweep: all four default schemes on both
    /// workloads, with the feedback consumers actually consuming.
    #[test]
    fn smoke_run_measures_cn_lead_and_int_stamps() {
        let r = run(&smoke_opts());
        assert_eq!(r.name, "feedback");
        assert_eq!(r.sections.len(), 2, "incast + hotspot");
        assert_eq!(r.sections[0].1.len(), 4, "four scheme rows per workload");
        assert_eq!(r.runs.len(), 8, "one JSON summary per cell");

        let by_label = |frag: &str| {
            r.runs
                .iter()
                .find(|s| s.label.contains(frag) && s.label.starts_with("incast_8"))
                .unwrap_or_else(|| panic!("no incast summary for {frag}"))
        };
        let fastcc = by_label("fastcc");
        assert!(
            cnt(fastcc, "cn_sent").unwrap_or(0) > 0 && cnt(fastcc, "cn_delivered").unwrap_or(0) > 0,
            "incast at 30% load must trip the CN threshold: {:?}",
            fastcc.counters
        );
        assert!(
            cnt(fastcc, "feedback_lead_samples").unwrap_or(0) > 0,
            "FastCC must measure the CN-before-echo lead"
        );
        let bender_int = by_label("bender_int");
        assert!(
            cnt(bender_int, "int_stamps").unwrap_or(0) > 0,
            "Bender-INT fabric must stamp INT records"
        );
        assert!(
            cnt(bender_int, "cn_sent").is_none(),
            "Bender-INT is INT-only"
        );
        // Baselines carry no feedback counters at all (feedback-only
        // counters are omitted from summaries when zero).
        let ecmp = by_label("ecmp");
        assert!(cnt(ecmp, "cn_sent").is_none());
        assert!(cnt(ecmp, "int_stamps").is_none());
    }

    /// The measured lead is positive and CN arrivals beat the echo by
    /// less than the configured delivery gap allows — i.e. the counter
    /// measures something physical, not an artifact.
    #[test]
    fn fastcc_lead_is_positive_on_incast() {
        let (r, _) = run_one(&smoke_opts(), &schemes::fastcc(), "incast:8");
        assert!(r.cn_delivered > 0, "CNs must be delivered: {r:?}");
        let lead = r.lead_us.expect("lead must be measured");
        assert!(
            lead > 0.0,
            "CN must precede the echo it pre-empts: {lead}us"
        );
        assert!(r.completion > 0.5, "most in-window flows complete: {r:?}");
    }

    /// Feedback-enabled schemes are byte-identical across shard counts:
    /// CN delivery crosses shard boundaries through the handoff protocol
    /// without perturbing the schedule. Checked on the hotspot workload —
    /// Poisson arrivals, so no exact-timestamp ties; incast's synchronized
    /// senders tie constantly and are not shard-count-invariant for *any*
    /// scheme, ECMP included (see the module docs). Uses the full
    /// (non-smoke) 2 ms window: the smoke hotspot cell carries only a
    /// single flow, which would make invariance vacuous — the full window
    /// pushes ~1M events and double-digit flow counts through the shard
    /// handoffs.
    #[test]
    fn feedback_cells_are_identical_across_shard_counts() {
        let dense = Opts {
            smoke: false,
            ..smoke_opts()
        };
        for scheme in [schemes::bender_int(), schemes::fastcc()] {
            let base = run_one(&dense, &scheme, "hotspot");
            for shards in [2, 4] {
                let opts = Opts {
                    shards,
                    ..dense.clone()
                };
                let (r, out) = run_one(&opts, &scheme, "hotspot");
                assert_eq!(base.0.p99_s, r.p99_s, "{} x{shards}", scheme.name());
                assert_eq!(base.0.completion, r.completion);
                assert_eq!(base.0.cn_sent, r.cn_sent);
                assert_eq!(base.0.cn_delivered, r.cn_delivered);
                assert_eq!(base.0.int_stamps, r.int_stamps);
                assert_eq!(base.0.lead_samples, r.lead_samples);
                assert_eq!(base.0.lead_us, r.lead_us);
                assert_eq!(base.1.flows.len(), out.flows.len());
                assert!(
                    base.1
                        .flows
                        .iter()
                        .zip(out.flows.iter())
                        .all(|(a, b)| a.end == b.end),
                    "{} x{shards}: per-flow completion times must match",
                    scheme.name()
                );
            }
        }
    }

    /// Flight-recorder verification of the lead: a traced replay logs
    /// exactly `CnDelivered` cn_arrive events, and at least one traced
    /// flow shows a cn_arrive strictly before a later cwnd change — the
    /// recorded shape of "the CN acted before the echo".
    #[test]
    fn traced_replay_confirms_cn_arrivals_against_counters() {
        let opts = smoke_opts();
        let (r, out) = run_one(&opts, &schemes::fastcc(), "incast:8");
        assert!(r.cn_delivered > 0);
        let all: Vec<netsim::FlowId> = (0..r.flows as netsim::FlowId).collect();
        let traced = run_one_traced(
            &opts,
            &schemes::fastcc(),
            "incast:8",
            TraceConfig::flows(all),
        );
        assert_eq!(traced.events, out.events, "tracing is read-only");
        let timelines = traced.results.timelines();
        assert_eq!(
            cn_arrivals_in(timelines) as u64,
            r.cn_delivered,
            "every delivered CN appears in a timeline"
        );
        let cn_then_cut = timelines.iter().any(|t| {
            t.events
                .iter()
                .find(|(_, e)| e.kind() == "cn_arrive")
                .is_some_and(|(cn_at, _)| {
                    t.events
                        .iter()
                        .any(|(at, e)| e.kind() == "cwnd" && at > cn_at)
                })
        });
        assert!(cn_then_cut, "a CN must precede a later cwnd change");
    }

    /// `--trace` attaches verified timelines to the report.
    #[test]
    fn trace_selection_attaches_timelines_to_the_report() {
        let opts = Opts {
            trace: TraceSel::Slowest(2),
            schemes: vec!["fastcc".into()],
            workload: Some("incast:8".into()),
            ..smoke_opts()
        };
        let r = run(&opts);
        assert!(!r.traces.is_empty(), "traced run must attach timelines");
        assert!(r.notes.iter().any(|n| n.contains("cn_arrive")));
    }
}
