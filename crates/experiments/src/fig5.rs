//! Figure 5 — partition-aggregate workload: average job completion time
//! (the last flow of each incast job) normalized to ECMP, for fan-in
//! degrees 4–32 at 40 % load.
//!
//! Paper's result: FlowBender (like RPS and DeTail) completes jobs ~4×
//! faster than ECMP at fan-in 4, degrading to ~2× at fan-in 32 where the
//! receiver's last hop is the bottleneck and multipathing can't help.

use netsim::SimTime;
use stats::{avg_job_completion, fmt_ratio, fmt_secs, Table};
use topology::FatTreeParams;
use workloads::partition_aggregate;

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Scheme, Window};

/// Fan-in degrees from the paper's Figure 5.
pub const FAN_INS: [u32; 4] = [4, 8, 16, 32];

/// One (scheme, fan-in) cell.
#[derive(Debug)]
pub struct Cell {
    /// Fan-in degree.
    pub fan_in: u32,
    /// Scheme display name.
    pub scheme: &'static str,
    /// Average job completion time (s).
    pub avg_jct_s: f64,
    /// Jobs measured.
    pub jobs: usize,
}

/// Run the sweep over `schemes` × [`FAN_INS`].
pub fn sweep(opts: &Opts, schemes: &[Scheme]) -> Vec<Cell> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));

    let mut jobs = Vec::new();
    for &fan_in in &FAN_INS {
        for scheme in schemes {
            jobs.push((fan_in, scheme.clone()));
        }
    }
    parallel_map(jobs, |(fan_in, scheme)| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ fan_in as u64);
        let specs = partition_aggregate(&params, 0.4, fan_in, 1_000_000, duration, &mut rng);
        let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
        // Job completion uses all jobs whose flows all completed; trim
        // cool-down jobs by start time like the FCT window does.
        let in_window: Vec<_> = out
            .flows
            .iter()
            .filter(|f| f.start >= window.start && f.start < window.end)
            .cloned()
            .collect();
        let (avg, n) = avg_job_completion(&in_window);
        Cell {
            fan_in,
            scheme: scheme.name(),
            avg_jct_s: avg,
            jobs: n,
        }
    })
}

/// Produce the Figure 5 report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts, &Scheme::paper_set());
    let find = |fan_in: u32, name: &str| {
        cells
            .iter()
            .find(|c| c.fan_in == fan_in && c.scheme == name)
            .unwrap_or_else(|| panic!("missing {name} at fan-in {fan_in}"))
    };
    let mut table = Table::new(vec![
        "fan-in",
        "DeTail",
        "FlowBender",
        "RPS",
        "ECMP abs",
        "jobs",
    ]);
    for &n in &FAN_INS {
        let ecmp = find(n, "ECMP");
        let cell = |name: &str| {
            let c = find(n, name);
            if ecmp.avg_jct_s > 0.0 {
                fmt_ratio(c.avg_jct_s / ecmp.avg_jct_s)
            } else {
                "-".to_string()
            }
        };
        table.row(vec![
            n.to_string(),
            cell("DeTail"),
            cell("FlowBender"),
            cell("RPS"),
            fmt_secs(ecmp.avg_jct_s),
            ecmp.jobs.to_string(),
        ]);
    }
    let mut r = Report::new("fig5");
    r.section(
        "Fig 5: partition-aggregate avg job completion time, normalized to ECMP (lower is better)",
        table,
    );
    r.note("paper: FlowBender ~0.25x at fan-in 4, ~0.5x at fan-in 32; within ~2% of DeTail/RPS");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_beats_ecmp_at_low_fan_in() {
        let opts = Opts {
            scale: 0.25,
            seed: 3,
        };
        let schemes = vec![
            Scheme::Ecmp,
            Scheme::FlowBender(flowbender::Config::default()),
        ];
        let params = FatTreeParams::paper();
        let duration = opts.scaled(SimTime::from_ms(60));
        let window = Window::for_duration(duration, SimTime::from_ms(400));
        let cells = parallel_map(schemes, |scheme| {
            let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ 4);
            let specs = partition_aggregate(&params, 0.4, 4, 1_000_000, duration, &mut rng);
            let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
            let in_window: Vec<_> = out
                .flows
                .iter()
                .filter(|f| f.start >= window.start && f.start < window.end)
                .cloned()
                .collect();
            let (avg, n) = avg_job_completion(&in_window);
            (scheme.name(), avg, n)
        });
        let (_, ecmp_jct, ecmp_jobs) = cells[0];
        let (_, fb_jct, fb_jobs) = cells[1];
        assert!(ecmp_jobs > 10 && fb_jobs > 10, "too few jobs measured");
        assert!(fb_jct > 0.0 && ecmp_jct > 0.0);
        // In this substrate the incast bottleneck — the aggregator's own
        // downlink, which no load balancer can widen — dominates
        // partition-aggregate jobs (deep buffers + DCTCP keep the fabric
        // loss-free), so FlowBender's fabric-side gains are muted relative
        // to the paper; we assert non-inferiority within reroute-churn
        // noise. EXPERIMENTS.md discusses the deviation.
        assert!(fb_jct <= ecmp_jct * 1.15, "fb {fb_jct} vs ecmp {ecmp_jct}");
    }
}
