//! Figure 5 — partition-aggregate workload: average job completion time
//! (the last flow of each incast job) normalized to ECMP, for fan-in
//! degrees 4–32 at 40 % load.
//!
//! Paper's result: FlowBender (like RPS and DeTail) completes jobs ~4×
//! faster than ECMP at fan-in 4, degrading to ~2× at fan-in 32 where the
//! receiver's last hop is the bottleneck and multipathing can't help.

use netsim::SimTime;
use stats::{avg_job_completion, fmt_ratio, fmt_secs, Table};
use topology::FatTreeParams;
use workloads::partition_aggregate;

use crate::report::{Opts, Report};
use crate::scenario::{run_fat_tree, sweep_schemes, Window};
use crate::schemes::{self, SchemeSpec};

/// Fan-in degrees from the paper's Figure 5.
pub const FAN_INS: [u32; 4] = [4, 8, 16, 32];

/// One (scheme, fan-in) cell.
#[derive(Debug)]
pub struct Cell {
    /// Fan-in degree.
    pub fan_in: u32,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Average job completion time (s).
    pub avg_jct_s: f64,
    /// Jobs measured.
    pub jobs: usize,
}

/// Run the sweep over `schemes` × [`FAN_INS`].
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec]) -> Vec<Cell> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));

    sweep_schemes(schemes, &FAN_INS, |scheme, &fan_in| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ fan_in as u64);
        let specs = partition_aggregate(&params, 0.4, fan_in, 1_000_000, duration, &mut rng);
        let out = run_fat_tree(params, scheme, &specs, window.drain_until, opts.seed);
        // Job completion uses all jobs whose flows all completed; trim
        // cool-down jobs by start time like the FCT window does.
        let in_window: Vec<_> = out
            .effective_flows()
            .iter()
            .filter(|f| f.start >= window.start && f.start < window.end)
            .cloned()
            .collect();
        let (avg, n) = avg_job_completion(&in_window);
        Cell {
            fan_in,
            scheme: scheme.name().to_string(),
            avg_jct_s: avg,
            jobs: n,
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Produce the Figure 5 report.
pub fn run(opts: &Opts) -> Report {
    let selection = opts.scheme_selection(&schemes::paper_set());
    let cells = sweep(opts, &selection);
    let find = |fan_in: u32, name: &str| {
        cells
            .iter()
            .find(|c| c.fan_in == fan_in && c.scheme == name)
            .unwrap_or_else(|| panic!("missing {name} at fan-in {fan_in}"))
    };
    // ECMP is the baseline when swept, else the first selected scheme.
    let base_name = selection
        .iter()
        .map(|s| s.name().to_string())
        .find(|n| n == "ECMP")
        .unwrap_or_else(|| selection[0].name().to_string());
    let others: Vec<String> = selection
        .iter()
        .map(|s| s.name().to_string())
        .filter(|n| *n != base_name)
        .collect();
    let mut header = vec!["fan-in".to_string()];
    header.extend(others.iter().cloned());
    header.push(format!("{base_name} abs"));
    header.push("jobs".to_string());
    let mut table = Table::new(header);
    for &n in &FAN_INS {
        let base = find(n, &base_name);
        let mut row = vec![n.to_string()];
        for name in &others {
            let c = find(n, name);
            row.push(if base.avg_jct_s > 0.0 {
                fmt_ratio(c.avg_jct_s / base.avg_jct_s)
            } else {
                "-".to_string()
            });
        }
        row.push(fmt_secs(base.avg_jct_s));
        row.push(base.jobs.to_string());
        table.row(row);
    }
    let mut r = Report::new("fig5");
    r.section(
        format!(
            "Fig 5: partition-aggregate avg job completion time, normalized to {base_name} (lower is better)"
        ),
        table,
    );
    r.note("paper: FlowBender ~0.25x at fan-in 4, ~0.5x at fan-in 32; within ~2% of DeTail/RPS");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parallel_map;

    #[test]
    fn small_sweep_beats_ecmp_at_low_fan_in() {
        let opts = Opts {
            scale: 0.25,
            seed: 3,
            ..Opts::default()
        };
        let sel = vec![
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ];
        let params = FatTreeParams::paper();
        let duration = opts.scaled(SimTime::from_ms(60));
        let window = Window::for_duration(duration, SimTime::from_ms(400));
        let cells = parallel_map(sel, |scheme| {
            let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ 4);
            let specs = partition_aggregate(&params, 0.4, 4, 1_000_000, duration, &mut rng);
            let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
            let in_window: Vec<_> = out
                .flows
                .iter()
                .filter(|f| f.start >= window.start && f.start < window.end)
                .cloned()
                .collect();
            let (avg, n) = avg_job_completion(&in_window);
            (scheme.name().to_string(), avg, n)
        });
        let (_, ecmp_jct, ecmp_jobs) = cells[0].clone();
        let (_, fb_jct, fb_jobs) = cells[1].clone();
        assert!(ecmp_jobs > 10 && fb_jobs > 10, "too few jobs measured");
        assert!(fb_jct > 0.0 && ecmp_jct > 0.0);
        // In this substrate the incast bottleneck — the aggregator's own
        // downlink, which no load balancer can widen — dominates
        // partition-aggregate jobs (deep buffers + DCTCP keep the fabric
        // loss-free), so FlowBender's fabric-side gains are muted relative
        // to the paper; we assert non-inferiority within reroute-churn
        // noise. EXPERIMENTS.md discusses the deviation.
        assert!(fb_jct <= ecmp_jct * 1.15, "fb {fb_jct} vs ecmp {ecmp_jct}");
    }
}
