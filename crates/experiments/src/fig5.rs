//! Figure 5 — partition-aggregate workload: average job completion time
//! (the last flow of each incast job) normalized to ECMP, for fan-in
//! degrees 4–32 at 40 % load.
//!
//! Paper's result: FlowBender (like RPS and DeTail) completes jobs ~4×
//! faster than ECMP at fan-in 4, degrading to ~2× at fan-in 32 where the
//! receiver's last hop is the bottleneck and multipathing can't help.

use netsim::SimTime;
use stats::{fmt_ratio, fmt_secs, job_completion, Table};
use topology::FatTreeParams;
use workloads::Workload;

use crate::report::{Opts, Report};
use crate::scenario::{run_fat_tree, sweep_schemes, Window};
use crate::schemes::{self, SchemeSpec};

/// Fan-in degrees from the paper's Figure 5.
pub const FAN_INS: [u32; 4] = [4, 8, 16, 32];

/// One (scheme, fan-in) cell.
#[derive(Debug)]
pub struct Cell {
    /// Fan-in degree.
    pub fan_in: u32,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Average job completion time (s).
    pub avg_jct_s: f64,
    /// 99th-percentile job completion time (s); `None` without jobs.
    pub p99_jct_s: Option<f64>,
    /// Jobs measured (all of whose flows completed).
    pub jobs: usize,
}

/// Run the sweep over `schemes` × [`FAN_INS`]. Traffic comes from the
/// workload registry's `incast:<fanin>` pattern (the same generator and
/// RNG stream the hard-coded `partition_aggregate` call always used, so
/// results are byte-compatible).
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec]) -> Vec<Cell> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));

    sweep_schemes(schemes, &FAN_INS, |scheme, &fan_in| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ fan_in as u64);
        let specs = workloads::patterns::incast(fan_in).generate(&params, 0.4, duration, &mut rng);
        let out = run_fat_tree(params, scheme, &specs, window.drain_until, opts.seed);
        // Job completion uses all jobs whose flows all completed; trim
        // cool-down jobs by start time like the FCT window does.
        let in_window: Vec<_> = out
            .effective_flows()
            .iter()
            .filter(|f| f.start >= window.start && f.start < window.end)
            .cloned()
            .collect();
        let js = job_completion(&in_window);
        Cell {
            fan_in,
            scheme: scheme.name().to_string(),
            avg_jct_s: js.mean_s.unwrap_or(0.0),
            p99_jct_s: js.p99_s,
            jobs: js.jobs_complete,
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Produce the Figure 5 report.
pub fn run(opts: &Opts) -> Report {
    let selection = opts.scheme_selection(&schemes::paper_set());
    let cells = sweep(opts, &selection);
    let find = |fan_in: u32, name: &str| {
        cells
            .iter()
            .find(|c| c.fan_in == fan_in && c.scheme == name)
            .unwrap_or_else(|| panic!("missing {name} at fan-in {fan_in}"))
    };
    // ECMP is the baseline when swept, else the first selected scheme.
    let base_name = selection
        .iter()
        .map(|s| s.name().to_string())
        .find(|n| n == "ECMP")
        .unwrap_or_else(|| selection[0].name().to_string());
    let others: Vec<String> = selection
        .iter()
        .map(|s| s.name().to_string())
        .filter(|n| *n != base_name)
        .collect();
    // One normalized table per statistic: the paper's average, plus the
    // p99 tail the per-job FCT extension adds.
    let jct_table = |stat: &dyn Fn(&Cell) -> Option<f64>| {
        let mut header = vec!["fan-in".to_string()];
        header.extend(others.iter().cloned());
        header.push(format!("{base_name} abs"));
        header.push("jobs".to_string());
        let mut table = Table::new(header);
        for &n in &FAN_INS {
            let base = find(n, &base_name);
            let base_v = stat(base);
            let mut row = vec![n.to_string()];
            for name in &others {
                let c = find(n, name);
                row.push(match (stat(c), base_v) {
                    (Some(v), Some(b)) if b > 0.0 => fmt_ratio(v / b),
                    _ => "-".to_string(),
                });
            }
            row.push(match base_v {
                Some(b) => fmt_secs(b),
                None => "-".to_string(),
            });
            row.push(base.jobs.to_string());
            table.row(row);
        }
        table
    };
    let mut r = Report::new("fig5");
    r.section(
        format!(
            "Fig 5: partition-aggregate avg job completion time, normalized to {base_name} (lower is better)"
        ),
        jct_table(&|c| (c.avg_jct_s > 0.0).then_some(c.avg_jct_s)),
    );
    r.section(
        format!("Fig 5 (ext): p99 job completion time, normalized to {base_name}"),
        jct_table(&|c| c.p99_jct_s),
    );
    r.note("paper: FlowBender ~0.25x at fan-in 4, ~0.5x at fan-in 32; within ~2% of DeTail/RPS");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parallel_map;

    #[test]
    fn small_sweep_beats_ecmp_at_low_fan_in() {
        let opts = Opts {
            scale: 0.25,
            seed: 3,
            ..Opts::default()
        };
        let sel = vec![
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ];
        let params = FatTreeParams::paper();
        let duration = opts.scaled(SimTime::from_ms(60));
        let window = Window::for_duration(duration, SimTime::from_ms(400));
        let cells = parallel_map(sel, |scheme| {
            let mut rng = netsim::DetRng::new(opts.seed, 0xF165 ^ 4);
            let specs = workloads::patterns::incast(4).generate(&params, 0.4, duration, &mut rng);
            let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
            let in_window: Vec<_> = out
                .flows
                .iter()
                .filter(|f| f.start >= window.start && f.start < window.end)
                .cloned()
                .collect();
            let js = job_completion(&in_window);
            (
                scheme.name().to_string(),
                js.mean_s.unwrap_or(0.0),
                js.jobs_complete,
            )
        });
        let (_, ecmp_jct, ecmp_jobs) = cells[0].clone();
        let (_, fb_jct, fb_jobs) = cells[1].clone();
        assert!(ecmp_jobs > 10 && fb_jobs > 10, "too few jobs measured");
        assert!(fb_jct > 0.0 && ecmp_jct > 0.0);
        // In this substrate the incast bottleneck — the aggregator's own
        // downlink, which no load balancer can widen — dominates
        // partition-aggregate jobs (deep buffers + DCTCP keep the fabric
        // loss-free), so FlowBender's fabric-side gains are muted relative
        // to the paper; we assert non-inferiority within reroute-churn
        // noise. EXPERIMENTS.md discusses the deviation.
        assert!(fb_jct <= ecmp_jct * 1.15, "fb {fb_jct} vs ecmp {ecmp_jct}");
    }
}
