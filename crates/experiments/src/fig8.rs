//! Figure 8 — the testbed experiment, simulated: hosts of one ToR send
//! 1 MB flows to random servers at 20/40/60 % of the ToR's uplink
//! capacity; mean, 99th- and 99.9th-percentile completion times of
//! FlowBender normalized to ECMP.
//!
//! Paper's result (real hardware): FlowBender improves p99 by 15–26 % and
//! p99.9 by 34–45 %; at 60 % load flows finish >2× faster on average. Our
//! substrate is the simulator, so per the paper's own §4.3 caveat only the
//! qualitative shape is expected to match (simulation numbers tend to show
//! *larger* wins than the syscall-noise-limited testbed).

use netsim::SimTime;
use stats::{fmt_ratio, fmt_secs, samples, Table};
use topology::TestbedParams;
use workloads::testbed_one_tor;

use crate::report::{Opts, Report};
use crate::scenario::{run_testbed, sweep_schemes, Window};
use crate::schemes::{self, SchemeSpec};

/// Loads from the paper.
pub const LOADS: [f64; 3] = [0.2, 0.4, 0.6];

/// One (scheme, load) testbed run summary.
#[derive(Debug)]
pub struct Cell {
    /// Load fraction.
    pub load: f64,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// p99 FCT (s).
    pub p99_s: f64,
    /// p99.9 FCT (s).
    pub p999_s: f64,
    /// Samples measured.
    pub n: usize,
}

/// Run the sweep.
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec]) -> Vec<Cell> {
    opts.validate();
    let params = TestbedParams::paper();
    let duration = opts.scaled(SimTime::from_ms(800));
    let window = Window::for_duration(duration, SimTime::from_ms(400));

    sweep_schemes(schemes, &LOADS, |scheme, &load| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xF18 ^ (load * 1000.0) as u64);
        let tor0 = 0..params.servers_per_tor[0];
        let specs = testbed_one_tor(
            &params,
            tor0,
            params.n_hosts(),
            load,
            1_000_000,
            duration,
            &mut rng,
        );
        let out = run_testbed(
            params.clone(),
            scheme,
            &specs,
            window.drain_until,
            opts.seed,
            &[],
        );
        let flows = out.effective_flows();
        let s = samples(&flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        Cell {
            load,
            scheme: scheme.name().to_string(),
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            p99_s: stats::percentile(&fcts, 0.99).unwrap_or(0.0),
            p999_s: stats::percentile(&fcts, 0.999).unwrap_or(0.0),
            n: fcts.len(),
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Produce the Figure 8 report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(
        opts,
        &[
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ],
    );
    let find = |load: f64, name: &str| {
        cells
            .iter()
            .find(|c| c.load == load && c.scheme == name)
            .unwrap_or_else(|| panic!("missing {name} at {load}"))
    };
    let mut table = Table::new(vec![
        "load",
        "FB mean/ECMP",
        "FB p99/ECMP",
        "FB p99.9/ECMP",
        "ECMP mean",
        "ECMP p99",
        "ECMP p99.9",
        "flows",
    ]);
    for &load in &LOADS {
        let e = find(load, "ECMP");
        let f = find(load, "FlowBender");
        table.row(vec![
            format!("{:.0}%", load * 100.0),
            fmt_ratio(f.mean_s / e.mean_s),
            fmt_ratio(f.p99_s / e.p99_s),
            fmt_ratio(f.p999_s / e.p999_s),
            fmt_secs(e.mean_s),
            fmt_secs(e.p99_s),
            fmt_secs(e.p999_s),
            e.n.to_string(),
        ]);
    }
    let mut r = Report::new("fig8");
    r.section(
        "Fig 8: testbed (simulated) 1MB flows from one ToR, FlowBender vs ECMP",
        table,
    );
    r.note("paper (real testbed): p99 15-26% better, p99.9 34-45% better, mean >2x at 60% load");
    r.note("simulation lacks the testbed's host-side noise; expect same shape, stronger ratios");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_load_cells_are_sane() {
        let opts = Opts {
            scale: 0.1,
            seed: 2,
            ..Opts::default()
        };
        let params = TestbedParams::paper();
        let duration = opts.scaled(SimTime::from_ms(800));
        let window = Window::for_duration(duration, SimTime::from_ms(400));
        let mut rng = netsim::DetRng::new(opts.seed, 0xF18);
        let specs = testbed_one_tor(
            &params,
            0..params.servers_per_tor[0],
            params.n_hosts(),
            0.6,
            1_000_000,
            duration,
            &mut rng,
        );
        let out = run_testbed(
            params.clone(),
            &schemes::flowbender(flowbender::Config::default()),
            &specs,
            window.drain_until,
            opts.seed,
            &[],
        );
        let s = samples(&out.flows, window.start, window.end);
        assert!(s.len() > 50, "too few flows: {}", s.len());
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        let mean = stats::mean(&fcts).unwrap();
        // 1MB at 10G is ~0.9ms with stack delays; under load it stretches
        // but must stay well under 100ms.
        assert!(mean > 0.8e-3 && mean < 0.1, "mean = {mean}");
    }
}
