//! Extension — FlowBender vs flowlet switching (LetFlow-style), the other
//! major "adaptive without custom silicon" family that emerged alongside
//! FlowBender (CONGA SIGCOMM'14, LetFlow NSDI'17).
//!
//! Flowlet switches re-draw a flow's path during idle gaps; FlowBender
//! re-draws from end-host congestion signals. Both avoid the sustained
//! reordering of per-packet schemes. The comparison runs the 40/60 %
//! all-to-all plus the Table-1 microbenchmark, with flowlet gaps swept
//! around the fabric RTT.

use netsim::{Counter, SimTime};
use stats::{fmt_ratio, fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, microbench, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Window};
use crate::schemes::{self, SchemeSpec};

/// Flowlet inactivity gaps evaluated (around the ~90 µs fabric RTT).
pub const GAPS_US: [u64; 3] = [50, 100, 500];

/// One (scheme, load) all-to-all outcome.
#[derive(Debug)]
pub struct Cell {
    /// Scheme label (includes the gap for flowlet variants).
    pub label: String,
    /// Load fraction.
    pub load: f64,
    /// Mean FCT (s).
    pub mean_s: f64,
    /// p99 FCT (s).
    pub p99_s: f64,
    /// Out-of-order fraction.
    pub ooo_frac: f64,
}

fn contenders() -> Vec<SchemeSpec> {
    let mut v = vec![
        schemes::ecmp(),
        schemes::flowbender(flowbender::Config::default()),
    ];
    for gap in GAPS_US {
        v.push(schemes::flowlet(SimTime::from_us(gap)));
    }
    v
}

/// Run the all-to-all comparison.
pub fn sweep(opts: &Opts) -> Vec<Cell> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();

    let mut jobs = Vec::new();
    for &load in &[0.4f64, 0.6] {
        for scheme in contenders() {
            jobs.push((load, scheme));
        }
    }
    parallel_map(jobs, |(load, scheme)| {
        let mut rng = netsim::DetRng::new(opts.seed, 0xF10E ^ (load * 1000.0) as u64);
        let specs = all_to_all(&params, load, duration, &dist, &mut rng);
        let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
        let s = samples(&out.flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        Cell {
            label: scheme.name().to_string(),
            load,
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            p99_s: stats::percentile(&fcts, 0.99).unwrap_or(0.0),
            ooo_frac: out.get(Counter::OooPktsRcvd) as f64
                / out.get(Counter::DataPktsRcvd).max(1) as f64,
        }
    })
}

/// Produce the report (all-to-all table plus a microbenchmark shootout).
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts);
    let find = |load: f64, label: &str| {
        cells
            .iter()
            .find(|c| c.load == load && c.label == label)
            .unwrap_or_else(|| panic!("missing {label} at {load}"))
    };
    let mut table = Table::new(vec![
        "load",
        "scheme",
        "mean vs ECMP",
        "p99 vs ECMP",
        "ooo %",
    ]);
    for &load in &[0.4f64, 0.6] {
        let ecmp = find(load, "ECMP");
        for spec in contenders() {
            let label = spec.name().to_string();
            let c = find(load, &label);
            table.row(vec![
                format!("{:.0}%", load * 100.0),
                label.clone(),
                fmt_ratio(c.mean_s / ecmp.mean_s),
                fmt_ratio(c.p99_s / ecmp.p99_s),
                format!("{:.3}%", c.ooo_frac * 100.0),
            ]);
        }
    }

    // Microbenchmark shootout: 16 x scaled flows, one number per scheme.
    let bytes = (10_000_000.0 * opts.scale) as u64;
    let micro = parallel_map(contenders(), |scheme| {
        let params = FatTreeParams::paper();
        let specs = microbench(&params, 16, bytes);
        let out = run_fat_tree(params, &scheme, &specs, SimTime::from_secs(120), opts.seed);
        let fcts: Vec<f64> = out
            .flows
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .collect();
        (
            scheme.name().to_string(),
            stats::mean(&fcts).unwrap_or(0.0),
            fcts.iter().cloned().fold(0.0, f64::max),
        )
    });
    let mut mtable = Table::new(vec!["scheme", "mean FCT", "max FCT"]);
    for (label, mean, max) in &micro {
        mtable.row(vec![label.clone(), fmt_secs(*mean), fmt_secs(*max)]);
    }

    let mut r = Report::new("flowlet");
    r.section(
        "Extension: FlowBender vs flowlet switching, all-to-all",
        table,
    );
    r.section(
        format!(
            "Extension: 16 x {} MB ToR-to-ToR microbenchmark",
            bytes / 1_000_000
        ),
        mtable,
    );
    r.note("small gaps (~RTT/2) rival FlowBender with even less reordering; large gaps degrade to ECMP — DCTCP's ack-clocked windows leave just enough idle gaps for flowlets to move");
    r.note("FlowBender's edge is *directed* rerouting: it moves because of congestion (and on RTOs around failures), not by idle-gap luck — see link-failure, hotspot and asym");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowlet_scheme_runs_and_reorders_moderately() {
        let opts = Opts {
            scale: 0.2,
            seed: 6,
            ..Opts::default()
        };
        let params = FatTreeParams::paper();
        let duration = opts.scaled(SimTime::from_ms(60));
        let window = Window::for_duration(duration, SimTime::from_ms(400));
        let mut rng = netsim::DetRng::new(opts.seed, 1);
        let specs = all_to_all(
            &params,
            0.4,
            duration,
            &FlowSizeDist::web_search(),
            &mut rng,
        );
        let out = run_fat_tree(
            params,
            &schemes::flowlet(SimTime::from_us(100)),
            &specs,
            window.drain_until,
            opts.seed,
        );
        let done = out.flows.iter().filter(|f| f.fct().is_some()).count();
        assert_eq!(
            done,
            out.flows.len(),
            "all flows must complete under flowlets"
        );
        let ooo =
            out.get(Counter::OooPktsRcvd) as f64 / out.get(Counter::DataPktsRcvd).max(1) as f64;
        // Flowlets reorder less than per-packet spraying (>10%) but are
        // not reorder-free.
        assert!(ooo < 0.10, "flowlet ooo unexpectedly high: {ooo}");
    }
}
