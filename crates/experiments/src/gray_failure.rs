//! Extension — the paper's failure argument (§1/§3.3.2) under a *gray*
//! failure: a link that is nominally up but silently dropping a fraction
//! of the packets crossing it (a flaky transceiver, a corrupting optic).
//!
//! Routing never reacts — the link reports healthy — so ECMP keeps
//! hashing the same unlucky flows onto it, and every retransmission
//! takes the same lossy path: their FCTs become timeout-dominated or the
//! flows stall outright. FlowBender sees the very same timeouts, treats
//! them as its failure signal, and bends the flow onto a clean path.
//!
//! Setup: 16 cross-pod flows on the paper fat-tree; one agg→core uplink
//! in the source pod drops packets with probability `loss` from t = 0
//! (via [`netsim::FaultPlan::gray_loss`]). We sweep `loss` over
//! {0.5%, 1%, 2%, 4%} for ECMP and FlowBender. Drop-reason audits in the
//! JSON summaries localize the gray loss to the faulted egress.

use netsim::{Counter, DropReason, FaultPlan, FlowTimeline, SimTime, TelemetryConfig, TraceConfig};
use stats::{fmt_secs, Table};
use topology::FatTreeParams;
use workloads::microbench;

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{
    parallel_map, run_fat_tree_faults_traced, run_fat_tree_sharded_faults, slowest_flows, RunOutput,
};
use crate::schemes::{self, SchemeSpec};

/// The loss rates swept by the committed experiment.
pub const LOSS_RATES: [f64; 4] = [0.005, 0.01, 0.02, 0.04];

/// Result of one `(scheme, loss rate)` run.
#[derive(Debug)]
pub struct GrayResult {
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Per-packet drop probability on the gray link.
    pub loss: f64,
    /// Flows that completed (of `flows`).
    pub completed: usize,
    /// Total flows.
    pub flows: usize,
    /// Timeouts observed.
    pub timeouts: u64,
    /// FlowBender reroutes triggered by timeouts.
    pub timeout_reroutes: u64,
    /// Packets the gray link silently ate ([`DropReason::GrayLoss`]).
    pub gray_drops: u64,
    /// Worst FCT among completed flows (s).
    pub max_fct_s: f64,
}

/// Run one scheme against one gray-loss rate.
pub fn run_scheme(
    scheme: &SchemeSpec,
    loss: f64,
    bytes: u64,
    seed: u64,
) -> (GrayResult, RunOutput) {
    run_scheme_traced(scheme, loss, bytes, seed, TraceConfig::off())
}

/// [`run_scheme`] on the sharded engine (`--shards N` lands here). Fault
/// injection itself is deterministic across shard counts, but this
/// microbenchmark's synchronized flows tie at shared switches, so a
/// sharded run is a reproducible parallel execution of the same
/// experiment rather than a byte-replica of `shards == 1` (see
/// [`run_fat_tree_sharded_faults`] for when byte-identity holds). Errors
/// on shard counts the paper fabric (4 pods) cannot host.
pub fn run_scheme_sharded(
    scheme: &SchemeSpec,
    loss: f64,
    bytes: u64,
    seed: u64,
    shards: usize,
) -> Result<(GrayResult, RunOutput), String> {
    let params = FatTreeParams::paper();
    let specs = microbench(&params, 16, bytes);
    let out = run_fat_tree_sharded_faults(
        params,
        scheme,
        &specs,
        SimTime::from_secs(60),
        seed,
        shards,
        None,
        |ft| {
            let (node, port) = ft.agg_core_link(0, 0);
            let mut plan = FaultPlan::new();
            plan.gray_loss(node, port, loss, SimTime::ZERO);
            plan
        },
    )?;
    Ok((summarize(scheme, loss, specs.len(), &out), out))
}

/// Fold one finished run into its table row.
fn summarize(scheme: &SchemeSpec, loss: f64, flows: usize, out: &RunOutput) -> GrayResult {
    let fcts: Vec<f64> = out
        .flows
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    GrayResult {
        scheme: scheme.name().to_string(),
        loss,
        completed: fcts.len(),
        flows,
        timeouts: out.get(Counter::Timeouts),
        timeout_reroutes: out.get(Counter::TimeoutReroutes),
        gray_drops: out.drops().by_reason(DropReason::GrayLoss),
        max_fct_s: fcts.iter().cloned().fold(0.0, f64::max),
    }
}

/// [`run_scheme`] with the flight recorder on for selected flows. Apart
/// from the timelines in `out.results.timelines()`, the output is
/// byte-identical to the untraced run at the same seed.
pub fn run_scheme_traced(
    scheme: &SchemeSpec,
    loss: f64,
    bytes: u64,
    seed: u64,
    trace: TraceConfig,
) -> (GrayResult, RunOutput) {
    let params = FatTreeParams::paper();
    // 16 flows: two per host pair between ToR0/pod0 and ToR0/pod1.
    let specs = microbench(&params, 16, bytes);
    let out = run_fat_tree_faults_traced(
        params,
        scheme,
        &specs,
        SimTime::from_secs(60),
        seed,
        TelemetryConfig::off(),
        trace,
        |ft| {
            // Gray out agg 0 of pod 0's first core uplink: one of the 8
            // inter-pod paths silently loses packets from the start.
            let (node, port) = ft.agg_core_link(0, 0);
            let mut plan = FaultPlan::new();
            plan.gray_loss(node, port, loss, SimTime::ZERO);
            plan
        },
    );
    let result = summarize(scheme, loss, specs.len(), &out);
    (result, out)
}

/// Produce the report: the sweep table plus one JSON run summary per
/// `(scheme, loss)` cell (each carrying its per-port drop audit).
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    assert!(
        opts.trace.is_off() || opts.shards == 1,
        "--trace needs --shards 1: the flight recorder rides the single-threaded engine"
    );
    let bytes = (10_000_000.0 * opts.scale) as u64;
    let mut jobs: Vec<(SchemeSpec, f64)> = Vec::new();
    for &loss in &LOSS_RATES {
        jobs.push((schemes::ecmp(), loss));
        jobs.push((schemes::flowbender(flowbender::Config::default()), loss));
    }
    let runs = parallel_map(jobs, |(scheme, loss)| {
        let (r, out) = run_scheme_sharded(&scheme, loss, bytes, opts.seed, opts.shards)
            .unwrap_or_else(|e| panic!("{e}"));
        // Flight recorder: resolve the selection against this cell's
        // finished run (`slowest=k` ranks its own FCTs, incomplete flows
        // first), then re-run at the same seed with the recorder on. The
        // traced run is a byte-identical replay — only the timelines are
        // taken from it.
        let timelines: Vec<FlowTimeline> = if opts.trace.is_off() {
            Vec::new()
        } else {
            let cfg = opts.trace.config_with(|k| slowest_flows(&out, k));
            let (_, traced) = run_scheme_traced(&scheme, loss, bytes, opts.seed, cfg);
            assert_eq!(
                traced.events, out.events,
                "tracing must not perturb the simulation"
            );
            traced.results.timelines().to_vec()
        };
        (r, out, timelines)
    });

    let mut table = Table::new(vec![
        "loss",
        "scheme",
        "completed",
        "timeouts",
        "timeout reroutes",
        "gray drops",
        "max FCT",
    ]);
    let mut rep = Report::new("gray_failure");
    for (r, out, timelines) in &runs {
        table.row(vec![
            format!("{:.1}%", r.loss * 100.0),
            r.scheme.to_string(),
            format!("{}/{}", r.completed, r.flows),
            r.timeouts.to_string(),
            r.timeout_reroutes.to_string(),
            r.gray_drops.to_string(),
            if r.completed > 0 {
                fmt_secs(r.max_fct_s)
            } else {
                "-".to_string()
            },
        ]);
        // `--shards 1` keeps the historical labels (and so the committed
        // JSON file names); parallel runs are tagged with their shard
        // count even though the bytes inside are identical.
        let mut label = format!(
            "{}_pm{}",
            r.scheme.to_lowercase(),
            (r.loss * 1000.0).round() as u32
        );
        if opts.shards > 1 {
            label.push_str(&format!("_shards{}", opts.shards));
        }
        rep.run_summary(RunSummary::from_run(
            label.clone(),
            &r.scheme,
            opts,
            opts.seed,
            out,
        ));
        if !timelines.is_empty() {
            rep.trace_timelines(label, timelines.clone());
        }
    }
    rep.section(
        "Gray failure: one agg->core uplink silently drops packets under 16 cross-pod flows",
        table,
    );
    rep.note("the link stays 'up', so routing never reconverges: ECMP flows hashed onto it retransmit into the same loss and go timeout-dominated (or stall); FlowBender bends off after the first RTO");
    rep.note("gray drops localize to the faulted egress in each run's JSON drop audit");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowbender_escapes_gray_link_ecmp_suffers() {
        let bytes = 3_000_000;
        let loss = 0.04;
        let (ecmp, ecmp_out) = run_scheme(&schemes::ecmp(), loss, bytes, 11);
        let (fb, _) = run_scheme(
            &schemes::flowbender(flowbender::Config::default()),
            loss,
            bytes,
            11,
        );
        assert!(ecmp.gray_drops > 0, "the gray link must actually drop");
        assert_eq!(fb.completed, fb.flows, "FlowBender must complete all flows");
        assert!(
            fb.timeout_reroutes > 0,
            "escape must go through timeout reroutes"
        );
        // ECMP either strands flows on the lossy path or limps home
        // timeout-dominated: >= 5x FlowBender's worst FCT.
        assert!(
            ecmp.completed < ecmp.flows || ecmp.max_fct_s >= 5.0 * fb.max_fct_s,
            "ECMP should stall or be >=5x slower: ecmp {}/{} max {}s vs fb max {}s",
            ecmp.completed,
            ecmp.flows,
            ecmp.max_fct_s,
            fb.max_fct_s
        );
        // The audit pins every gray drop to the one faulted egress.
        let rows = ecmp_out.drops().per_port();
        let gray_rows: Vec<_> = rows
            .iter()
            .filter(|(_, c)| c[DropReason::GrayLoss as usize] > 0)
            .collect();
        assert_eq!(gray_rows.len(), 1, "gray loss localized to one port");
        assert!(ecmp_out.conservation.holds());
    }

    #[test]
    fn sharded_gray_run_is_audited_and_reproducible() {
        // This microbenchmark's 16 synchronized flows produce same-instant
        // arrival ties at shared switches, whose resolution order is
        // engine-specific (see `run_fat_tree_sharded_faults`), so shards
        // > 1 is parallel execution of the same experiment rather than a
        // byte-replica of the classic run. What must hold: the behavioral
        // outcome, the conservation audit, and exact reproducibility at a
        // fixed shard count. (Byte-identity across shard counts is pinned
        // by the Poisson-workload property suite in tests/sharded_faults.)
        let bytes = 500_000;
        let (a, ao) = run_scheme(&schemes::ecmp(), 0.01, bytes, 7);
        for shards in [2, 4] {
            let (b, bo) = run_scheme_sharded(&schemes::ecmp(), 0.01, bytes, 7, shards).unwrap();
            assert_eq!(a.completed, b.completed, "shards={shards}");
            assert_eq!(ao.flows.len(), bo.flows.len(), "shards={shards}");
            assert!(b.gray_drops > 0, "shards={shards}: the gray link drops");
            assert!(bo.conservation.holds(), "shards={shards}");
            let (b2, bo2) = run_scheme_sharded(&schemes::ecmp(), 0.01, bytes, 7, shards).unwrap();
            assert_eq!(
                b.max_fct_s.to_bits(),
                b2.max_fct_s.to_bits(),
                "shards={shards}"
            );
            assert_eq!(bo.events, bo2.events, "shards={shards}");
            assert_eq!(bo.conservation, bo2.conservation, "shards={shards}");
        }
        let err = run_scheme_sharded(&schemes::ecmp(), 0.01, bytes, 7, 8).unwrap_err();
        assert!(err.contains("4 pods"), "paper fabric has 4 pods: {err}");
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let bytes = 500_000;
        let (a, ao) = run_scheme(&schemes::ecmp(), 0.01, bytes, 7);
        let (b, bo) = run_scheme(&schemes::ecmp(), 0.01, bytes, 7);
        assert_eq!(a.gray_drops, b.gray_drops);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.max_fct_s.to_bits(), b.max_fct_s.to_bits());
        assert_eq!(ao.events, bo.events);
        assert_eq!(ao.conservation, bo.conservation);
    }
}
