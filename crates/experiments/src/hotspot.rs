//! §4.3.1 — decongesting hotspots: a 14 Gbps TCP shuffle between two ToRs
//! shares 4 × 10 Gbps paths with a 6 Gbps rate-limited UDP flow pinned (by
//! its static hash) to one path `U`.
//!
//! Paper's result: ECMP obliviously keeps ≈ 14/4 = 3.5 Gbps of TCP on `U`
//! (≈ 9.5 Gbps total — "practically unstable"), while FlowBender migrates
//! TCP off the hotspot, leaving only ≈ 1.5 Gbps on `U` and splitting the
//! rest across the three clean paths.

use netsim::{Proto, SimTime};
use stats::{fmt_gbps, Table};
use topology::TestbedParams;
use workloads::hotspot;

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_testbed};
use crate::schemes::{self, SchemeSpec};

/// Per-path throughput for one scheme.
#[derive(Debug)]
pub struct PathLoads {
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// TCP Gbps per uplink (path) of the sending ToR.
    pub tcp_gbps: Vec<f64>,
    /// UDP Gbps per uplink.
    pub udp_gbps: Vec<f64>,
}

impl PathLoads {
    /// Index of the hotspot path `U` (where UDP landed).
    pub fn hotspot_path(&self) -> usize {
        self.udp_gbps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("at least one path")
    }

    /// TCP throughput on the hotspot path.
    pub fn tcp_on_hotspot(&self) -> f64 {
        self.tcp_gbps[self.hotspot_path()]
    }
}

/// Run the hotspot experiment for the given schemes.
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec]) -> Vec<PathLoads> {
    opts.validate();
    let params = TestbedParams::paper();
    let duration = opts.scaled(SimTime::from_ms(100));
    let src_tor = 0..params.servers_per_tor[0];
    let dst_tor = params.servers_per_tor[0]..params.servers_per_tor[0] + params.servers_per_tor[1];

    parallel_map(schemes.to_vec(), |scheme| {
        let mut rng = netsim::DetRng::new(opts.seed, 0x4075);
        let specs = hotspot(
            src_tor.clone(),
            dst_tor.clone(),
            14e9,
            6_000_000_000,
            1_000_000,
            duration,
            &mut rng,
        );
        debug_assert!(specs.iter().any(|s| s.proto == Proto::Udp));
        let watch: Vec<(usize, usize)> = (0..params.aggs).map(|a| (0usize, a)).collect();
        // No drain: throughput is measured over exactly `duration`.
        let out = run_testbed(params.clone(), &scheme, &specs, duration, opts.seed, &watch);
        let secs = duration.as_secs_f64();
        PathLoads {
            scheme: scheme.name().to_string(),
            tcp_gbps: out
                .port_stats
                .iter()
                .map(|p| p.tx_bytes_tcp as f64 * 8.0 / secs / 1e9)
                .collect(),
            udp_gbps: out
                .port_stats
                .iter()
                .map(|p| p.tx_bytes_udp as f64 * 8.0 / secs / 1e9)
                .collect(),
        }
    })
}

/// Produce the hotspot report.
pub fn run(opts: &Opts) -> Report {
    let loads = sweep(
        opts,
        &opts.scheme_selection(&[
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ]),
    );
    let mut table = Table::new(vec!["scheme", "path", "TCP", "UDP", "total", "hotspot?"]);
    for pl in &loads {
        let hot = pl.hotspot_path();
        for (i, (&t, &u)) in pl.tcp_gbps.iter().zip(&pl.udp_gbps).enumerate() {
            table.row(vec![
                pl.scheme.to_string(),
                i.to_string(),
                fmt_gbps(t * 1e9),
                fmt_gbps(u * 1e9),
                fmt_gbps((t + u) * 1e9),
                if i == hot {
                    "U".to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    let mut r = Report::new("hotspot");
    r.section(
        "§4.3.1: TCP/UDP throughput per path (UDP pinned to path U)",
        table,
    );
    for pl in &loads {
        r.note(format!(
            "{}: TCP on hotspot path U = {:.2} Gbps",
            pl.scheme,
            pl.tcp_on_hotspot()
        ));
    }
    r.note("paper: ECMP leaves ~3.5 Gbps of TCP on U (~9.5 Gbps total); FlowBender ~1.5 Gbps");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowbender_moves_tcp_off_the_hotspot() {
        let opts = Opts {
            scale: 0.5,
            seed: 4,
            ..Opts::default()
        };
        let loads = sweep(
            &opts,
            &[
                schemes::ecmp(),
                schemes::flowbender(flowbender::Config::default()),
            ],
        );
        let ecmp = &loads[0];
        let fb = &loads[1];
        // UDP pinned: its whole ~6 Gbps sits on one path in both runs.
        for pl in [&ecmp, &fb] {
            let udp_total: f64 = pl.udp_gbps.iter().sum();
            assert!((5.0..6.5).contains(&udp_total), "udp total {udp_total}");
            let hot = pl.hotspot_path();
            assert!(
                pl.udp_gbps[hot] > 0.9 * udp_total,
                "UDP not pinned to one path"
            );
        }
        // ECMP keeps roughly a fair quarter of TCP on U; FlowBender
        // substantially less.
        let e = ecmp.tcp_on_hotspot();
        let f = fb.tcp_on_hotspot();
        assert!(e > 2.0, "ECMP TCP on U = {e} Gbps (expected ~3.5)");
        assert!(f < e * 0.75, "FlowBender TCP on U = {f} vs ECMP {e}");
    }
}
