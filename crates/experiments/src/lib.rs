//! # experiments — the FlowBender (CoNEXT'14) reproduction harness
//!
//! One module per paper artifact; each produces a [`report::Report`] whose
//! tables mirror the rows/series the paper reports (normalized to ECMP
//! where the paper normalizes). The `experiments` binary exposes them as
//! subcommands; the `fb-bench` crate reuses the same entry points at
//! reduced scale for `cargo bench`.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 (functionality microbenchmark) |
//! | [`alltoall`] | Figures 3 & 4 + §4.2.3 out-of-order stats |
//! | [`fig5`] | Figure 5 (partition-aggregate) |
//! | [`sensitivity`] | Figures 6 & 7 (N and T sweeps) |
//! | [`fig8`] | Figure 8 (testbed, simulated) |
//! | [`hotspot`] | §4.3.1 (UDP hotspot decongestion) |
//! | [`topo_dep`] | §4.3.3 (path-diversity dependence) |
//! | [`link_failure`] | §1/§3.3.2 (RTO-scale failure recovery) |
//! | [`asym`] | §4.3.1 second half (asymmetric links, WCMP, weight misconfiguration) |
//! | [`buffers`] | substrate sensitivity: buffer depth vs the ECMP gap |
//! | [`flowlet`] | extension: FlowBender vs LetFlow-style flowlet switching |
//! | [`ablation`] | §3.4/§5 design refinements |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod alltoall;
pub mod asym;
pub mod buffers;
pub mod fig5;
pub mod flowlet;
pub mod fig8;
pub mod hotspot;
pub mod link_failure;
pub mod report;
pub mod scenario;
pub mod sensitivity;
pub mod table1;
pub mod topo_dep;

pub use report::{Opts, Report};
pub use scenario::{parallel_map, run_fat_tree, run_testbed, RunOutput, Scheme, Window};

/// Run every experiment and return all reports, in paper order.
pub fn run_everything(opts: &Opts) -> Vec<Report> {
    let mut reports = Vec::new();
    reports.push(table1::run(opts));
    reports.extend(alltoall::run_all(opts));
    reports.push(fig5::run(opts));
    reports.push(sensitivity::fig6(opts));
    reports.push(sensitivity::fig7(opts));
    reports.push(fig8::run(opts));
    reports.push(hotspot::run(opts));
    reports.push(topo_dep::run(opts));
    reports.push(link_failure::run(opts));
    reports.push(asym::run(opts));
    reports.push(buffers::run(opts));
    reports.push(flowlet::run(opts));
    reports.push(ablation::run(opts));
    reports
}
