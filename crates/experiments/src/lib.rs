//! # experiments — the FlowBender (CoNEXT'14) reproduction harness
//!
//! One module per paper artifact; each produces a [`report::Report`] whose
//! tables mirror the rows/series the paper reports (normalized to ECMP
//! where the paper normalizes). The `experiments` binary exposes them as
//! subcommands; the `fb-bench` crate reuses the same entry points at
//! reduced scale for `cargo bench`.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 (functionality microbenchmark) |
//! | [`alltoall`] | Figures 3 & 4 + §4.2.3 out-of-order stats |
//! | [`fig5`] | Figure 5 (partition-aggregate) |
//! | [`sensitivity`] | Figures 6 & 7 (N and T sweeps) |
//! | [`fig8`] | Figure 8 (testbed, simulated) |
//! | [`hotspot`] | §4.3.1 (UDP hotspot decongestion) |
//! | [`topo_dep`] | §4.3.3 (path-diversity dependence) |
//! | [`link_failure`] | §1/§3.3.2 (RTO-scale failure recovery) |
//! | [`gray_failure`] | extension: silent (gray) loss on one agg-core uplink |
//! | [`asym`] | §4.3.1 second half (asymmetric links, WCMP, weight misconfiguration) |
//! | [`buffers`] | substrate sensitivity: buffer depth vs the ECMP gap |
//! | [`flowlet`] | extension: FlowBender vs LetFlow-style flowlet switching |
//! | [`ablation`] | §3.4/§5 design refinements |
//! | [`repflow`] | extension: RepFlow-style short-flow replication vs rerouting |
//! | [`trace_scale`] | extension: million-flow workload engine + streaming FCT sketches |
//! | [`fabric_scale`] | extension: 1024-host all-to-all on the sharded multi-core engine |
//! | [`chaos`] | extension: incident-timeline chaos drill with reconvergence SLOs |
//! | [`feedback`] | extension: switch-assisted feedback — INT telemetry + early CN |
//! | [`reordering`] | extension: reordering cost by routing locus, incl. switch-side flowcuts |
//!
//! Which load-balancing designs exist — and how a new one is added in a
//! single file — is owned by the [`schemes`] registry; which traffic
//! patterns exist is owned by the `workloads` crate's registry (selected
//! with `--workload`); the shared runners and sweep machinery live in
//! [`scenario`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod alltoall;
pub mod asym;
pub mod buffers;
pub mod chaos;
pub mod fabric_scale;
pub mod feedback;
pub mod fig5;
pub mod fig8;
pub mod flowlet;
pub mod gray_failure;
pub mod hotspot;
pub mod link_failure;
pub mod registry;
pub mod reordering;
pub mod repflow;
pub mod report;
pub mod scenario;
pub mod schemes;
pub mod sensitivity;
pub mod table1;
pub mod topo_dep;
pub mod trace_scale;

pub use registry::{find, registry, Experiment};
pub use report::{timeline_json, Opts, Report, RunSummary, TraceSel};
pub use scenario::{
    parallel_map, parallel_map_capped, run_fat_tree, run_fat_tree_faults,
    run_fat_tree_faults_traced, run_fat_tree_sharded, run_fat_tree_sharded_faults,
    run_fat_tree_traced, run_testbed, slowest_flows, sweep_cap, sweep_schemes,
    sweep_schemes_sharded, RunOutput, ShardStats, Window,
};
pub use schemes::{Replication, SchemeSpec};

/// The error text for an unknown `--scheme` value: names the offender and
/// lists every registered scheme, mirroring the unknown-experiment error.
pub fn schemes_help(unknown: &str) -> String {
    let known = schemes::registry()
        .iter()
        .map(|s| s.name().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "unknown scheme `{unknown}`; registered schemes: {known} (try the `schemes` subcommand)"
    )
}

/// The error text for an unknown `--workload` value: names the offender
/// and lists every registered workload, mirroring [`schemes_help`].
pub fn workloads_help(unknown: &str) -> String {
    let known = workloads::registry()
        .iter()
        .map(|w| w.slug())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "unknown workload `{unknown}`; registered workloads: {known} \
         (parameterized forms like incast:1000 or hotspot:1.5 also work; \
         try the `workloads` subcommand)"
    )
}

/// Run every experiment and return all reports, in registry (paper) order.
///
/// The fig3/fig4/ooo entries share one all-to-all sweep; running them
/// through [`Experiment::run`] individually would repeat that sweep three
/// times, so this memoizes the sweep and pulls each report out by name.
pub fn run_everything(opts: &Opts) -> Vec<Report> {
    let mut sweep: Vec<Report> = Vec::new();
    let mut reports = Vec::new();
    for exp in registry() {
        match exp.name() {
            "fig3" | "fig4" | "ooo" => {
                if sweep.is_empty() {
                    sweep = alltoall::run_all(opts);
                }
                if let Some(pos) = sweep.iter().position(|r| r.name == exp.name()) {
                    reports.push(sweep.remove(pos));
                }
            }
            _ => reports.extend(exp.run(opts)),
        }
    }
    reports
}
