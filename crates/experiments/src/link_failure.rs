//! §1/§3.3.2 claim — failure recovery "essentially within an RTO":
//! FlowBender treats a retransmission timeout as the failure signal and
//! rehashes immediately, so a flow whose path dies resumes within ~RTO
//! (10 ms) instead of waiting O(seconds) for routing to reconverge (which,
//! in these runs, never happens at all).
//!
//! Setup: long ToR-to-ToR flows across pods on the paper fat-tree; at
//! t = 5 ms one agg→core link in the source pod fails. ECMP flows whose
//! hash lands on the dead link black-hole forever; FlowBender flows take
//! one RTO, bend, and finish.

use netsim::{Counter, FaultPlan, SimTime};
use stats::{fmt_secs, Table};
use topology::FatTreeParams;
use workloads::microbench;

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree_sharded_faults};
use crate::schemes::{self, SchemeSpec};

/// Result of one scheme's failure run.
#[derive(Debug)]
pub struct FailureResult {
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Flows that completed (of `flows`).
    pub completed: usize,
    /// Total flows.
    pub flows: usize,
    /// Timeouts observed.
    pub timeouts: u64,
    /// FlowBender reroutes triggered by timeouts.
    pub timeout_reroutes: u64,
    /// Worst FCT among completed flows (s).
    pub max_fct_s: f64,
}

/// Run the failure experiment for one scheme. `shards` selects the
/// engine (`--shards N`); the failure is a [`FaultPlan::kill`] — both
/// link directions die. As in the gray-failure microbenchmark, the
/// synchronized flows tie at shared switches, so a sharded run is a
/// reproducible parallel execution rather than a byte-replica of
/// `shards == 1`. Errors on shard counts the paper fabric (4 pods)
/// cannot host.
pub fn run_scheme(
    scheme: &SchemeSpec,
    bytes: u64,
    fail_at: SimTime,
    seed: u64,
    shards: usize,
) -> Result<FailureResult, String> {
    let params = FatTreeParams::paper();
    // 16 flows: two per host pair between ToR0/pod0 and ToR0/pod1.
    let specs = microbench(&params, 16, bytes);
    let out = run_fat_tree_sharded_faults(
        params,
        scheme,
        &specs,
        SimTime::from_secs(60),
        seed,
        shards,
        None,
        |ft| {
            // Fail agg 0 of pod 0's first core uplink: one of the 8
            // inter-pod paths dies. Packets already hashed onto it
            // black-hole.
            let (node, port) = ft.agg_core_link(0, 0);
            let mut plan = FaultPlan::new();
            plan.kill(node, port, fail_at);
            plan
        },
    )?;
    let fcts: Vec<f64> = out
        .flows
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    Ok(FailureResult {
        scheme: scheme.name().to_string(),
        completed: fcts.len(),
        flows: specs.len(),
        timeouts: out.get(Counter::Timeouts),
        timeout_reroutes: out.get(Counter::TimeoutReroutes),
        max_fct_s: fcts.iter().cloned().fold(0.0, f64::max),
    })
}

/// Produce the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let bytes = (10_000_000.0 * opts.scale) as u64;
    let fail_at = SimTime::from_ms(5);
    let contenders = vec![
        schemes::ecmp(),
        schemes::flowbender(flowbender::Config::default()),
    ];
    let results = parallel_map(contenders, |s| {
        run_scheme(&s, bytes, fail_at, opts.seed, opts.shards).unwrap_or_else(|e| panic!("{e}"))
    });

    let mut table = Table::new(vec![
        "scheme",
        "completed",
        "timeouts",
        "timeout reroutes",
        "max FCT",
    ]);
    for r in &results {
        table.row(vec![
            r.scheme.to_string(),
            format!("{}/{}", r.completed, r.flows),
            r.timeouts.to_string(),
            r.timeout_reroutes.to_string(),
            if r.completed > 0 {
                fmt_secs(r.max_fct_s)
            } else {
                "-".to_string()
            },
        ]);
    }
    let mut rep = Report::new("link_failure");
    rep.section(
        format!(
            "Link failure at {}: agg0->core0 in the source pod dies under 16 cross-pod flows",
            fmt_secs(fail_at.as_secs_f64())
        ),
        table,
    );
    rep.note("paper claim: FlowBender recovers within ~an RTO (10ms); ECMP flows on the dead path stall until routing reconverges (never, here)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowbender_survives_failure_ecmp_strands_flows() {
        let bytes = 3_000_000;
        let ecmp = run_scheme(&schemes::ecmp(), bytes, SimTime::from_ms(2), 21, 1).unwrap();
        let fb = run_scheme(
            &schemes::flowbender(flowbender::Config::default()),
            bytes,
            SimTime::from_ms(2),
            21,
            1,
        )
        .unwrap();
        assert_eq!(fb.completed, fb.flows, "FlowBender must complete all flows");
        assert!(
            fb.timeout_reroutes > 0,
            "recovery must go through timeout reroutes"
        );
        assert!(
            ecmp.completed < ecmp.flows,
            "ECMP should strand the flows hashed onto the dead path"
        );
        // Recovery is RTO-scale: with a 10ms RTO floor the whole 3MB flow
        // set still finishes far faster than any routing reconvergence.
        assert!(fb.max_fct_s < 5.0, "max fct = {}", fb.max_fct_s);
    }

    #[test]
    fn sharded_failure_run_strands_the_same_flows() {
        // Like the gray-failure microbenchmark, the synchronized flows
        // here tie at shared switches, so shards > 1 is not a byte-replica
        // of the classic engine — but the *experiment's* outcome (which
        // hash buckets black-hole) is topology-determined and must agree,
        // and a fixed shard count must reproduce exactly.
        let bytes = 400_000;
        let one = run_scheme(&schemes::ecmp(), bytes, SimTime::from_ms(2), 21, 1).unwrap();
        for shards in [2, 4] {
            let n = run_scheme(&schemes::ecmp(), bytes, SimTime::from_ms(2), 21, shards).unwrap();
            assert_eq!(one.completed, n.completed, "shards={shards}");
            let again =
                run_scheme(&schemes::ecmp(), bytes, SimTime::from_ms(2), 21, shards).unwrap();
            assert_eq!(
                n.max_fct_s.to_bits(),
                again.max_fct_s.to_bits(),
                "shards={shards}"
            );
        }
    }
}
