//! §1/§3.3.2 claim — failure recovery "essentially within an RTO":
//! FlowBender treats a retransmission timeout as the failure signal and
//! rehashes immediately, so a flow whose path dies resumes within ~RTO
//! (10 ms) instead of waiting O(seconds) for routing to reconverge (which,
//! in these runs, never happens at all).
//!
//! Setup: long ToR-to-ToR flows across pods on the paper fat-tree; at
//! t = 5 ms one agg→core link in the source pod fails. ECMP flows whose
//! hash lands on the dead link black-hole forever; FlowBender flows take
//! one RTO, bend, and finish.

use netsim::{Counter, SimTime, Simulator};
use stats::{fmt_secs, Table};
use topology::{build_fat_tree, FatTreeParams};
use transport::install_agents;
use workloads::microbench;

use crate::report::{Opts, Report};
use crate::scenario::parallel_map;
use crate::schemes::{self, SchemeSpec};

/// Result of one scheme's failure run.
#[derive(Debug)]
pub struct FailureResult {
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Flows that completed (of `flows`).
    pub completed: usize,
    /// Total flows.
    pub flows: usize,
    /// Timeouts observed.
    pub timeouts: u64,
    /// FlowBender reroutes triggered by timeouts.
    pub timeout_reroutes: u64,
    /// Worst FCT among completed flows (s).
    pub max_fct_s: f64,
}

/// Run the failure experiment for one scheme.
pub fn run_scheme(scheme: &SchemeSpec, bytes: u64, fail_at: SimTime, seed: u64) -> FailureResult {
    let params = FatTreeParams::paper();
    let mut sim = Simulator::new(seed);
    let ft = build_fat_tree(&mut sim, params, scheme.switch_config());
    // 16 flows: two per host pair between ToR0/pod0 and ToR0/pod1.
    let specs = microbench(&params, 16, bytes);
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    // Fail agg 0 of pod 0's first core uplink: one of the 8 inter-pod
    // paths dies. Packets already hashed onto it black-hole.
    let (node, port) = ft.agg_core_link(0, 0);
    sim.schedule_link_state(node, port, false, fail_at);
    sim.run_until(SimTime::from_secs(60));
    let rec = sim.recorder();
    let fcts: Vec<f64> = rec
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    FailureResult {
        scheme: scheme.name().to_string(),
        completed: fcts.len(),
        flows: specs.len(),
        timeouts: rec.get(Counter::Timeouts),
        timeout_reroutes: rec.get(Counter::TimeoutReroutes),
        max_fct_s: fcts.iter().cloned().fold(0.0, f64::max),
    }
}

/// Produce the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let bytes = (10_000_000.0 * opts.scale) as u64;
    let fail_at = SimTime::from_ms(5);
    let contenders = vec![
        schemes::ecmp(),
        schemes::flowbender(flowbender::Config::default()),
    ];
    let results = parallel_map(contenders, |s| run_scheme(&s, bytes, fail_at, opts.seed));

    let mut table = Table::new(vec![
        "scheme",
        "completed",
        "timeouts",
        "timeout reroutes",
        "max FCT",
    ]);
    for r in &results {
        table.row(vec![
            r.scheme.to_string(),
            format!("{}/{}", r.completed, r.flows),
            r.timeouts.to_string(),
            r.timeout_reroutes.to_string(),
            if r.completed > 0 {
                fmt_secs(r.max_fct_s)
            } else {
                "-".to_string()
            },
        ]);
    }
    let mut rep = Report::new("link_failure");
    rep.section(
        format!(
            "Link failure at {}: agg0->core0 in the source pod dies under 16 cross-pod flows",
            fmt_secs(fail_at.as_secs_f64())
        ),
        table,
    );
    rep.note("paper claim: FlowBender recovers within ~an RTO (10ms); ECMP flows on the dead path stall until routing reconverges (never, here)");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowbender_survives_failure_ecmp_strands_flows() {
        let bytes = 3_000_000;
        let ecmp = run_scheme(&schemes::ecmp(), bytes, SimTime::from_ms(2), 21);
        let fb = run_scheme(
            &schemes::flowbender(flowbender::Config::default()),
            bytes,
            SimTime::from_ms(2),
            21,
        );
        assert_eq!(fb.completed, fb.flows, "FlowBender must complete all flows");
        assert!(
            fb.timeout_reroutes > 0,
            "recovery must go through timeout reroutes"
        );
        assert!(
            ecmp.completed < ecmp.flows,
            "ECMP should strand the flows hashed onto the dead path"
        );
        // Recovery is RTO-scale: with a 10ms RTO floor the whole 3MB flow
        // set still finishes far faster than any routing reconvergence.
        assert!(fb.max_fct_s < 5.0, "max fct = {}", fb.max_fct_s);
    }
}
