//! CLI for the FlowBender reproduction harness.
//!
//! ```text
//! experiments <command> [--scale F] [--seed N] [--out DIR]
//!
//! commands:
//!   table1        Table 1: 250MB ToR-to-ToR microbenchmark
//!   fig3          Fig 3: all-to-all mean latency (runs the fig3/4/ooo sweep)
//!   fig4          Fig 4: all-to-all p99 latency (same sweep)
//!   ooo           §4.2.3: out-of-order statistics (same sweep)
//!   fig5          Fig 5: partition-aggregate
//!   fig6          Fig 6: sensitivity to N
//!   fig7          Fig 7: sensitivity to T
//!   fig8          Fig 8: testbed (simulated)
//!   hotspot       §4.3.1: UDP hotspot decongestion
//!   topo-dep      §4.3.3: path-diversity dependence
//!   link-failure  §3.3.2: RTO-scale failure recovery
//!   asym          §4.3.1: asymmetric links, WCMP, weight misconfiguration
//!   buffers       substrate sensitivity: buffer depth vs the ECMP gap
//!   flowlet       extension: FlowBender vs flowlet switching
//!   ablation      §3.4/§5 design refinements
//!   all           everything above
//!
//! options:
//!   --scale F   duration/size multiplier (default 1.0; ~10 approaches
//!               the paper's full scale)
//!   --seed N    master seed (default 1)
//!   --out DIR   also write .txt/.csv reports there (default: results/)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::{report::Opts, Report};

fn usage() -> ! {
    eprint!("{}", USAGE);
    std::process::exit(2);
}

const USAGE: &str = "usage: experiments <command> [--scale F] [--seed N] [--out DIR]\n\
commands: table1 fig3 fig4 ooo fig5 fig6 fig7 fig8 hotspot topo-dep link-failure asym buffers flowlet ablation all\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut opts = Opts::default();
    let mut out_dir = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out_dir = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }
    opts.validate();

    let started = std::time::Instant::now();
    let reports: Vec<Report> = match command.as_str() {
        "table1" => vec![experiments::table1::run(&opts)],
        "fig3" | "fig4" | "ooo" => {
            let all = experiments::alltoall::run_all(&opts);
            let want = match command.as_str() {
                "fig3" => "fig3",
                "fig4" => "fig4",
                _ => "ooo",
            };
            all.into_iter().filter(|r| r.name == want).collect()
        }
        "fig5" => vec![experiments::fig5::run(&opts)],
        "fig6" => vec![experiments::sensitivity::fig6(&opts)],
        "fig7" => vec![experiments::sensitivity::fig7(&opts)],
        "fig8" => vec![experiments::fig8::run(&opts)],
        "hotspot" => vec![experiments::hotspot::run(&opts)],
        "topo-dep" => vec![experiments::topo_dep::run(&opts)],
        "link-failure" => vec![experiments::link_failure::run(&opts)],
        "asym" => vec![experiments::asym::run(&opts)],
        "buffers" => vec![experiments::buffers::run(&opts)],
        "flowlet" => vec![experiments::flowlet::run(&opts)],
        "ablation" => vec![experiments::ablation::run(&opts)],
        "all" => experiments::run_everything(&opts),
        _ => usage(),
    };

    for report in &reports {
        println!("{}", report.render());
        if let Err(e) = report.write_files(&out_dir) {
            eprintln!("warning: could not write {} files: {e}", report.name);
        }
    }
    eprintln!(
        "[{} report(s) in {:.1}s; scale={}, seed={}; files under {}]",
        reports.len(),
        started.elapsed().as_secs_f64(),
        opts.scale,
        opts.seed,
        out_dir.display()
    );
    ExitCode::SUCCESS
}
