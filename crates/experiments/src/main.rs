//! CLI for the FlowBender reproduction harness.
//!
//! ```text
//! experiments <command> [--scale F] [--seed N] [--scheme A,B] [--workload W]
//!                       [--out DIR] [--json DIR] [--trace flow=ID[,ID..]|slowest=K]
//!                       [--shards N] [--topo k=K] [--smoke]
//! ```
//!
//! The command list and descriptions come from the experiment registry
//! ([`experiments::registry`]); run with no arguments to see it. The
//! `schemes` subcommand prints the scheme registry, and `--scheme a,b`
//! narrows an experiment to a named selection; the `workloads` subcommand
//! prints the traffic-pattern registry, and `--workload <slug>` swaps the
//! generator of experiments that honor it. Besides the rendered
//! tables (`--out`), `--json DIR` writes one deterministic
//! machine-readable JSON file per instrumented run plus a
//! `BENCH_run.json` wall-clock record for the whole invocation.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::{report::Opts, Report};
use stats::Json;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <command> [--scale F] [--seed N] [--scheme A,B] [--workload W] [--out DIR] [--json DIR] [--trace SEL] [--shards N] [--topo k=K] [--smoke]"
    );
    eprintln!();
    eprintln!("commands:");
    for e in experiments::registry() {
        eprintln!("  {:<13} {}", e.name(), e.describe());
    }
    eprintln!("  {:<13} everything above", "all");
    eprintln!(
        "  {:<13} list the registered load-balancing schemes",
        "schemes"
    );
    eprintln!(
        "  {:<13} list the registered traffic workloads",
        "workloads"
    );
    eprintln!();
    eprintln!("options:");
    eprintln!("  --scale F    duration/size multiplier (default 1.0; ~10 approaches");
    eprintln!("               the paper's full scale)");
    eprintln!("  --seed N     master seed (default 1)");
    eprintln!("  --scheme A,B comma-separated scheme selection (see `schemes`);");
    eprintln!("               default: each experiment's own set");
    eprintln!("  --workload W traffic workload slug (see `workloads`); parameterized");
    eprintln!("               forms like incast:1000 or hotspot:1.5 work too;");
    eprintln!("               default: each experiment's own generator");
    eprintln!("  --out DIR    also write .txt/.csv reports there (default: results/)");
    eprintln!("  --json DIR   write per-run JSON summaries and BENCH_run.json there");
    eprintln!("  --trace SEL  flight recorder: flow=<id>[,<id>...] traces those flows,");
    eprintln!("               slowest=<k> traces the k slowest TCP flows (found by an");
    eprintln!("               untraced probe run); one timeline JSON per flow under --json");
    eprintln!("  --shards N   worker threads for the sharded engine (default 1 — the");
    eprintln!("               classic single-threaded engine; Poisson-workload results");
    eprintln!("               are identical at any N). honored by: fabric-scale, chaos,");
    eprintln!("               gray-failure, link-failure, feedback");
    eprintln!("  --topo k=K   k-ary fat-tree arity for fabric-building experiments");
    eprintln!("               (hosts = k^3/4: k=8 -> 128, k=16 -> 1024, k=32 -> 8192)");
    eprintln!("  --smoke      CI-sized run: smaller fabric and shorter windows");
    std::process::exit(2);
}

/// Print the scheme registry: one row per scheme with both halves of the
/// design (what the switches do, what the host stack does).
fn print_schemes() {
    let mut table = stats::Table::new(vec!["scheme", "switch side", "host side", "summary"]);
    for s in experiments::schemes::registry() {
        table.row(vec![
            s.name().to_string(),
            s.fabric_desc().to_string(),
            s.host_desc().to_string(),
            s.brief_desc().to_string(),
        ]);
    }
    println!("registered schemes (select with --scheme, names or slugs):\n");
    print!("{}", table.render());
}

/// Print the workload registry: one row per traffic pattern, with its
/// selection slug, parameter form, and whether it can stream.
fn print_workloads() {
    let mut table = stats::Table::new(vec!["workload", "slug", "streams", "summary"]);
    for w in workloads::registry() {
        table.row(vec![
            w.name(),
            w.slug(),
            if w.stream_dist().is_some() {
                "yes".to_string()
            } else {
                "no".to_string()
            },
            w.brief(),
        ]);
    }
    println!("registered workloads (select with --workload, slugs or parameterized");
    println!("forms like incast:1000, hotspot:1.5, onoff:8):\n");
    print!("{}", table.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    if command == "schemes" {
        print_schemes();
        return ExitCode::SUCCESS;
    }
    if command == "workloads" {
        print_workloads();
        return ExitCode::SUCCESS;
    }
    let mut opts = Opts::default();
    let mut out_dir = PathBuf::from("results");
    let mut json_dir: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out_dir = PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage()));
                i += 2;
            }
            "--json" => {
                json_dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| usage())));
                i += 2;
            }
            "--scheme" => {
                let list = args.get(i + 1).unwrap_or_else(|| usage());
                opts.schemes
                    .extend(list.split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            "--workload" => {
                let w = args.get(i + 1).unwrap_or_else(|| usage());
                opts.workload = Some(w.trim().to_string());
                i += 2;
            }
            "--trace" => {
                let sel = args.get(i + 1).unwrap_or_else(|| usage());
                match experiments::TraceSel::parse(sel) {
                    Ok(t) => opts.trace = t,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--shards" => {
                let n = args.get(i + 1).unwrap_or_else(|| usage());
                match n.parse::<usize>() {
                    Ok(n) => opts.shards = n,
                    Err(_) => {
                        eprintln!("error: --shards {n}: pass a whole number of worker shards");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--topo" => {
                let spec = args.get(i + 1).unwrap_or_else(|| usage());
                let Some(k) = spec
                    .strip_prefix("k=")
                    .and_then(|v| v.parse::<usize>().ok())
                else {
                    eprintln!(
                        "error: --topo {spec}: expected k=<even K>, e.g. --topo k=16 \
                         for a 1024-host fat-tree"
                    );
                    return ExitCode::from(2);
                };
                opts.topo_k = Some(k);
                i += 2;
            }
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    if let Err(e) = opts.check() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    let started = std::time::Instant::now();
    let reports: Vec<Report> = if command == "all" {
        experiments::run_everything(&opts)
    } else {
        match experiments::find(&command) {
            Some(exp) => exp.run(&opts),
            None => {
                eprintln!("error: unknown experiment '{command}'");
                let names: Vec<&str> = experiments::registry().iter().map(|e| e.name()).collect();
                eprintln!("available: {} (or 'all')", names.join(", "));
                return ExitCode::from(2);
            }
        }
    };

    if !opts.trace.is_off() && reports.iter().all(|r| r.traces.is_empty()) {
        eprintln!(
            "warning: --trace requested but `{command}` attached no timelines \
             (the flight recorder is wired into: gray-failure, feedback)"
        );
    }
    for report in &reports {
        println!("{}", report.render());
        if let Err(e) = report.write_files(&out_dir) {
            eprintln!("warning: could not write {} files: {e}", report.name);
        }
    }
    if let Some(dir) = &json_dir {
        let mut written = 0usize;
        for report in &reports {
            match report.write_json(dir) {
                Ok(files) => written += files.len(),
                Err(e) => eprintln!("warning: could not write {} JSON: {e}", report.name),
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        let total_events: u64 = reports
            .iter()
            .flat_map(|r| r.runs.iter())
            .map(|s| s.events)
            .sum();
        let mut bench = Json::obj();
        bench.set("command", Json::str(&command));
        bench.set("scale", Json::Num(opts.scale));
        bench.set("seed", Json::U64(opts.seed));
        bench.set("wall_s", Json::Num(wall_s));
        bench.set("total_events", Json::U64(total_events));
        bench.set(
            "events_per_sec",
            Json::Num(if wall_s > 0.0 {
                total_events as f64 / wall_s
            } else {
                0.0
            }),
        );
        bench.set("runs_written", Json::U64(written as u64));
        if let Err(e) = std::fs::write(dir.join("BENCH_run.json"), bench.to_string_pretty()) {
            eprintln!("warning: could not write BENCH_run.json: {e}");
        }
        eprintln!(
            "[{} run summaries + BENCH_run.json under {}]",
            written,
            dir.display()
        );
    }
    eprintln!(
        "[{} report(s) in {:.1}s; scale={}, seed={}; files under {}]",
        reports.len(),
        started.elapsed().as_secs_f64(),
        opts.scale,
        opts.seed,
        out_dir.display()
    );
    ExitCode::SUCCESS
}
