//! The experiment registry: every paper artifact as a named, describable,
//! runnable unit.
//!
//! The CLI, `run_everything`, and usage text all iterate [`registry`]
//! instead of hard-coding a command list, so adding an experiment is one
//! `experiment!` line here plus its module. Entries appear in the paper's
//! presentation order.

use crate::report::{Opts, Report};

/// One runnable experiment from the paper (or an extension).
///
/// Implementations are stateless unit structs; all run parameters come in
/// through [`Opts`]. `run` returns a `Vec` because a few commands (the
/// all-to-all sweep) naturally produce several reports from one pass.
pub trait Experiment: Sync {
    /// Subcommand name (e.g. `"fig3"`, `"link-failure"`).
    fn name(&self) -> &'static str;
    /// One-line description shown in the usage text.
    fn describe(&self) -> &'static str;
    /// Run the experiment.
    fn run(&self, opts: &Opts) -> Vec<Report>;
}

/// Defines a unit struct implementing [`Experiment`] with a closure body.
macro_rules! experiment {
    ($ty:ident, $name:expr, $desc:expr, $run:expr) => {
        struct $ty;
        impl Experiment for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn describe(&self) -> &'static str {
                $desc
            }
            fn run(&self, opts: &Opts) -> Vec<Report> {
                #[allow(clippy::redundant_closure_call)]
                ($run)(opts)
            }
        }
    };
}

/// The fig3/fig4/ooo commands share one all-to-all sweep; each entry runs
/// the sweep and keeps its own report.
fn alltoall_one(name: &str, opts: &Opts) -> Vec<Report> {
    crate::alltoall::run_all(opts)
        .into_iter()
        .filter(|r| r.name == name)
        .collect()
}

experiment!(
    Table1,
    "table1",
    "Table 1: 250MB ToR-to-ToR microbenchmark",
    |opts: &Opts| vec![crate::table1::run(opts)]
);
experiment!(
    Fig3,
    "fig3",
    "Fig 3: all-to-all mean latency (runs the fig3/4/ooo sweep)",
    |opts: &Opts| alltoall_one("fig3", opts)
);
experiment!(
    Fig4,
    "fig4",
    "Fig 4: all-to-all p99 latency (same sweep)",
    |opts: &Opts| { alltoall_one("fig4", opts) }
);
experiment!(
    Ooo,
    "ooo",
    "S4.2.3: out-of-order statistics (same sweep)",
    |opts: &Opts| { alltoall_one("ooo", opts) }
);
experiment!(
    Fig5,
    "fig5",
    "Fig 5: partition-aggregate",
    |opts: &Opts| vec![crate::fig5::run(opts)]
);
experiment!(Fig6, "fig6", "Fig 6: sensitivity to N", |opts: &Opts| vec![
    crate::sensitivity::fig6(opts)
]);
experiment!(Fig7, "fig7", "Fig 7: sensitivity to T", |opts: &Opts| vec![
    crate::sensitivity::fig7(opts)
]);
experiment!(
    Fig8,
    "fig8",
    "Fig 8: testbed (simulated)",
    |opts: &Opts| vec![crate::fig8::run(opts)]
);
experiment!(
    Hotspot,
    "hotspot",
    "S4.3.1: UDP hotspot decongestion",
    |opts: &Opts| vec![crate::hotspot::run(opts)]
);
experiment!(
    TopoDep,
    "topo-dep",
    "S4.3.3: path-diversity dependence",
    |opts: &Opts| vec![crate::topo_dep::run(opts)]
);
experiment!(
    LinkFailure,
    "link-failure",
    "S3.3.2: RTO-scale failure recovery",
    |opts: &Opts| vec![crate::link_failure::run(opts)]
);
experiment!(
    GrayFailure,
    "gray-failure",
    "extension: gray failure — silent loss on one agg-core uplink",
    |opts: &Opts| vec![crate::gray_failure::run(opts)]
);
experiment!(
    Asym,
    "asym",
    "S4.3.1: asymmetric links, WCMP, weight misconfiguration",
    |opts: &Opts| vec![crate::asym::run(opts)]
);
experiment!(
    Buffers,
    "buffers",
    "substrate sensitivity: buffer depth vs the ECMP gap",
    |opts: &Opts| vec![crate::buffers::run(opts)]
);
experiment!(
    FlowletExt,
    "flowlet",
    "extension: FlowBender vs flowlet switching",
    |opts: &Opts| vec![crate::flowlet::run(opts)]
);
experiment!(
    Ablation,
    "ablation",
    "S3.4/S5 design refinements",
    |opts: &Opts| vec![crate::ablation::run(opts)]
);
experiment!(
    RepFlow,
    "repflow",
    "extension: RepFlow-style short-flow replication vs rerouting",
    |opts: &Opts| vec![crate::repflow::run(opts)]
);
experiment!(
    TraceScale,
    "trace-scale",
    "extension: million-flow workload engine + streaming FCT sketches",
    |opts: &Opts| vec![crate::trace_scale::run(opts)]
);
experiment!(
    FabricScale,
    "fabric-scale",
    "extension: 1024-host all-to-all on the sharded multi-core engine",
    |opts: &Opts| vec![crate::fabric_scale::run(opts)]
);
experiment!(
    Chaos,
    "chaos",
    "extension: incident-timeline chaos drill with reconvergence SLOs",
    |opts: &Opts| vec![crate::chaos::run(opts)]
);
experiment!(
    Feedback,
    "feedback",
    "extension: switch-assisted feedback — INT telemetry + early CN vs the ECN echo",
    |opts: &Opts| vec![crate::feedback::run(opts)]
);
experiment!(
    Reordering,
    "reordering",
    "extension: reordering cost by routing locus — spraying vs switch-side flowcuts",
    |opts: &Opts| vec![crate::reordering::run(opts)]
);

static REGISTRY: [&dyn Experiment; 22] = [
    &Table1,
    &Fig3,
    &Fig4,
    &Ooo,
    &Fig5,
    &Fig6,
    &Fig7,
    &Fig8,
    &Hotspot,
    &TopoDep,
    &LinkFailure,
    &GrayFailure,
    &Asym,
    &Buffers,
    &FlowletExt,
    &Ablation,
    &RepFlow,
    &TraceScale,
    &FabricScale,
    &Chaos,
    &Feedback,
    &Reordering,
];

/// All experiments, in the paper's presentation order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Look up an experiment by its subcommand name. Underscores are
/// accepted as hyphens (`gray_failure` finds `gray-failure`), since the
/// report files on disk use the underscored spelling.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    let canon = name.replace('_', "-");
    registry().iter().copied().find(|e| e.name() == canon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut seen = std::collections::HashSet::new();
        for e in registry() {
            assert!(
                seen.insert(e.name()),
                "duplicate experiment name {}",
                e.name()
            );
            assert!(!e.describe().is_empty());
            let found = find(e.name()).expect("registered name must resolve");
            assert_eq!(found.name(), e.name());
        }
        assert_eq!(registry().len(), 22);
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn find_accepts_underscored_spellings() {
        assert_eq!(find("gray_failure").unwrap().name(), "gray-failure");
        assert_eq!(find("link_failure").unwrap().name(), "link-failure");
        assert_eq!(find("topo_dep").unwrap().name(), "topo-dep");
    }

    #[test]
    fn registry_reports_use_their_own_name() {
        // Cheap spot check on the shared-sweep filter plumbing: the fig4
        // entry must hand back exactly the report named "fig4". Running a
        // real sweep here would be slow, so only check the filter logic
        // against the registry's naming contract.
        for name in ["fig3", "fig4", "ooo"] {
            assert!(find(name).is_some());
        }
    }
}
