//! `reordering` — the cost of packet spraying, made visible: what each
//! load-balancing locus does to packet order, and what disorder costs the
//! transport.
//!
//! Six schemes spanning the three routing loci: flow-level (ECMP,
//! FlowBender), packet-level (RPS, DeTail), and flowcut-level — host-side
//! gap switching (`Flowcut`) and switch-side flowcut switching
//! (`Flowcut-SW`, after Bonato et al.), where the fabric re-routes
//! adaptively but only at instants where the flow's in-flight data has
//! provably drained, so delivery stays in order.
//!
//! The metric suite is the receiver's and sender's own accounting, not a
//! model: out-of-order arrivals ([`Counter::OooPktsRcvd`]), duplicate wire
//! bytes ([`Counter::DupBytes`]), the reassembly buffer's high-water mark
//! ([`Counter::OooBytesMax`] — max-merged across shards), and the sender's
//! misfires — spurious fast retransmits proven by DSACKs
//! ([`Counter::SpuriousRetransmits`]) and the cwnd undos they trigger
//! ([`Counter::DsackUndos`]). For the flowcut fabric the pin/boundary
//! counters ([`Counter::FlowcutPinned`], [`Counter::FlowcutReroutes`])
//! show how often re-routing actually happened.
//!
//! Runs go through the sharded engine, so `--shards N` works; the default
//! Poisson workloads are byte-identical across shard counts.

use netsim::{Counter, DetRng, SimTime};
use stats::{completion_fraction, fmt_secs, percentile, samples, Table};
use topology::FatTreeParams;

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{run_fat_tree_sharded, sweep_schemes_sharded, RunOutput, Window};
use crate::schemes::{self, SchemeSpec};

/// Offered load (fraction of edge bandwidth): enough concurrency that
/// spraying actually interleaves paths, not enough to melt the fabric.
pub const LOAD: f64 = 0.3;

/// RNG stream tag for the workload generators.
const STREAM_TAG: u64 = 0x00DD_BA11;

/// Workload slugs swept by default. Both are Poisson (no synchronized
/// ties), so every cell is byte-identical across shard counts.
pub fn default_workloads() -> Vec<String> {
    vec!["websearch".into(), "hotspot".into()]
}

/// The fabric arity this invocation runs: `--topo k=K` if given, else
/// k=8 (128 hosts) — or k=4 (16 hosts) under `--smoke`.
pub fn arity(opts: &Opts) -> usize {
    opts.topo_k.unwrap_or(if opts.smoke { 4 } else { 8 })
}

/// The default scheme set: the three routing loci, two schemes each.
pub fn default_schemes() -> Vec<SchemeSpec> {
    vec![
        schemes::ecmp(),
        schemes::flowbender(Default::default()),
        schemes::rps(),
        schemes::detail(),
        schemes::flowcut(SimTime::from_us(100)),
        schemes::flowcut_sw(SimTime::from_us(100)),
    ]
}

/// One (workload, scheme) cell of the reordering sweep.
#[derive(Debug)]
pub struct ReorderResult {
    /// Scheme display name.
    pub scheme: String,
    /// Workload display name.
    pub workload: String,
    /// Flows the generator emitted.
    pub flows: usize,
    /// Fraction of in-window flows that completed.
    pub completion: f64,
    /// p99 FCT (seconds) over in-window completions.
    pub p99_s: f64,
    /// Data packets the receivers saw.
    pub data_rcvd: u64,
    /// Packets that arrived after a later sequence number.
    pub ooo_rcvd: u64,
    /// Spurious fast retransmits (each proven by a DSACK).
    pub spurious_rexmit: u64,
    /// cwnd undos those DSACKs triggered.
    pub dsack_undos: u64,
    /// Wire bytes delivered twice.
    pub dup_bytes: u64,
    /// Peak bytes parked in any receiver's reassembly buffer.
    pub ooo_bytes_max: u64,
    /// Flowcut boundary re-routes the fabric performed (flowcut fabrics
    /// only; zero elsewhere).
    pub flowcut_reroutes: u64,
}

fn measurement(opts: &Opts) -> Window {
    let base = if opts.smoke {
        SimTime::from_us(400)
    } else {
        SimTime::from_ms(2)
    };
    Window::for_duration(opts.scaled(base), SimTime::from_ms(20))
}

/// Generate the flow list for one cell (deterministic in `(seed, slug)`,
/// independent of scheme and shard count).
fn gen_specs(
    opts: &Opts,
    params: &FatTreeParams,
    wl_slug: &str,
    window: Window,
) -> Vec<netsim::FlowSpec> {
    let wl = workloads::find(wl_slug).unwrap_or_else(|| panic!("unknown workload `{wl_slug}`"));
    let mut rng = DetRng::new(opts.seed, STREAM_TAG);
    wl.generate(params, LOAD, window.end, &mut rng)
}

/// Run one (scheme, workload) cell through the sharded engine.
pub fn run_one(opts: &Opts, scheme: &SchemeSpec, wl_slug: &str) -> (ReorderResult, RunOutput) {
    let params = FatTreeParams::k_ary(arity(opts)).expect("arity checked by Opts::check");
    let window = measurement(opts);
    let specs = gen_specs(opts, &params, wl_slug, window);
    let out = run_fat_tree_sharded(
        params,
        scheme,
        &specs,
        window.drain_until,
        opts.seed,
        opts.shards,
    )
    .expect("shard plan checked by Opts::check");

    let flows = out.effective_flows();
    let fcts: Vec<f64> = samples(&flows, window.start, window.end)
        .iter()
        .map(|s| s.fct_s)
        .collect();
    let digest = ReorderResult {
        scheme: scheme.name().to_string(),
        workload: workloads::find(wl_slug).expect("resolved above").name(),
        flows: specs.len(),
        completion: completion_fraction(&flows, window.start, window.end),
        p99_s: percentile(&fcts, 0.99).unwrap_or(0.0),
        data_rcvd: out.get(Counter::DataPktsRcvd),
        ooo_rcvd: out.get(Counter::OooPktsRcvd),
        spurious_rexmit: out.get(Counter::SpuriousRetransmits),
        dsack_undos: out.get(Counter::DsackUndos),
        dup_bytes: out.get(Counter::DupBytes),
        ooo_bytes_max: out.get(Counter::OooBytesMax),
        flowcut_reroutes: out.get(Counter::FlowcutReroutes),
    };
    (digest, out)
}

/// Run the reordering experiment and build the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let k = arity(opts);
    let params = FatTreeParams::k_ary(k).expect("arity checked by Opts::check");
    let selection = opts.scheme_selection(&default_schemes());
    let wl_slugs: Vec<String> = match &opts.workload {
        Some(w) => vec![w.clone()],
        None => default_workloads(),
    };

    let runs = sweep_schemes_sharded(&selection, &wl_slugs, opts.shards, |scheme, wl| {
        run_one(opts, scheme, wl)
    });

    let mut report = Report::new("reordering");
    for (wl, cells) in wl_slugs.iter().zip(runs) {
        let wl_name = cells
            .first()
            .map(|(r, _)| r.workload.clone())
            .unwrap_or_else(|| wl.clone());
        let wl_label = workloads::find(wl).expect("resolved by run_one").slug();
        let mut table = Table::new(vec![
            "scheme",
            "complete",
            "p99 FCT",
            "ooo pkts",
            "spurious rtx",
            "dsack undos",
            "dup bytes",
            "ooo buf max",
            "fc reroutes",
        ]);
        for (scheme, (r, out)) in selection.iter().zip(cells) {
            let label = format!(
                "{wl_label}_{}_shards{}_seed{}",
                scheme.slug(),
                opts.shards,
                opts.seed
            );
            report.run_summary(RunSummary::from_run(
                label,
                scheme.name(),
                opts,
                opts.seed,
                &out,
            ));
            let pct = |n: u64| {
                if r.data_rcvd == 0 {
                    "-".to_string()
                } else {
                    format!("{n} ({:.2}%)", n as f64 * 100.0 / r.data_rcvd as f64)
                }
            };
            table.row(vec![
                r.scheme.clone(),
                format!("{:.1}%", r.completion * 100.0),
                if r.p99_s > 0.0 {
                    fmt_secs(r.p99_s)
                } else {
                    "-".into()
                },
                pct(r.ooo_rcvd),
                r.spurious_rexmit.to_string(),
                r.dsack_undos.to_string(),
                r.dup_bytes.to_string(),
                r.ooo_bytes_max.to_string(),
                if r.flowcut_reroutes > 0 {
                    r.flowcut_reroutes.to_string()
                } else {
                    "-".into()
                },
            ]);
        }
        report.section(
            format!(
                "Reordering cost by routing locus on {wl_name}: k={k} fat-tree \
                 ({} hosts) at {:.0}% load, {} shard(s)",
                params.n_hosts(),
                LOAD * 100.0,
                opts.shards
            ),
            table,
        );
    }
    report.note(
        "ooo pkts = packets arriving after a later sequence was already seen \
         (receiver accounting, % of data received); spurious rtx = fast \
         retransmits the receiver proved unnecessary via DSACK; dup bytes = \
         wire bytes delivered twice; ooo buf max = peak bytes parked in a \
         reassembly buffer (max-merged across shards)",
    );
    report.note(
        "Flowcut-SW re-routes only at boundaries where the flow's in-flight \
         data has drained (idle gap > 100us, pinned port held while \
         uncongested), so delivery is in order whenever the gap exceeds the \
         fabric's residual queueing skew — exactly zero ooo on uncongested \
         paths, orders of magnitude below RPS/DeTail when a congested queue \
         outlives the gap, and zero spurious retransmits either way",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> Opts {
        Opts {
            seed: 7,
            topo_k: Some(4),
            smoke: true,
            ..Opts::default()
        }
    }

    fn cnt(s: &RunSummary, name: &str) -> Option<u64> {
        s.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The acceptance table of the experiment: packet-level spraying shows
    /// its reordering bill, switch flowcuts deliver fully in order in the
    /// same table.
    #[test]
    fn spraying_reorders_and_switch_flowcuts_do_not() {
        let r = run(&smoke_opts());
        assert_eq!(r.name, "reordering");
        assert_eq!(r.sections.len(), 2, "websearch + hotspot");
        assert_eq!(r.sections[0].1.len(), 6, "six scheme rows per workload");
        assert_eq!(r.runs.len(), 12, "one JSON summary per cell");

        let by_label = |frag: &str| {
            r.runs
                .iter()
                .find(|s| s.label.starts_with("websearch") && s.label.contains(frag))
                .unwrap_or_else(|| panic!("no websearch summary for {frag}"))
        };
        let rps = by_label("_rps_");
        assert!(
            cnt(rps, "ooo_pkts_rcvd").unwrap_or(0) > 0,
            "RPS must reorder: {:?}",
            rps.counters
        );
        let flowcut_sw = by_label("flowcut_sw");
        assert_eq!(
            cnt(flowcut_sw, "ooo_pkts_rcvd").unwrap_or(0),
            0,
            "switch flowcuts must deliver in order: {:?}",
            flowcut_sw.counters
        );
        assert!(
            cnt(flowcut_sw, "spurious_retransmits").is_none(),
            "in-order delivery cannot produce spurious retransmits \
             (zero-valued reordering metrics are omitted): {:?}",
            flowcut_sw.counters
        );
        assert!(
            cnt(flowcut_sw, "flowcut_pinned").unwrap_or(0) > 0,
            "the flowcut fabric must actually pin flows: {:?}",
            flowcut_sw.counters
        );
        // ECMP never moves a flow, so its summary carries no reordering
        // metrics at all (omitted while zero) — the pre-PR layout.
        let ecmp = by_label("_ecmp_");
        assert!(cnt(ecmp, "spurious_retransmits").is_none());
        assert!(cnt(ecmp, "dup_bytes").is_none());
        assert!(cnt(ecmp, "flowcut_reroutes").is_none());
    }

    /// RPS under the default dupack threshold misfires, and the misfires
    /// are the DSACK-accounted kind: every undo needs a spurious
    /// retransmit, and duplicate bytes back the story.
    #[test]
    fn rps_misfires_are_dsack_accounted() {
        let (r, _) = run_one(&smoke_opts(), &schemes::rps(), "websearch");
        assert!(r.ooo_rcvd > 0, "RPS must reorder: {r:?}");
        assert!(
            r.spurious_rexmit >= r.dsack_undos,
            "each undo is proven by at least one spurious retransmit: {r:?}"
        );
        assert!(
            r.ooo_bytes_max > 0,
            "reordering must park bytes in the reassembly buffer: {r:?}"
        );
    }

    /// Switch flowcuts are byte-identical across shard counts: the pin
    /// table is driven purely by per-switch local arrival order, so the
    /// partition cannot perturb it. (The ISSUE's shards {1,2,4} gate; 8
    /// is covered by the registry-wide sharded_determinism test.)
    #[test]
    fn flowcut_sw_cells_are_identical_across_shard_counts() {
        let dense = Opts {
            smoke: false,
            ..smoke_opts()
        };
        let scheme = schemes::flowcut_sw(SimTime::from_us(100));
        let base = run_one(&dense, &scheme, "hotspot");
        for shards in [2, 4] {
            let opts = Opts {
                shards,
                ..dense.clone()
            };
            let (r, out) = run_one(&opts, &scheme, "hotspot");
            assert_eq!(base.0.p99_s, r.p99_s, "x{shards}");
            assert_eq!(base.0.completion, r.completion, "x{shards}");
            assert_eq!(base.0.ooo_rcvd, r.ooo_rcvd, "x{shards}");
            assert_eq!(base.0.spurious_rexmit, r.spurious_rexmit, "x{shards}");
            assert_eq!(base.0.dup_bytes, r.dup_bytes, "x{shards}");
            assert_eq!(base.0.ooo_bytes_max, r.ooo_bytes_max, "x{shards}");
            assert_eq!(base.0.flowcut_reroutes, r.flowcut_reroutes, "x{shards}");
            assert_eq!(base.1.flows.len(), out.flows.len());
            assert!(
                base.1
                    .flows
                    .iter()
                    .zip(out.flows.iter())
                    .all(|(a, b)| a.end == b.end),
                "x{shards}: per-flow completion times must match"
            );
        }
    }
}
