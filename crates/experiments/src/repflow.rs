//! Extension — RepFlow-style short-flow replication vs rerouting: every
//! TCP flow under 100 KB is sent twice with different V fields and the
//! first finisher wins, trading ~a doubling of short-flow load for path
//! diversity without any congestion signal at all.
//!
//! Expected shape: replication shortens the short-flow tail (p99) versus
//! ECMP because at least one copy usually dodges the collided path, while
//! FlowBender gets a similar tail with no duplicate traffic; long flows
//! are untouched by replication. The point of the experiment — and of the
//! `RepFlow` registry entry — is that a scheme with a *host-side flow
//! transformation* (not just a switch config or a path controller) still
//! fits the one-file [`crate::schemes`] recipe.

use netsim::SimTime;
use stats::{fmt_ratio, fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{parallel_map, run_fat_tree, Window};
use crate::schemes::{self, SchemeSpec};

/// Flows below this size count as "short" in the report tables — the same
/// 100 KB cut-off [`schemes::repflow`] replicates under.
pub const SHORT_BYTES: u64 = 100_000;

/// One scheme's outcome on the short-flow-heavy workload.
#[derive(Debug)]
pub struct SchemeResult {
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Mean FCT of short (<100 KB) flows, seconds.
    pub short_mean_s: f64,
    /// p99 FCT of short flows, seconds.
    pub short_p99_s: f64,
    /// Mean FCT of the remaining (long) flows, seconds.
    pub long_mean_s: f64,
    /// Short flows measured in the window.
    pub short_n: usize,
    /// Replica flows the scheme injected (0 for non-replicating schemes).
    pub replicas: usize,
    /// Extra data the replicas carried, as a fraction of primary bytes.
    pub overhead_frac: f64,
    /// The machine-readable summary of the run.
    pub summary: RunSummary,
}

/// Run the 40 % web-search all-to-all workload once per scheme.
pub fn sweep(opts: &Opts, schemes: &[SchemeSpec]) -> Vec<SchemeResult> {
    opts.validate();
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();

    parallel_map(schemes.to_vec(), |scheme| {
        let mut rng = netsim::DetRng::new(opts.seed, 0x4EBF);
        let specs = all_to_all(&params, 0.4, duration, &dist, &mut rng);
        let primary_bytes: u64 = specs.iter().map(|s| s.bytes).sum();
        let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
        let replica_bytes: u64 = out
            .replicas
            .iter()
            .map(|&(p, _)| out.flows[p as usize].bytes)
            .sum();
        let effective = out.effective_flows();
        let s = samples(&effective, window.start, window.end);
        let short: Vec<f64> = s
            .iter()
            .filter(|x| x.bytes < SHORT_BYTES)
            .map(|x| x.fct_s)
            .collect();
        let long: Vec<f64> = s
            .iter()
            .filter(|x| x.bytes >= SHORT_BYTES)
            .map(|x| x.fct_s)
            .collect();
        let label = format!("{}_seed{}", scheme.slug(), opts.seed);
        let summary = RunSummary::from_run(label, scheme.name(), opts, opts.seed, &out);
        SchemeResult {
            scheme: scheme.name().to_string(),
            short_mean_s: stats::mean(&short).unwrap_or(0.0),
            short_p99_s: stats::percentile(&short, 0.99).unwrap_or(0.0),
            long_mean_s: stats::mean(&long).unwrap_or(0.0),
            short_n: short.len(),
            replicas: out.replicas.len(),
            overhead_frac: replica_bytes as f64 / primary_bytes.max(1) as f64,
            summary,
        }
    })
}

/// Produce the replication-vs-rerouting report.
pub fn run(opts: &Opts) -> Report {
    let selection = opts.scheme_selection(&[
        schemes::ecmp(),
        schemes::flowbender(flowbender::Config::default()),
        schemes::repflow(),
    ]);
    let results = sweep(opts, &selection);
    let base = results
        .iter()
        .find(|r| r.scheme == "ECMP")
        .unwrap_or(&results[0]);
    let mut table = Table::new(vec![
        "scheme",
        "short mean (norm.)",
        "short p99 (norm.)",
        "long mean (norm.)",
        "short flows",
        "replicas",
        "overhead",
        "short mean abs",
    ]);
    for r in &results {
        table.row(vec![
            r.scheme.clone(),
            fmt_ratio(r.short_mean_s / base.short_mean_s),
            fmt_ratio(r.short_p99_s / base.short_p99_s),
            fmt_ratio(r.long_mean_s / base.long_mean_s),
            r.short_n.to_string(),
            r.replicas.to_string(),
            format!("{:.1}%", r.overhead_frac * 100.0),
            fmt_secs(r.short_mean_s),
        ]);
    }
    let mut report = Report::new("repflow");
    report.section(
        format!(
            "RepFlow vs rerouting: short-flow (<100KB) FCT on 40% all-to-all, normalized to {}",
            base.scheme
        ),
        table,
    );
    report.note(
        "replication buys short-flow tail latency with duplicate bytes; \
         FlowBender buys it with reactive rerouting and zero overhead",
    );
    for r in results {
        report.run_summary(r.summary);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Counter;

    #[test]
    fn replication_adds_replicas_and_helps_or_matches_the_short_tail() {
        let opts = Opts {
            scale: 0.15,
            seed: 7,
            ..Opts::default()
        };
        let results = sweep(&opts, &[schemes::ecmp(), schemes::repflow()]);
        let (ecmp, rep) = (&results[0], &results[1]);
        assert_eq!(ecmp.replicas, 0);
        assert!(rep.replicas > 0, "RepFlow injected no replicas");
        assert!(rep.overhead_frac > 0.0 && rep.overhead_frac < 1.0);
        assert!(ecmp.short_n > 50 && rep.short_n > 50, "too few short flows");
        // First-finisher-wins can't make the merged completion later than
        // the primary alone up to scheduling noise; on a congested fabric
        // the short tail should not regress materially.
        assert!(
            rep.short_p99_s <= ecmp.short_p99_s * 1.25,
            "RepFlow p99 {} vs ECMP {}",
            rep.short_p99_s,
            ecmp.short_p99_s
        );
        // The summaries carry the reroute counters for the JSON artifact.
        assert!(results
            .iter()
            .all(|r| r.summary.counters.iter().any(|(n, _)| n == "reroutes")));
    }

    #[test]
    fn run_emits_one_json_summary_per_scheme() {
        let opts = Opts {
            scale: 0.1,
            seed: 3,
            schemes: vec!["ecmp".into(), "repflow".into()],
            ..Opts::default()
        };
        let report = run(&opts);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.runs[0].label, "ecmp_seed3");
        assert_eq!(report.runs[1].label, "repflow_seed3");
        assert_eq!(report.name, "repflow");
    }

    #[test]
    #[allow(clippy::absurd_extreme_comparisons)]
    fn counter_names_exist_for_duplicate_accounting() {
        // The ledger treats replica packets as ordinary data packets; the
        // conservation audit inside every runner covers them. This test
        // pins the counter the sweep leans on.
        assert!(Counter::all().iter().any(|c| c.name() == "reroutes"));
    }
}
