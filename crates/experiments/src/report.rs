//! Experiment reports: titled tables plus notes, renderable to the
//! terminal and to CSV files under `results/`.

use std::fs;
use std::io;
use std::path::Path;

use stats::Table;

/// Options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Scales run durations / flow sizes. `1.0` is the committed default
    /// that finishes in minutes on a laptop; `10.0` approaches the paper's
    /// full scale (see EXPERIMENTS.md).
    pub scale: f64,
    /// Master seed; every random choice in a run derives from it.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { scale: 1.0, seed: 1 }
    }
}

impl Opts {
    /// Validate ranges.
    pub fn validate(&self) {
        assert!(
            self.scale > 0.0 && self.scale <= 100.0,
            "scale {} out of (0, 100]",
            self.scale
        );
    }

    /// A duration scaled by `self.scale`.
    pub fn scaled(&self, base: netsim::SimTime) -> netsim::SimTime {
        netsim::SimTime::from_secs_f64(base.as_secs_f64() * self.scale)
    }
}

/// A rendered experiment: named sections of tables plus free-form notes.
#[derive(Debug)]
pub struct Report {
    /// Experiment id (e.g. "fig3").
    pub name: String,
    /// Titled tables, in print order.
    pub sections: Vec<(String, Table)>,
    /// Data-only sections: written as CSV by [`Report::write_files`] but
    /// not rendered to the terminal (e.g. full FCT CDFs for plotting).
    pub data_sections: Vec<(String, Table)>,
    /// Notes printed after the tables (expected shapes, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            sections: Vec::new(),
            data_sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a titled table.
    pub fn section(&mut self, title: impl Into<String>, table: Table) -> &mut Self {
        self.sections.push((title.into(), table));
        self
    }

    /// Append a data-only section (CSV file, no terminal rendering).
    pub fn data_section(&mut self, slug: impl Into<String>, table: Table) -> &mut Self {
        self.data_sections.push((slug.into(), table));
        self
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        for (title, table) in &self.sections {
            out.push('\n');
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }

    /// Write each section as `dir/<name>_<i>.csv` and the text rendering
    /// as `dir/<name>.txt`.
    pub fn write_files(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.txt", self.name)), self.render())?;
        for (i, (_, table)) in self.sections.iter().enumerate() {
            fs::write(dir.join(format!("{}_{}.csv", self.name, i)), table.to_csv())?;
        }
        for (slug, table) in &self.data_sections {
            fs::write(dir.join(format!("{}_{}.csv", self.name, slug)), table.to_csv())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_sections_and_notes() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        let mut r = Report::new("demo");
        r.section("First", t).note("hello");
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("First"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn write_files_produces_txt_and_csv() {
        let dir = std::env::temp_dir().join(format!("fbreport_{}", std::process::id()));
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let mut r = Report::new("demo");
        r.section("S", t);
        r.write_files(&dir).unwrap();
        assert!(dir.join("demo.txt").exists());
        assert_eq!(std::fs::read_to_string(dir.join("demo_0.csv")).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opts_scaling() {
        let o = Opts { scale: 0.5, seed: 1 };
        o.validate();
        assert_eq!(o.scaled(netsim::SimTime::from_ms(100)), netsim::SimTime::from_ms(50));
    }
}
