//! Experiment reports: titled tables plus notes, renderable to the
//! terminal and to CSV files under `results/`, plus machine-readable
//! per-run JSON summaries (`--json DIR`).

use std::fs;
use std::io;
use std::path::Path;

use netsim::{Counter, FlowId, FlowTimeline, TraceConfig, TraceEvent};
use stats::{Json, Table};

use crate::scenario::RunOutput;

/// Flight-recorder selection from the CLI (`--trace flow=...` /
/// `--trace slowest=...`). Experiments that support tracing resolve this
/// to a [`TraceConfig`] per run; `Off` costs nothing anywhere.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceSel {
    /// Recorder off (the default): no overhead, no timeline files.
    #[default]
    Off,
    /// Trace exactly these flow ids.
    Flows(Vec<FlowId>),
    /// Trace the `k` slowest TCP flows, resolved by an untraced probe run
    /// at the same seed (incomplete flows rank slowest).
    Slowest(usize),
}

impl TraceSel {
    /// Parse the `--trace` argument value: `flow=ID[,ID...]` or
    /// `slowest=K`.
    pub fn parse(s: &str) -> Result<TraceSel, String> {
        if let Some(list) = s.strip_prefix("flow=") {
            let mut flows = Vec::new();
            for part in list.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match part.parse::<FlowId>() {
                    Ok(id) => flows.push(id),
                    Err(_) => return Err(format!("--trace flow list: `{part}` is not a flow id")),
                }
            }
            if flows.is_empty() {
                return Err("--trace flow= needs at least one flow id".into());
            }
            Ok(TraceSel::Flows(flows))
        } else if let Some(k) = s.strip_prefix("slowest=") {
            match k.trim().parse::<usize>() {
                Ok(0) => Err("--trace slowest= needs k >= 1".into()),
                Ok(k) => Ok(TraceSel::Slowest(k)),
                Err(_) => Err(format!("--trace slowest=: `{k}` is not a count")),
            }
        } else {
            Err(format!(
                "unknown --trace selection `{s}`; use flow=<id>[,<id>...] or slowest=<k>"
            ))
        }
    }

    /// Whether the recorder is off.
    pub fn is_off(&self) -> bool {
        *self == TraceSel::Off
    }

    /// Resolve to a [`TraceConfig`]. `slowest` supplies the ranking for
    /// [`TraceSel::Slowest`] — typically [`crate::scenario::slowest_flows`]
    /// over an untraced probe run — and is only invoked for that variant.
    pub fn config_with(&self, slowest: impl FnOnce(usize) -> Vec<FlowId>) -> TraceConfig {
        match self {
            TraceSel::Off => TraceConfig::off(),
            TraceSel::Flows(ids) => TraceConfig::flows(ids.clone()),
            TraceSel::Slowest(k) => TraceConfig::flows(slowest(*k)),
        }
    }
}

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Scales run durations / flow sizes. `1.0` is the committed default
    /// that finishes in minutes on a laptop; `10.0` approaches the paper's
    /// full scale (see EXPERIMENTS.md).
    pub scale: f64,
    /// Master seed; every random choice in a run derives from it.
    pub seed: u64,
    /// Scheme names selected on the command line (`--scheme a,b`). Empty
    /// means "each experiment's default set". Names are resolved through
    /// [`crate::schemes::find`], so `flowbender`, `Flowlet(100us)`, and
    /// `flowlet_100us` all work.
    pub schemes: Vec<String>,
    /// Workload slug selected on the command line (`--workload websearch`).
    /// `None` means "each experiment's own default generator". Names are
    /// resolved through [`workloads::find`], so `websearch`, `incast:64`,
    /// and `hotspot_z_1` all work.
    pub workload: Option<String>,
    /// Flight-recorder selection (`--trace`). Experiments that don't
    /// support tracing ignore it (the CLI warns).
    pub trace: TraceSel,
    /// Worker shards for experiments that support the sharded engine
    /// (`--shards N`). Defaults to 1 — the classic single-threaded engine;
    /// parallelism is never switched on implicitly.
    pub shards: usize,
    /// Fat-tree arity override (`--topo k=K`) for experiments that build
    /// k-ary fabrics (hosts = k³/4, so k=16 → 1024 hosts). `None` means
    /// each experiment's own default.
    pub topo_k: Option<usize>,
    /// Shrink runs to CI-smoke size (`--smoke`): smaller fabric, shorter
    /// window, fewer sweep points. Experiments that have no smoke mode
    /// ignore it.
    pub smoke: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1.0,
            seed: 1,
            schemes: Vec::new(),
            workload: None,
            trace: TraceSel::Off,
            shards: 1,
            topo_k: None,
            smoke: false,
        }
    }
}

impl Opts {
    /// Validate ranges, returning a human-readable error the CLI can
    /// surface instead of a panic.
    pub fn check(&self) -> Result<(), String> {
        if self.scale.is_nan() {
            return Err("--scale is NaN; pass a positive number like 1.0".into());
        }
        if !self.scale.is_finite() {
            return Err(format!("--scale {} is not finite", self.scale));
        }
        if self.scale <= 0.0 {
            return Err(format!("--scale {} must be positive", self.scale));
        }
        if self.scale > 100.0 {
            return Err(format!(
                "--scale {} is out of range; the supported range is (0, 100]",
                self.scale
            ));
        }
        for name in &self.schemes {
            if crate::schemes::find(name).is_none() {
                return Err(crate::schemes_help(name));
            }
        }
        if let Some(name) = &self.workload {
            if workloads::find(name).is_none() {
                return Err(crate::workloads_help(name));
            }
        }
        // `--topo k=K` must describe a buildable fat-tree, and `--shards`
        // must partition it; both produce actionable errors here so every
        // CLI path rejects bad combinations before any run starts.
        if let Some(k) = self.topo_k {
            topology::FatTreeParams::k_ary(k)?;
        }
        if self.shards != 1 {
            let params = match self.topo_k {
                Some(k) => topology::FatTreeParams::k_ary(k)?,
                // The sharded experiments default to k=16 (1024 hosts),
                // or k=8 under --smoke; validate against the smaller one
                // so --smoke --shards combinations are not over-rejected.
                None => topology::FatTreeParams::k_ary(if self.smoke { 8 } else { 16 })?,
            };
            topology::ShardPlan::new(&params, self.shards)?;
        }
        Ok(())
    }

    /// The schemes this invocation should evaluate: the `--scheme`
    /// selection if one was given, otherwise `default`.
    ///
    /// # Panics
    /// On unknown names — [`Opts::check`] reports them gracefully first
    /// on every CLI path.
    pub fn scheme_selection(
        &self,
        default: &[crate::schemes::SchemeSpec],
    ) -> Vec<crate::schemes::SchemeSpec> {
        if self.schemes.is_empty() {
            return default.to_vec();
        }
        self.schemes
            .iter()
            .map(|n| crate::schemes::find(n).unwrap_or_else(|| panic!("unknown scheme `{n}`")))
            .collect()
    }

    /// The workload this invocation should generate traffic with: the
    /// `--workload` selection if one was given, otherwise `default` (an
    /// experiment's historical generator, e.g. `websearch` for the
    /// Figure 3/4 sweeps).
    ///
    /// # Panics
    /// On unknown names — [`Opts::check`] reports them gracefully first
    /// on every CLI path.
    pub fn workload_or(&self, default: &str) -> Box<dyn workloads::Workload> {
        let slug = self.workload.as_deref().unwrap_or(default);
        workloads::find(slug).unwrap_or_else(|| panic!("unknown workload `{slug}`"))
    }

    /// Panicking form of [`Opts::check`], for library/test call sites.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid options: {e}");
        }
    }

    /// A duration scaled by `self.scale`.
    pub fn scaled(&self, base: netsim::SimTime) -> netsim::SimTime {
        netsim::SimTime::from_secs_f64(base.as_secs_f64() * self.scale)
    }
}

/// The machine-readable summary of one simulation run: identifying
/// metadata, every counter, FCT percentiles over completed flows, the
/// collected telemetry series, and the event count.
///
/// Serialization is fully deterministic (insertion-ordered keys, exact
/// integers, shortest-round-trip floats): two runs with the same seed
/// produce byte-identical JSON. Deliberately excluded: anything
/// wall-clock-dependent (that goes in the separate `BENCH_run.json`).
#[derive(Debug)]
pub struct RunSummary {
    /// Distinguishes runs within one experiment (e.g. "flows8_seed3").
    pub label: String,
    /// Scheme display name.
    pub scheme: String,
    /// Scale factor the run was generated at.
    pub scale: f64,
    /// Master seed of the run.
    pub seed: u64,
    /// Every [`Counter`], as `(name, value)` in canonical order.
    pub counters: Vec<(String, u64)>,
    /// FCT statistics in seconds over completed flows, as
    /// `(name, value)`: completed/total counts and mean/p50/p90/p99/max.
    pub fct_percentiles: Vec<(String, f64)>,
    /// Telemetry series: `(name, points)` with times in seconds.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Per-port drop-reason rows `((node, port), counts-by-reason)`,
    /// sorted by `(node, port)`. Empty for a loss-free run, in which
    /// case the JSON omits the `drops` section entirely (keeping
    /// summaries of fault-free runs byte-identical to earlier layouts).
    pub drops: Vec<(
        (netsim::NodeId, netsim::PortId),
        [u64; netsim::DropReason::COUNT],
    )>,
    /// Reconvergence SLO summary of a run with an armed probe
    /// ([`netsim::SloConfig`]); `None` — the JSON omits the section —
    /// for every run without one, keeping probe-free summaries
    /// byte-identical to earlier layouts.
    pub recon: Option<ReconSummary>,
    /// Events the simulator processed.
    pub events: u64,
}

/// The JSON-facing digest of a run's [`netsim::SloResults`]: how fast
/// flows that were in flight at the failure instant delivered their first
/// post-failure payload, plus the binned goodput curve the dip metrics
/// are computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconSummary {
    /// The failure instant the probe was armed with (s).
    pub fail_at_s: f64,
    /// Goodput bin width (s).
    pub bin_s: f64,
    /// Flows that reconverged (CI greps for a nonzero `"samples"`).
    pub samples: u64,
    /// Reconvergence-latency percentiles in seconds, as `(name, value)`;
    /// empty when no flow reconverged.
    pub latency_percentiles: Vec<(String, f64)>,
    /// Delivered payload bytes per goodput bin, summed across shards.
    pub goodput_bytes: Vec<u64>,
}

impl ReconSummary {
    /// Digest measured SLO results.
    pub fn from_slo(slo: &netsim::SloResults) -> Self {
        let lats: Vec<f64> = slo
            .reconvergence_latencies()
            .iter()
            .map(|t| t.as_secs_f64())
            .collect();
        let mut latency_percentiles = Vec::new();
        for (name, value) in [
            ("p50_s", stats::percentile(&lats, 0.5)),
            ("p99_s", stats::percentile(&lats, 0.99)),
            ("max_s", stats::percentile(&lats, 1.0)),
        ] {
            if let Some(v) = value {
                latency_percentiles.push((name.to_string(), v));
            }
        }
        ReconSummary {
            fail_at_s: slo.fail_at.as_secs_f64(),
            bin_s: slo.bin.as_secs_f64(),
            samples: slo.samples() as u64,
            latency_percentiles,
            goodput_bytes: slo.goodput_bins.clone(),
        }
    }
}

impl RunSummary {
    /// Summarize a finished run.
    pub fn from_run(
        label: impl Into<String>,
        scheme: &str,
        opts: &Opts,
        seed: u64,
        out: &RunOutput,
    ) -> Self {
        // Feedback counters (INT/CN) and the reordering metric suite are
        // omitted while zero so the summaries of runs that never exercise
        // them stay byte-identical to the layouts pinned before those
        // layers existed (same None-when-empty contract as the `drops`
        // section).
        let counters = Counter::all()
            .iter()
            .filter(|&&c| !((c.feedback_only() || c.reordering_metric()) && out.get(c) == 0))
            .map(|&c| (c.name().to_string(), out.get(c)))
            .collect();
        let fcts: Vec<f64> = out
            .flows
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .collect();
        let mut fct_percentiles = vec![
            ("completed".to_string(), fcts.len() as f64),
            ("total".to_string(), out.flows.len() as f64),
        ];
        for (name, value) in [
            ("mean_s", stats::mean(&fcts)),
            ("p50_s", stats::percentile(&fcts, 0.5)),
            ("p90_s", stats::percentile(&fcts, 0.9)),
            ("p99_s", stats::percentile(&fcts, 0.99)),
            ("max_s", stats::percentile(&fcts, 1.0)),
        ] {
            if let Some(v) = value {
                fct_percentiles.push((name.to_string(), v));
            }
        }
        let series = out
            .series()
            .iter()
            .map(|s| {
                let pts = s
                    .points()
                    .iter()
                    .map(|&(t, v)| (t.as_secs_f64(), v))
                    .collect::<Vec<_>>();
                (s.name().to_string(), pts)
            })
            .collect();
        RunSummary {
            label: label.into(),
            scheme: scheme.to_string(),
            scale: opts.scale,
            seed,
            counters,
            fct_percentiles,
            series,
            drops: out.drops().per_port(),
            recon: out.slo().map(ReconSummary::from_slo),
            events: out.events,
        }
    }

    /// Build the JSON tree: `{meta, events, counters, fct_percentiles,
    /// series}`.
    pub fn to_json(&self, experiment: &str) -> Json {
        let mut meta = Json::obj();
        meta.set("experiment", Json::str(experiment));
        meta.set("label", Json::str(&self.label));
        meta.set("scheme", Json::str(&self.scheme));
        meta.set("scale", Json::Num(self.scale));
        meta.set("seed", Json::U64(self.seed));
        let mut counters = Json::obj();
        for (name, value) in &self.counters {
            counters.set(name.clone(), Json::U64(*value));
        }
        let mut fct = Json::obj();
        for (name, value) in &self.fct_percentiles {
            fct.set(name.clone(), Json::Num(*value));
        }
        let mut series = Json::arr();
        for (name, points) in &self.series {
            let mut pts = Json::arr();
            for &(t, v) in points {
                let mut pair = Json::arr();
                pair.push(Json::Num(t));
                pair.push(Json::Num(v));
                pts.push(pair);
            }
            let mut s = Json::obj();
            s.set("name", Json::str(name.clone()));
            s.set("points", pts);
            series.push(s);
        }
        let mut root = Json::obj();
        root.set("meta", meta);
        root.set("events", Json::U64(self.events));
        root.set("counters", counters);
        if let Some(drops) = self.drops_json() {
            root.set("drops", drops);
        }
        root.set("fct_percentiles", fct);
        if let Some(recon) = &self.recon {
            let mut r = Json::obj();
            r.set("fail_at_s", Json::Num(recon.fail_at_s));
            r.set("bin_s", Json::Num(recon.bin_s));
            r.set("samples", Json::U64(recon.samples));
            for (name, value) in &recon.latency_percentiles {
                r.set(name.clone(), Json::Num(*value));
            }
            let mut bins = Json::arr();
            for &b in &recon.goodput_bytes {
                bins.push(Json::U64(b));
            }
            r.set("goodput_bytes", bins);
            root.set("reconvergence", r);
        }
        root.set("series", series);
        root
    }

    /// The `drops` section: run-wide totals per [`netsim::DropReason`]
    /// plus per-port rows. `None` when the run dropped nothing, so
    /// loss-free summaries keep their historical byte layout.
    fn drops_json(&self) -> Option<Json> {
        let reasons = netsim::DropReason::all();
        let mut totals = [0u64; netsim::DropReason::COUNT];
        for (_, counts) in &self.drops {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        let total: u64 = totals.iter().sum();
        if total == 0 {
            return None;
        }
        let mut drops = Json::obj();
        drops.set("total", Json::U64(total));
        for (reason, t) in reasons.iter().zip(totals) {
            drops.set(reason.name(), Json::U64(t));
        }
        let mut ports = Json::arr();
        for &((node, port), counts) in &self.drops {
            let mut row = Json::obj();
            row.set("node", Json::U64(node as u64));
            row.set("port", Json::U64(port as u64));
            for (reason, c) in reasons.iter().zip(counts) {
                if c > 0 {
                    row.set(reason.name(), Json::U64(c));
                }
            }
            ports.push(row);
        }
        drops.set("ports", ports);
        Some(drops)
    }
}

/// A rendered experiment: named sections of tables plus free-form notes
/// and per-run machine-readable summaries.
#[derive(Debug)]
pub struct Report {
    /// Experiment id (e.g. "fig3").
    pub name: String,
    /// Titled tables, in print order.
    pub sections: Vec<(String, Table)>,
    /// Data-only sections: written as CSV by [`Report::write_files`] but
    /// not rendered to the terminal (e.g. full FCT CDFs for plotting).
    pub data_sections: Vec<(String, Table)>,
    /// Notes printed after the tables (expected shapes, caveats).
    pub notes: Vec<String>,
    /// Per-run summaries, written as JSON by [`Report::write_json`].
    pub runs: Vec<RunSummary>,
    /// Flight-recorder timelines attached by traced runs, as
    /// `(run label, timeline)` pairs. Rendered as a summary table by
    /// [`Report::render`] and written as one JSON file per flow by
    /// [`Report::write_json`] — never mixed into the run-summary JSON,
    /// whose byte layout is pinned.
    pub traces: Vec<(String, FlowTimeline)>,
}

impl Report {
    /// Create an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            sections: Vec::new(),
            data_sections: Vec::new(),
            notes: Vec::new(),
            runs: Vec::new(),
            traces: Vec::new(),
        }
    }

    /// Append a per-run summary.
    pub fn run_summary(&mut self, run: RunSummary) -> &mut Self {
        self.runs.push(run);
        self
    }

    /// Attach flight-recorder timelines from a traced run (label should
    /// match the corresponding [`RunSummary`]'s).
    pub fn trace_timelines(
        &mut self,
        label: impl Into<String>,
        timelines: Vec<FlowTimeline>,
    ) -> &mut Self {
        let label = label.into();
        for t in timelines {
            self.traces.push((label.clone(), t));
        }
        self
    }

    /// The human-readable flight-recorder summary (one row per traced
    /// flow), or `None` when no timelines are attached.
    pub fn trace_table(&self) -> Option<Table> {
        if self.traces.is_empty() {
            return None;
        }
        let mut t = Table::new(vec![
            "run",
            "flow",
            "events",
            "truncated",
            "first",
            "last",
            "hops",
            "enqueues",
            "marks",
            "drops",
            "decisions",
            "rtos",
        ]);
        for (label, tl) in &self.traces {
            let (first, last) = match (tl.events.first(), tl.events.last()) {
                (Some(&(f, _)), Some(&(l, _))) => (
                    stats::fmt_secs(f.as_secs_f64()),
                    stats::fmt_secs(l.as_secs_f64()),
                ),
                _ => ("-".to_string(), "-".to_string()),
            };
            t.row(vec![
                label.clone(),
                tl.flow.to_string(),
                tl.events.len().to_string(),
                tl.truncated.to_string(),
                first,
                last,
                tl.count_kind("hop").to_string(),
                tl.count_kind("enqueue").to_string(),
                tl.count_kind("ecn_mark").to_string(),
                tl.count_kind("drop").to_string(),
                tl.count_kind("decision").to_string(),
                tl.count_kind("rto_fire").to_string(),
            ]);
        }
        Some(t)
    }

    /// Append a titled table.
    pub fn section(&mut self, title: impl Into<String>, table: Table) -> &mut Self {
        self.sections.push((title.into(), table));
        self
    }

    /// Append a data-only section (CSV file, no terminal rendering).
    pub fn data_section(&mut self, slug: impl Into<String>, table: Table) -> &mut Self {
        self.data_sections.push((slug.into(), table));
        self
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        for (title, table) in &self.sections {
            out.push('\n');
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.render());
        }
        if let Some(t) = self.trace_table() {
            out.push('\n');
            out.push_str("Flight recorder (traced flows; full timelines in the JSON output)\n");
            out.push_str(&t.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }

    /// Write each section as `dir/<name>_<i>.csv` and the text rendering
    /// as `dir/<name>.txt`.
    pub fn write_files(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.txt", self.name)), self.render())?;
        for (i, (_, table)) in self.sections.iter().enumerate() {
            fs::write(dir.join(format!("{}_{}.csv", self.name, i)), table.to_csv())?;
        }
        for (slug, table) in &self.data_sections {
            fs::write(
                dir.join(format!("{}_{}.csv", self.name, slug)),
                table.to_csv(),
            )?;
        }
        if let Some(t) = self.trace_table() {
            fs::write(dir.join(format!("{}_trace.csv", self.name)), t.to_csv())?;
        }
        Ok(())
    }

    /// Write one `dir/<name>_<label>.json` per run summary, plus one
    /// `dir/<name>_<label>_trace_f<flow>.json` per attached timeline;
    /// returns the file names written. Timelines go in separate files so
    /// the run-summary JSON stays byte-identical whether or not the
    /// flight recorder ran.
    pub fn write_json(&self, dir: &Path) -> io::Result<Vec<String>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for run in &self.runs {
            let file = format!("{}_{}.json", self.name, run.label);
            fs::write(dir.join(&file), run.to_json(&self.name).to_string_pretty())?;
            written.push(file);
        }
        for (label, tl) in &self.traces {
            let file = format!("{}_{}_trace_f{}.json", self.name, label, tl.flow);
            let json = timeline_json(&self.name, label, tl);
            fs::write(dir.join(&file), json.to_string_pretty())?;
            written.push(file);
        }
        Ok(written)
    }
}

/// The deterministic JSON form of one traced flow's timeline:
/// `{meta: {experiment, label, flow}, truncated, events: [...]}` with one
/// insertion-ordered object per event (`t_ps`, `kind`, then the kind's
/// fields). Two runs at the same seed serialize byte-identically.
pub fn timeline_json(experiment: &str, label: &str, tl: &FlowTimeline) -> Json {
    let mut meta = Json::obj();
    meta.set("experiment", Json::str(experiment));
    meta.set("label", Json::str(label));
    meta.set("flow", Json::U64(tl.flow as u64));
    let mut events = Json::arr();
    for &(at, ev) in &tl.events {
        events.push(trace_event_json(at, &ev));
    }
    let mut root = Json::obj();
    root.set("meta", meta);
    root.set("truncated", Json::U64(tl.truncated));
    root.set("events", events);
    root
}

/// One timeline event as a JSON object. Key names are part of the stable
/// output format (CI greps for `"kind": "decision"`).
fn trace_event_json(at: netsim::SimTime, ev: &TraceEvent) -> Json {
    let mut o = Json::obj();
    o.set("t_ps", Json::U64(at.as_ps()));
    o.set("kind", Json::str(ev.kind()));
    match *ev {
        TraceEvent::Hop {
            node,
            in_port,
            out_port,
        } => {
            o.set("node", Json::U64(node as u64));
            o.set("in_port", Json::U64(in_port as u64));
            o.set("out_port", Json::U64(out_port as u64));
        }
        TraceEvent::Enqueue { node, port, qbytes } => {
            o.set("node", Json::U64(node as u64));
            o.set("port", Json::U64(port as u64));
            o.set("qbytes", Json::U64(qbytes));
        }
        TraceEvent::EcnMark { node, port } | TraceEvent::Dequeue { node, port } => {
            o.set("node", Json::U64(node as u64));
            o.set("port", Json::U64(port as u64));
        }
        TraceEvent::Drop { reason, node, port } => {
            o.set("reason", Json::str(reason.name()));
            o.set("node", Json::U64(node as u64));
            o.set("port", Json::U64(port as u64));
        }
        TraceEvent::CwndChange { cwnd_bytes } => {
            o.set("cwnd_bytes", Json::U64(cwnd_bytes));
        }
        TraceEvent::FastRetransmitEnter
        | TraceEvent::FastRetransmitExit
        | TraceEvent::Reconverge => {}
        TraceEvent::RtoFire { backoff_exp } => {
            o.set("backoff_exp", Json::U64(backoff_exp as u64));
        }
        TraceEvent::Decision { from_v, to_v } => {
            o.set("from_v", Json::U64(from_v as u64));
            o.set("to_v", Json::U64(to_v as u64));
        }
        TraceEvent::IntStamp { node, port, qbytes } | TraceEvent::CnEmit { node, port, qbytes } => {
            o.set("node", Json::U64(node as u64));
            o.set("port", Json::U64(port as u64));
            o.set("qbytes", Json::U64(qbytes));
        }
        TraceEvent::CnArrive { node, port } | TraceEvent::FlowcutReroute { node, port } => {
            o.set("node", Json::U64(node as u64));
            o.set("port", Json::U64(port as u64));
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_sections_and_notes() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        let mut r = Report::new("demo");
        r.section("First", t).note("hello");
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("First"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn write_files_produces_txt_and_csv() {
        let dir = std::env::temp_dir().join(format!("fbreport_{}", std::process::id()));
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let mut r = Report::new("demo");
        r.section("S", t);
        r.write_files(&dir).unwrap();
        assert!(dir.join("demo.txt").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("demo_0.csv")).unwrap(),
            "a,b\n1,2\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_summary_json_layout_is_stable() {
        let rs = RunSummary {
            label: "flows8_seed3".into(),
            scheme: "ECMP".into(),
            scale: 1.0,
            seed: 3,
            counters: vec![("reroutes".into(), 2)],
            fct_percentiles: vec![("mean_s".into(), 0.5)],
            series: vec![("vfield.f0".into(), vec![(0.0, 3.0)])],
            drops: vec![],
            recon: None,
            events: 10,
        };
        let j = rs.to_json("demo").to_string();
        assert_eq!(
            j,
            r#"{"meta":{"experiment":"demo","label":"flows8_seed3","scheme":"ECMP","scale":1,"seed":3},"events":10,"counters":{"reroutes":2},"fct_percentiles":{"mean_s":0.5},"series":[{"name":"vfield.f0","points":[[0,3]]}]}"#
        );
        let mut r = Report::new("demo");
        r.run_summary(rs);
        let dir = std::env::temp_dir().join(format!("fbjson_{}", std::process::id()));
        let files = r.write_json(&dir).unwrap();
        assert_eq!(files, ["demo_flows8_seed3.json"]);
        let text = std::fs::read_to_string(dir.join(&files[0])).unwrap();
        assert!(text.starts_with("{\n  \"meta\""));
        assert!(text.ends_with("}\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drops_section_appears_only_when_packets_were_lost() {
        let mut rs = RunSummary {
            label: "l".into(),
            scheme: "ECMP".into(),
            scale: 1.0,
            seed: 1,
            counters: vec![],
            fct_percentiles: vec![],
            series: vec![],
            drops: vec![((4, 1), [0, 0, 0, 0])],
            recon: None,
            events: 0,
        };
        // All-zero rows count as loss-free: no section.
        assert!(!rs.to_json("demo").to_string().contains("drops"));
        rs.drops = vec![((4, 1), [2, 0, 7, 0]), ((9, 0), [0, 1, 0, 3])];
        let j = rs.to_json("demo").to_string();
        assert!(j.contains(
            r#""drops":{"total":13,"queue_full":2,"link_down":1,"gray_loss":7,"corruption":3,"#
        ));
        assert!(j.contains(r#"{"node":4,"port":1,"queue_full":2,"gray_loss":7}"#));
        assert!(j.contains(r#"{"node":9,"port":0,"link_down":1,"corruption":3}"#));
        // Reasons sum to the advertised total.
        assert_eq!(2 + 1 + 7 + 3, 13);
    }

    #[test]
    fn reconvergence_section_appears_only_with_an_armed_probe() {
        let mut rs = RunSummary {
            label: "l".into(),
            scheme: "ECMP".into(),
            scale: 1.0,
            seed: 1,
            counters: vec![],
            fct_percentiles: vec![],
            series: vec![],
            drops: vec![],
            recon: None,
            events: 0,
        };
        assert!(!rs.to_json("demo").to_string().contains("reconvergence"));
        rs.recon = Some(ReconSummary {
            fail_at_s: 0.005,
            bin_s: 0.0005,
            samples: 3,
            latency_percentiles: vec![("p50_s".into(), 0.0001), ("p99_s".into(), 0.011)],
            goodput_bytes: vec![1000, 0, 2000],
        });
        let j = rs.to_json("demo").to_string();
        assert!(
            j.contains(
                r#""reconvergence":{"fail_at_s":0.005,"bin_s":0.0005,"samples":3,"p50_s":0.0001,"p99_s":0.011,"goodput_bytes":[1000,0,2000]}"#
            ),
            "{j}"
        );
        // The section sits between fct_percentiles and series, so
        // probe-free layouts (pinned above) are unchanged.
        let fct = j.find("fct_percentiles").unwrap();
        let recon = j.find("reconvergence").unwrap();
        let series = j.find("series").unwrap();
        assert!(fct < recon && recon < series);
    }

    #[test]
    fn trace_sel_parses_flow_lists_and_slowest() {
        assert_eq!(TraceSel::parse("flow=3").unwrap(), TraceSel::Flows(vec![3]));
        assert_eq!(
            TraceSel::parse("flow=1,2, 5").unwrap(),
            TraceSel::Flows(vec![1, 2, 5])
        );
        assert_eq!(TraceSel::parse("slowest=2").unwrap(), TraceSel::Slowest(2));
        assert!(TraceSel::parse("slowest=0").is_err(), "zero is useless");
        assert!(TraceSel::parse("flow=").is_err(), "empty list");
        assert!(TraceSel::parse("flow=x").is_err(), "non-numeric id");
        assert!(TraceSel::parse("everything").is_err(), "unknown selector");
        assert!(TraceSel::default().is_off());
        // Resolution: Flows passes ids through; Slowest asks the ranker.
        let cfg = TraceSel::Flows(vec![4, 2]).config_with(|_| unreachable!());
        assert!(cfg.wants(2) && cfg.wants(4) && !cfg.wants(3));
        let cfg = TraceSel::Slowest(2).config_with(|k| (0..k as u32).collect());
        assert!(cfg.wants(0) && cfg.wants(1) && !cfg.wants(2));
        assert!(!TraceSel::Off.config_with(|_| unreachable!()).enabled);
    }

    #[test]
    fn write_json_emits_timeline_files_alongside_run_summaries() {
        use netsim::SimTime;
        let tl = FlowTimeline {
            flow: 7,
            truncated: 0,
            events: vec![
                (
                    SimTime::from_us(1),
                    TraceEvent::Enqueue {
                        node: 4,
                        port: 1,
                        qbytes: 3000,
                    },
                ),
                (
                    SimTime::from_us(2),
                    TraceEvent::Decision { from_v: 0, to_v: 1 },
                ),
                (SimTime::from_us(3), TraceEvent::RtoFire { backoff_exp: 2 }),
            ],
        };
        let mut r = Report::new("demo");
        r.trace_timelines("run1", vec![tl]);
        // The rendered report gains a flight-recorder table...
        let text = r.render();
        assert!(text.contains("Flight recorder"), "table rendered: {text}");
        assert!(text.contains("run1"), "labelled: {text}");
        // ...and the JSON output gains exactly one timeline file.
        let dir = std::env::temp_dir().join(format!("fbtrace_{}", std::process::id()));
        let files = r.write_json(&dir).unwrap();
        assert_eq!(files, ["demo_run1_trace_f7.json"]);
        let json = std::fs::read_to_string(dir.join(&files[0])).unwrap();
        assert!(json.contains(r#""kind": "decision""#), "{json}");
        assert!(json.contains(r#""from_v": 0"#) && json.contains(r#""to_v": 1"#));
        assert!(json.contains(r#""kind": "rto_fire""#) && json.contains(r#""backoff_exp": 2"#));
        assert!(json.contains(r#""qbytes": 3000"#));
        // Determinism: serializing the same timeline twice is byte-equal.
        let again = timeline_json("demo", "run1", &r.traces[0].1).to_string_pretty();
        assert_eq!(json, again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opts_check_rejects_bad_scales() {
        let ok = |s: f64| {
            Opts {
                scale: s,
                seed: 1,
                ..Opts::default()
            }
            .check()
        };
        assert!(ok(1.0).is_ok());
        assert!(ok(100.0).is_ok());
        assert!(ok(0.01).is_ok());
        assert!(ok(f64::NAN).unwrap_err().contains("NaN"));
        assert!(ok(f64::INFINITY).unwrap_err().contains("not finite"));
        assert!(ok(0.0).unwrap_err().contains("positive"));
        assert!(ok(-2.0).unwrap_err().contains("positive"));
        assert!(ok(101.0).unwrap_err().contains("out of range"));
    }

    #[test]
    fn opts_workload_selection_and_validation() {
        let mut o = Opts::default();
        assert!(o.check().is_ok(), "no workload is the default");
        assert_eq!(
            o.workload_or("websearch").name(),
            "Websearch",
            "falls back to the experiment's default"
        );
        o.workload = Some("incast:64".into());
        assert!(o.check().is_ok(), "parameterized slugs validate");
        assert_eq!(o.workload_or("websearch").name(), "Incast(64:1)");
        o.workload = Some("nosuch".into());
        let err = o.check().unwrap_err();
        assert!(err.contains("nosuch"), "names the offender: {err}");
        assert!(err.contains("websearch"), "lists the registry: {err}");
    }

    #[test]
    fn opts_scaling() {
        let o = Opts {
            scale: 0.5,
            seed: 1,
            ..Opts::default()
        };
        o.validate();
        assert_eq!(
            o.scaled(netsim::SimTime::from_ms(100)),
            netsim::SimTime::from_ms(50)
        );
    }
}
