//! Shared experiment machinery: schemes, runners, and parallel sweeps.
//!
//! A [`Scheme`] bundles the fabric-side switch configuration with the
//! host-side TCP configuration of one evaluated design, exactly as §4.2
//! pairs them:
//!
//! | scheme      | switches                         | hosts                     |
//! |-------------|----------------------------------|---------------------------|
//! | ECMP        | 5-tuple(+V) hash                 | DCTCP                     |
//! | FlowBender  | 5-tuple+V hash                   | DCTCP + FlowBender        |
//! | RPS         | per-packet random spray          | DCTCP                     |
//! | DeTail      | per-packet adaptive + PFC        | DCTCP, no fast retransmit |

use std::ops::Deref;

use flowbender as fb;
use netsim::{
    FlowSpec, HashConfig, PortStats, RunResults, SimTime, Simulator, SwitchConfig, TelemetryConfig,
};
use topology::{build_fat_tree, build_testbed, FatTree, FatTreeParams, Testbed, TestbedParams};
use transport::{install_agents, TcpConfig};

/// One evaluated load-balancing design (fabric + host sides together).
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Static ECMP hashing, the baseline everything is normalized to.
    Ecmp,
    /// FlowBender over commodity ECMP switches with the V-field hashed.
    FlowBender(fb::Config),
    /// Random Packet Spraying switches.
    Rps,
    /// DeTail-style adaptive routing with PFC; fast retransmit disabled.
    DeTail,
    /// Flowlet switching (LetFlow-style) with the given inactivity gap —
    /// a contemporary baseline beyond the paper's four schemes.
    Flowlet(SimTime),
}

impl Scheme {
    /// All four schemes with FlowBender at paper defaults, in the paper's
    /// presentation order.
    pub fn paper_set() -> Vec<Scheme> {
        vec![
            Scheme::Ecmp,
            Scheme::FlowBender(fb::Config::default()),
            Scheme::Rps,
            Scheme::DeTail,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::FlowBender(_) => "FlowBender",
            Scheme::Rps => "RPS",
            Scheme::DeTail => "DeTail",
            Scheme::Flowlet(_) => "Flowlet",
        }
    }

    /// The switch configuration this scheme needs.
    pub fn switch_config(&self) -> SwitchConfig {
        match self {
            // ECMP switches are configured with the V-field in the hash in
            // all runs (the paper's "5 lines of switch configuration") —
            // for plain ECMP hosts never change V, so it is inert.
            Scheme::Ecmp => SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
            Scheme::FlowBender(_) => SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
            Scheme::Rps => SwitchConfig::rps(),
            Scheme::DeTail => SwitchConfig::detail(),
            Scheme::Flowlet(gap) => SwitchConfig::flowlet(*gap),
        }
    }

    /// The host TCP configuration this scheme needs.
    pub fn tcp_config(&self) -> TcpConfig {
        match self {
            Scheme::Ecmp | Scheme::Rps | Scheme::Flowlet(_) => TcpConfig::default(),
            Scheme::FlowBender(cfg) => TcpConfig::flowbender(*cfg),
            Scheme::DeTail => TcpConfig::detail(),
        }
    }
}

/// Everything a finished run hands back for analysis (thread-safe: no
/// simulator internals). Dereferences to [`RunResults`], so flow records,
/// counters, and telemetry series read directly (`out.flows`,
/// `out.get(c)`, `out.series()`).
#[derive(Debug)]
pub struct RunOutput {
    /// The read-side view of the run: flows, counters, telemetry series.
    pub results: RunResults,
    /// Snapshots of requested ports' statistics, in request order.
    pub port_stats: Vec<PortStats>,
    /// Events the simulator processed (for performance reporting).
    pub events: u64,
    /// The end-of-run packet-conservation ledger (already verified to
    /// balance — every runner asserts it before handing results out).
    pub conservation: netsim::Conservation,
}

impl Deref for RunOutput {
    type Target = RunResults;
    fn deref(&self) -> &RunResults {
        &self.results
    }
}

impl RunOutput {
    fn from_sim(sim: Simulator, watch_ports: &[(netsim::NodeId, netsim::PortId)]) -> Self {
        // Every experiment run passes the conservation audit, in every
        // build profile (the simulator itself only debug-asserts it).
        sim.assert_conservation();
        let port_stats = watch_ports
            .iter()
            .map(|&(n, p)| sim.port_stats(n, p))
            .collect();
        let events = sim.events_processed();
        let conservation = sim.conservation();
        RunOutput {
            results: sim.into_results(),
            port_stats,
            events,
            conservation,
        }
    }
}

/// Run `specs` on a fat-tree of `params` under `scheme`, until `until`
/// (which should cover the arrival window plus a drain period).
pub fn run_fat_tree(
    params: FatTreeParams,
    scheme: &Scheme,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
) -> RunOutput {
    run_fat_tree_with(params, scheme, specs, until, seed, TelemetryConfig::off())
}

/// [`run_fat_tree`] with an explicit telemetry configuration.
pub fn run_fat_tree_with(
    params: FatTreeParams,
    scheme: &Scheme,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    let _ft: FatTree = build_fat_tree(&mut sim, params, scheme.switch_config());
    install_agents(&mut sim, specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &[])
}

/// [`run_fat_tree_with`] plus a [`netsim::FaultPlan`] built against the
/// constructed topology (the closure receives the [`FatTree`] so plans can
/// target specific fabric links before the run starts).
#[allow(clippy::too_many_arguments)]
pub fn run_fat_tree_faults(
    params: FatTreeParams,
    scheme: &Scheme,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
    plan: impl FnOnce(&FatTree) -> netsim::FaultPlan,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    let ft: FatTree = build_fat_tree(&mut sim, params, scheme.switch_config());
    sim.install_faults(&plan(&ft));
    install_agents(&mut sim, specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &[])
}

/// Run `specs` on a testbed of `params` under `scheme`. `watch_uplinks`
/// selects `(tor_index, uplink_index)` ports to snapshot (for the hotspot
/// path-throughput measurement); their stats appear in `port_stats` in
/// order.
pub fn run_testbed(
    params: TestbedParams,
    scheme: &Scheme,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    watch_uplinks: &[(usize, usize)],
) -> RunOutput {
    run_testbed_with(
        params,
        scheme,
        specs,
        until,
        seed,
        watch_uplinks,
        TelemetryConfig::off(),
    )
}

/// [`run_testbed`] with an explicit telemetry configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_testbed_with(
    params: TestbedParams,
    scheme: &Scheme,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    watch_uplinks: &[(usize, usize)],
    telemetry: TelemetryConfig,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    let tb: Testbed = build_testbed(&mut sim, params, scheme.switch_config());
    let ports: Vec<_> = watch_uplinks
        .iter()
        .map(|&(t, a)| (tb.tors[t], tb.tor_uplinks[t][a]))
        .collect();
    install_agents(&mut sim, specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &ports)
}

/// Map `f` over `inputs` on a bounded worker pool (runs are
/// single-threaded and independent; sweeps parallelize across
/// configurations). Workers are capped at the machine's available
/// parallelism and pull indices from a shared queue, so a sweep of any
/// size never oversubscribes the host. Output order matches input order.
///
/// Each call of `f` runs under `catch_unwind`: a panic is captured
/// per-index and re-raised from the calling thread as one panic naming
/// *which* inputs failed, instead of poisoning the shared result slots and
/// surfacing as an unrelated mutex error.
pub fn parallel_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let input = inputs[i].lock().unwrap().take().expect("input taken once");
                // Capture the panic instead of unwinding through the
                // worker: the mutexes stay unpoisoned and every other
                // index still completes.
                let out = catch_unwind(AssertUnwindSafe(|| f(input)));
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    let mut failures: Vec<String> = Vec::new();
    for (i, m) in results.into_iter().enumerate() {
        match m.into_inner().unwrap() {
            Some(Ok(v)) => out.push(v),
            Some(Err(payload)) => {
                failures.push(format!("input {i}: {}", panic_text(payload.as_ref())))
            }
            None => unreachable!("every index is claimed exactly once"),
        }
    }
    assert!(
        failures.is_empty(),
        "parallel_map: {} of {n} inputs panicked:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    out
}

/// Best-effort text of a captured panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Common measurement conventions for windowed workloads.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Ignore flows arriving before this (warm-up).
    pub start: SimTime,
    /// Ignore flows arriving at/after this (cool-down); also the end of
    /// the arrival process.
    pub end: SimTime,
    /// Keep simulating until this, so in-window flows can finish.
    pub drain_until: SimTime,
}

impl Window {
    /// A window of `duration` with 10 % warm-up and a generous drain.
    pub fn for_duration(duration: SimTime, drain: SimTime) -> Self {
        Window {
            start: SimTime::from_ps(duration.as_ps() / 10),
            end: duration,
            drain_until: duration + drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Counter, Proto};

    #[test]
    fn scheme_configs_are_consistent() {
        for s in Scheme::paper_set() {
            let sw = s.switch_config();
            let tcp = s.tcp_config();
            tcp.validate();
            match s {
                Scheme::Ecmp | Scheme::FlowBender(_) => {
                    assert_eq!(sw.scheme, netsim::ForwardingScheme::EcmpHash);
                    assert!(sw.pfc.is_none());
                }
                Scheme::Rps => assert_eq!(sw.scheme, netsim::ForwardingScheme::Rps),
                Scheme::Flowlet(_) => unreachable!("not in paper_set"),
                Scheme::DeTail => {
                    assert_eq!(sw.scheme, netsim::ForwardingScheme::Adaptive);
                    assert!(sw.pfc.is_some());
                    assert_eq!(tcp.dupack_threshold, None);
                }
            }
            if matches!(s, Scheme::FlowBender(_)) {
                assert!(tcp.flowbender.is_some());
            } else {
                assert!(tcp.flowbender.is_none());
            }
        }
    }

    #[test]
    fn tiny_fat_tree_run_completes_flows() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 500_000, SimTime::ZERO))
            .collect();
        for scheme in Scheme::paper_set() {
            let out = run_fat_tree(params, &scheme, &specs, SimTime::from_secs(5), 1);
            let done = out.flows.iter().filter(|f| f.fct().is_some()).count();
            assert_eq!(done, 8, "{} incomplete", scheme.name());
            assert!(out.events > 0);
            let _ = out.get(Counter::DataPktsRcvd);
        }
    }

    #[test]
    fn testbed_run_snapshots_requested_ports() {
        let params = TestbedParams::tiny();
        let specs = vec![
            FlowSpec::tcp(0, 0, 5, 1_000_000, SimTime::ZERO),
            FlowSpec::udp(1, 0, 5, 1_000_000_000, SimTime::ZERO),
        ];
        let watch: Vec<(usize, usize)> = (0..4).map(|a| (0usize, a)).collect();
        let out = run_testbed(
            params,
            &Scheme::Ecmp,
            &specs,
            SimTime::from_ms(20),
            7,
            &watch,
        );
        assert_eq!(out.port_stats.len(), 4);
        let tcp_total: u64 = out.port_stats.iter().map(|p| p.tx_bytes_tcp).sum();
        let udp_total: u64 = out.port_stats.iter().map(|p| p.tx_bytes_udp).sum();
        assert!(tcp_total > 0, "TCP crossed the uplinks");
        assert!(udp_total > 0, "UDP crossed the uplinks");
        assert_eq!(out.flows[1].proto, Proto::Udp);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect::<Vec<_>>(), |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_far_more_inputs_than_cores() {
        // The old implementation spawned one thread per input; this must
        // stay bounded and still produce every result in order.
        let out = parallel_map((0..1_000).collect::<Vec<_>>(), |i| i + 1);
        assert_eq!(out, (1..=1_000).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_names_the_panicking_inputs() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<_>>(), |i| {
                if i == 7 || i == 11 {
                    panic!("scenario {i} exploded");
                }
                i
            })
        })
        .expect_err("a worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .expect("propagated panic carries a message");
        assert!(msg.contains("input 7"), "names index 7: {msg}");
        assert!(msg.contains("input 11"), "names index 11: {msg}");
        assert!(msg.contains("scenario 7 exploded"), "keeps cause: {msg}");
    }

    #[test]
    fn fault_runner_injects_and_audits() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 200_000, SimTime::ZERO))
            .collect();
        let out = run_fat_tree_faults(
            params,
            &Scheme::Ecmp,
            &specs,
            SimTime::from_secs(5),
            1,
            TelemetryConfig::off(),
            |ft| {
                let mut plan = netsim::FaultPlan::new();
                let (agg, port) = ft.agg_core_link(0, 0);
                plan.gray_loss(agg, port, 0.05, SimTime::ZERO);
                plan
            },
        );
        assert!(out.conservation.holds());
        assert_eq!(
            out.conservation.injected,
            out.conservation.delivered
                + out.conservation.dropped_total()
                + out.conservation.in_flight
        );
    }

    #[test]
    fn telemetry_run_collects_queue_and_reroute_series() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 500_000, SimTime::ZERO))
            .collect();
        let scheme = Scheme::FlowBender(fb::Config::default());
        let out = run_fat_tree_with(
            params,
            &scheme,
            &specs,
            SimTime::from_secs(5),
            1,
            TelemetryConfig::all(SimTime::from_us(100)),
        );
        assert!(
            out.series()
                .iter()
                .any(|s| s.name().starts_with("queue_depth.")),
            "queue-depth series collected"
        );
        assert!(
            out.series().iter().any(|s| s.name().starts_with("vfield.")),
            "V-field traces collected (at least the start anchor)"
        );
        // The same run without telemetry behaves identically flow-wise.
        let plain = run_fat_tree(params, &scheme, &specs, SimTime::from_secs(5), 1);
        assert!(plain.series().is_empty());
        assert_eq!(
            plain.events, out.events,
            "telemetry must not perturb the simulation"
        );
        let fcts_a: Vec<_> = out.flows.iter().filter_map(|f| f.fct()).collect();
        let fcts_b: Vec<_> = plain.flows.iter().filter_map(|f| f.fct()).collect();
        assert_eq!(fcts_a, fcts_b);
    }

    #[test]
    fn window_conventions() {
        let w = Window::for_duration(SimTime::from_ms(100), SimTime::from_ms(400));
        assert_eq!(w.start, SimTime::from_ms(10));
        assert_eq!(w.end, SimTime::from_ms(100));
        assert_eq!(w.drain_until, SimTime::from_ms(500));
    }
}
