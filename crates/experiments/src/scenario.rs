//! Shared experiment machinery: runners, replication expansion, and
//! parallel sweeps.
//!
//! What to run is described by a [`crate::schemes::SchemeSpec`] (fabric +
//! host sides of one design, see the `schemes` module); this module owns
//! *how* to run it: building the topology, expanding replicated flows,
//! installing agents, auditing conservation, and fanning sweeps out over
//! a bounded worker pool.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use netsim::{
    Conservation, FlowId, FlowSpec, Handoff, PortStats, Proto, RunResults, SimTime, Simulator,
    TelemetryConfig, TraceConfig,
};
use topology::{
    build_fat_tree, build_testbed, FatTree, FatTreeParams, ShardPlan, Testbed, TestbedParams,
};
use transport::{install_agents, install_agents_on};

use crate::schemes::SchemeSpec;

/// Everything a finished run hands back for analysis (thread-safe: no
/// simulator internals). Dereferences to [`RunResults`], so flow records,
/// counters, and telemetry series read directly (`out.flows`,
/// `out.get(c)`, `out.series()`).
#[derive(Debug)]
pub struct RunOutput {
    /// The read-side view of the run: flows, counters, telemetry series.
    pub results: RunResults,
    /// Snapshots of requested ports' statistics, in request order.
    pub port_stats: Vec<PortStats>,
    /// Events the simulator processed (for performance reporting).
    pub events: u64,
    /// The end-of-run packet-conservation ledger (already verified to
    /// balance — every runner asserts it before handing results out).
    pub conservation: netsim::Conservation,
    /// `(primary, replica)` flow-id pairs added by a replicating scheme
    /// (empty for everything but RepFlow-style specs). Replica flows
    /// appear in `flows` like any other; use [`RunOutput::effective_flows`]
    /// for the first-finisher-wins view.
    pub replicas: Vec<(FlowId, FlowId)>,
    /// Cross-shard accounting of a sharded run (`None` for the classic
    /// single-threaded runners and for `shards == 1`).
    pub shard_stats: Option<ShardStats>,
}

/// What the sharded engine did, summed over workers — exported/imported
/// are verified equal before results are handed out.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Worker (shard) count.
    pub shards: usize,
    /// Packets handed off across shard boundaries (sum over shards; equals
    /// the verified import count).
    pub handoffs: u64,
    /// Synchronization epochs the coordinator ran.
    pub rounds: u64,
    /// The conservative lookahead every epoch granted, in picoseconds.
    pub lookahead_ps: u64,
}

impl Deref for RunOutput {
    type Target = RunResults;
    fn deref(&self) -> &RunResults {
        &self.results
    }
}

impl RunOutput {
    fn from_sim(
        sim: Simulator,
        watch_ports: &[(netsim::NodeId, netsim::PortId)],
        replicas: Vec<(FlowId, FlowId)>,
    ) -> Self {
        // Every experiment run passes the conservation audit, in every
        // build profile (the simulator itself only debug-asserts it).
        sim.assert_conservation();
        let port_stats = watch_ports
            .iter()
            .map(|&(n, p)| sim.port_stats(n, p))
            .collect();
        let events = sim.events_processed();
        let conservation = sim.conservation();
        RunOutput {
            results: sim.into_results(),
            port_stats,
            events,
            conservation,
            replicas,
            shard_stats: None,
        }
    }

    /// The flow records as the *application* experienced them: replicas
    /// are folded into their primary (a replicated flow completes when
    /// its first copy does) and dropped from the list. For
    /// non-replicating schemes this is simply a copy of `flows`.
    ///
    /// The merge is defensive: a pair whose copies *all* failed to
    /// complete (reachable under heavy-loss fault plans) leaves the
    /// primary in the list with `end == SimTime::MAX` — see
    /// [`RunOutput::incomplete_flows`] — and a malformed pair (id out of
    /// range, self-pair) is skipped rather than panicking mid-analysis.
    pub fn effective_flows(&self) -> Vec<netsim::FlowRecord> {
        if self.replicas.is_empty() {
            return self.flows.to_vec();
        }
        let mut merged = self.flows.to_vec();
        let mut drop: Vec<bool> = vec![false; merged.len()];
        for &(primary, replica) in &self.replicas {
            let (p, r) = (primary as usize, replica as usize);
            if p == r || p >= merged.len() || r >= merged.len() {
                debug_assert!(false, "malformed replica pair ({primary}, {replica})");
                continue;
            }
            // First finisher wins; copies that never finished carry
            // SimTime::MAX, so min() keeps whichever copy (if any) made it.
            if merged[r].end < merged[p].end {
                merged[p].end = merged[r].end;
            }
            drop[r] = true;
        }
        let mut i = 0;
        merged.retain(|_| {
            let keep = !drop[i];
            i += 1;
            keep
        });
        merged
    }

    /// Ids of effective (replica-merged) flows that never completed.
    /// Healthy runs with an adequate drain return an empty list; fault
    /// plans that kill a flow's every copy surface it here instead of
    /// panicking in analysis code.
    pub fn incomplete_flows(&self) -> Vec<FlowId> {
        self.effective_flows()
            .iter()
            .filter(|f| f.fct().is_none())
            .map(|f| f.flow)
            .collect()
    }
}

/// The `k` slowest effective TCP flows of a finished run, slowest first
/// (the natural selection for `--trace slowest=k`). Incomplete flows rank
/// slowest of all — they are exactly what a diagnosis wants to see — and
/// ties break by flow id so the selection is deterministic.
pub fn slowest_flows(out: &RunOutput, k: usize) -> Vec<FlowId> {
    let mut eff: Vec<_> = out
        .effective_flows()
        .into_iter()
        .filter(|f| f.proto == Proto::Tcp)
        .collect();
    eff.sort_by_key(|f| (std::cmp::Reverse(f.fct().unwrap_or(SimTime::MAX)), f.flow));
    eff.into_iter().take(k).map(|f| f.flow).collect()
}

/// Expand `specs` for `scheme`: a replicating scheme gets one replica per
/// short TCP flow appended (dense ids continuing after the primaries),
/// everything else passes through untouched. Returns the expanded spec
/// list and the `(primary, replica)` pairs.
fn expand_replicas(
    specs: &[FlowSpec],
    scheme: &SchemeSpec,
) -> (Vec<FlowSpec>, Vec<(FlowId, FlowId)>) {
    let Some(rep) = scheme.replication() else {
        return (specs.to_vec(), Vec::new());
    };
    let mut all = specs.to_vec();
    let mut next: FlowId = specs.iter().map(|s| s.id + 1).max().unwrap_or(0);
    let mut pairs = Vec::new();
    for s in specs {
        if s.proto == Proto::Tcp && s.bytes < rep.max_bytes && s.clone_of.is_none() {
            all.push(s.replica(next, rep.replica_v));
            pairs.push((s.id, next));
            next += 1;
        }
    }
    (all, pairs)
}

/// Run `specs` on a fat-tree of `params` under `scheme`, until `until`
/// (which should cover the arrival window plus a drain period).
pub fn run_fat_tree(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
) -> RunOutput {
    run_fat_tree_with(params, scheme, specs, until, seed, TelemetryConfig::off())
}

/// [`run_fat_tree`] with an explicit telemetry configuration.
pub fn run_fat_tree_with(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
) -> RunOutput {
    run_fat_tree_traced(
        params,
        scheme,
        specs,
        until,
        seed,
        telemetry,
        TraceConfig::off(),
    )
}

/// [`run_fat_tree_with`] plus a flight-recorder [`TraceConfig`]: selected
/// flows' timelines come back in [`RunResults::timelines`]. Tracing is
/// read-only — a traced run's flow records, counters, and event count are
/// byte-identical to the untraced run at the same seed.
#[allow(clippy::too_many_arguments)]
pub fn run_fat_tree_traced(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
    trace: TraceConfig,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    sim.set_trace(trace);
    let _ft: FatTree = build_fat_tree(&mut sim, params, scheme.switch_config());
    let (specs, replicas) = expand_replicas(specs, scheme);
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &[], replicas)
}

/// The synchronization state shared by all workers of one sharded run.
///
/// The engine is a conservative barrier-epoch parallel DES. Each epoch:
///
/// 1. every shard publishes its next pending event time (`fetch_min` into
///    `round_min`) and hits barrier A;
/// 2. the barrier leader computes the global minimum `M` and opens the
///    window `[M, min(M + L - 1, until)]`, where `L` is the lookahead —
///    the minimum latency any message needs to *cross* a shard boundary;
///    barrier B publishes it;
/// 3. every shard runs its local events inside the window. Any message a
///    shard generates for another lands at `>= t + L >= M + L`, i.e.
///    strictly after the window, so nothing processed this epoch could
///    have been affected by a message still in transit;
/// 4. outboxes are posted into per-destination mailboxes, barrier C, and
///    each shard imports its mail sorted by source shard — a fixed merge
///    order, so event seq numbers (the tie-breakers) are reproducible
///    regardless of thread scheduling.
///
/// The run ends when the global minimum is beyond `until` (or no events
/// remain anywhere).
struct ShardCoord {
    barrier: Barrier,
    /// `fetch_min` target for the epoch's next-event agreement.
    round_min: AtomicU64,
    /// Global lookahead `L` in ps (`fetch_min` over shards before epoch 0).
    lookahead: AtomicU64,
    /// The agreed window deadline (inclusive, ps); `u64::MAX` = done.
    window: AtomicU64,
    rounds: AtomicU64,
    /// `mailboxes[dst]` collects `(src, messages)` posted this epoch.
    mailboxes: Vec<Mailbox>,
}

/// One shard's incoming mail for the epoch: `(source shard, messages)`.
type Mailbox = Mutex<Vec<(usize, Vec<Handoff>)>>;

const DONE: u64 = u64::MAX;

impl ShardCoord {
    fn new(shards: usize) -> Self {
        ShardCoord {
            barrier: Barrier::new(shards),
            round_min: AtomicU64::new(u64::MAX),
            lookahead: AtomicU64::new(u64::MAX),
            window: AtomicU64::new(DONE),
            rounds: AtomicU64::new(0),
            mailboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Publish this shard's next event time and agree on the epoch window.
    /// Returns the inclusive deadline to run, or `None` when the run is
    /// over everywhere.
    fn agree(&self, next_ps: u64, until_ps: u64) -> Option<SimTime> {
        self.round_min.fetch_min(next_ps, Ordering::SeqCst);
        if self.barrier.wait().is_leader() {
            let m = self.round_min.swap(u64::MAX, Ordering::SeqCst);
            let l = self.lookahead.load(Ordering::SeqCst);
            let w = if m == u64::MAX || m > until_ps {
                DONE
            } else {
                // Process [m, m + l - 1]: messages generated at t >= m
                // arrive at >= m + l, strictly outside the window.
                m.saturating_add(l).saturating_sub(1).min(until_ps)
            };
            self.window.store(w, Ordering::SeqCst);
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
        self.barrier.wait();
        let w = self.window.load(Ordering::SeqCst);
        (w != DONE).then_some(SimTime::from_ps(w))
    }

    /// Post this shard's outbox into the destination mailboxes, then wait
    /// for every shard to do the same (barrier C).
    fn post(&self, from: usize, outbox: Vec<Handoff>, plan: &ShardPlan) {
        if !outbox.is_empty() {
            let n = self.mailboxes.len();
            let mut per: Vec<Vec<Handoff>> = vec![Vec::new(); n];
            for h in outbox {
                per[plan.owner_of(h.node())].push(h);
            }
            for (dst, msgs) in per.into_iter().enumerate() {
                if !msgs.is_empty() {
                    self.mailboxes[dst].lock().unwrap().push((from, msgs));
                }
            }
        }
        self.barrier.wait();
    }

    /// Drain this shard's mailbox in source-shard order.
    fn collect(&self, me: usize) -> Vec<Handoff> {
        let mut entries = std::mem::take(&mut *self.mailboxes[me].lock().unwrap());
        entries.sort_by_key(|&(src, _)| src);
        entries.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// [`run_fat_tree`] on `shards` worker threads (the sharded multi-core
/// engine). `shards == 1` delegates to the classic single-threaded runner
/// — byte-identical to [`run_fat_tree`] by construction. For `shards > 1`
/// the fabric is partitioned pod-granularly per [`ShardPlan`], each worker
/// simulates its partition over a private event ladder and packet slab,
/// and workers synchronize through the conservative barrier-epoch
/// protocol of `ShardCoord` (above). Results merge in fixed shard order, so a
/// run is reproducible for a given `(seed, shards)` regardless of how the
/// OS schedules the workers.
///
/// This is the empty-fault-plan special case of
/// [`run_fat_tree_sharded_faults`]. Telemetry and flight-recorder tracing
/// remain single-threaded features (their probe streams are keyed to one
/// event ladder); fault plans and reconvergence SLO probes shard cleanly
/// and live in the `_faults` variant.
///
/// Errors (rather than panics) on shard counts the fabric cannot host —
/// the CLI surfaces these directly.
pub fn run_fat_tree_sharded(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    shards: usize,
) -> Result<RunOutput, String> {
    run_fat_tree_sharded_faults(params, scheme, specs, until, seed, shards, None, |_| {
        netsim::FaultPlan::new()
    })
}

/// [`run_fat_tree_sharded`] plus deterministic fault injection and an
/// optional reconvergence SLO probe — the chaos engine's entry point.
///
/// The fault plan is built once per worker against that worker's own copy
/// of the topology (the closure must therefore be a pure function of the
/// [`FatTree`]). Determinism across shard counts rests on two properties:
///
/// * **Per-port fault RNG.** Gray-loss and corruption draws come from a
///   per-directed-port PCG stream split off a never-advanced root, so a
///   port's draw sequence is a function of its own departure order — which
///   sharding does not change — rather than of the global event
///   interleaving, which it does.
/// * **Anchor-owner handoff.** Each plan step is compiled to directed
///   per-port faults by the shard owning the step's anchor node; the
///   directions owned by other shards travel through the epoch mailbox as
///   [`Handoff::Fault`] messages. The exchange below runs one mailbox
///   round *before* any traffic is installed, so fault events get seq
///   numbers below every flow event on every shard — the same relative
///   order the classic runner produces by installing faults first.
///
/// With an empty plan no handoffs are posted and no draws are made, so
/// fault-free output is byte-identical to [`run_fat_tree_sharded`] (and,
/// at `shards == 1`, to [`run_fat_tree`]).
///
/// When `slo` is set, every worker arms the same probe and the per-shard
/// [`netsim::SloResults`] merge with the flow records; the per-shard
/// conservation ledger is additionally asserted after **every** epoch's
/// import phase, so a fault that corrupts the books is caught in the
/// epoch it happens, not at quiesce.
///
/// Byte-identity across shard counts additionally requires a *tie-free*
/// workload: when two packets arrive at the same switch at the exact same
/// picosecond from different ingress ports, their service order is the
/// event insertion order, which the classic and sharded engines reach
/// differently. Poisson-arrival workloads (fabric-scale, chaos, the
/// property suite) never tie in practice; the synchronized `microbench`
/// flow sets (gray-failure, link-failure) tie constantly and are
/// reproducible per shard count but not byte-stable across counts — a
/// pre-existing property of the engine, not of fault injection.
///
/// One caveat carried over from [`netsim::Simulator::install_faults`]:
/// two same-instant plan steps from *different* anchor nodes targeting
/// the same directed egress may apply in source-shard order rather than
/// plan order. Plans that want a deterministic winner across shard counts
/// should separate such steps in time.
#[allow(clippy::too_many_arguments)]
pub fn run_fat_tree_sharded_faults<F>(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    shards: usize,
    slo: Option<netsim::SloConfig>,
    plan_fn: F,
) -> Result<RunOutput, String>
where
    F: Fn(&FatTree) -> netsim::FaultPlan + Sync,
{
    let plan = ShardPlan::new(&params, shards)?;
    if shards == 1 {
        let mut sim = Simulator::new(seed);
        if let Some(cfg) = slo {
            sim.set_slo(cfg);
        }
        let ft: FatTree = build_fat_tree(&mut sim, params, scheme.switch_config());
        sim.install_faults(&plan_fn(&ft));
        let (specs, replicas) = expand_replicas(specs, scheme);
        install_agents(&mut sim, &specs, &scheme.tcp_config());
        sim.run_until(until);
        return Ok(RunOutput::from_sim(sim, &[], replicas));
    }
    let (specs, replicas) = expand_replicas(specs, scheme);
    let coord = ShardCoord::new(shards);
    let mut worker_out: Vec<(RunResults, u64, Conservation)> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let coord = &coord;
                let plan = &plan;
                let specs = &specs[..];
                let plan_fn = &plan_fn;
                scope.spawn(move || {
                    let mut sim = Simulator::new(seed);
                    let ft = build_fat_tree(&mut sim, params, scheme.switch_config());
                    sim.set_owned(plan.owned_mask(shard));
                    if let Some(cfg) = slo {
                        sim.set_slo(cfg);
                    }
                    sim.install_faults(&plan_fn(&ft));
                    // Round 0: cross-shard fault directions cross the mailbox
                    // before any traffic exists, so their event seqs sit below
                    // every flow event — the classic runner's install order.
                    coord.post(shard, sim.take_outbox(), plan);
                    for h in coord.collect(shard) {
                        sim.import(h);
                    }
                    install_agents_on(&mut sim, specs, &scheme.tcp_config(), |h| {
                        plan.owner_of(h) == shard
                    });
                    let lookahead = sim
                        .lookahead()
                        .expect("a multi-shard plan must produce cross-shard links");
                    coord
                        .lookahead
                        .fetch_min(lookahead.as_ps(), Ordering::SeqCst);
                    let until_ps = until.as_ps();
                    loop {
                        let next = sim.next_event_time().map_or(u64::MAX, |t| t.as_ps());
                        let Some(deadline) = coord.agree(next, until_ps) else {
                            break;
                        };
                        sim.run_window(deadline);
                        coord.post(shard, sim.take_outbox(), plan);
                        for h in coord.collect(shard) {
                            sim.import(h);
                        }
                        // Every epoch keeps the books balanced, not just the
                        // quiesced end state — a fault that leaks or double
                        // counts a packet is caught in the epoch it happens.
                        sim.assert_conservation();
                    }
                    sim.assert_conservation();
                    let events = sim.events_processed();
                    let conservation = sim.conservation();
                    (sim.into_results(), events, conservation)
                })
            })
            .collect();
        worker_out = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
    });

    // Deterministic merge in shard order, then the cross-shard ledger:
    // every packet exported by one shard must have been imported by
    // another, and the global invariant must balance once handoffs cancel.
    let mut it = worker_out.into_iter();
    let (mut results, mut events, first_c) = it.next().expect("at least one shard");
    let (mut injected, mut delivered, mut in_flight) =
        (first_c.injected, first_c.delivered, first_c.in_flight);
    let mut dropped = first_c.dropped;
    let (mut exported, mut imported) = (first_c.exported, first_c.imported);
    for (r, e, c) in it {
        results.merge(r);
        events += e;
        injected += c.injected;
        delivered += c.delivered;
        in_flight += c.in_flight;
        for (a, b) in dropped.iter_mut().zip(c.dropped) {
            *a += b;
        }
        exported += c.exported;
        imported += c.imported;
    }
    assert_eq!(
        exported, imported,
        "cross-shard handoff imbalance at quiesce: {exported} exported vs {imported} imported"
    );
    let conservation = Conservation {
        // Imports re-insert packets that already counted at their source
        // shard; subtract them so `injected` means true injections.
        injected: injected - imported,
        delivered,
        dropped,
        in_flight,
        exported: exported - imported,
        imported: 0,
    };
    assert!(
        conservation.holds(),
        "packet conservation violated across shards: {conservation}"
    );
    Ok(RunOutput {
        results,
        port_stats: Vec::new(),
        events,
        conservation,
        replicas,
        shard_stats: Some(ShardStats {
            shards,
            handoffs: exported,
            rounds: coord.rounds.load(Ordering::Relaxed),
            lookahead_ps: coord.lookahead.load(Ordering::Relaxed),
        }),
    })
}

/// [`run_fat_tree_with`] plus a [`netsim::FaultPlan`] built against the
/// constructed topology (the closure receives the [`FatTree`] so plans can
/// target specific fabric links before the run starts).
#[allow(clippy::too_many_arguments)]
pub fn run_fat_tree_faults(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
    plan: impl FnOnce(&FatTree) -> netsim::FaultPlan,
) -> RunOutput {
    run_fat_tree_faults_traced(
        params,
        scheme,
        specs,
        until,
        seed,
        telemetry,
        TraceConfig::off(),
        plan,
    )
}

/// [`run_fat_tree_faults`] with a flight-recorder [`TraceConfig`] — the
/// combination the gray-failure diagnosis workflow uses (`--trace` on the
/// experiments CLI lands here).
#[allow(clippy::too_many_arguments)]
pub fn run_fat_tree_faults_traced(
    params: FatTreeParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    telemetry: TelemetryConfig,
    trace: TraceConfig,
    plan: impl FnOnce(&FatTree) -> netsim::FaultPlan,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    sim.set_trace(trace);
    let ft: FatTree = build_fat_tree(&mut sim, params, scheme.switch_config());
    sim.install_faults(&plan(&ft));
    let (specs, replicas) = expand_replicas(specs, scheme);
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &[], replicas)
}

/// Run `specs` on a testbed of `params` under `scheme`. `watch_uplinks`
/// selects `(tor_index, uplink_index)` ports to snapshot (for the hotspot
/// path-throughput measurement); their stats appear in `port_stats` in
/// order.
pub fn run_testbed(
    params: TestbedParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    watch_uplinks: &[(usize, usize)],
) -> RunOutput {
    run_testbed_with(
        params,
        scheme,
        specs,
        until,
        seed,
        watch_uplinks,
        TelemetryConfig::off(),
    )
}

/// [`run_testbed`] with an explicit telemetry configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_testbed_with(
    params: TestbedParams,
    scheme: &SchemeSpec,
    specs: &[FlowSpec],
    until: SimTime,
    seed: u64,
    watch_uplinks: &[(usize, usize)],
    telemetry: TelemetryConfig,
) -> RunOutput {
    let mut sim = Simulator::new(seed);
    sim.set_telemetry(telemetry);
    let tb: Testbed = build_testbed(&mut sim, params, scheme.switch_config());
    let ports: Vec<_> = watch_uplinks
        .iter()
        .map(|&(t, a)| (tb.tors[t], tb.tor_uplinks[t][a]))
        .collect();
    let (specs, replicas) = expand_replicas(specs, scheme);
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    sim.run_until(until);
    RunOutput::from_sim(sim, &ports, replicas)
}

/// Map `f` over `inputs` on a bounded worker pool (runs are
/// single-threaded and independent; sweeps parallelize across
/// configurations). Workers are capped at the machine's available
/// parallelism and pull indices from a shared queue, so a sweep of any
/// size never oversubscribes the host. Output order matches input order.
///
/// Each call of `f` runs under `catch_unwind`: a panic is captured
/// per-index and re-raised from the calling thread as one panic naming
/// *which* inputs failed, instead of poisoning the shared result slots and
/// surfacing as an unrelated mutex error.
pub fn parallel_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    parallel_map_capped(inputs, usize::MAX, f)
}

/// The sweep-worker budget for jobs that each run `shards` engine threads
/// of their own: one sweep worker per `shards` cores of available
/// parallelism, never below one. `sweep_cap(1)` is the full machine —
/// [`parallel_map`]'s classic behavior.
pub fn sweep_cap(shards: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    (avail / shards.max(1)).max(1)
}

/// [`parallel_map`] with an explicit ceiling on concurrent workers
/// (effective worker count: `min(cap, available parallelism, inputs)`).
/// Sweeps whose jobs are themselves multi-threaded — sharded engine runs
/// with `--shards N` — pass [`sweep_cap`]`(N)` so scheme × load points
/// still run concurrently without oversubscribing the shard workers.
pub fn parallel_map_capped<I, T, F>(inputs: Vec<I>, cap: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n)
        .min(cap.max(1));
    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let input = inputs[i].lock().unwrap().take().expect("input taken once");
                // Capture the panic instead of unwinding through the
                // worker: the mutexes stay unpoisoned and every other
                // index still completes.
                let out = catch_unwind(AssertUnwindSafe(|| f(input)));
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    let mut failures: Vec<String> = Vec::new();
    for (i, m) in results.into_iter().enumerate() {
        match m.into_inner().unwrap() {
            Some(Ok(v)) => out.push(v),
            Some(Err(payload)) => {
                failures.push(format!("input {i}: {}", panic_text(payload.as_ref())))
            }
            None => unreachable!("every index is claimed exactly once"),
        }
    }
    assert!(
        failures.is_empty(),
        "parallel_map: {} of {n} inputs panicked:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    out
}

/// Run `f` for every `(param, scheme)` pair on the [`parallel_map`] pool
/// and return the results grouped by parameter: `out[p]` holds one entry
/// per scheme, in registry order. This is the one sweep loop every
/// experiment used to hand-roll; jobs are flattened params-outer /
/// schemes-inner so result order matches the nested loops they replaced.
pub fn sweep_schemes<P, T, F>(schemes: &[SchemeSpec], params: &[P], f: F) -> Vec<Vec<T>>
where
    P: Clone + Send + Sync,
    T: Send,
    F: Fn(&SchemeSpec, &P) -> T + Sync,
{
    sweep_schemes_sharded(schemes, params, 1, f)
}

/// [`sweep_schemes`] for jobs that each run the sharded engine with
/// `shards` worker threads: the sweep pool is capped at
/// [`sweep_cap`]`(shards)` so `sweep workers × shards` never exceeds the
/// machine's available parallelism. `shards = 1` is exactly
/// [`sweep_schemes`].
pub fn sweep_schemes_sharded<P, T, F>(
    schemes: &[SchemeSpec],
    params: &[P],
    shards: usize,
    f: F,
) -> Vec<Vec<T>>
where
    P: Clone + Send + Sync,
    T: Send,
    F: Fn(&SchemeSpec, &P) -> T + Sync,
{
    let jobs: Vec<(SchemeSpec, P)> = params
        .iter()
        .flat_map(|p| schemes.iter().map(|s| (s.clone(), p.clone())))
        .collect();
    let flat = parallel_map_capped(jobs, sweep_cap(shards), |(s, p)| f(&s, &p));
    let mut flat = flat.into_iter();
    params
        .iter()
        .map(|_| (&mut flat).take(schemes.len()).collect())
        .collect()
}

/// Best-effort text of a captured panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Common measurement conventions for windowed workloads.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Ignore flows arriving before this (warm-up).
    pub start: SimTime,
    /// Ignore flows arriving at/after this (cool-down); also the end of
    /// the arrival process.
    pub end: SimTime,
    /// Keep simulating until this, so in-window flows can finish.
    pub drain_until: SimTime,
}

impl Window {
    /// A window of `duration` with 10 % warm-up and a generous drain.
    pub fn for_duration(duration: SimTime, drain: SimTime) -> Self {
        Window {
            start: SimTime::from_ps(duration.as_ps() / 10),
            end: duration,
            drain_until: duration + drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes;
    use flowbender as fb;
    use netsim::Counter;

    #[test]
    fn tiny_fat_tree_run_completes_flows() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 500_000, SimTime::ZERO))
            .collect();
        for scheme in schemes::paper_set() {
            let out = run_fat_tree(params, &scheme, &specs, SimTime::from_secs(5), 1);
            let done = out.flows.iter().filter(|f| f.fct().is_some()).count();
            assert_eq!(done, 8, "{} incomplete", scheme.name());
            assert!(out.events > 0);
            let _ = out.get(Counter::DataPktsRcvd);
        }
    }

    #[test]
    fn testbed_run_snapshots_requested_ports() {
        let params = TestbedParams::tiny();
        let specs = vec![
            FlowSpec::tcp(0, 0, 5, 1_000_000, SimTime::ZERO),
            FlowSpec::udp(1, 0, 5, 1_000_000_000, SimTime::ZERO),
        ];
        let watch: Vec<(usize, usize)> = (0..4).map(|a| (0usize, a)).collect();
        let out = run_testbed(
            params,
            &schemes::ecmp(),
            &specs,
            SimTime::from_ms(20),
            7,
            &watch,
        );
        assert_eq!(out.port_stats.len(), 4);
        let tcp_total: u64 = out.port_stats.iter().map(|p| p.tx_bytes_tcp).sum();
        let udp_total: u64 = out.port_stats.iter().map(|p| p.tx_bytes_udp).sum();
        assert!(tcp_total > 0, "TCP crossed the uplinks");
        assert!(udp_total > 0, "UDP crossed the uplinks");
        assert_eq!(out.flows[1].proto, Proto::Udp);
    }

    #[test]
    fn replicating_scheme_expands_and_merges() {
        let params = FatTreeParams::tiny();
        // Two short flows (replicated) and one long flow (not).
        let specs = vec![
            FlowSpec::tcp(0, 0, 8, 50_000, SimTime::ZERO),
            FlowSpec::tcp(1, 1, 9, 30_000, SimTime::ZERO),
            FlowSpec::tcp(2, 2, 10, 2_000_000, SimTime::ZERO),
        ];
        let out = run_fat_tree(
            params,
            &schemes::repflow(),
            &specs,
            SimTime::from_secs(5),
            3,
        );
        assert_eq!(out.replicas, vec![(0, 3), (1, 4)]);
        assert_eq!(out.flows.len(), 5, "two replicas were installed");
        assert!(out.flows.iter().all(|f| f.fct().is_some()));
        let eff = out.effective_flows();
        assert_eq!(eff.len(), 3, "replicas folded away");
        for &(p, r) in &out.replicas {
            let merged: Vec<_> = eff.iter().filter(|f| f.flow == p).collect();
            assert_eq!(merged.len(), 1, "primary {p} present exactly once");
            assert_eq!(
                merged[0].end,
                out.flows[p as usize].end.min(out.flows[r as usize].end),
                "first finisher wins"
            );
        }
        assert!(out.incomplete_flows().is_empty(), "healthy run completes");
        assert_eq!(eff[2].end, out.flows[2].end, "long flow untouched");
        assert!(out.conservation.holds(), "duplicates stay in the ledger");
    }

    #[test]
    fn replica_merge_survives_a_primary_that_never_completes() {
        // Regression: a fault plan that silently eats *every* copy of a
        // replicated flow used to make effective_flows()'s callers panic
        // (`.find(...).unwrap()` on an incomplete merge). Kill host 0's
        // NIC outright: flow 0 and its replica share src 0, so neither
        // copy can ever finish.
        let params = FatTreeParams::tiny();
        let specs = vec![
            FlowSpec::tcp(0, 0, 8, 50_000, SimTime::ZERO),
            FlowSpec::tcp(1, 1, 9, 30_000, SimTime::ZERO),
        ];
        let out = run_fat_tree_faults(
            params,
            &schemes::repflow(),
            &specs,
            SimTime::from_ms(200),
            3,
            TelemetryConfig::off(),
            |ft| {
                let mut plan = netsim::FaultPlan::new();
                plan.gray_loss(ft.hosts[0], 0, 1.0, SimTime::ZERO);
                plan
            },
        );
        let eff = out.effective_flows();
        assert_eq!(eff.len(), 2, "replicas fold away even when incomplete");
        let incomplete = out.incomplete_flows();
        assert!(incomplete.contains(&0), "the killed flow is surfaced");
        assert!(!incomplete.contains(&1), "the healthy flow completed");
        assert!(out.conservation.holds(), "dropped copies stay audited");
    }

    #[test]
    fn slowest_flows_ranks_incomplete_first_and_breaks_ties_by_id() {
        let params = FatTreeParams::tiny();
        let specs = vec![
            FlowSpec::tcp(0, 0, 8, 50_000, SimTime::ZERO),
            FlowSpec::tcp(1, 1, 9, 30_000, SimTime::ZERO),
            FlowSpec::tcp(2, 2, 10, 2_000_000, SimTime::ZERO),
        ];
        let out = run_fat_tree_faults(
            params,
            &schemes::ecmp(),
            &specs,
            SimTime::from_ms(200),
            3,
            TelemetryConfig::off(),
            |ft| {
                let mut plan = netsim::FaultPlan::new();
                plan.gray_loss(ft.hosts[0], 0, 1.0, SimTime::ZERO);
                plan
            },
        );
        let slow = slowest_flows(&out, 2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0], 0, "the flow that never finished ranks slowest");
        assert_eq!(
            slowest_flows(&out, 10).len(),
            3,
            "k larger than the flow count returns everything"
        );
    }

    #[test]
    fn non_replicating_scheme_has_no_replicas() {
        let params = FatTreeParams::tiny();
        let specs = vec![FlowSpec::tcp(0, 0, 8, 50_000, SimTime::ZERO)];
        let out = run_fat_tree(params, &schemes::ecmp(), &specs, SimTime::from_secs(5), 3);
        assert!(out.replicas.is_empty());
        assert_eq!(out.effective_flows().len(), out.flows.len());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect::<Vec<_>>(), |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_far_more_inputs_than_cores() {
        // The old implementation spawned one thread per input; this must
        // stay bounded and still produce every result in order.
        let out = parallel_map((0..1_000).collect::<Vec<_>>(), |i| i + 1);
        assert_eq!(out, (1..=1_000).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_names_the_panicking_inputs() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect::<Vec<_>>(), |i| {
                if i == 7 || i == 11 {
                    panic!("scenario {i} exploded");
                }
                i
            })
        })
        .expect_err("a worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .expect("propagated panic carries a message");
        assert!(msg.contains("input 7"), "names index 7: {msg}");
        assert!(msg.contains("input 11"), "names index 11: {msg}");
        assert!(msg.contains("scenario 7 exploded"), "keeps cause: {msg}");
    }

    #[test]
    fn parallel_map_capped_bounds_concurrency_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = parallel_map_capped((0..64).collect::<Vec<_>>(), 2, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "cap=2 exceeded: peak {}",
            peak.load(Ordering::SeqCst)
        );
        // A zero cap is clamped to one worker, never a deadlock.
        let out = parallel_map_capped(vec![1, 2, 3], 0, |i| i);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn sweep_cap_divides_the_machine_between_sweep_and_shards() {
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(sweep_cap(1), avail.max(1));
        assert!(sweep_cap(avail * 2) >= 1, "never starves the sweep");
        assert!(
            sweep_cap(2).saturating_mul(2) <= avail.max(2),
            "cap x shards stays within the machine"
        );
        assert_eq!(sweep_cap(0), sweep_cap(1), "0 shards treated as 1");
    }

    #[test]
    fn sweep_schemes_sharded_matches_the_unsharded_sweep() {
        let schemes = vec![schemes::ecmp(), schemes::rps()];
        let f = |s: &SchemeSpec, p: &u64| format!("{}@{p}", s.name());
        let a = sweep_schemes(&schemes, &[10u64, 20u64], f);
        let b = sweep_schemes_sharded(&schemes, &[10u64, 20u64], 4, f);
        assert_eq!(a, b, "the cap changes scheduling, never results");
    }

    #[test]
    fn sweep_schemes_groups_by_param_in_registry_order() {
        let schemes = vec![schemes::ecmp(), schemes::rps()];
        let out = sweep_schemes(&schemes, &[10u64, 20u64], |s, p| {
            format!("{}@{p}", s.name())
        });
        assert_eq!(
            out,
            vec![
                vec!["ECMP@10".to_string(), "RPS@10".to_string()],
                vec!["ECMP@20".to_string(), "RPS@20".to_string()],
            ]
        );
    }

    #[test]
    fn fault_runner_injects_and_audits() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 200_000, SimTime::ZERO))
            .collect();
        let out = run_fat_tree_faults(
            params,
            &schemes::ecmp(),
            &specs,
            SimTime::from_secs(5),
            1,
            TelemetryConfig::off(),
            |ft| {
                let mut plan = netsim::FaultPlan::new();
                let (agg, port) = ft.agg_core_link(0, 0);
                plan.gray_loss(agg, port, 0.05, SimTime::ZERO);
                plan
            },
        );
        assert!(out.conservation.holds());
        assert_eq!(
            out.conservation.injected,
            out.conservation.delivered
                + out.conservation.dropped_total()
                + out.conservation.in_flight
        );
    }

    #[test]
    fn telemetry_run_collects_queue_and_reroute_series() {
        let params = FatTreeParams::tiny();
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 500_000, SimTime::ZERO))
            .collect();
        let scheme = schemes::flowbender(fb::Config::default());
        let out = run_fat_tree_with(
            params,
            &scheme,
            &specs,
            SimTime::from_secs(5),
            1,
            TelemetryConfig::all(SimTime::from_us(100)),
        );
        assert!(
            out.series()
                .iter()
                .any(|s| s.name().starts_with("queue_depth.")),
            "queue-depth series collected"
        );
        assert!(
            out.series().iter().any(|s| s.name().starts_with("vfield.")),
            "V-field traces collected (at least the start anchor)"
        );
        // The same run without telemetry behaves identically flow-wise.
        let plain = run_fat_tree(params, &scheme, &specs, SimTime::from_secs(5), 1);
        assert!(plain.series().is_empty());
        assert_eq!(
            plain.events, out.events,
            "telemetry must not perturb the simulation"
        );
        let fcts_a: Vec<_> = out.flows.iter().filter_map(|f| f.fct()).collect();
        let fcts_b: Vec<_> = plain.flows.iter().filter_map(|f| f.fct()).collect();
        assert_eq!(fcts_a, fcts_b);
    }

    #[test]
    fn window_conventions() {
        let w = Window::for_duration(SimTime::from_ms(100), SimTime::from_ms(400));
        assert_eq!(w.start, SimTime::from_ms(10));
        assert_eq!(w.end, SimTime::from_ms(100));
        assert_eq!(w.drain_until, SimTime::from_ms(500));
    }
}
