//! FlowBender: the paper's scheme — end-host path control over a
//! commodity V-field-hashing fabric.

use super::SchemeSpec;
use netsim::{HashConfig, SwitchConfig};
use transport::TcpConfig;

/// FlowBender with the given tuning. The paper's defaults yield the plain
/// name `FlowBender`; any deviation is spelled out in the name (e.g.
/// `FlowBender(T=0.01,N=3)`) so sweeps over tunings stay distinguishable
/// in reports.
pub fn flowbender(cfg: flowbender::Config) -> SchemeSpec {
    SchemeSpec::new(
        name_for(&cfg),
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        TcpConfig::flowbender(cfg),
    )
    .fabric("static 5-tuple+V hash")
    .host(format!("DCTCP + FlowBender (T={}, N={})", cfg.t, cfg.n))
    .brief("end-host rerouting by rewriting V when the marked-ACK fraction crosses T")
}

/// `FlowBender` for the paper's defaults, `FlowBender(...)` listing every
/// field that deviates from them.
fn name_for(cfg: &flowbender::Config) -> String {
    let d = flowbender::Config::default();
    if *cfg == d {
        return "FlowBender".to_string();
    }
    let mut parts = Vec::new();
    if cfg.t != d.t {
        parts.push(format!("T={}", cfg.t));
    }
    if cfg.n != d.n {
        parts.push(format!("N={}", cfg.n));
    }
    if cfg.v_range != d.v_range {
        parts.push(format!("V={}", cfg.v_range));
    }
    if cfg.randomize_n != d.randomize_n {
        parts.push("randN".to_string());
    }
    if let Some(g) = cfg.ewma_gamma {
        parts.push(format!("ewma={g}"));
    }
    if cfg.cooldown_rtts != d.cooldown_rtts {
        parts.push(format!("cooldown={}", cfg.cooldown_rtts));
    }
    if cfg.reroute_on_timeout != d.reroute_on_timeout {
        parts.push("noTO".to_string());
    }
    format!("FlowBender({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_keeps_the_bare_name() {
        assert_eq!(
            flowbender(flowbender::Config::default()).name(),
            "FlowBender"
        );
    }

    #[test]
    fn deviations_show_up_in_the_name() {
        let cfg = flowbender::Config::default().with_t(0.01).with_n(3);
        assert_eq!(flowbender(cfg).name(), "FlowBender(T=0.01,N=3)");
        let cfg = flowbender::Config::default().with_ewma(0.75);
        assert_eq!(flowbender(cfg).name(), "FlowBender(ewma=0.75)");
    }
}
