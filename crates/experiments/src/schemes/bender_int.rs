//! Bender-INT: FlowBender's bending driven by per-hop INT telemetry
//! instead of the scalar ECN-echo fraction.

use netsim::{FeedbackConfig, HashConfig, SimTime, SwitchConfig};
use transport::{PathSpec, TcpConfig};

use super::SchemeSpec;

/// Consecutive same-hop blames required before bending.
const CONFIRM: u32 = 3;
/// Post-bend hold-off before the controller judges the new path.
const HOLD: SimTime = SimTime::from_us(100);

/// Switch-assisted FlowBender: the fabric stamps INT metadata (switch,
/// egress port, queue depth, ECN state) into every forwarded packet, the
/// receiver echoes the stack on its ACKs, and a [`flowbender::BenderInt`]
/// controller bends away from the *blamed hop* — the deepest queue on the
/// path — once `CONFIRM` consecutive ACKs agree on it. The new V is a
/// deterministic function of the blamed (switch, port), so the flow
/// rehashes around that specific port rather than to a random neighbor.
pub fn bender_int() -> SchemeSpec {
    let v_range = flowbender::Config::default().v_range;
    let path = PathSpec::custom(
        format!("bender-int(v={v_range},n={CONFIRM},hold={}us)", 100),
        move |vhint, _rng| {
            Box::new(flowbender::BenderInt::new(
                v_range,
                vhint % v_range,
                CONFIRM,
                HOLD.as_ps(),
            ))
        },
    );
    SchemeSpec::new(
        "Bender-INT",
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField)
            .with_feedback(FeedbackConfig::int_only()),
        TcpConfig::with_path(path),
    )
    .fabric("static 5-tuple+V hash + per-hop INT stamping")
    .host("DCTCP + bend away from the INT-blamed hop")
    .brief("FlowBender steered by telemetry: rehash around the congested port, not at random")
}
