//! DeTail: per-packet adaptive routing over a lossless (PFC) fabric.

use super::SchemeSpec;
use netsim::SwitchConfig;
use transport::TcpConfig;

/// DeTail-style: switches pick the least-queued eligible port per packet
/// and generate PFC pause frames; hosts disable fast retransmit because a
/// lossless fabric turns every dupack burst into reordering noise.
pub fn detail() -> SchemeSpec {
    SchemeSpec::new("DeTail", SwitchConfig::detail(), TcpConfig::detail())
        .fabric("per-packet least-queued adaptive + PFC")
        .host("DCTCP, fast retransmit off")
        .brief("lossless adaptive fabric; needs switch changes and PFC headroom")
}
