//! ECMP: the static-hashing baseline every other scheme is measured
//! against.

use super::SchemeSpec;
use netsim::{HashConfig, SwitchConfig};
use transport::TcpConfig;

/// Commodity ECMP: per-flow static hashing, stock DCTCP hosts. The hash
/// covers the V-field too (it never changes, so routing is unaffected) —
/// this keeps the fabric identical to FlowBender's and isolates the host
/// policy as the only difference.
pub fn ecmp() -> SchemeSpec {
    SchemeSpec::new(
        "ECMP",
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        TcpConfig::default(),
    )
    .fabric("static 5-tuple+V hash")
    .host("DCTCP")
    .brief("per-flow static hashing; the baseline all results normalize to")
}
