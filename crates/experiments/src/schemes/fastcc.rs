//! FastCC: DCTCP whose congestion cut is triggered by switch-generated
//! early feedback instead of the end-to-end ECN echo.

use netsim::{FeedbackConfig, HashConfig, SwitchConfig};
use transport::TcpConfig;

use super::SchemeSpec;

/// CN threshold, aligned with the fabric's ECN marking point (K = 90 KB)
/// so the switch notifies the sender at exactly the occupancy that would
/// have marked the packet — the CN is a faster copy of the same signal.
const CN_THRESHOLD: u64 = 90_000;

/// ECMP fabric whose switches send a congestion notification (CN)
/// straight back to the sender when an egress queue crosses
/// `CN_THRESHOLD` (rate-limited per port/flow), plus a DCTCP host that
/// cuts cwnd the moment the CN lands ([`TcpConfig::cn_fast_cc`]) rather
/// than half an RTT later when the receiver's echo arrives.
pub fn fastcc() -> SchemeSpec {
    SchemeSpec::new(
        "FastCC",
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField)
            .with_feedback(FeedbackConfig::cn(CN_THRESHOLD)),
        TcpConfig {
            cn_fast_cc: true,
            ..TcpConfig::default()
        },
    )
    .fabric("static 5-tuple+V hash + early CN at the ECN mark point")
    .host("DCTCP cutting cwnd on CN arrival, not on the echoed ACK")
    .brief("switch-assisted DCTCP: the congestion signal skips the receiver round-trip")
}
