//! Flowcut: the host-side mirror of switch flowlet switching, built on
//! the same V-field fabric as FlowBender.

use super::SchemeSpec;
use netsim::{HashConfig, SimTime, SwitchConfig};
use transport::{PathSpec, TcpConfig};

/// Host-side gap switching: the sender re-draws its V-field whenever its
/// ACK stream has been idle longer than `gap` (the pipe has drained, so a
/// path change cannot reorder). Same commodity fabric as FlowBender; the
/// whole mechanism is a [`flowbender::FlowcutGap`] controller.
pub fn flowcut(gap: SimTime) -> SchemeSpec {
    SchemeSpec::new(
        format!("Flowcut({})", super::fmt_gap(gap)),
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        TcpConfig::with_path(PathSpec::flowcut(
            gap,
            flowbender::Config::default().v_range,
        )),
    )
    .fabric("static 5-tuple+V hash")
    .host("DCTCP + V re-draw after idle ACK gaps")
    .brief("host-side flowlets: re-path only when the pipe is provably empty")
}
