//! Switch-side flowcut switching (Bonato et al.): the fabric pins each
//! flow to one egress and re-routes adaptively, but only at flowcut
//! boundaries — instants where the flow's in-flight data has provably
//! drained — so delivery stays in order without any host cooperation.

use super::SchemeSpec;
use netsim::{FlowcutConfig, SimTime, SwitchConfig};
use transport::TcpConfig;

/// Switch-side flowcuts with the given idle-gap boundary. A flowcut ends
/// when the flow has been idle at the switch longer than `gap`; at that
/// boundary the switch re-picks the least-queued live egress (the same
/// pick DeTail makes per packet), unless the pinned port is uncongested —
/// then it holds, avoiding gratuitous path churn. Mid-flowcut packets
/// never move, so the receiver sees every byte in order.
pub fn flowcut_sw(gap: SimTime) -> SchemeSpec {
    SchemeSpec::new(
        format!("Flowcut-SW({})", super::fmt_gap(gap)),
        SwitchConfig::flowcut_sw(FlowcutConfig::new(gap)),
        TcpConfig::default(),
    )
    .fabric("switch flowcut tables, least-queued port at boundaries only")
    .host("DCTCP")
    .brief("adaptive re-routing with in-order delivery: move only when the pipe is empty")
}
