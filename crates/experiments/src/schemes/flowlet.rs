//! Flowlet switching (LetFlow-style): the fabric re-picks a port whenever
//! a flow pauses longer than the flowlet gap.

use super::SchemeSpec;
use netsim::{SimTime, SwitchConfig};
use transport::TcpConfig;

/// Switch-side flowlet switching with the given inactivity gap. The gap
/// is part of the name (`Flowlet(100us)`) so gap sweeps stay
/// distinguishable.
pub fn flowlet(gap: SimTime) -> SchemeSpec {
    SchemeSpec::new(
        format!("Flowlet({})", super::fmt_gap(gap)),
        SwitchConfig::flowlet(gap),
        TcpConfig::default(),
    )
    .fabric("switch flowlet tables, random port per new flowlet")
    .host("DCTCP")
    .brief("bursts re-balance at idle gaps; needs per-flow switch state")
}
