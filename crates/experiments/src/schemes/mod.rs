//! The scheme registry: every evaluated load-balancing design as one
//! [`SchemeSpec`] — fabric side ([`netsim::SwitchConfig`]) and host side
//! ([`transport::TcpConfig`], which carries the per-flow
//! [`flowbender::PathController`] factory) bundled under a display name.
//!
//! One file per scheme. Adding a scheme is: write one new `spec()` file
//! next to the existing ones, add one line to [`registry`] — nothing
//! else. The RepFlow scheme ([`repflow`]) landed exactly that way.
//!
//! | scheme | fabric | host |
//! |--------|--------|------|
//! | ECMP | 5-tuple(+V) hash | DCTCP |
//! | FlowBender | 5-tuple+V hash | DCTCP + FlowBender |
//! | RPS | per-packet random spray | DCTCP |
//! | DeTail | per-packet adaptive + PFC | DCTCP, no fast retransmit |
//! | Flowlet(gap) | switch flowlet tables | DCTCP |
//! | Flowcut(gap) | 5-tuple+V hash | DCTCP + host-side gap switching |
//! | Flowcut-SW(gap) | switch flowcut tables, boundary-only re-route | DCTCP |
//! | RepFlow | 5-tuple+V hash | DCTCP; short flows sent twice |
//! | Bender-INT | 5-tuple+V hash + INT stamping | DCTCP + bend away from blamed hop |
//! | FastCC | 5-tuple+V hash + early CN | DCTCP cutting cwnd on CN arrival |

mod bender;
mod bender_int;
mod detail;
mod ecmp;
mod fastcc;
mod flowcut;
mod flowcut_sw;
mod flowlet;
mod repflow;
mod rps;

pub use bender::flowbender;
pub use bender_int::bender_int;
pub use detail::detail;
pub use ecmp::ecmp;
pub use fastcc::fastcc;
pub use flowcut::flowcut;
pub use flowcut_sw::flowcut_sw;
pub use flowlet::flowlet;
pub use repflow::repflow;
pub use rps::rps;

use netsim::SwitchConfig;
use transport::TcpConfig;

/// Replication policy of a scheme (RepFlow-style): TCP flows strictly
/// smaller than `max_bytes` are sent twice, the duplicate pinned to
/// V-field `replica_v`, and the first finisher wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Flows strictly smaller than this many bytes are replicated.
    pub max_bytes: u64,
    /// The V-field the duplicate is pinned to (primaries keep V = 0), so
    /// the two copies hash onto independent paths.
    pub replica_v: u8,
}

/// One evaluated load-balancing design: everything the runners need to
/// set up the fabric and the hosts, plus how to present it.
#[derive(Debug, Clone)]
pub struct SchemeSpec {
    name: String,
    switch: SwitchConfig,
    tcp: TcpConfig,
    fabric: String,
    host: String,
    brief: String,
    replicate: Option<Replication>,
}

impl SchemeSpec {
    /// A spec with empty descriptions (fill them with the builder
    /// methods).
    pub fn new(name: impl Into<String>, switch: SwitchConfig, tcp: TcpConfig) -> Self {
        tcp.validate();
        SchemeSpec {
            name: name.into(),
            switch,
            tcp,
            fabric: String::new(),
            host: String::new(),
            brief: String::new(),
            replicate: None,
        }
    }

    /// Builder: the one-line fabric-side description.
    pub fn fabric(mut self, s: impl Into<String>) -> Self {
        self.fabric = s.into();
        self
    }

    /// Builder: the one-line host-side description.
    pub fn host(mut self, s: impl Into<String>) -> Self {
        self.host = s.into();
        self
    }

    /// Builder: the one-line scheme description.
    pub fn brief(mut self, s: impl Into<String>) -> Self {
        self.brief = s.into();
        self
    }

    /// Builder: enable RepFlow-style replication of short flows.
    pub fn replicating(mut self, r: Replication) -> Self {
        self.replicate = Some(r);
        self
    }

    /// Display name, parameters included (e.g. `Flowlet(100us)`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// File-system/JSON-label-safe form of the name: lowercase, with
    /// every run of non-alphanumerics collapsed to one underscore
    /// (`FlowBender` → `flowbender`, `Flowlet(100us)` → `flowlet_100us`).
    pub fn slug(&self) -> String {
        let mut out = String::with_capacity(self.name.len());
        for c in self.name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('_') {
                out.push('_');
            }
        }
        out.trim_matches('_').to_string()
    }

    /// The switch configuration this scheme needs.
    pub fn switch_config(&self) -> SwitchConfig {
        self.switch
    }

    /// The host TCP configuration this scheme needs.
    pub fn tcp_config(&self) -> TcpConfig {
        self.tcp.clone()
    }

    /// The fabric-side one-line description.
    pub fn fabric_desc(&self) -> &str {
        &self.fabric
    }

    /// The host-side one-line description.
    pub fn host_desc(&self) -> &str {
        &self.host
    }

    /// The one-line scheme description.
    pub fn brief_desc(&self) -> &str {
        &self.brief
    }

    /// The replication policy, if this scheme duplicates short flows.
    pub fn replication(&self) -> Option<Replication> {
        self.replicate
    }
}

/// Render a flowlet/flowcut gap compactly for a scheme name: whole
/// microseconds as `100us`, anything finer in ns.
pub(crate) fn fmt_gap(gap: netsim::SimTime) -> String {
    let ps = gap.as_ps();
    if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else {
        format!("{}ns", ps as f64 / 1_000.0)
    }
}

/// Every registered scheme, in deterministic presentation order: the
/// paper's four first, then the extensions.
pub fn registry() -> Vec<SchemeSpec> {
    vec![
        ecmp(),
        flowbender(::flowbender::Config::default()),
        rps(),
        detail(),
        flowlet(netsim::SimTime::from_us(100)),
        flowcut(netsim::SimTime::from_us(100)),
        flowcut_sw(netsim::SimTime::from_us(100)),
        repflow(),
        bender_int(),
        fastcc(),
    ]
}

/// The paper's four evaluated schemes, in its presentation order.
pub fn paper_set() -> Vec<SchemeSpec> {
    registry().into_iter().take(4).collect()
}

/// Look a scheme up by name, case-insensitively. Matches the full
/// display name (`Flowlet(100us)`), the base name before any parameter
/// list (`flowlet`), or the slug (`flowlet_100us`).
pub fn find(name: &str) -> Option<SchemeSpec> {
    let want = name.to_ascii_lowercase();
    registry().into_iter().find(|s| {
        let full = s.name().to_ascii_lowercase();
        let base = full.split('(').next().unwrap_or(&full).to_string();
        want == full || want == base || want == s.slug()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_deterministic_and_named_uniquely() {
        let a = registry();
        let b = registry();
        let names: Vec<_> = a.iter().map(|s| s.name().to_string()).collect();
        assert_eq!(
            names,
            b.iter().map(|s| s.name().to_string()).collect::<Vec<_>>()
        );
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "names must be unique: {names:?}");
        for s in &a {
            assert!(!s.fabric_desc().is_empty(), "{}: fabric desc", s.name());
            assert!(!s.host_desc().is_empty(), "{}: host desc", s.name());
            assert!(!s.brief_desc().is_empty(), "{}: brief", s.name());
        }
    }

    #[test]
    fn paper_set_matches_the_paper_order() {
        let names: Vec<String> = paper_set().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["ECMP", "FlowBender", "RPS", "DeTail"]);
    }

    #[test]
    fn find_matches_full_base_and_slug_case_insensitively() {
        assert_eq!(find("flowbender").unwrap().name(), "FlowBender");
        assert_eq!(find("ECMP").unwrap().name(), "ECMP");
        assert_eq!(find("Flowlet(100us)").unwrap().name(), "Flowlet(100us)");
        assert_eq!(find("flowlet").unwrap().name(), "Flowlet(100us)");
        assert_eq!(find("flowlet_100us").unwrap().name(), "Flowlet(100us)");
        assert_eq!(find("flowcut-sw").unwrap().name(), "Flowcut-SW(100us)");
        assert_eq!(
            find("flowcut_sw_100us").unwrap().name(),
            "Flowcut-SW(100us)"
        );
        assert_eq!(find("flowcut").unwrap().name(), "Flowcut(100us)");
        assert_eq!(find("repflow").unwrap().name(), "RepFlow");
        assert_eq!(find("bender-int").unwrap().name(), "Bender-INT");
        assert_eq!(find("bender_int").unwrap().name(), "Bender-INT");
        assert_eq!(find("fastcc").unwrap().name(), "FastCC");
        assert!(find("vlb").is_none());
    }

    #[test]
    fn slugs_are_label_safe() {
        assert_eq!(
            flowbender(::flowbender::Config::default()).slug(),
            "flowbender"
        );
        assert_eq!(
            flowlet(netsim::SimTime::from_us(100)).slug(),
            "flowlet_100us"
        );
        assert_eq!(
            flowbender(::flowbender::Config::default().with_n(3)).slug(),
            "flowbender_n_3"
        );
    }

    #[test]
    fn parameterized_names_distinguish_variants() {
        let a = flowbender(::flowbender::Config::default());
        let b = flowbender(::flowbender::Config::default().with_t(0.01));
        let c = flowlet(netsim::SimTime::from_us(500));
        assert_eq!(a.name(), "FlowBender");
        assert_ne!(a.name(), b.name());
        assert_eq!(c.name(), "Flowlet(500us)");
    }

    #[test]
    fn scheme_configs_are_consistent() {
        for s in registry() {
            let sw = s.switch_config();
            let tcp = s.tcp_config();
            tcp.validate();
            match s.name() {
                "RPS" => assert_eq!(sw.scheme, netsim::ForwardingScheme::Rps),
                "DeTail" => {
                    assert_eq!(sw.scheme, netsim::ForwardingScheme::Adaptive);
                    assert!(sw.pfc.is_some());
                    assert_eq!(tcp.dupack_threshold, None);
                }
                name if name.starts_with("Flowlet") => {
                    assert!(matches!(
                        sw.scheme,
                        netsim::ForwardingScheme::Flowlet { .. }
                    ))
                }
                name if name.starts_with("Flowcut-SW") => {
                    assert!(matches!(
                        sw.scheme,
                        netsim::ForwardingScheme::Flowcut { .. }
                    ));
                    assert!(tcp.path.is_none(), "switch flowcuts need no host help");
                }
                _ => {
                    assert_eq!(sw.scheme, netsim::ForwardingScheme::EcmpHash);
                    assert!(sw.pfc.is_none());
                }
            }
            if s.name() == "FlowBender" {
                assert!(!tcp.path.is_none());
            }
            if s.name() == "ECMP" || s.name() == "RPS" || s.name() == "DeTail" {
                assert!(tcp.path.is_none());
            }
            match s.name() {
                "Bender-INT" => {
                    let fb = sw.feedback.expect("Bender-INT needs INT stamping");
                    assert!(fb.int_stamp);
                    assert!(fb.cn_threshold.is_none(), "Bender-INT is INT-only");
                    assert!(!tcp.path.is_none());
                    assert!(!tcp.cn_fast_cc);
                }
                "FastCC" => {
                    let fb = sw.feedback.expect("FastCC needs CN feedback");
                    assert!(!fb.int_stamp);
                    assert_eq!(fb.cn_threshold, Some(90_000));
                    assert!(tcp.path.is_none());
                    assert!(tcp.cn_fast_cc);
                }
                _ => {
                    assert!(sw.feedback.is_none(), "{}: unexpected feedback", s.name());
                    assert!(!tcp.cn_fast_cc, "{}: unexpected FastCC", s.name());
                }
            }
        }
    }

    #[test]
    fn only_repflow_replicates() {
        for s in registry() {
            if s.name() == "RepFlow" {
                let r = s.replication().expect("RepFlow replicates");
                assert_eq!(r.max_bytes, 100_000);
                assert_ne!(r.replica_v, 0, "replica must differ from primaries");
            } else {
                assert!(s.replication().is_none(), "{}", s.name());
            }
        }
    }
}
