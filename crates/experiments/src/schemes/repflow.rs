//! RepFlow: replicate short flows instead of rerouting them.
//!
//! This file is the registry's extensibility proof: the entire scheme —
//! fabric choice, host stack, replication policy, documentation — lands
//! here, plus one line in [`super::registry`]. Nothing else in the
//! codebase knows RepFlow exists.

use super::{Replication, SchemeSpec};
use netsim::{HashConfig, SwitchConfig};
use transport::TcpConfig;

/// RepFlow (Xu & Li, INFOCOM 2014 flavor): every TCP flow shorter than
/// 100 KB is sent twice over the same ECMP fabric, the duplicate pinned
/// to V = 1 while the primary keeps V = 0, and the first copy to finish
/// defines the flow's completion time. Path diversity comes from the
/// V-field hash, so the fabric is exactly ECMP's; no host rerouting logic
/// at all.
pub fn repflow() -> SchemeSpec {
    SchemeSpec::new(
        "RepFlow",
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        TcpConfig::default(),
    )
    .fabric("static 5-tuple+V hash")
    .host("DCTCP; flows < 100KB sent twice (V=0 and V=1), first finisher wins")
    .brief("short-flow replication buys path diversity without any rerouting")
    .replicating(Replication {
        max_bytes: 100_000,
        replica_v: 1,
    })
}
