//! RPS: per-packet random packet spraying (§2's reordering-prone
//! comparison point).

use super::SchemeSpec;
use netsim::SwitchConfig;
use transport::TcpConfig;

/// Random packet spraying: every packet independently takes a uniformly
/// random equal-cost port; hosts run stock DCTCP and absorb the
/// reordering.
pub fn rps() -> SchemeSpec {
    SchemeSpec::new("RPS", SwitchConfig::rps(), TcpConfig::default())
        .fabric("per-packet uniform random spray")
        .host("DCTCP")
        .brief("per-packet spraying; best balance, worst reordering")
}
