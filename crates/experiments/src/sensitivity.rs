//! Figures 6 & 7 — sensitivity of FlowBender to its two knobs:
//! `N` (consecutive congested RTTs before rerouting) and `T` (the marked-
//! fraction threshold), on the 40 % all-to-all workload, reported as mean
//! latency normalized to the default setting.
//!
//! Paper's result: both curves are nearly flat — FlowBender "is very
//! robust and simple to tune". Larger `N` slows response slightly; `T` is
//! best at 5 % with marginal degradation at 1 % (bursty false alarms) and
//! beyond 10 % (sluggish response).

use netsim::SimTime;
use stats::{fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Window};
use crate::schemes;

/// N values of Figure 6.
pub const N_VALUES: [u32; 5] = [1, 2, 3, 4, 5];
/// T values of Figure 7.
pub const T_VALUES: [f64; 4] = [0.01, 0.05, 0.10, 0.20];

/// Mean latency of one FlowBender variant on the fixed workload.
fn run_variant(opts: &Opts, cfg: flowbender::Config) -> f64 {
    let params = FatTreeParams::paper();
    let duration = opts.scaled(SimTime::from_ms(60));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();
    let mut rng = netsim::DetRng::new(opts.seed, 0x5E45);
    let specs = all_to_all(&params, 0.4, duration, &dist, &mut rng);
    let out = run_fat_tree(
        params,
        &schemes::flowbender(cfg),
        &specs,
        window.drain_until,
        opts.seed,
    );
    let s = samples(&out.flows, window.start, window.end);
    let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
    stats::mean(&fcts).unwrap_or(0.0)
}

/// Figure 6: sensitivity to `N`.
pub fn fig6(opts: &Opts) -> Report {
    opts.validate();
    let means = parallel_map(N_VALUES.to_vec(), |n| {
        (
            n,
            run_variant(opts, flowbender::Config::default().with_n(n)),
        )
    });
    let base = means.iter().find(|(n, _)| *n == 1).expect("N=1 present").1;
    let mut table = Table::new(vec!["N", "mean latency (norm. to N=1)", "mean abs"]);
    for (n, m) in &means {
        table.row(vec![
            n.to_string(),
            format!("{:.3}", m / base),
            fmt_secs(*m),
        ]);
    }
    let mut r = Report::new("fig6");
    r.section("Fig 6: FlowBender sensitivity to N (40% all-to-all)", table);
    r.note("paper: mild monotone degradation with N, all within ~a few % of N=1");
    r
}

/// Figure 7: sensitivity to `T`.
pub fn fig7(opts: &Opts) -> Report {
    opts.validate();
    let means = parallel_map(T_VALUES.to_vec(), |t| {
        (
            t,
            run_variant(opts, flowbender::Config::default().with_t(t)),
        )
    });
    let base = means
        .iter()
        .find(|(t, _)| *t == 0.05)
        .expect("T=5% present")
        .1;
    let mut table = Table::new(vec!["T", "mean latency (norm. to T=5%)", "mean abs"]);
    for (t, m) in &means {
        table.row(vec![
            format!("{:.0}%", t * 100.0),
            format!("{:.3}", m / base),
            fmt_secs(*m),
        ]);
    }
    let mut r = Report::new("fig7");
    r.section("Fig 7: FlowBender sensitivity to T (40% all-to-all)", table);
    r.note("paper: best at T=5%; T=1% and T=20% marginally worse; robust across the range");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_is_mild_between_n1_and_n3() {
        let opts = Opts {
            scale: 0.15,
            seed: 11,
            ..Opts::default()
        };
        let m1 = run_variant(&opts, flowbender::Config::default().with_n(1));
        let m3 = run_variant(&opts, flowbender::Config::default().with_n(3));
        assert!(m1 > 0.0 && m3 > 0.0);
        // The paper's robustness claim: N=3 within ~35% of N=1 even on a
        // short noisy run.
        let ratio = m3 / m1;
        assert!((0.65..1.35).contains(&ratio), "N sensitivity ratio {ratio}");
    }
}
