//! Table 1 — functionality verification: FlowBender vs ECMP flow
//! completion times for 8/16/24 simultaneous 250 MB ToR-to-ToR flows.
//!
//! Paper's result: FlowBender improves the mean by ≈2× and the max by
//! 5–8×; the max/mean ratio falls from >3.3 (ECMP) to <1.3 (FlowBender),
//! i.e. a much tighter completion-time distribution.
//!
//! At the default `--scale 1` each flow is 25 MB (a tenth of the paper's
//! 250 MB) so the experiment runs in seconds; the load-balancing dynamics
//! are unchanged because all flows still span thousands of RTTs.

use netsim::{SimTime, TelemetryConfig};
use stats::{fmt_ratio, fmt_secs, Table};
use topology::FatTreeParams;
use workloads::microbench;

use crate::report::{Opts, Report, RunSummary};
use crate::scenario::{parallel_map, run_fat_tree_with};
use crate::schemes::{self, SchemeSpec};

/// Flow counts evaluated by the paper (1, 2, 3 flows per route on average).
pub const FLOW_COUNTS: [u32; 3] = [8, 16, 24];

/// Mean and max FCT of one (scheme, flow-count) cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Number of simultaneous flows.
    pub flows: u32,
    /// Mean FCT, seconds.
    pub mean_s: f64,
    /// Max FCT, seconds.
    pub max_s: f64,
    /// Flows that completed.
    pub completed: usize,
}

/// Telemetry collected for the JSON summaries: egress queue depths plus
/// V-field reroute traces. The sampling period is coarse (10 ms) because
/// these runs simulate minutes of traffic — fine-grained queue series
/// belong to purpose-built probes, not a table experiment.
fn telemetry() -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        sample_every: SimTime::from_ms(10),
        queue_depth: true,
        reroutes: true,
        ..TelemetryConfig::off()
    }
}

/// Run the microbenchmark for one scheme across all flow counts.
pub fn run_scheme(scheme: &SchemeSpec, bytes: u64, seed: u64) -> Vec<Cell> {
    let opts = Opts {
        scale: 1.0,
        seed,
        ..Opts::default()
    };
    run_scheme_with(scheme, bytes, seed, TelemetryConfig::off(), &opts)
        .into_iter()
        .map(|(cell, _)| cell)
        .collect()
}

/// Like [`run_scheme`], but with a telemetry configuration, also
/// returning the machine-readable [`RunSummary`] of every run.
pub fn run_scheme_with(
    scheme: &SchemeSpec,
    bytes: u64,
    seed: u64,
    telemetry: TelemetryConfig,
    opts: &Opts,
) -> Vec<(Cell, RunSummary)> {
    let params = FatTreeParams::paper();
    let slug = scheme.slug();
    parallel_map(FLOW_COUNTS.to_vec(), |n| {
        let specs = microbench(&params, n, bytes);
        let out = run_fat_tree_with(
            params,
            scheme,
            &specs,
            SimTime::from_secs(120),
            seed,
            telemetry.clone(),
        );
        let fcts: Vec<f64> = out
            .flows
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .collect();
        let cell = Cell {
            flows: n,
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
            max_s: fcts.iter().cloned().fold(0.0, f64::max),
            completed: fcts.len(),
        };
        let label = format!("{slug}_flows{n}_seed{seed}");
        let summary = RunSummary::from_run(label, scheme.name(), opts, seed, &out);
        (cell, summary)
    })
}

/// Seeds evaluated per configuration: ECMP's worst-case collision is a
/// tail event of the hash draw, so a single seed under-samples it (the
/// paper, too, reports one draw).
pub const SEEDS: u64 = 3;

/// Produce the Table 1 report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let bytes = (25_000_000.0 * opts.scale) as u64;

    let mut table = Table::new(vec![
        "Flows",
        "seed",
        "ECMP mean",
        "ECMP max",
        "FB mean",
        "FB max",
        "ECMP max/mean",
        "FB max/mean",
    ]);
    let mut worst_ecmp_ratio: f64 = 0.0;
    let mut worst_fb_ratio: f64 = 0.0;
    let mut summaries = Vec::new();
    for s in 0..SEEDS {
        let seed = opts.seed + s;
        let mut split = |runs: Vec<(Cell, RunSummary)>| -> Vec<Cell> {
            runs.into_iter()
                .map(|(cell, summary)| {
                    summaries.push(summary);
                    cell
                })
                .collect()
        };
        let ecmp = split(run_scheme_with(
            &schemes::ecmp(),
            bytes,
            seed,
            telemetry(),
            opts,
        ));
        let bender = split(run_scheme_with(
            &schemes::flowbender(flowbender::Config::default()),
            bytes,
            seed,
            telemetry(),
            opts,
        ));
        for (e, b) in ecmp.iter().zip(&bender) {
            assert_eq!(e.flows, b.flows);
            assert_eq!(e.completed as u32, e.flows, "ECMP flows incomplete");
            assert_eq!(b.completed as u32, b.flows, "FlowBender flows incomplete");
            let er = e.max_s / e.mean_s;
            let br = b.max_s / b.mean_s;
            worst_ecmp_ratio = worst_ecmp_ratio.max(er);
            worst_fb_ratio = worst_fb_ratio.max(br);
            table.row(vec![
                e.flows.to_string(),
                seed.to_string(),
                fmt_secs(e.mean_s),
                fmt_secs(e.max_s),
                fmt_secs(b.mean_s),
                fmt_secs(b.max_s),
                fmt_ratio(er),
                fmt_ratio(br),
            ]);
        }
    }

    let mut report = Report::new("table1");
    report.section(
        format!(
            "Table 1: {} MB ToR-to-ToR flows, FlowBender vs ECMP ({SEEDS} hash draws)",
            bytes / 1_000_000
        ),
        table,
    );
    report.note(format!(
        "worst max/mean across draws: ECMP {worst_ecmp_ratio:.2} vs FlowBender {worst_fb_ratio:.2}"
    ));
    report.note("paper (one draw): ECMP max/mean > 3.3; FlowBender max/mean < 1.3; FB mean ~2x better, max 5-8x better");
    for summary in summaries {
        report.run_summary(summary);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A very small instance of the experiment to keep CI fast: the shape
    /// (FlowBender tightens the distribution) must already show at 2 MB.
    #[test]
    fn shrunken_table1_shows_the_shape() {
        let bytes = 2_000_000;
        let ecmp = run_scheme(&schemes::ecmp(), bytes, 3);
        let fb = run_scheme(
            &schemes::flowbender(flowbender::Config::default()),
            bytes,
            3,
        );
        for (e, b) in ecmp.iter().zip(&fb) {
            assert_eq!(e.completed as u32, e.flows);
            assert_eq!(b.completed as u32, b.flows);
            // FlowBender's worst flow must not be (much) worse than ECMP's.
            assert!(
                b.max_s <= e.max_s * 1.10,
                "{} flows: FB max {} vs ECMP max {}",
                e.flows,
                b.max_s,
                e.max_s
            );
        }
        // In at least one configuration ECMP collisions must be visibly
        // worse than FlowBender (the whole point of the experiment).
        let improved = ecmp.iter().zip(&fb).any(|(e, b)| e.max_s > b.max_s * 1.3);
        assert!(
            improved,
            "ECMP never collided noticeably; seeds may be degenerate"
        );
    }
}
