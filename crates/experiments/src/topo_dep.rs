//! §4.3.3 — topological dependencies: does FlowBender's improvement
//! survive when path diversity quadruples?
//!
//! The paper's argument: ECMP's per-path long-flow count is binomial with
//! mean `R = L/P` and variance `R(1 - 1/P)`; scaling the fabric up scales
//! `L` with `P`, so the imbalance (and hence FlowBender's win) is nearly
//! unchanged — they re-ran all-to-all on a wider fabric and saw "almost
//! the same" improvement. We run the 40 % all-to-all on the paper fabric
//! (8 inter-pod paths) and on the doubled-port-density variant (32 paths)
//! and compare FlowBender/ECMP mean-latency ratios.

use netsim::SimTime;
use stats::{fmt_secs, samples, Table};
use topology::FatTreeParams;
use workloads::{all_to_all, FlowSizeDist};

use crate::report::{Opts, Report};
use crate::scenario::{parallel_map, run_fat_tree, Window};
use crate::schemes;

/// Mean FCT of one (fabric, scheme) run.
#[derive(Debug)]
pub struct Cell {
    /// Fabric label.
    pub fabric: &'static str,
    /// Inter-pod path diversity of the fabric.
    pub paths: usize,
    /// Scheme display name (parameters included).
    pub scheme: String,
    /// Mean FCT (s).
    pub mean_s: f64,
}

/// Run both fabrics × {ECMP, FlowBender}.
pub fn sweep(opts: &Opts) -> Vec<Cell> {
    opts.validate();
    let fabrics: [(&'static str, FatTreeParams); 2] = [
        ("paper (P=8)", FatTreeParams::paper()),
        ("wide (P=32)", FatTreeParams::paper_wide()),
    ];
    let duration = opts.scaled(SimTime::from_ms(25));
    let window = Window::for_duration(duration, SimTime::from_ms(400));
    let dist = FlowSizeDist::web_search();

    let mut jobs = Vec::new();
    for (label, params) in fabrics {
        for scheme in [
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ] {
            jobs.push((label, params, scheme));
        }
    }
    parallel_map(jobs, |(label, params, scheme)| {
        let mut rng = netsim::DetRng::new(opts.seed, 0x70D ^ params.n_hosts() as u64);
        let specs = all_to_all(&params, 0.4, duration, &dist, &mut rng);
        let out = run_fat_tree(params, &scheme, &specs, window.drain_until, opts.seed);
        let s = samples(&out.flows, window.start, window.end);
        let fcts: Vec<f64> = s.iter().map(|x| x.fct_s).collect();
        Cell {
            fabric: label,
            paths: params.inter_pod_paths(),
            scheme: scheme.name().to_string(),
            mean_s: stats::mean(&fcts).unwrap_or(0.0),
        }
    })
}

/// Produce the report.
pub fn run(opts: &Opts) -> Report {
    let cells = sweep(opts);
    let find = |fabric: &str, scheme: &str| {
        cells
            .iter()
            .find(|c| c.fabric == fabric && c.scheme == scheme)
            .unwrap_or_else(|| panic!("missing {scheme} on {fabric}"))
    };
    let mut table = Table::new(vec!["fabric", "paths", "ECMP mean", "FB mean", "FB/ECMP"]);
    let mut ratios = Vec::new();
    for fabric in ["paper (P=8)", "wide (P=32)"] {
        let e = find(fabric, "ECMP");
        let f = find(fabric, "FlowBender");
        let ratio = f.mean_s / e.mean_s;
        ratios.push(ratio);
        table.row(vec![
            fabric.to_string(),
            e.paths.to_string(),
            fmt_secs(e.mean_s),
            fmt_secs(f.mean_s),
            format!("{ratio:.3}"),
        ]);
    }
    let mut r = Report::new("topo_dep");
    r.section(
        "§4.3.3: FlowBender improvement vs path diversity (40% all-to-all)",
        table,
    );
    r.note(format!(
        "improvement ratio P=8 vs P=32: {:.3} vs {:.3} (paper: 'almost the same')",
        ratios[0], ratios[1]
    ));
    r.note("theory: per-path long-flow count is Binomial(mean R=L/P, var R(1-1/P)); going P=8->32 changes the variance by <11%");
    r
}

/// The binomial variance argument itself (§4.3.3), as code: relative
/// variance change of the per-path flow count when P grows at constant
/// R = L/P.
pub fn binomial_variance_ratio(p_small: f64, p_large: f64) -> f64 {
    (1.0 - 1.0 / p_large) / (1.0 - 1.0 / p_small)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variance_claim_checks_out() {
        // "varying P from 8 to 32 would increase the variance by less than
        // 11% only"
        let ratio = binomial_variance_ratio(8.0, 32.0);
        assert!(ratio > 1.0 && ratio - 1.0 < 0.11, "ratio = {ratio}");
    }
}
