//! `trace-scale` — the million-flow workload-engine experiment: exercises
//! the registry workloads and the streaming FCT machinery at trace scale,
//! where holding one `Sample` per flow is no longer an option.
//!
//! This experiment deliberately does **not** run the packet simulator —
//! at 10^6+ flows that is the sharded engine's job (ROADMAP item 1). It
//! proves out the two layers that engine will stand on:
//!
//! 1. **Generation**: the selected workload (websearch by default) is
//!    produced through [`workloads::PoissonStream`] when it advertises a
//!    streamable distribution — O(hosts) generator state, flows emitted
//!    in arrival order — and through the batch registry path otherwise.
//! 2. **Aggregation**: every flow is scored by a deterministic analytic
//!    FCT model and fed straight into a [`stats::FctAccumulator`], so
//!    peak stats memory is O(sketch buckets), independent of flow count.
//!
//! The analytic model is a pipeline-throughput proxy, *not* scheme
//! fidelity: `fct = (base_rtt + bytes·8/link_bps) / (1 - load)` — the
//! M/M/1-flavored slowdown of an uncongested-path transfer. It keeps the
//! pipeline end-to-end deterministic (same seed → byte-identical tables)
//! while producing realistically heavy-tailed FCTs for the sketches.
//!
//! Wall-clock generation/aggregation rates are printed to stderr (and
//! tracked as a flows/sec curve in `BENCH_engine.json` via the bench
//! crate); the report files stay byte-deterministic.

use netsim::{DetRng, FlowRecord, Proto, SimTime};
use stats::{fmt_secs, job_completion, BinSpec, FctAccumulator, JobStats, Table};
use topology::FatTreeParams;
use workloads::{load, PoissonStream, Workload};

use crate::report::{Opts, Report};

/// Flow count of the full run at `--scale 1` (the acceptance bar).
pub const TARGET_FLOWS: u64 = 1_000_000;

/// Offered load the trace is generated at.
pub const LOAD: f64 = 0.6;

/// RNG stream tag for the per-source split streams.
const STREAM_TAG: u64 = 0x57AE;

/// Deterministic analytic FCT proxy (seconds) for one flow: base RTT plus
/// edge-link serialization, inflated by the M/M/1-style `1/(1-load)`
/// congestion factor. Not a scheme simulation — a stand-in that gives the
/// sketches a realistic heavy-tailed input at zero per-flow state.
pub fn model_fct_s(p: &FatTreeParams, load: f64, bytes: u64) -> f64 {
    // Six store-and-forward links each way: host-ToR-agg-core-agg-ToR-host.
    let base_rtt_s = 12.0 * p.link_delay.as_secs_f64();
    let serialize_s = bytes as f64 * 8.0 / p.link_bps as f64;
    (base_rtt_s + serialize_s) / (1.0 - load.min(0.95))
}

/// One point of the scale curve.
pub struct PointResult {
    /// Flows generated and aggregated.
    pub flows: u64,
    /// Wall-clock seconds spent generating (and scoring) flows.
    pub gen_wall_s: f64,
    /// The streaming accumulator after all flows were recorded.
    pub acc: FctAccumulator,
    /// Job completion stats, when the workload tags jobs (batch path).
    pub jobs: Option<JobStats>,
    /// Whether the O(hosts) streaming generator was used.
    pub streamed: bool,
}

/// Duration whose *expected* streamed flow count is `target`, plus 25 %
/// headroom so `take(target)` always fills.
fn duration_for(p: &FatTreeParams, target: u64, mean_bytes: f64) -> SimTime {
    let rate_total = load::fat_tree_flow_rate_per_host(p, LOAD, mean_bytes) * p.n_hosts() as f64;
    SimTime::from_secs_f64(target as f64 / rate_total * 1.25)
}

/// Generate + aggregate one curve point at `target` flows.
pub fn run_point(p: &FatTreeParams, wl: &dyn Workload, target: u64, seed: u64) -> PointResult {
    let started = std::time::Instant::now();
    let mut acc = FctAccumulator::new(BinSpec::paper());
    if let Some(dist) = wl.stream_dist() {
        // Streaming path: never materializes the flow list.
        let duration = duration_for(p, target, dist.mean_bytes());
        let base = DetRng::new(seed, STREAM_TAG);
        let stream = PoissonStream::new(p, LOAD, duration, dist, &base);
        let mut n = 0u64;
        for spec in stream.take(target as usize) {
            acc.record(spec.bytes, model_fct_s(p, LOAD, spec.bytes));
            n += 1;
        }
        PointResult {
            flows: n,
            gen_wall_s: started.elapsed().as_secs_f64(),
            acc,
            jobs: None,
            streamed: true,
        }
    } else {
        // Batch path for structured workloads (jobs, bursts): duration
        // sized with the websearch mean as a proxy, flow count capped at
        // `target`; job metrics come from the analytic model's records.
        let duration = duration_for(
            p,
            target,
            workloads::FlowSizeDist::web_search().mean_bytes(),
        );
        let mut rng = DetRng::new(seed, STREAM_TAG);
        let mut specs = wl.generate(p, LOAD, duration, &mut rng);
        specs.truncate(target as usize);
        let mut records = Vec::with_capacity(specs.len());
        for s in &specs {
            let fct = model_fct_s(p, LOAD, s.bytes);
            acc.record(s.bytes, fct);
            records.push(FlowRecord {
                flow: s.id,
                src: s.src,
                dst: s.dst,
                bytes: s.bytes,
                start: s.start,
                end: s.start + SimTime::from_secs_f64(fct),
                job: s.job,
                proto: Proto::Tcp,
            });
        }
        let jobs = records.iter().any(|r| r.job.is_some());
        PointResult {
            flows: records.len() as u64,
            gen_wall_s: started.elapsed().as_secs_f64(),
            jobs: jobs.then(|| job_completion(&records)),
            acc,
            streamed: false,
        }
    }
}

/// Run the scale curve and build the report.
pub fn run(opts: &Opts) -> Report {
    opts.validate();
    let params = FatTreeParams::paper();
    let wl = opts.workload_or("websearch");
    let target = ((TARGET_FLOWS as f64 * opts.scale).round() as u64).max(8);
    // Quarter/half/full curve, deduped for tiny targets.
    let mut curve: Vec<u64> = vec![target / 4, target / 2, target];
    curve.retain(|&f| f > 0);
    curve.dedup();

    let mut table = Table::new(vec![
        "flows",
        "streamed",
        "p50",
        "p99",
        "p99.9",
        "max",
        "buckets",
        "sketch-KB",
    ]);
    let mut last: Option<PointResult> = None;
    for &f in &curve {
        let pt = run_point(&params, wl.as_ref(), f, opts.seed);
        let sk = pt.acc.overall();
        table.row(vec![
            pt.flows.to_string(),
            if pt.streamed { "yes" } else { "no" }.to_string(),
            sk.quantile(0.5).map(fmt_secs).unwrap_or("-".into()),
            sk.quantile(0.99).map(fmt_secs).unwrap_or("-".into()),
            sk.quantile(0.999).map(fmt_secs).unwrap_or("-".into()),
            sk.max().map(fmt_secs).unwrap_or("-".into()),
            pt.acc.bucket_count().to_string(),
            format!("{:.1}", pt.acc.memory_bytes() as f64 / 1024.0),
        ]);
        if pt.gen_wall_s > 0.0 {
            // Wall-clock rates go to stderr, never into the report: the
            // files under --out stay byte-deterministic like every other
            // experiment's. The tracked flows/sec curve lives in
            // BENCH_engine.json (workload/websearch_gen_agg_*).
            eprintln!(
                "trace-scale: {} flows at {:.2}M flows/s generate+aggregate",
                pt.flows,
                pt.flows as f64 / pt.gen_wall_s / 1e6
            );
        }
        last = Some(pt);
    }
    let last = last.expect("curve is never empty");

    let mut r = Report::new("trace_scale");
    r.section(
        format!(
            "Trace scale: {} over the flow-count curve at {:.0}% load (streaming sketches)",
            wl.name(),
            LOAD * 100.0
        ),
        table,
    );
    // Per-size-bin breakdown at the final (largest) point.
    let mut bins = Table::new(vec!["flow size", "count", "mean", "p99", "p99.9"]);
    for b in last.acc.binned() {
        bins.row(vec![
            b.bin.label.to_string(),
            b.count.to_string(),
            b.mean_s.map(fmt_secs).unwrap_or("-".into()),
            b.p99_s.map(fmt_secs).unwrap_or("-".into()),
            b.p999_s.map(fmt_secs).unwrap_or("-".into()),
        ]);
    }
    r.section(
        format!("Binned FCTs at {} flows (analytic model)", last.flows),
        bins,
    );
    if let Some(js) = &last.jobs {
        let mut jt = Table::new(vec!["jobs", "complete", "mean", "p50", "p99", "max"]);
        jt.row(vec![
            js.jobs_total.to_string(),
            js.jobs_complete.to_string(),
            js.mean_s.map(fmt_secs).unwrap_or("-".into()),
            js.p50_s.map(fmt_secs).unwrap_or("-".into()),
            js.p99_s.map(fmt_secs).unwrap_or("-".into()),
            js.max_s.map(fmt_secs).unwrap_or("-".into()),
        ]);
        r.section("Job completion (analytic model)", jt);
    }
    r.note(format!(
        "stats memory at {} flows: {} sketch buckets, {:.1} KB — O(sketch), not O(flows)",
        last.flows,
        last.acc.bucket_count(),
        last.acc.memory_bytes() as f64 / 1024.0
    ));
    r.note(
        "generation+aggregation flows/sec is tracked commit over commit in \
         BENCH_engine.json (workload/websearch_gen_agg_*), perf-gated in CI",
    );
    r.note(
        "FCTs are an analytic pipeline-throughput proxy (no packet simulation); \
         scheme-fidelity at this scale is ROADMAP item 1 (sharded engine)",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_point_reaches_a_million_flows_with_flat_memory() {
        // The acceptance bar: >= 1,000,000 websearch-CDF flows through
        // the streaming path, with stats memory bounded by the sketch —
        // not the flow count.
        let p = FatTreeParams::paper();
        let wl = workloads::find("websearch").unwrap();
        let pt = run_point(&p, wl.as_ref(), TARGET_FLOWS, 3);
        assert!(pt.streamed, "websearch must take the streaming path");
        assert_eq!(pt.flows, 1_000_000);
        assert_eq!(pt.acc.count(), 1_000_000);
        assert!(
            pt.acc.bucket_count() < 8_192,
            "buckets {} not flat",
            pt.acc.bucket_count()
        );
        assert!(
            pt.acc.memory_bytes() < 1 << 20,
            "sketch memory {} exceeds 1 MB",
            pt.acc.memory_bytes()
        );
        // The heavy tail is visible: p99.9 well above p50.
        let sk = pt.acc.overall();
        assert!(sk.quantile(0.999).unwrap() > 5.0 * sk.quantile(0.5).unwrap());
    }

    #[test]
    fn points_are_deterministic_in_the_seed() {
        let p = FatTreeParams::paper();
        let wl = workloads::find("websearch").unwrap();
        let a = run_point(&p, wl.as_ref(), 20_000, 7);
        let b = run_point(&p, wl.as_ref(), 20_000, 7);
        let c = run_point(&p, wl.as_ref(), 20_000, 8);
        assert_eq!(
            a.acc.overall().quantile(0.99),
            b.acc.overall().quantile(0.99)
        );
        assert_eq!(a.acc.overall().sum(), b.acc.overall().sum());
        assert_ne!(a.acc.overall().sum(), c.acc.overall().sum());
    }

    #[test]
    fn batch_workloads_report_job_completion() {
        let p = FatTreeParams::paper();
        let wl = workloads::find("incast:8").unwrap();
        let pt = run_point(&p, wl.as_ref(), 10_000, 3);
        assert!(!pt.streamed, "incast has cross-flow structure");
        assert!(pt.flows > 0);
        let js = pt.jobs.expect("incast tags jobs");
        assert!(js.jobs_complete > 0);
        assert!(js.p99_s.unwrap() >= js.p50_s.unwrap());
    }

    #[test]
    fn small_scale_report_has_curve_bins_and_memory_note() {
        let opts = Opts {
            scale: 0.01, // 10k flows
            seed: 3,
            ..Opts::default()
        };
        let r = run(&opts);
        assert_eq!(r.name, "trace_scale");
        assert!(r.sections[0].0.contains("Websearch"));
        assert_eq!(r.sections[0].1.len(), 3, "quarter/half/full curve");
        assert!(r.sections[1].0.contains("Binned"));
        assert_eq!(r.sections[1].1.len(), 4, "paper bins");
        assert!(r.notes.iter().any(|n| n.contains("O(sketch)")));
    }
}
