//! Property test: the packet-conservation ledger balances under
//! *randomized* fault plans — arbitrary interleavings of link flaps and
//! gray loss across every agg→core uplink — for **every scheme in the
//! registry** (ECMP, FlowBender, RPS, DeTail's PFC fabric, flowlet and
//! flowcut switching, and RepFlow's duplicated short flows), across
//! seeds. Whatever the plan does to the fabric, every injected packet —
//! replicas included — must end up delivered, dropped with a recorded
//! reason, or still in flight at the cutoff; nothing leaks, nothing is
//! double-counted. (`run_fat_tree_faults` additionally asserts the same
//! audit internally before returning, so a violation fails twice over.)

use experiments::run_fat_tree_faults;
use experiments::schemes::{self, SchemeSpec};
use netsim::{DetRng, FaultPlan, FlowSpec, SimTime, TelemetryConfig};
use topology::FatTreeParams;

const SEEDS: u64 = 3;

fn chaos_run(scheme: &SchemeSpec, seed: u64) -> experiments::RunOutput {
    let params = FatTreeParams::tiny();
    // 8 cross-pod flows (hosts 0..8 are pod 0, 8..16 pod 1). Half are
    // short (50 KB, below the RepFlow replication cut-off) so replicating
    // schemes exercise the duplicate-packet accounting too.
    let specs: Vec<FlowSpec> = (0..8)
        .map(|i| {
            let bytes = if i % 2 == 0 { 50_000 } else { 200_000 };
            FlowSpec::tcp(i, i, 8 + i, bytes, SimTime::ZERO)
        })
        .collect();
    run_fat_tree_faults(
        params,
        scheme,
        &specs,
        SimTime::from_secs(10),
        seed,
        TelemetryConfig::off(),
        |ft| {
            // Every agg->core uplink in the fabric is fair game: tiny has
            // 4 aggs x 2 core uplinks each.
            let links: Vec<_> = (0..4)
                .flat_map(|a| (0..2).map(move |k| ft.agg_core_link(a, k)))
                .collect();
            let mut rng = DetRng::new(seed, 0x4E57);
            FaultPlan::randomized(&mut rng, &links, SimTime::from_ms(50), 0.15)
        },
    )
}

#[test]
fn conservation_holds_under_randomized_faults_for_every_registered_scheme() {
    for seed in 0..SEEDS {
        for scheme in schemes::registry() {
            let out = chaos_run(&scheme, seed);
            let c = out.conservation;
            assert!(c.holds(), "seed {seed}, {}: {c}", scheme.name());
            assert!(c.injected > 0, "seed {seed}: the run must inject traffic");
            assert_eq!(
                c.injected,
                c.delivered + c.dropped_total() + c.in_flight,
                "seed {seed}, {}: ledger must balance",
                scheme.name()
            );
            // The audit's per-port rows must agree with its totals.
            let audit = out.drops();
            let row_sum: u64 = audit
                .per_port()
                .iter()
                .flat_map(|(_, counts)| counts.iter())
                .sum();
            assert_eq!(row_sum, audit.total(), "seed {seed}: rows vs totals");
            assert_eq!(audit.totals().iter().sum::<u64>(), c.dropped_total());
            // Replicating schemes must actually have added replica flows
            // (the 50 KB flows qualify), and their packets sit in the same
            // ledger as everyone else's — the balance above covers them.
            if scheme.replication().is_some() {
                assert_eq!(
                    out.replicas.len(),
                    4,
                    "seed {seed}, {}: each short flow gets one replica",
                    scheme.name()
                );
                assert_eq!(out.flows.len(), 12, "8 primaries + 4 replicas");
                assert_eq!(out.effective_flows().len(), 8);
            } else {
                assert!(out.replicas.is_empty());
                assert_eq!(out.flows.len(), 8);
            }
        }
    }
}

#[test]
fn randomized_fault_runs_are_seed_deterministic() {
    let scheme = schemes::flowbender(flowbender::Config::default());
    let a = chaos_run(&scheme, 3);
    let b = chaos_run(&scheme, 3);
    assert_eq!(a.conservation, b.conservation);
    assert_eq!(a.events, b.events);
    assert_eq!(a.drops().per_port(), b.drops().per_port());
}
