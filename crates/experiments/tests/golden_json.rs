//! Golden-file test for the machine-readable run JSON.
//!
//! A small fixed-seed FlowBender run from the Table 1 microbenchmark is
//! serialized twice in-process (byte equality = same-seed determinism of
//! the whole sim + telemetry + JSON stack) and compared byte-for-byte
//! against the committed golden file. Any intentional change to the
//! simulator's event ordering, the telemetry probes, or the JSON layout
//! shows up here as a diff; regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p experiments --test golden_json`.

use std::path::PathBuf;

use experiments::schemes;
use experiments::table1::{run_scheme_with, FLOW_COUNTS};
use experiments::Opts;
use netsim::{SimTime, TelemetryConfig};

const BYTES: u64 = 2_000_000;
const SEED: u64 = 3;

fn telemetry() -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        sample_every: SimTime::from_ms(10),
        queue_depth: true,
        reroutes: true,
        ..TelemetryConfig::off()
    }
}

fn render_once() -> String {
    let opts = Opts {
        scale: 0.08,
        seed: SEED,
        ..Opts::default()
    };
    let runs = run_scheme_with(
        &schemes::flowbender(flowbender::Config::default()),
        BYTES,
        SEED,
        telemetry(),
        &opts,
    );
    assert_eq!(runs.len(), FLOW_COUNTS.len());
    let (cell, summary) = &runs[0];
    assert_eq!(cell.flows, FLOW_COUNTS[0]);
    assert_eq!(
        cell.completed as u32, cell.flows,
        "fixture flows must complete"
    );
    summary.to_json("table1").to_string_pretty()
}

#[test]
fn golden_run_json_is_reproducible_and_matches_the_committed_file() {
    let first = render_once();
    let second = render_once();
    assert_eq!(
        first, second,
        "same-seed runs must serialize byte-identically"
    );

    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "golden",
        "table1_run.json",
    ]
    .iter()
    .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &first).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        first,
        golden,
        "run JSON drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// The fixture run is loss-free, and the summary layout must reflect
/// that exactly: zero drop counters and *no* `drops` section at all (the
/// section is emitted only when packets were actually lost, which is
/// what keeps the golden bytes identical across the audit's addition).
#[test]
fn golden_fixture_is_loss_free_and_omits_the_drops_section() {
    let json = render_once();
    assert!(json.contains("\"queue_drops\": 0"));
    assert!(json.contains("\"link_drops\": 0"));
    assert!(
        !json.contains("\"drops\""),
        "a loss-free run must not emit a drops section"
    );
}

/// When a run *does* lose packets, the per-reason drop counts in its
/// JSON must sum to the advertised total and agree with the audit.
#[test]
fn dropful_run_reasons_sum_to_total() {
    use experiments::run_fat_tree_faults;
    use netsim::{DropReason, FaultPlan};
    use topology::FatTreeParams;
    use workloads::microbench;

    let params = FatTreeParams::tiny();
    let specs = microbench(&params, 4, 200_000);
    let out = run_fat_tree_faults(
        params,
        &schemes::ecmp(),
        &specs,
        SimTime::from_secs(20),
        5,
        TelemetryConfig::off(),
        |ft| {
            let (node, port) = ft.agg_core_link(0, 0);
            let mut plan = FaultPlan::new();
            plan.gray_loss(node, port, 0.05, SimTime::ZERO);
            plan
        },
    );
    let audit = out.drops();
    assert!(audit.total() > 0, "the gray link must drop something");
    let opts = Opts::default();
    let summary = experiments::RunSummary::from_run("dropful", "ECMP", &opts, 5, &out);
    let json = summary.to_json("gray_failure").to_string();
    // Per-reason counts from the serialized summary must reproduce the
    // audit: each reason's value, and their sum, match exactly.
    let grab = |key: &str| -> u64 {
        json.find(&format!("\"{key}\":"))
            .map(|i| {
                json[i + key.len() + 3..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .unwrap_or(0)
    };
    let total = grab("total");
    let by_reason: u64 = DropReason::all().iter().map(|r| grab(r.name())).sum();
    assert_eq!(total, audit.total());
    assert_eq!(
        by_reason,
        audit.total(),
        "drop reasons must sum to the total"
    );
    assert_eq!(grab("gray_loss"), audit.by_reason(DropReason::GrayLoss));
}
