//! Golden-file test for the machine-readable run JSON.
//!
//! A small fixed-seed FlowBender run from the Table 1 microbenchmark is
//! serialized twice in-process (byte equality = same-seed determinism of
//! the whole sim + telemetry + JSON stack) and compared byte-for-byte
//! against the committed golden file. Any intentional change to the
//! simulator's event ordering, the telemetry probes, or the JSON layout
//! shows up here as a diff; regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p experiments --test golden_json`.

use std::path::PathBuf;

use experiments::table1::{run_scheme_with, FLOW_COUNTS};
use experiments::{Opts, Scheme};
use netsim::{SimTime, TelemetryConfig};

const BYTES: u64 = 2_000_000;
const SEED: u64 = 3;

fn telemetry() -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        sample_every: SimTime::from_ms(10),
        queue_depth: true,
        reroutes: true,
        ..TelemetryConfig::off()
    }
}

fn render_once() -> String {
    let opts = Opts {
        scale: 0.08,
        seed: SEED,
    };
    let runs = run_scheme_with(
        &Scheme::FlowBender(flowbender::Config::default()),
        BYTES,
        SEED,
        telemetry(),
        &opts,
    );
    assert_eq!(runs.len(), FLOW_COUNTS.len());
    let (cell, summary) = &runs[0];
    assert_eq!(cell.flows, FLOW_COUNTS[0]);
    assert_eq!(
        cell.completed as u32, cell.flows,
        "fixture flows must complete"
    );
    summary.to_json("table1").to_string_pretty()
}

#[test]
fn golden_run_json_is_reproducible_and_matches_the_committed_file() {
    let first = render_once();
    let second = render_once();
    assert_eq!(
        first, second,
        "same-seed runs must serialize byte-identically"
    );

    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "golden",
        "table1_run.json",
    ]
    .iter()
    .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &first).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        first,
        golden,
        "run JSON drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}
