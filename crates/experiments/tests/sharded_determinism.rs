//! The sharded engine's hard constraint, tested as a property: for every
//! registered scheme, an N-shard run (N ∈ {2, 4, 8}) of the same seed
//! produces a [`RunSummary`] JSON **byte-identical** to the 1-shard
//! (classic single-threaded) run — flows, counters, drops, FCT
//! percentiles, even the event count — and repeating an invocation is
//! byte-stable regardless of OS thread scheduling. The cross-shard
//! conservation ledger is checked at quiesce: every packet one shard
//! exported, another imported, and the merged ledger balances.
//!
//! Traffic is a seeded Poisson all-to-all on a k=8 fat-tree (128 hosts,
//! 8 pods — so 2, 4, and 8 shards all divide the pod count), big enough
//! to force cross-pod (and hence cross-shard) traffic through the core
//! tier, with DeTail exercising cross-shard PFC pause/resume handoffs.

use experiments::report::{Opts, RunSummary};
use experiments::{run_fat_tree_sharded, schemes};
use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;
use workloads::{FlowSizeDist, PoissonStream};

const SEED: u64 = 3;

fn fabric() -> FatTreeParams {
    FatTreeParams::k_ary(8).expect("k=8 is a valid arity")
}

fn traffic(params: &FatTreeParams) -> Vec<FlowSpec> {
    let rng = DetRng::new(SEED, 0xDE7);
    PoissonStream::new(
        params,
        0.3,
        SimTime::from_us(200),
        FlowSizeDist::web_search(),
        &rng,
    )
    .collect()
}

fn summary_json(out: &experiments::RunOutput, scheme: &str) -> String {
    let opts = Opts {
        seed: SEED,
        ..Opts::default()
    };
    RunSummary::from_run("det", scheme, &opts, SEED, out)
        .to_json("sharded_determinism")
        .to_string_pretty()
}

#[test]
fn every_scheme_is_byte_identical_across_shard_counts() {
    let params = fabric();
    let specs = traffic(&params);
    assert!(!specs.is_empty());
    let until = SimTime::from_ms(30);

    for scheme in schemes::registry() {
        let base = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 1)
            .expect("1 shard always partitions");
        assert!(
            base.shard_stats.is_none(),
            "--shards 1 must be the classic engine"
        );
        let base_json = summary_json(&base, scheme.name());

        for shards in [2usize, 4, 8] {
            let out = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, shards)
                .unwrap_or_else(|e| panic!("{shards} shards on k=8: {e}"));

            // Cross-shard ledger at quiesce: the runner asserted
            // exported == imported before merging; after handoffs cancel,
            // the merged ledger must equal the single-threaded one in
            // every component — same injections, deliveries, drops, and
            // in-flight population.
            assert_eq!(
                out.conservation,
                base.conservation,
                "{} at {shards} shards: merged ledger diverged",
                scheme.name()
            );

            let ss = out.shard_stats.expect("sharded runs report stats");
            assert_eq!(ss.shards, shards);
            assert!(ss.rounds > 0, "epoch protocol must have run");
            assert!(
                ss.handoffs > 0,
                "{} at {shards} shards: all-to-all traffic must cross shards",
                scheme.name()
            );

            let json = summary_json(&out, scheme.name());
            assert_eq!(
                base_json,
                json,
                "{} at {shards} shards: RunSummary JSON diverged from 1 shard",
                scheme.name()
            );
        }
    }
}

#[test]
fn repeated_invocations_are_byte_stable() {
    // Thread-scheduling independence: the merge order is fixed (shard 0
    // first) and mailboxes drain sorted by source shard, so two identical
    // invocations must agree byte-for-byte even though the OS interleaves
    // the workers differently each time.
    let params = fabric();
    let specs = traffic(&params);
    let until = SimTime::from_ms(30);
    let scheme = schemes::flowbender(flowbender::Config::default());
    let a = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 4).unwrap();
    let b = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 4).unwrap();
    assert_eq!(
        summary_json(&a, scheme.name()),
        summary_json(&b, scheme.name())
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.conservation, b.conservation);
}

#[test]
fn shard_plan_errors_are_actionable() {
    let params = fabric();
    let specs = traffic(&params);
    let until = SimTime::from_ms(1);
    let scheme = schemes::ecmp();
    let err = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 0).unwrap_err();
    assert!(err.contains("--shards 1"), "{err}");
    let err = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 3).unwrap_err();
    assert!(err.contains("valid shard counts"), "{err}");
    let err = run_fat_tree_sharded(params, &scheme, &specs, until, SEED, 999).unwrap_err();
    assert!(err.contains("128 hosts"), "{err}");
}
