//! Property test for the chaos engine: deterministic fault injection on
//! the sharded runner. For **every registered scheme**, a randomized
//! [`FaultPlan`] (flaps and gray loss over agg→core uplinks — the
//! cross-shard tier) produces a [`RunSummary`] JSON **byte-identical**
//! across shard counts, and the packet-conservation ledger balances with
//! faults active — asserted by the runner after every epoch, re-checked
//! here at quiesce. A second property pins the whole-switch path: a core
//! crash + revival (whose directed transitions fan out to *every* pod,
//! so most travel through the epoch mailbox) with an armed reconvergence
//! SLO probe stays byte-identical at 1, 2, 4, and 8 shards, probe
//! output included.
//!
//! Traffic is a seeded Poisson all-to-all on a k=8 fat-tree — tie-free
//! arrivals, the precondition for cross-shard byte-identity (see
//! `run_fat_tree_sharded_faults`).

use experiments::report::{Opts, RunSummary};
use experiments::{run_fat_tree_sharded_faults, schemes};
use netsim::{DetRng, FaultPlan, FlowSpec, SimTime, SloConfig};
use topology::FatTreeParams;
use workloads::{FlowSizeDist, PoissonStream};

const SEED: u64 = 3;

fn fabric() -> FatTreeParams {
    FatTreeParams::k_ary(8).expect("k=8 is a valid arity")
}

/// The same seeded stream `sharded_determinism` uses: proven tie-free for
/// every registered scheme. (Heavy-tailed size draws make tie-freedom
/// seed-dependent — a stream that lands a large elephant saturates links
/// for the whole run, and saturated parallel paths produce same-picosecond
/// arrivals that the engines order differently.)
fn traffic(params: &FatTreeParams) -> Vec<FlowSpec> {
    let rng = DetRng::new(SEED, 0xDE7);
    PoissonStream::new(
        params,
        0.3,
        SimTime::from_us(200),
        FlowSizeDist::web_search(),
        &rng,
    )
    .collect()
}

fn summary_json(out: &experiments::RunOutput, scheme: &str) -> String {
    let opts = Opts {
        seed: SEED,
        ..Opts::default()
    };
    RunSummary::from_run("faults", scheme, &opts, SEED, out)
        .to_json("sharded_faults")
        .to_string_pretty()
}

#[test]
fn randomized_fault_plans_are_byte_identical_across_shard_counts() {
    let params = fabric();
    let specs = traffic(&params);
    assert!(!specs.is_empty());
    let until = SimTime::from_ms(30);

    for scheme in schemes::registry() {
        let run = |shards: usize| {
            run_fat_tree_sharded_faults(params, &scheme, &specs, until, SEED, shards, None, |ft| {
                // Pod 0's aggs towards their first two cores each:
                // every one of these links crosses a shard boundary at
                // some tested shard count, so the randomized flap/gray
                // schedule exercises the Handoff::Fault path.
                let links: Vec<_> = (0..4)
                    .flat_map(|a| (0..2).map(move |k| ft.agg_core_link(a, k)))
                    .collect();
                let mut rng = DetRng::new(SEED, 0xC4A05);
                FaultPlan::randomized(&mut rng, &links, SimTime::from_ms(20), 0.10)
            })
            .unwrap_or_else(|e| panic!("{shards} shards on k=8: {e}"))
        };

        let base = run(1);
        assert!(
            base.conservation.holds(),
            "{}: faulted classic run must balance",
            scheme.name()
        );
        let base_json = summary_json(&base, scheme.name());
        for shards in [2usize, 4] {
            let out = run(shards);
            assert_eq!(
                out.conservation,
                base.conservation,
                "{} at {shards} shards: merged ledger diverged under faults",
                scheme.name()
            );
            assert_eq!(
                base_json,
                summary_json(&out, scheme.name()),
                "{} at {shards} shards: faulted RunSummary JSON diverged",
                scheme.name()
            );
        }
    }
}

#[test]
fn core_crash_with_slo_probe_is_byte_identical_up_to_eight_shards() {
    let params = fabric();
    let specs = traffic(&params);
    let until = SimTime::from_ms(30);
    let fail_at = SimTime::from_us(100);
    let slo = SloConfig {
        fail_at,
        bin: SimTime::from_us(50),
    };
    let scheme = schemes::flowbender(flowbender::Config::default());

    let run = |shards: usize| {
        run_fat_tree_sharded_faults(
            params,
            &scheme,
            &specs,
            until,
            SEED,
            shards,
            Some(slo),
            |ft| {
                // Core 1 serves every pod; at 2+ shards its crash compiles
                // on its owner and fans directed faults out to aggs in
                // other shards through the mailbox. A flap on a pod-0
                // uplink rides along so link- and switch-scale faults mix.
                let (agg0, up0) = ft.agg_core_link(0, 0);
                let mut plan = FaultPlan::new();
                plan.switch_outage(ft.cores[1], fail_at, SimTime::from_us(400));
                plan.flap(agg0, up0, SimTime::from_us(150), SimTime::from_us(300));
                plan
            },
        )
        .unwrap_or_else(|e| panic!("{shards} shards on k=8: {e}"))
    };

    let base = run(1);
    let slo_out = base.slo().expect("SLO probe was armed");
    assert!(
        slo_out.samples() > 0,
        "flows must deliver again after the crash"
    );
    let base_json = summary_json(&base, scheme.name());
    assert!(
        base_json.contains("\"reconvergence\""),
        "the summary must carry the SLO section"
    );
    for shards in [2usize, 4, 8] {
        let out = run(shards);
        assert_eq!(
            base_json,
            summary_json(&out, scheme.name()),
            "{shards} shards: crash+SLO RunSummary JSON diverged"
        );
        assert_eq!(out.conservation, base.conservation, "{shards} shards");
    }
}
