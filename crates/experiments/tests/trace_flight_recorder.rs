//! End-to-end tests of the flow flight recorder: a traced run must be an
//! exact replay of the untraced run (same seed, byte-identical normal
//! outputs), the timelines themselves must serialize deterministically,
//! and the gray-failure experiment must attach decision-bearing
//! timelines when `--trace` is on.

use experiments::gray_failure::{run, run_scheme, run_scheme_traced};
use experiments::{slowest_flows, timeline_json, Opts, RunSummary, SchemeSpec, TraceSel};
use netsim::TraceConfig;

const BYTES: u64 = 3_000_000;
const LOSS: f64 = 0.02;
const SEED: u64 = 21;

fn fb() -> SchemeSpec {
    experiments::schemes::flowbender(flowbender::Config::default())
}

#[test]
fn traced_run_leaves_normal_outputs_byte_identical() {
    let scheme = fb();
    let (r_plain, plain) = run_scheme(&scheme, LOSS, BYTES, SEED);
    let cfg = TraceConfig::flows((0..16).collect());
    let (r_traced, traced) = run_scheme_traced(&scheme, LOSS, BYTES, SEED, cfg);

    // The pinned machine-readable summary — counters, FCT percentiles,
    // drop audit, event count — must not move by a byte.
    let opts = Opts::default();
    let a = RunSummary::from_run("cell", scheme.name(), &opts, SEED, &plain)
        .to_json("gray_failure")
        .to_string();
    let b = RunSummary::from_run("cell", scheme.name(), &opts, SEED, &traced)
        .to_json("gray_failure")
        .to_string();
    assert_eq!(a, b, "tracing changed the run summary");
    assert_eq!(r_plain.gray_drops, r_traced.gray_drops);
    assert_eq!(r_plain.max_fct_s.to_bits(), r_traced.max_fct_s.to_bits());

    // Untraced runs carry no timelines; the traced run carries one per
    // selected flow, populated with the event kinds the recorder covers.
    assert!(plain.timelines().is_empty());
    let tls = traced.timelines();
    assert_eq!(tls.len(), 16);
    let total = |kind: &str| tls.iter().map(|t| t.count_kind(kind)).sum::<usize>();
    assert!(total("hop") > 0, "hop traversals recorded");
    assert!(total("enqueue") > 0, "enqueues recorded");
    assert!(total("ecn_mark") > 0, "ECN marks recorded");
    assert!(total("decision") > 0, "PathController reroutes recorded");
    assert!(total("rto_fire") > 0, "RTO fires recorded");
    assert!(total("cwnd") > 0, "cwnd changes recorded");
    assert!(
        r_traced.timeout_reroutes > 0,
        "the escape actually happened"
    );
}

#[test]
fn timeline_json_is_deterministic_across_runs_and_scheme_order() {
    let scheme = fb();
    let (_, probe) = run_scheme(&scheme, LOSS, BYTES, SEED);
    let ids = slowest_flows(&probe, 2);
    assert_eq!(ids.len(), 2);
    let cfg = TraceConfig::flows(ids);

    let (_, first) = run_scheme_traced(&scheme, LOSS, BYTES, SEED, cfg.clone());
    // Interleave an unrelated ECMP run: every run is an independent
    // simulation, so what else ran (and in what order) must not leak
    // into the timelines.
    let _ = run_scheme(&experiments::schemes::ecmp(), LOSS, BYTES, SEED);
    let (_, second) = run_scheme_traced(&scheme, LOSS, BYTES, SEED, cfg);

    let ser = |out: &experiments::RunOutput| -> Vec<String> {
        out.timelines()
            .iter()
            .map(|t| timeline_json("gray_failure", "cell", t).to_string_pretty())
            .collect()
    };
    let (ja, jb) = (ser(&first), ser(&second));
    assert_eq!(ja, jb, "timelines differ between identical traced runs");
    assert!(
        ja.iter().any(|j| j.contains("\"kind\"")),
        "at least one timeline has events"
    );
}

#[test]
fn gray_failure_report_attaches_timelines_when_traced() {
    let opts = Opts {
        scale: 0.05,
        seed: 7,
        trace: TraceSel::Slowest(1),
        ..Opts::default()
    };
    let rep = run(&opts);
    // One traced flow per (scheme, loss) cell: 4 loss rates x 2 schemes.
    assert_eq!(rep.traces.len(), 8, "one timeline per cell");
    let decisions: usize = rep
        .traces
        .iter()
        .filter(|(label, _)| label.starts_with("flowbender"))
        .map(|(_, t)| t.count_kind("decision"))
        .sum();
    assert!(
        decisions > 0,
        "the traced slowest FlowBender flow recorded at least one reroute decision"
    );
    let text = rep.render();
    assert!(text.contains("Flight recorder"), "summary table rendered");
    // The untraced report at the same options renders identical normal
    // sections (the flight-recorder table is purely additive).
    let plain = run(&Opts {
        trace: TraceSel::Off,
        ..opts
    });
    assert!(plain.traces.is_empty());
    for ((ta, a), (tb, b)) in plain.sections.iter().zip(rep.sections.iter()) {
        assert_eq!(ta, tb);
        assert_eq!(a.render(), b.render(), "section {ta} changed under --trace");
    }
    for (ra, rb) in plain.runs.iter().zip(rep.runs.iter()) {
        assert_eq!(
            ra.to_json("gray_failure").to_string(),
            rb.to_json("gray_failure").to_string(),
            "run summary {} changed under --trace",
            ra.label
        );
    }
}
