//! Host agents: the hook where transport protocols attach to the simulator.
//!
//! Each host owns one boxed [`Agent`]. The simulator calls into it when the
//! host receives a packet or one of its timers fires; the agent acts on the
//! world exclusively through the [`Ctx`] handed to it (sending packets,
//! arming timers, drawing randomness, recording measurements). The
//! `transport` crate implements this trait for TCP/DCTCP/UDP endpoints.
//!
//! Agents deal in owned [`Packet`]s at this boundary — construction on
//! send, delivery on receive. The id-based plumbing (packets parked in the
//! [`PacketSlab`] while events reference them) is invisible here: [`Ctx::send`]
//! is where a packet enters the slab, [`Agent::on_packet`] is where it has
//! already left it.

use crate::event::{EventKind, Scheduler};
use crate::packet::{NodeId, Packet};
use crate::record::Recorder;
use crate::rng::DetRng;
use crate::slab::PacketSlab;
use crate::time::SimTime;

/// A protocol stack living on one host.
pub trait Agent {
    /// Called once, at simulation start, before any event fires. Arm the
    /// first timers / send the first packets here.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// A packet addressed to this host arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A timer armed via [`Ctx::set_timer`] fired. Timers cannot be
    /// cancelled; implementations must ignore stale tokens.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);
}

/// The agent's window onto the simulation.
pub struct Ctx<'a> {
    now: SimTime,
    host: NodeId,
    tx_stack_delay: SimTime,
    sched: &'a mut Scheduler,
    packets: &'a mut PacketSlab,
    rng: &'a mut DetRng,
    recorder: &'a mut Recorder,
}

impl<'a> Ctx<'a> {
    /// Internal constructor used by the simulator event loop.
    pub(crate) fn new(
        now: SimTime,
        host: NodeId,
        tx_stack_delay: SimTime,
        sched: &'a mut Scheduler,
        packets: &'a mut PacketSlab,
        rng: &'a mut DetRng,
        recorder: &'a mut Recorder,
    ) -> Self {
        Ctx {
            now,
            host,
            tx_stack_delay,
            sched,
            packets,
            rng,
            recorder,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this agent runs on.
    #[inline]
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Hand a packet to the host's stack for transmission. It reaches the
    /// NIC queue after the host's TX stack delay (the paper's 20 µs host
    /// delay) and is serialized from there. The packet moves into the
    /// simulator's slab here; events reference it by id from now on.
    pub fn send(&mut self, pkt: Packet) {
        let id = self.packets.insert(pkt);
        self.sched.schedule(
            self.now + self.tx_stack_delay,
            EventKind::HostTx {
                host: self.host,
                pkt: id,
            },
        );
    }

    /// Arm a timer to fire at absolute time `at` (clamped to now if in the
    /// past) carrying an opaque `token` back to [`Agent::on_timer`].
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        let at = at.max(self.now);
        self.sched.schedule(
            at,
            EventKind::Timer {
                host: self.host,
                token,
            },
        );
    }

    /// Deterministic per-host random stream.
    #[inline]
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// The run-wide measurement recorder.
    #[inline]
    pub fn recorder(&mut self) -> &mut Recorder {
        self.recorder
    }
}

/// An agent that does nothing; the default on hosts until a transport is
/// attached, and useful as a sink in tests.
#[derive(Debug, Default)]
pub struct NullAgent;

impl Agent for NullAgent {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}
