//! The discrete-event core: events and the time-ordered scheduler.
//!
//! The simulator is a classic discrete-event loop: a binary heap of events
//! ordered by `(time, insertion sequence)`. The insertion sequence breaks
//! ties FIFO, which makes runs fully deterministic: two events scheduled for
//! the same instant always fire in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::{NodeId, Packet, PortId};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are described in the variant docs
pub enum EventKind {
    /// A packet finished propagation (and ingress processing delay) and is
    /// now at `node`, having entered through `port`.
    Arrive {
        node: NodeId,
        port: PortId,
        pkt: Packet,
    },
    /// Serialization of `pkt` on `(node, port)` finished; the packet leaves
    /// onto the wire and the port may start its next transmission.
    TxDone {
        node: NodeId,
        port: PortId,
        pkt: Packet,
    },
    /// A host's protocol stack finished processing an outbound packet
    /// (models the 20 µs host delay); enqueue it at the NIC.
    HostTx { host: NodeId, pkt: Packet },
    /// A timer set by a host agent fired.
    Timer { host: NodeId, token: u64 },
    /// A PFC pause (`pause == true`) or resume frame arrived at the egress
    /// port `(node, port)`, sent by the downstream ingress.
    Pfc {
        node: NodeId,
        port: PortId,
        pause: bool,
    },
    /// Administratively change the state of the link attached to
    /// `(node, port)` (affects both directions).
    LinkState {
        node: NodeId,
        port: PortId,
        up: bool,
    },
    /// Take one sample for the queue watcher with this index.
    Sample { watcher: usize },
}

/// An event: a `kind` firing at `time`, with `seq` as the deterministic
/// tie-breaker.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Deterministic FIFO tie-breaker among same-time events.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Compare (time, seq) descending.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct Scheduler {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    scheduled: u64,
}

impl Scheduler {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Schedule `kind` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Event {
            time: at,
            seq,
            kind,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(3), EventKind::Timer { host: 0, token: 3 });
        s.schedule(SimTime::from_us(1), EventKind::Timer { host: 0, token: 1 });
        s.schedule(SimTime::from_us(2), EventKind::Timer { host: 0, token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_us(5);
        for token in 0..100 {
            s.schedule(t, EventKind::Timer { host: 0, token });
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        s.schedule(SimTime::from_ms(1), EventKind::Timer { host: 1, token: 0 });
        s.schedule(SimTime::from_us(1), EventKind::Timer { host: 1, token: 1 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::from_us(1)));
        assert_eq!(s.total_scheduled(), 2);
    }
}
