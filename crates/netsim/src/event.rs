//! The discrete-event core: compact events and a bucketed ladder scheduler.
//!
//! Events are ordered by `(time, insertion sequence)`. The insertion
//! sequence breaks ties FIFO, which makes runs fully deterministic: two
//! events scheduled for the same instant always fire in the order they were
//! scheduled. Packet-carrying events hold a 4-byte [`PacketId`] into the
//! simulator's [`crate::slab::PacketSlab`] rather than an inline `Packet`,
//! so an [`Event`] is a few machine words and moving one through the queue
//! is cheap.
//!
//! ## The ladder
//!
//! A single global `BinaryHeap` pays `O(log n)` sift work — and the cache
//! misses that come with it — on *every* event at *every* scale. Datacenter
//! workloads schedule overwhelmingly into the near future (serialization
//! times are ~1.2 µs, hops ~100 ns, host delays ~20 µs), so the scheduler
//! uses a calendar/ladder-queue layout instead:
//!
//! * a ring of [`NUM_BUCKETS`] **near-future buckets**, each spanning
//!   [`BUCKET_WIDTH_PS`] (≈ one MTU serialization quantum at 10 Gbps), into
//!   which events are appended unordered in O(1);
//! * a small **current-bucket heap** holding only the bucket being drained,
//!   which restores the exact `(time, seq)` order among the handful of
//!   events sharing one bucket;
//! * a **far heap** for everything beyond the ring's horizon (retransmit
//!   timers, far-off administrative events), spilled into the ring as the
//!   window advances past each event's bucket.
//!
//! Every event is therefore popped from a heap whose size is one bucket's
//! population (or the far-future tail), not the whole pending set. The pop
//! order is *identical* to the old global heap's: within one bucket the heap
//! compares `(time, seq)` exactly as before, across buckets time strictly
//! increases, and a far event is merged into the current-bucket heap before
//! the window reaches its instant (see `scheduler_matches_reference_heap` in
//! `tests/properties.rs` for the machine-checked equivalence argument).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::{NodeId, PortId};
use crate::slab::PacketId;
use crate::time::SimTime;

/// Near-future bucket width in picoseconds (`1 << 20` ≈ 1.05 µs, about one
/// 1500-byte serialization quantum at 10 Gbps). A power of two so that
/// bucket indexing is a shift, not a division.
pub const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_SHIFT;
const BUCKET_SHIFT: u32 = 20;
/// Number of near-future buckets (the ring spans ≈ 268 µs — several RTTs).
/// A power of two so the ring wrap is a mask.
pub const NUM_BUCKETS: usize = 256;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described in the variant docs
pub enum EventKind {
    /// A packet finished propagation (and ingress processing delay) and is
    /// now at `node`, having entered through `port`.
    Arrive {
        node: NodeId,
        port: PortId,
        pkt: PacketId,
    },
    /// Serialization of `pkt` on `(node, port)` finished; the packet leaves
    /// onto the wire and the port may start its next transmission. `epoch`
    /// stamps the port's serialization epoch at scheduling time: a mid-run
    /// link-rate change reschedules the in-flight serialization under a
    /// bumped epoch, and the superseded event is ignored when it fires.
    TxDone {
        node: NodeId,
        port: PortId,
        pkt: PacketId,
        epoch: u16,
    },
    /// A host's protocol stack finished processing an outbound packet
    /// (models the 20 µs host delay); enqueue it at the NIC.
    HostTx { host: NodeId, pkt: PacketId },
    /// A timer set by a host agent fired.
    Timer { host: NodeId, token: u64 },
    /// A PFC pause (`pause == true`) or resume frame arrived at the egress
    /// port `(node, port)`, sent by the downstream ingress.
    Pfc {
        node: NodeId,
        port: PortId,
        pause: bool,
    },
    /// Administratively change the state of the link attached to
    /// `(node, port)` (affects both directions).
    LinkState {
        node: NodeId,
        port: PortId,
        up: bool,
    },
    /// Take one sample for the queue watcher with this index.
    Sample { watcher: usize },
    /// Apply the fault action at this index in the simulator's installed
    /// fault table (see [`crate::Simulator::install_faults`]).
    Fault { action: u32 },
}

/// An event: a `kind` firing at `time`, with `seq` as the deterministic
/// tie-breaker.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Deterministic FIFO tie-breaker among same-time events.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Compare (time, seq) descending.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue (bucketed ladder; see the module docs).
#[derive(Debug)]
pub struct Scheduler {
    next_seq: u64,
    scheduled: u64,
    len: usize,
    /// Watermark: the time of the last popped event. Scheduling before this
    /// is time travel and trips a debug assertion.
    now: SimTime,
    /// Exact-order heap of the bucket currently being drained.
    current: BinaryHeap<Event>,
    /// Ring of near-future buckets; slot `cursor` is the current bucket
    /// (drained through `current`), slot `cursor + k` covers times
    /// `[cursor_start + k*W, cursor_start + (k+1)*W)`.
    buckets: Box<[Vec<Event>]>,
    cursor: usize,
    /// Start (ps) of the current bucket's time range.
    cursor_start: u64,
    /// Events resident in the ring (excluding `current`).
    near: usize,
    /// Events at or beyond the ring's horizon when they were scheduled.
    far: BinaryHeap<Event>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            next_seq: 0,
            scheduled: 0,
            len: 0,
            now: SimTime::ZERO,
            current: BinaryHeap::new(),
            buckets: (0..NUM_BUCKETS)
                .map(|_| Vec::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            cursor: 0,
            cursor_start: 0,
            near: 0,
            far: BinaryHeap::new(),
        }
    }

    /// Schedule `kind` to fire at absolute time `at`.
    ///
    /// Debug builds reject time travel: scheduling before the last popped
    /// event's time is always a logic error (the event could never fire in
    /// order) and panics immediately instead of corrupting the run.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(
            at >= self.now,
            "time travel: scheduling an event at {at} but the clock is already at {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.len += 1;
        let ev = Event {
            time: at,
            seq,
            kind,
        };
        // saturating_sub guards the (release-mode-only) past-time case: such
        // events land in `current` and still pop earliest-first.
        let offset = at.as_ps().saturating_sub(self.cursor_start) >> BUCKET_SHIFT;
        if offset == 0 {
            self.current.push(ev);
        } else if offset < NUM_BUCKETS as u64 {
            let slot = (self.cursor + offset as usize) & (NUM_BUCKETS - 1);
            self.buckets[slot].push(ev);
            self.near += 1;
        } else {
            self.far.push(ev);
        }
    }

    /// Remove and return the earliest event, if its time is `<= deadline`.
    /// Events beyond the deadline stay queued. This is the event loop's
    /// primitive: one call replaces the old peek-then-pop double heap walk.
    #[inline]
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        loop {
            if let Some(e) = self.current.peek() {
                if e.time > deadline {
                    return None;
                }
                let e = self.current.pop().expect("peeked event must pop");
                self.len -= 1;
                self.now = e.time;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            self.advance_window();
        }
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_before(SimTime::MAX)
    }

    /// Move the window forward one bucket (or jump it to the earliest far
    /// event when the ring is empty), pulling the new current bucket and any
    /// far events that now fall inside it into the exact-order heap.
    fn advance_window(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        if self.near == 0 {
            // Ring is empty: everything pending lives in `far`. Jump the
            // window straight to the earliest far event's bucket.
            let t = self
                .far
                .peek()
                .expect("len > 0 with empty ring and current")
                .time
                .as_ps();
            self.cursor_start = t & !(BUCKET_WIDTH_PS - 1);
        } else {
            self.cursor = (self.cursor + 1) & (NUM_BUCKETS - 1);
            self.cursor_start += BUCKET_WIDTH_PS;
        }
        let slot = &mut self.buckets[self.cursor];
        self.near -= slot.len();
        for ev in slot.drain(..) {
            self.current.push(ev);
        }
        // Far events whose bucket the window just reached merge here —
        // before anything in this bucket pops — preserving global order.
        let end = self.cursor_start.saturating_add(BUCKET_WIDTH_PS);
        while self.far.peek().is_some_and(|e| e.time.as_ps() < end) {
            let ev = self.far.pop().expect("peeked event must pop");
            self.current.push(ev);
        }
    }

    /// Time of the earliest pending event, if any.
    ///
    /// O(pending near events) — it scans the ring. Fine for tests and
    /// diagnostics; the event loop uses [`Scheduler::pop_before`] instead.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = self.current.peek().map(|e| e.time);
        if self.near > 0 {
            for slot in self.buckets.iter() {
                for ev in slot {
                    if best.is_none_or(|b| ev.time < b) {
                        best = Some(ev.time);
                    }
                }
            }
        }
        if let Some(e) = self.far.peek() {
            if best.is_none_or(|b| e.time < b) {
                best = Some(e.time);
            }
        }
        best
    }

    /// Time of the earliest pending event, advancing the bucket window to
    /// reach it — exactly the positioning work [`Scheduler::pop_before`]
    /// would do, minus the pop. Unlike [`Scheduler::peek_time`] this is
    /// amortized O(1), which is what the sharded engine needs: it asks for
    /// the next event time once per synchronization epoch.
    pub fn next_time(&mut self) -> Option<SimTime> {
        loop {
            if let Some(e) = self.current.peek() {
                return Some(e.time);
            }
            if self.len == 0 {
                return None;
            }
            self.advance_window();
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// The watermark: time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> EventKind {
        EventKind::Timer { host: 0, token }
    }

    fn drain_tokens(s: &mut Scheduler) -> Vec<u64> {
        std::iter::from_fn(|| s.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(3), timer(3));
        s.schedule(SimTime::from_us(1), timer(1));
        s.schedule(SimTime::from_us(2), timer(2));
        assert_eq!(drain_tokens(&mut s), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_us(5);
        for token in 0..100 {
            s.schedule(t, timer(token));
        }
        assert_eq!(drain_tokens(&mut s), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        s.schedule(SimTime::from_ms(1), timer(0));
        s.schedule(SimTime::from_us(1), timer(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::from_us(1)));
        assert_eq!(s.total_scheduled(), 2);
    }

    #[test]
    fn far_future_events_spill_back_in_order() {
        let mut s = Scheduler::new();
        // Far beyond the ring horizon (~268 us): a 10 ms timer...
        s.schedule(SimTime::from_ms(10), timer(2));
        // ...a same-instant tie scheduled later must still fire after it...
        s.schedule(SimTime::from_ms(10), timer(3));
        // ...and near events fire first.
        s.schedule(SimTime::from_us(7), timer(1));
        assert_eq!(drain_tokens(&mut s), vec![1, 2, 3]);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(10), timer(0));
        let e = s.pop().unwrap();
        assert_eq!(e.time, SimTime::from_us(10));
        // Scheduling "now" (same instant as the popped event) is legal and
        // fires next, before later events.
        s.schedule(SimTime::from_ms(50), timer(9));
        s.schedule(SimTime::from_us(10), timer(1));
        s.schedule(SimTime::from_us(11), timer(2));
        assert_eq!(drain_tokens(&mut s), vec![1, 2, 9]);
    }

    #[test]
    fn pop_before_respects_deadline_and_preserves_state() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(1), timer(1));
        s.schedule(SimTime::from_us(100), timer(2));
        assert_eq!(
            s.pop_before(SimTime::from_us(50)).map(|e| e.time),
            Some(SimTime::from_us(1))
        );
        assert!(s.pop_before(SimTime::from_us(50)).is_none());
        assert_eq!(s.len(), 1);
        // The deferred event is intact and pops once the deadline allows.
        let e = s.pop_before(SimTime::from_us(100)).unwrap();
        assert_eq!(e.time, SimTime::from_us(100));
        assert!(s.is_empty());
    }

    #[test]
    fn window_jumps_over_long_idle_gaps() {
        let mut s = Scheduler::new();
        // Two events separated by ~1 s of dead time: the window must jump,
        // not crawl bucket by bucket.
        s.schedule(SimTime::from_us(1), timer(1));
        s.schedule(SimTime::from_secs(1), timer(2));
        assert_eq!(drain_tokens(&mut s), vec![1, 2]);
        // After the jump, nearby scheduling still works.
        s.schedule(SimTime::from_secs(1), timer(3));
        assert_eq!(drain_tokens(&mut s), vec![3]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "time travel")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_us(10), timer(0));
        s.pop();
        // The clock watermark is now 10 us; 5 us is the past.
        s.schedule(SimTime::from_us(5), timer(1));
    }

    #[test]
    fn event_is_compact() {
        // The point of the packet slab: events are a few words, not a
        // packet. Guard against regressions re-inlining payloads.
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }
}
