//! Deterministic fault injection: gray failures, link flaps, mid-run
//! degradation, and corruption loss.
//!
//! Real datacenter incidents are rarely the clean binary link death that
//! [`crate::Simulator::schedule_link_state`] models. The cases FlowBender's
//! robustness story (§1, §3.3.2, §4.6 of the paper) actually has to survive
//! are *gray*: a link that silently drops 1% of packets, a port that flaps,
//! an optic that renegotiates down to a fraction of its rate. This module
//! provides a [`FaultPlan`] — a declarative, seeded schedule of
//! [`FaultAction`]s — that the simulator compiles into ordinary events
//! ([`crate::event::EventKind::Fault`]), so fault timing participates in the
//! same deterministic `(time, seq)` order as everything else.
//!
//! ## Determinism guarantees
//!
//! * Fault actions fire as scheduled events: same plan + same seed ⇒
//!   bit-identical runs.
//! * Probabilistic losses (gray loss, corruption) draw from a dedicated RNG
//!   stream that is split off the master seed at construction and consulted
//!   **only** when a port has a nonzero loss rate or BER — installing the
//!   fault layer does not perturb any existing random stream, so runs
//!   without faults stay byte-identical to builds that predate this module.
//! * Every faulted packet is accounted: gray losses and corruption drops
//!   are recorded per-port under their own [`crate::record::DropReason`],
//!   and the end-of-run conservation audit
//!   ([`crate::Simulator::conservation`]) proves
//!   `injected == delivered + dropped(reason) + in-flight`.

use crate::packet::{NodeId, PortId};
use crate::rng::DetRng;
use crate::time::SimTime;

/// One scheduled fault transition, applied to the egress `(node, port)`
/// direction of a link (link-state and rate changes affect both directions,
/// matching their non-fault counterparts; loss rates are directional).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Administratively set the link attached to `(node, port)` up or down
    /// (both directions, like [`crate::Simulator::schedule_link_state`]).
    LinkState {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// New administrative state.
        up: bool,
    },
    /// Change the link's rate (both directions). An in-flight serialization
    /// is rescheduled to finish under the new rate.
    LinkRate {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// New rate in bits per second.
        rate_bps: u64,
    },
    /// Set the probability that a packet leaving `(node, port)` is silently
    /// lost (a gray failure). `0.0` disables.
    GrayLoss {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// Per-packet loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Set the bit error rate on `(node, port)`: each transmitted packet is
    /// dropped with probability `1 - (1 - ber)^bits`. `0.0` disables.
    Corruption {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// Per-bit error probability in `[0, 1]`.
        ber: f64,
    },
    /// Whole-switch failure: every port of `node` goes down at once, in
    /// both directions — the incident-scale analogue of a power loss or a
    /// control-plane crash taking a ToR/agg/core out of the fabric.
    SwitchDown {
        /// The switch that dies.
        node: NodeId,
    },
    /// Whole-switch recovery: every port of `node` comes back up (both
    /// directions), undoing a [`FaultAction::SwitchDown`].
    SwitchUp {
        /// The switch that recovers.
        node: NodeId,
    },
}

impl FaultAction {
    /// The *anchor* node the action names. In a sharded run the shard
    /// owning this node compiles the step into directed transitions and
    /// hands the non-owned directions to their owners.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultAction::LinkState { node, .. }
            | FaultAction::LinkRate { node, .. }
            | FaultAction::GrayLoss { node, .. }
            | FaultAction::Corruption { node, .. }
            | FaultAction::SwitchDown { node }
            | FaultAction::SwitchUp { node } => node,
        }
    }
}

/// One *directed* fault transition: the single-`(node, port)` unit a
/// [`FaultAction`] compiles into. Both-direction actions (`LinkState`,
/// `LinkRate`, `SwitchDown`/`SwitchUp`) expand to one `DirectedFault` per
/// affected direction; in a sharded run each direction is applied by the
/// shard owning its node — directions whose owner differs from the
/// action's anchor travel through the epoch mailbox as
/// `Handoff::Fault` so both sides commit them in the same window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DirectedFault {
    /// Set the administrative state of the `(node, port)` egress.
    LinkState {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// New administrative state.
        up: bool,
    },
    /// Set the serialization rate of the `(node, port)` egress.
    Rate {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// New rate in bits per second.
        rate_bps: u64,
    },
    /// Set the gray-loss probability on the `(node, port)` egress.
    GrayLoss {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// Per-packet loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Set the bit error rate on the `(node, port)` egress.
    Corruption {
        /// Node owning the port.
        node: NodeId,
        /// Port index on that node.
        port: PortId,
        /// Per-bit error probability in `[0, 1]`.
        ber: f64,
    },
}

impl DirectedFault {
    /// The node whose egress this transition touches (its owner applies it).
    pub fn node(&self) -> NodeId {
        match *self {
            DirectedFault::LinkState { node, .. }
            | DirectedFault::Rate { node, .. }
            | DirectedFault::GrayLoss { node, .. }
            | DirectedFault::Corruption { node, .. } => node,
        }
    }

    /// The port index on [`DirectedFault::node`].
    pub fn port(&self) -> PortId {
        match *self {
            DirectedFault::LinkState { port, .. }
            | DirectedFault::Rate { port, .. }
            | DirectedFault::GrayLoss { port, .. }
            | DirectedFault::Corruption { port, .. } => port,
        }
    }
}

/// A declarative schedule of fault transitions for one run.
///
/// Build one with the combinators below (or push raw steps with
/// [`FaultPlan::at`]), then hand it to
/// [`crate::Simulator::install_faults`] — which validates every referenced
/// port and schedules one [`crate::event::EventKind::Fault`] per step.
///
/// ```
/// use netsim::{FaultPlan, SimTime};
/// let mut plan = FaultPlan::new();
/// plan.gray_loss(4, 1, 0.02, SimTime::ZERO); // 2% loss from t=0
/// plan.flap(4, 0, SimTime::from_ms(5), SimTime::from_ms(8));
/// plan.degrade(4, 2, 1_000_000_000, SimTime::from_ms(10));
/// assert_eq!(plan.len(), 4); // a flap is two steps
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    steps: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule `action` at absolute time `at`. Steps may be pushed in any
    /// order; the event queue orders them (ties break in push order).
    ///
    /// # Panics
    ///
    /// On invalid parameters — see [`FaultPlan::try_at`] for the
    /// non-panicking form and the exact rules.
    pub fn at(&mut self, at: SimTime, action: FaultAction) -> &mut Self {
        self.try_at(at, action).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedule `action` at absolute time `at`, rejecting invalid
    /// parameters with an actionable error instead of panicking.
    ///
    /// Out-of-range values are **rejected, never clamped**: a gray-loss
    /// probability or BER must lie in `[0, 1]` (NaN and negative values
    /// fail the range check), and a link rate must be positive. Catching
    /// these at construction keeps garbage out of the per-port RNG draw
    /// path, where a NaN would silently poison every subsequent
    /// loss decision.
    pub fn try_at(&mut self, at: SimTime, action: FaultAction) -> Result<&mut Self, String> {
        if let FaultAction::GrayLoss { loss: p, .. } | FaultAction::Corruption { ber: p, .. } =
            action
        {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "probability {p} outside [0, 1]: fault probabilities are rejected, \
                     not clamped (NaN and negative values included)"
                ));
            }
        }
        if let FaultAction::LinkRate { rate_bps, .. } = action {
            if rate_bps == 0 {
                return Err(
                    "link rate must be positive: use LinkState { up: false } (or \
                     FaultPlan::kill) to take a link down, not a zero rate"
                        .to_string(),
                );
            }
        }
        self.steps.push((at, action));
        Ok(self)
    }

    /// Gray failure: from `at` on, drop packets leaving `(node, port)` with
    /// probability `loss`.
    pub fn gray_loss(&mut self, node: NodeId, port: PortId, loss: f64, at: SimTime) -> &mut Self {
        self.at(at, FaultAction::GrayLoss { node, port, loss })
    }

    /// Corruption: from `at` on, packets leaving `(node, port)` are dropped
    /// with probability `1 - (1 - ber)^bits`.
    pub fn corruption(&mut self, node: NodeId, port: PortId, ber: f64, at: SimTime) -> &mut Self {
        self.at(at, FaultAction::Corruption { node, port, ber })
    }

    /// Link flap: take the link attached to `(node, port)` down at
    /// `down_at` and bring it back up at `up_at`.
    pub fn flap(
        &mut self,
        node: NodeId,
        port: PortId,
        down_at: SimTime,
        up_at: SimTime,
    ) -> &mut Self {
        assert!(down_at < up_at, "flap must go down before it comes up");
        self.at(
            down_at,
            FaultAction::LinkState {
                node,
                port,
                up: false,
            },
        );
        self.at(
            up_at,
            FaultAction::LinkState {
                node,
                port,
                up: true,
            },
        )
    }

    /// Permanent link death at `at` (a flap that never recovers).
    pub fn kill(&mut self, node: NodeId, port: PortId, at: SimTime) -> &mut Self {
        self.at(
            at,
            FaultAction::LinkState {
                node,
                port,
                up: false,
            },
        )
    }

    /// Mid-run capacity degradation: at `at`, renegotiate the link attached
    /// to `(node, port)` to `rate_bps` (both directions).
    pub fn degrade(&mut self, node: NodeId, port: PortId, rate_bps: u64, at: SimTime) -> &mut Self {
        self.at(
            at,
            FaultAction::LinkRate {
                node,
                port,
                rate_bps,
            },
        )
    }

    /// Whole-switch crash at `at`: every port of `node` dies at once (both
    /// directions of every attached link).
    pub fn crash(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.at(at, FaultAction::SwitchDown { node })
    }

    /// Whole-switch recovery at `at`: every port of `node` comes back up.
    pub fn revive(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.at(at, FaultAction::SwitchUp { node })
    }

    /// A scripted switch outage: crash `node` at `down_at`, revive it at
    /// `up_at`.
    pub fn switch_outage(&mut self, node: NodeId, down_at: SimTime, up_at: SimTime) -> &mut Self {
        assert!(down_at < up_at, "outage must go down before it comes up");
        self.crash(node, down_at).revive(node, up_at)
    }

    /// The scheduled steps, in push order.
    pub fn steps(&self) -> &[(SimTime, FaultAction)] {
        &self.steps
    }

    /// Number of scheduled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// A randomized plan over `links`, for property tests: each link
    /// independently receives (with probability ~1/2 each) a flap inside
    /// `[0, horizon)` and/or a gray-loss rate up to `max_loss`, drawn from
    /// `rng`. Same RNG state ⇒ same plan.
    pub fn randomized(
        rng: &mut DetRng,
        links: &[(NodeId, PortId)],
        horizon: SimTime,
        max_loss: f64,
    ) -> Self {
        let mut plan = FaultPlan::new();
        let span = horizon.as_ps().max(2) as f64;
        for &(node, port) in links {
            if rng.gen_f64() < 0.5 {
                // Down somewhere in the first half, up in the second, so the
                // flap always recovers within the horizon.
                let a = (rng.gen_f64() * span * 0.5) as u64;
                let b = (span * 0.5 + rng.gen_f64() * (span * 0.5 - 1.0)) as u64;
                plan.flap(
                    node,
                    port,
                    SimTime::from_ps(a),
                    SimTime::from_ps(b.max(a + 1)),
                );
            }
            if rng.gen_f64() < 0.5 {
                let loss = rng.gen_f64() * max_loss;
                let at = SimTime::from_ps((rng.gen_f64() * span) as u64);
                plan.gray_loss(node, port, loss, at);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_push_expected_steps() {
        let mut plan = FaultPlan::new();
        plan.gray_loss(1, 2, 0.05, SimTime::from_ms(1))
            .corruption(1, 3, 1e-6, SimTime::ZERO)
            .degrade(2, 0, 1_000_000_000, SimTime::from_ms(2))
            .kill(3, 0, SimTime::from_ms(4))
            .flap(4, 0, SimTime::from_ms(5), SimTime::from_ms(6));
        assert_eq!(plan.len(), 6);
        assert_eq!(
            plan.steps()[0],
            (
                SimTime::from_ms(1),
                FaultAction::GrayLoss {
                    node: 1,
                    port: 2,
                    loss: 0.05
                }
            )
        );
        assert!(matches!(
            plan.steps()[5].1,
            FaultAction::LinkState { up: true, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_above_one_rejected() {
        FaultPlan::new().gray_loss(0, 0, 1.5, SimTime::ZERO);
    }

    #[test]
    fn try_at_rejects_garbage_with_actionable_errors() {
        let mut plan = FaultPlan::new();
        let nan = plan.try_at(
            SimTime::ZERO,
            FaultAction::GrayLoss {
                node: 0,
                port: 0,
                loss: f64::NAN,
            },
        );
        assert!(nan.unwrap_err().contains("rejected, not clamped"));
        let neg = plan.try_at(
            SimTime::ZERO,
            FaultAction::Corruption {
                node: 0,
                port: 0,
                ber: -0.1,
            },
        );
        assert!(neg.unwrap_err().contains("outside [0, 1]"));
        let zero = plan.try_at(
            SimTime::ZERO,
            FaultAction::LinkRate {
                node: 0,
                port: 0,
                rate_bps: 0,
            },
        );
        assert!(zero.unwrap_err().contains("FaultPlan::kill"));
        assert!(plan.is_empty(), "rejected steps must not be recorded");
        plan.try_at(
            SimTime::ZERO,
            FaultAction::GrayLoss {
                node: 0,
                port: 0,
                loss: 0.5,
            },
        )
        .unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn switch_outage_pushes_crash_then_revive() {
        let mut plan = FaultPlan::new();
        plan.switch_outage(7, SimTime::from_ms(1), SimTime::from_ms(3));
        assert_eq!(
            plan.steps(),
            &[
                (SimTime::from_ms(1), FaultAction::SwitchDown { node: 7 }),
                (SimTime::from_ms(3), FaultAction::SwitchUp { node: 7 }),
            ]
        );
        assert_eq!(plan.steps()[0].1.node(), 7);
    }

    #[test]
    fn directed_fault_accessors() {
        let d = DirectedFault::Rate {
            node: 5,
            port: 3,
            rate_bps: 1,
        };
        assert_eq!((d.node(), d.port()), (5, 3));
    }

    #[test]
    #[should_panic(expected = "down before it comes up")]
    fn inverted_flap_rejected() {
        FaultPlan::new().flap(0, 0, SimTime::from_ms(2), SimTime::from_ms(1));
    }

    #[test]
    fn randomized_is_deterministic_and_bounded() {
        let links = [(0u32, 0u16), (1, 1), (2, 0), (3, 2)];
        let horizon = SimTime::from_ms(10);
        let a = FaultPlan::randomized(&mut DetRng::new(7, 1), &links, horizon, 0.05);
        let b = FaultPlan::randomized(&mut DetRng::new(7, 1), &links, horizon, 0.05);
        assert_eq!(a, b, "same seed must yield the same plan");
        let c = FaultPlan::randomized(&mut DetRng::new(8, 1), &links, horizon, 0.05);
        assert_ne!(a, c, "different seed should (here) yield a different plan");
        for &(at, action) in a.steps() {
            assert!(at < horizon + horizon, "step at {at} beyond 2x horizon");
            if let FaultAction::GrayLoss { loss, .. } = action {
                assert!((0.0..=0.05).contains(&loss));
            }
        }
    }
}
