//! Flow descriptions, shared between workload generators and transports.
//!
//! A [`FlowSpec`] is the workload layer's description of one flow: who
//! sends how many bytes to whom, starting when. The experiment layer
//! registers all specs with the [`crate::Recorder`] up front; the
//! `transport` crate turns each spec into a live TCP/UDP connection at its
//! start time.

use crate::packet::{FlowId, FlowKey, HostId, Proto};
use crate::record::FlowRecord;
use crate::time::SimTime;

/// One flow to be run in an experiment.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Globally unique, dense id (0..n, assigned by the workload).
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes to transfer. For unbounded UDP sources this is the
    /// cap (use `u64::MAX` for "until the run ends").
    pub bytes: u64,
    /// When the flow arrives at the sender.
    pub start: SimTime,
    /// Partition-aggregate job id, if this flow is part of one.
    pub job: Option<u32>,
    /// Transport protocol.
    pub proto: Proto,
    /// For UDP: the constant bit rate of the source. Ignored for TCP.
    pub udp_rate_bps: u64,
    /// For UDP: re-draw the V-field every this many datagrams (paper
    /// §3.4.3, "FlowBender beyond TCP": burst-level spraying for
    /// reorder-tolerant transports). 0 = never (pinned, the hotspot
    /// behaviour).
    pub udp_spray_every: u64,
    /// Initial V-field hint for the transport's path controller. 0 for
    /// ordinary flows; replication schemes pin their duplicates to other
    /// values so a replica hashes onto a different path than its primary.
    pub vhint: u8,
    /// When this flow is a replica, the id of the flow it duplicates.
    /// Replicas inherit the primary's 5-tuple (see [`FlowSpec::key`]) so
    /// the *only* routing difference between the copies is the V-field.
    pub clone_of: Option<FlowId>,
}

impl FlowSpec {
    /// A TCP flow of `bytes` from `src` to `dst` starting at `start`.
    pub fn tcp(id: FlowId, src: HostId, dst: HostId, bytes: u64, start: SimTime) -> Self {
        assert_ne!(src, dst, "flow {id}: src == dst");
        assert!(bytes > 0, "flow {id}: empty flow");
        FlowSpec {
            id,
            src,
            dst,
            bytes,
            start,
            job: None,
            proto: Proto::Tcp,
            udp_rate_bps: 0,
            udp_spray_every: 0,
            vhint: 0,
            clone_of: None,
        }
    }

    /// A rate-limited UDP flow (the §4.3.1 hotspot source).
    pub fn udp(id: FlowId, src: HostId, dst: HostId, rate_bps: u64, start: SimTime) -> Self {
        assert_ne!(src, dst, "flow {id}: src == dst");
        assert!(rate_bps > 0, "flow {id}: zero-rate UDP");
        FlowSpec {
            id,
            src,
            dst,
            bytes: u64::MAX,
            start,
            job: None,
            proto: Proto::Udp,
            udp_rate_bps: rate_bps,
            udp_spray_every: 0,
            vhint: 0,
            clone_of: None,
        }
    }

    /// Tag this flow as part of partition-aggregate job `job`.
    pub fn with_job(mut self, job: u32) -> Self {
        self.job = Some(job);
        self
    }

    /// For UDP flows: re-draw the V-field every `every` datagrams
    /// (§3.4.3's burst-level spraying; `every = 1` is per-packet).
    pub fn with_udp_spray(mut self, every: u64) -> Self {
        assert_eq!(self.proto, Proto::Udp, "spraying applies to UDP flows");
        self.udp_spray_every = every;
        self
    }

    /// A RepFlow-style replica of this flow: same endpoints, same bytes,
    /// same start — and, via [`FlowSpec::key`], the *same 5-tuple* — but
    /// pinned to V-field `v`, so the fabric hashes the two copies
    /// independently through the V-field alone.
    pub fn replica(&self, id: FlowId, v: u8) -> FlowSpec {
        assert_eq!(self.proto, Proto::Tcp, "only TCP flows replicate");
        assert!(self.clone_of.is_none(), "replicas don't replicate");
        FlowSpec {
            id,
            vhint: v,
            clone_of: Some(self.id),
            job: self.job,
            ..self.clone()
        }
    }

    /// The 5-tuple this flow's packets carry. Ports are derived from the
    /// flow id so every flow gets distinct ECMP hash entropy, like distinct
    /// ephemeral ports would in a real host. Replicas derive ports from
    /// their *primary's* id: both copies share the 5-tuple and differ only
    /// in the V-field, which is the whole replication mechanism.
    pub fn key(&self) -> FlowKey {
        let hash_id = self.clone_of.unwrap_or(self.id);
        FlowKey {
            src: self.src,
            dst: self.dst,
            sport: 1024 + (hash_id % 60_000) as u16,
            dport: 9_000 + (hash_id / 60_000) as u16,
            proto: self.proto,
        }
    }

    /// The initial (not-yet-finished) recorder entry for this flow.
    pub fn record(&self) -> FlowRecord {
        FlowRecord {
            flow: self.id,
            src: self.src,
            dst: self.dst,
            bytes: self.bytes,
            start: self.start,
            end: SimTime::MAX,
            job: self.job,
            proto: self.proto,
        }
    }
}

/// Register every spec with the recorder (specs must be sorted by id and
/// dense from 0 — workload generators guarantee this).
pub fn register_flows(recorder: &mut crate::record::Recorder, specs: &[FlowSpec]) {
    for s in specs {
        recorder.flow_started(s.record());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;

    #[test]
    fn tcp_spec_key_is_stable_and_distinct() {
        let a = FlowSpec::tcp(0, 1, 2, 1000, SimTime::ZERO);
        let b = FlowSpec::tcp(1, 1, 2, 1000, SimTime::ZERO);
        assert_eq!(a.key(), a.key());
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().proto, Proto::Tcp);
    }

    #[test]
    fn udp_spec_is_unbounded() {
        let u = FlowSpec::udp(3, 1, 2, 6_000_000_000, SimTime::from_ms(1));
        assert_eq!(u.bytes, u64::MAX);
        assert_eq!(u.udp_rate_bps, 6_000_000_000);
        assert_eq!(u.key().proto, Proto::Udp);
    }

    #[test]
    fn register_flows_populates_recorder() {
        let specs = vec![
            FlowSpec::tcp(0, 1, 2, 100, SimTime::ZERO),
            FlowSpec::tcp(1, 2, 3, 200, SimTime::from_us(5)).with_job(7),
        ];
        let mut rec = Recorder::new();
        register_flows(&mut rec, &specs);
        assert_eq!(rec.flows().len(), 2);
        assert_eq!(rec.flows()[1].job, Some(7));
        assert_eq!(rec.completed_count(), 0);
    }

    #[test]
    #[should_panic]
    fn self_flow_rejected() {
        FlowSpec::tcp(0, 5, 5, 100, SimTime::ZERO);
    }

    #[test]
    fn replica_shares_the_primary_tuple_but_not_its_v() {
        let primary = FlowSpec::tcp(3, 1, 2, 50_000, SimTime::from_us(7)).with_job(9);
        let rep = primary.replica(10, 1);
        assert_eq!(
            rep.key(),
            primary.key(),
            "replication must not change the 5-tuple"
        );
        assert_eq!(rep.id, 10);
        assert_eq!(rep.clone_of, Some(3));
        assert_eq!(rep.vhint, 1);
        assert_eq!(rep.bytes, primary.bytes);
        assert_eq!(rep.start, primary.start);
        assert_eq!(rep.job, Some(9));
        assert_eq!(primary.vhint, 0);
    }

    #[test]
    #[should_panic]
    fn replicas_do_not_replicate() {
        let primary = FlowSpec::tcp(0, 1, 2, 100, SimTime::ZERO);
        primary.replica(1, 1).replica(2, 2);
    }
}
