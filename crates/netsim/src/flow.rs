//! Flow descriptions, shared between workload generators and transports.
//!
//! A [`FlowSpec`] is the workload layer's description of one flow: who
//! sends how many bytes to whom, starting when. The experiment layer
//! registers all specs with the [`crate::Recorder`] up front; the
//! `transport` crate turns each spec into a live TCP/UDP connection at its
//! start time.

use crate::packet::{FlowId, FlowKey, HostId, Proto};
use crate::record::FlowRecord;
use crate::time::SimTime;

/// One flow to be run in an experiment.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Globally unique, dense id (0..n, assigned by the workload).
    pub id: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes to transfer. For unbounded UDP sources this is the
    /// cap (use `u64::MAX` for "until the run ends").
    pub bytes: u64,
    /// When the flow arrives at the sender.
    pub start: SimTime,
    /// Partition-aggregate job id, if this flow is part of one.
    pub job: Option<u32>,
    /// Transport protocol.
    pub proto: Proto,
    /// For UDP: the constant bit rate of the source. Ignored for TCP.
    pub udp_rate_bps: u64,
    /// For UDP: re-draw the V-field every this many datagrams (paper
    /// §3.4.3, "FlowBender beyond TCP": burst-level spraying for
    /// reorder-tolerant transports). 0 = never (pinned, the hotspot
    /// behaviour).
    pub udp_spray_every: u64,
}

impl FlowSpec {
    /// A TCP flow of `bytes` from `src` to `dst` starting at `start`.
    pub fn tcp(id: FlowId, src: HostId, dst: HostId, bytes: u64, start: SimTime) -> Self {
        assert_ne!(src, dst, "flow {id}: src == dst");
        assert!(bytes > 0, "flow {id}: empty flow");
        FlowSpec {
            id,
            src,
            dst,
            bytes,
            start,
            job: None,
            proto: Proto::Tcp,
            udp_rate_bps: 0,
            udp_spray_every: 0,
        }
    }

    /// A rate-limited UDP flow (the §4.3.1 hotspot source).
    pub fn udp(id: FlowId, src: HostId, dst: HostId, rate_bps: u64, start: SimTime) -> Self {
        assert_ne!(src, dst, "flow {id}: src == dst");
        assert!(rate_bps > 0, "flow {id}: zero-rate UDP");
        FlowSpec {
            id,
            src,
            dst,
            bytes: u64::MAX,
            start,
            job: None,
            proto: Proto::Udp,
            udp_rate_bps: rate_bps,
            udp_spray_every: 0,
        }
    }

    /// Tag this flow as part of partition-aggregate job `job`.
    pub fn with_job(mut self, job: u32) -> Self {
        self.job = Some(job);
        self
    }

    /// For UDP flows: re-draw the V-field every `every` datagrams
    /// (§3.4.3's burst-level spraying; `every = 1` is per-packet).
    pub fn with_udp_spray(mut self, every: u64) -> Self {
        assert_eq!(self.proto, Proto::Udp, "spraying applies to UDP flows");
        self.udp_spray_every = every;
        self
    }

    /// The 5-tuple this flow's packets carry. Ports are derived from the
    /// flow id so every flow gets distinct ECMP hash entropy, like distinct
    /// ephemeral ports would in a real host.
    pub fn key(&self) -> FlowKey {
        FlowKey {
            src: self.src,
            dst: self.dst,
            sport: 1024 + (self.id % 60_000) as u16,
            dport: 9_000 + (self.id / 60_000) as u16,
            proto: self.proto,
        }
    }

    /// The initial (not-yet-finished) recorder entry for this flow.
    pub fn record(&self) -> FlowRecord {
        FlowRecord {
            flow: self.id,
            src: self.src,
            dst: self.dst,
            bytes: self.bytes,
            start: self.start,
            end: SimTime::MAX,
            job: self.job,
            proto: self.proto,
        }
    }
}

/// Register every spec with the recorder (specs must be sorted by id and
/// dense from 0 — workload generators guarantee this).
pub fn register_flows(recorder: &mut crate::record::Recorder, specs: &[FlowSpec]) {
    for s in specs {
        recorder.flow_started(s.record());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;

    #[test]
    fn tcp_spec_key_is_stable_and_distinct() {
        let a = FlowSpec::tcp(0, 1, 2, 1000, SimTime::ZERO);
        let b = FlowSpec::tcp(1, 1, 2, 1000, SimTime::ZERO);
        assert_eq!(a.key(), a.key());
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().proto, Proto::Tcp);
    }

    #[test]
    fn udp_spec_is_unbounded() {
        let u = FlowSpec::udp(3, 1, 2, 6_000_000_000, SimTime::from_ms(1));
        assert_eq!(u.bytes, u64::MAX);
        assert_eq!(u.udp_rate_bps, 6_000_000_000);
        assert_eq!(u.key().proto, Proto::Udp);
    }

    #[test]
    fn register_flows_populates_recorder() {
        let specs = vec![
            FlowSpec::tcp(0, 1, 2, 100, SimTime::ZERO),
            FlowSpec::tcp(1, 2, 3, 200, SimTime::from_us(5)).with_job(7),
        ];
        let mut rec = Recorder::new();
        register_flows(&mut rec, &specs);
        assert_eq!(rec.flows().len(), 2);
        assert_eq!(rec.flows()[1].job, Some(7));
        assert_eq!(rec.completed_count(), 0);
    }

    #[test]
    #[should_panic]
    fn self_flow_rejected() {
        FlowSpec::tcp(0, 5, 5, 100, SimTime::ZERO);
    }
}
