//! ECMP hash engine.
//!
//! Commodity switches pick an equal-cost next hop by hashing header fields
//! of each packet; all packets of one flow hash identically, so a flow
//! sticks to one path. FlowBender's deployment trick (paper §3.3.2) is to
//! configure this hash to additionally cover a "flexible" field — TTL or
//! VLAN id — that end hosts may change at will, giving hosts a per-flow
//! path selector without any switch hardware change.
//!
//! [`HashConfig`] captures that switch configuration: whether the V-field is
//! included. Each switch uses its own random salt, modelling the per-switch
//! hash-seed diversity of real silicon (without it, consecutive hops would
//! make correlated choices and some paths would be unreachable).
//!
//! The module also hosts [`FxHasher`]/[`FxBuildHasher`]: an in-tree,
//! dependency-free FxHash-style [`std::hash::Hasher`] for the simulator's
//! per-packet hash maps. `std`'s default SipHash is keyed with per-process
//! random state — both slow (per-packet cost on the flowlet path) and
//! non-deterministic in iteration order. FxHash is a few-cycle multiply-mix,
//! with no random state, so [`DetHashMap`] is deterministic across runs and
//! processes.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use crate::packet::{Packet, Proto};

/// Which header fields the switches' ECMP hash covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashConfig {
    /// Classic 5-tuple hash; the V-field is ignored. This is plain ECMP:
    /// a flow's path can never change.
    FiveTuple,
    /// 5-tuple plus the FlowBender V-field ("a handful of configuration
    /// commands" on real switches). Changing V re-hashes the flow.
    FiveTupleAndVField,
}

/// A per-switch ECMP hasher.
#[derive(Debug, Clone)]
pub struct EcmpHasher {
    config: HashConfig,
    salt: u64,
}

impl EcmpHasher {
    /// Build a hasher with the given field configuration and per-switch salt.
    pub fn new(config: HashConfig, salt: u64) -> Self {
        EcmpHasher { config, salt }
    }

    /// The field configuration in use.
    pub fn config(&self) -> HashConfig {
        self.config
    }

    /// Hash a packet's headers to a 64-bit value.
    #[inline]
    pub fn hash(&self, pkt: &Packet) -> u64 {
        let proto = match pkt.key.proto {
            Proto::Tcp => 6u64,
            Proto::Udp => 17u64,
        };
        let mut x = (pkt.key.src as u64) << 32 | pkt.key.dst as u64;
        x = mix(x ^ self.salt);
        x = mix(x ^ ((pkt.key.sport as u64) << 32 | (pkt.key.dport as u64) << 8 | proto));
        if self.config == HashConfig::FiveTupleAndVField {
            x = mix(x ^ (0xA5A5_0000 | pkt.vfield as u64));
        }
        x
    }

    /// Pick an index in `[0, n)` for this packet, as a hardware ECMP engine
    /// would (hash modulo group size). Panics if `n == 0`.
    #[inline]
    pub fn select(&self, pkt: &Packet, n: usize) -> usize {
        assert!(n > 0, "ECMP group must be non-empty");
        (self.hash(pkt) % n as u64) as usize
    }

    /// Weighted-cost multipath selection: pick an index into `weights`
    /// proportionally to the weights, still deterministically per flow
    /// (hash-based). Used by the WCMP discussion of paper §4.3.1.
    /// Panics if all weights are zero.
    pub fn select_weighted(&self, pkt: &Packet, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "WCMP weights must not all be zero");
        let mut point = self.hash(pkt) % total;
        for (i, &w) in weights.iter().enumerate() {
            if point < w as u64 {
                return i;
            }
            point -= w as u64;
        }
        unreachable!("point must fall within total weight")
    }
}

/// Multiplier used by the FxHash word mixer (the golden-ratio-derived
/// constant rustc's own FxHash uses for 64-bit words).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

/// An FxHash-style streaming hasher: rotate, xor, multiply per word.
///
/// Not cryptographic and not DoS-resistant — exactly right for interior
/// simulator state keyed by trusted values (flow hashes, flow ids), where
/// per-packet SipHash latency is pure waste.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]: stateless, so every map built with it
/// hashes identically in every process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` with deterministic, cheap hashing — the map type for all
/// per-packet interior state (flowlet tables, flow demux maps, telemetry
/// series indices).
pub type DetHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// splitmix64-style finalizer: a fast, well-mixed 64-bit permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Packet};
    use crate::time::SimTime;

    fn pkt(src: u32, sport: u16, v: u8) -> Packet {
        let key = FlowKey {
            src,
            dst: 99,
            sport,
            dport: 80,
            proto: Proto::Tcp,
        };
        Packet::data(0, key, v, 0, 1460, SimTime::ZERO)
    }

    #[test]
    fn same_flow_same_path() {
        let h = EcmpHasher::new(HashConfig::FiveTupleAndVField, 1234);
        let a = h.select(&pkt(1, 1000, 5), 8);
        for _ in 0..10 {
            assert_eq!(h.select(&pkt(1, 1000, 5), 8), a);
        }
    }

    #[test]
    fn vfield_ignored_in_five_tuple_mode() {
        let h = EcmpHasher::new(HashConfig::FiveTuple, 1234);
        for v in 0..=255u8 {
            assert_eq!(h.hash(&pkt(1, 1000, v)), h.hash(&pkt(1, 1000, 0)));
        }
    }

    #[test]
    fn vfield_changes_hash_in_flowbender_mode() {
        let h = EcmpHasher::new(HashConfig::FiveTupleAndVField, 1234);
        // Over 8 ports and 8 V values, at least two different ports should
        // be reachable (overwhelmingly likely; deterministic given the salt).
        let ports: std::collections::HashSet<usize> =
            (0..8).map(|v| h.select(&pkt(1, 1000, v), 8)).collect();
        assert!(
            ports.len() > 1,
            "changing V should change the selected port"
        );
    }

    #[test]
    fn different_salts_decorrelate_switches() {
        let h1 = EcmpHasher::new(HashConfig::FiveTuple, 1);
        let h2 = EcmpHasher::new(HashConfig::FiveTuple, 2);
        let same = (0..256)
            .filter(|&s| h1.select(&pkt(s, 1000, 0), 8) == h2.select(&pkt(s, 1000, 0), 8))
            .count();
        // Random agreement would be ~32/256; allow wide slack but rule out
        // full correlation.
        assert!(
            same < 96,
            "salts should decorrelate selections, {same} agreed"
        );
    }

    #[test]
    fn selection_is_roughly_uniform_over_flows() {
        let h = EcmpHasher::new(HashConfig::FiveTuple, 77);
        let mut counts = [0usize; 4];
        for s in 0..4000u32 {
            counts[h.select(&pkt(s, (s % 5000) as u16, 0), 4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn weighted_selection_respects_weights() {
        let h = EcmpHasher::new(HashConfig::FiveTuple, 9);
        let weights = [3, 1];
        let mut counts = [0usize; 2];
        for s in 0..8000u32 {
            counts[h.select_weighted(&pkt(s, (s % 997) as u16, 0), &weights)] += 1;
        }
        let frac = counts[0] as f64 / 8000.0;
        assert!(
            (0.70..0.80).contains(&frac),
            "expected ~75% on port 0, got {frac}"
        );
    }

    #[test]
    #[should_panic]
    fn empty_group_panics() {
        let h = EcmpHasher::new(HashConfig::FiveTuple, 9);
        h.select(&pkt(1, 1, 0), 0);
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let hash_one = |x: u64| {
            let mut h = FxBuildHasher.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        // Same input, same output — across fresh hashers (no hidden state).
        assert_eq!(hash_one(42), hash_one(42));
        assert_ne!(hash_one(42), hash_one(43));
        // Sequential keys must not collide in the low bits a HashMap uses.
        let low: std::collections::HashSet<u64> = (0..1024u64).map(|x| hash_one(x) % 64).collect();
        assert!(low.len() > 32, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn fx_hasher_byte_stream_matches_tail_padding() {
        // write() must consume any length; differing tails must differ.
        let digest = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(digest(b"abcdefghij"), digest(b"abcdefghij"));
        assert_ne!(digest(b"abcdefghij"), digest(b"abcdefghik"));
        // A difference confined to the sub-8-byte tail must still matter.
        assert_ne!(digest(b"abcdefgh\x01"), digest(b"abcdefgh\x02"));
    }

    #[test]
    fn det_hash_map_behaves_like_a_map() {
        let mut m: DetHashMap<u64, u32> = DetHashMap::default();
        for i in 0..100u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.remove(&40), Some(80));
        assert_eq!(m.get(&40), None);
    }
}
