//! # netsim — a deterministic packet-level datacenter network simulator
//!
//! This crate is the substrate of the FlowBender (CoNEXT'14) reproduction:
//! an ns-3-class discrete-event simulator purpose-built for datacenter
//! load-balancing experiments. It models:
//!
//! * full-duplex point-to-point links with exact (picosecond-resolution)
//!   serialization and propagation times,
//! * drop-tail egress queues with DCTCP-style single-threshold ECN marking,
//! * switches running any of the paper's fabric-side schemes — static ECMP
//!   hashing (with or without the FlowBender V-field), per-packet random
//!   spraying (RPS), and DeTail-style per-packet adaptive routing with PFC
//!   (combined input/output queueing, pause/resume thresholds),
//! * hosts with the paper's 20 µs stack delays, running pluggable protocol
//!   [`Agent`]s (TCP/DCTCP/UDP live in the `transport` crate),
//! * administrative link failures (black-holing until "routing reconverges",
//!   which in these experiments never happens — that is the point),
//! * deterministic fault injection via [`FaultPlan`] — gray (probabilistic)
//!   loss, link flaps, whole-switch outages, mid-run rate degradation, and
//!   bit-error corruption — with per-port drop-reason accounting and an
//!   end-of-run conservation audit ([`Simulator::conservation`]),
//! * a run-wide [`Recorder`] of flow completions, event counters, and
//!   (opt-in, via [`TelemetryConfig`]) named time-series probes — queue
//!   depths, link utilization, per-flow cwnd/`F`, V-field reroute traces,
//! * an opt-in per-flow flight recorder ([`TraceConfig`]) that captures
//!   ring-buffered event timelines — hops, enqueues, ECN marks, drops,
//!   sender state transitions — for post-mortem diagnosis of tail flows.
//!
//! Everything is deterministic: given the same build sequence and master
//! seed, a run reproduces bit-for-bit, including every "random" choice
//! (hash salts, RPS picks, tie-breaks) via the internal PCG streams.
//!
//! ## Quick tour
//!
//! ```
//! use netsim::{Simulator, SwitchConfig, LinkSpec, RoutingTable, HashConfig, SimTime};
//!
//! let mut sim = Simulator::new(42);
//! let h0 = sim.add_host_default();
//! let h1 = sim.add_host_default();
//! let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
//! sim.connect(h0, sw, LinkSpec::host_10g());
//! sim.connect(h1, sw, LinkSpec::host_10g());
//! let mut routes = RoutingTable::new(2);
//! routes.set(h0, vec![0]);
//! routes.set(h1, vec![1]);
//! sim.set_routes(sw, routes);
//! // ... attach agents with sim.set_agent(host, Box::new(...)) ...
//! sim.run_until(SimTime::from_ms(10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod event;
pub mod faults;
pub mod flow;
pub mod hashing;
pub mod packet;
pub mod queue;
pub mod record;
pub mod rng;
pub mod sim;
pub mod slab;
pub mod switch;
pub mod telemetry;
pub mod testutil;
pub mod time;
pub mod trace;

pub use agent::{Agent, Ctx, NullAgent};
pub use faults::{DirectedFault, FaultAction, FaultPlan};
pub use flow::{register_flows, FlowSpec};
pub use hashing::{DetHashMap, EcmpHasher, FxBuildHasher, FxHasher, HashConfig};
pub use packet::{
    Flags, FlowId, FlowKey, HostId, IntHop, IntStack, NodeId, Packet, PortId, Proto, ACK_BYTES,
    HEADER_BYTES, MSS, MTU,
};
pub use queue::{EcnQueue, EnqueueResult, QueueStats};
pub use record::{
    Counter, DropAudit, DropReason, FlowRecord, Recorder, RunResults, Sink, SloConfig, SloResults,
};
pub use rng::DetRng;
pub use sim::{Conservation, Handoff, LinkSpec, PortStats, QueueSpec, Simulator, SwitchConfig};
pub use slab::{PacketId, PacketSlab};
pub use switch::{
    CnLimiter, FeedbackConfig, FlowcutConfig, FlowcutDecision, FlowcutState, FlowletState,
    ForwardingScheme, PfcConfig, RoutingTable,
};
pub use telemetry::{ProbeKind, Series, SeriesKey, Telemetry, TelemetryConfig};
pub use time::SimTime;
pub use trace::{FlowTimeline, Trace, TraceConfig, TraceEvent};
