//! Packet representation.
//!
//! The simulator models packets at header granularity: a [`Packet`] carries
//! the fields that affect forwarding and transport behaviour (addresses, ports,
//! sequence numbers, flags, the FlowBender V-field) plus its wire size, but
//! no payload bytes — the payload's content never matters, only its length.

use crate::time::SimTime;

/// Identifier of a node (host or switch) in the simulated network.
pub type NodeId = u32;

/// Identifier of a host. Hosts and switches share the `NodeId` space; a
/// `HostId` is a `NodeId` that is known to refer to a host.
pub type HostId = u32;

/// A port index local to one node.
pub type PortId = u16;

/// Globally unique flow identifier assigned by the experiment/workload layer.
pub type FlowId = u32;

/// Maximum transmission unit used throughout the suite (standard Ethernet).
pub const MTU: u32 = 1500;
/// Bytes of TCP/IP header accounted on every packet.
pub const HEADER_BYTES: u32 = 40;
/// Maximum segment size: MTU minus headers.
pub const MSS: u32 = MTU - HEADER_BYTES;
/// Wire size of a bare ACK (no payload).
pub const ACK_BYTES: u32 = HEADER_BYTES;

/// Transport protocol of a flow. Part of the ECMP hash input, mirroring the
/// IP protocol field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Reliable, congestion-controlled transport (TCP New Reno / DCTCP).
    Tcp,
    /// Unreliable constant-bit-rate transport.
    Udp,
}

/// The fields that identify a connection for ECMP hashing purposes — the
/// classic 5-tuple. All packets of one flow (in one direction) carry the
/// same `FlowKey`; ACKs carry the reversed key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Source transport port.
    pub sport: u16,
    /// Destination transport port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// The key of packets flowing in the opposite direction (ACKs).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }
}

/// Packet flag bits.
///
/// `CE` models the IP-level ECN Congestion Experienced codepoint set by
/// switches; `ECE` models the TCP-level echo carried back on ACKs. With the
/// DCTCP-style accurate per-packet echo used here, an ACK's `ECE` reflects
/// the `CE` bit of the data packet that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags(pub u8);

impl Flags {
    /// Acknowledgment: `ack` field is meaningful.
    pub const ACK: u8 = 1 << 0;
    /// ECN Congestion Experienced (set by switches on marked packets).
    pub const CE: u8 = 1 << 1;
    /// ECN Echo (set by receivers on ACKs of marked data).
    pub const ECE: u8 = 1 << 2;
    /// Final segment of the flow.
    pub const FIN: u8 = 1 << 3;
    /// Packet is ECN-capable transport (ECT); non-ECT packets are dropped
    /// instead of marked when the queue exceeds the marking threshold.
    pub const ECT: u8 = 1 << 4;
    /// Duplicate-SACK: this ACK acknowledges a segment the receiver already
    /// held — the sender's retransmission was spurious (reordering, not
    /// loss). Senders use it to undo recovery and raise their reordering
    /// threshold, as Linux's DSACK handling does.
    pub const DSACK: u8 = 1 << 5;
    /// Congestion notification: a switch-generated back-to-sender packet
    /// (P4-style early feedback) announcing that a queue this flow
    /// traverses crossed its notification threshold. Carries the blamed
    /// hop in [`Packet::int`]; pre-empts the end-to-end ECN echo.
    pub const CN: u8 = 1 << 6;

    /// True if the given flag bit(s) are all set.
    #[inline]
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit == bit
    }

    /// Set the given flag bit(s).
    #[inline]
    pub fn set(&mut self, bit: u8) {
        self.0 |= bit;
    }

    /// Clear the given flag bit(s).
    #[inline]
    pub fn clear(&mut self, bit: u8) {
        self.0 &= !bit;
    }
}

/// One hop's worth of INT (in-band network telemetry) metadata: what a
/// switch knew about the packet's egress queue at enqueue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntHop {
    /// The switch that stamped this record.
    pub node: NodeId,
    /// The egress port the packet was queued on.
    pub port: PortId,
    /// Queue occupancy in bytes *after* this packet was enqueued.
    pub qbytes: u64,
    /// Whether the queue ECN-marked the packet at this hop.
    pub marked: bool,
}

/// The per-packet INT stack: one [`IntHop`] per switch traversed, in path
/// order. Allocated lazily (packets of a telemetry-disabled fabric never
/// carry one) and boxed so the disabled case costs one `Option` niche.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntStack {
    /// Hop records, first hop first.
    pub hops: Vec<IntHop>,
}

impl IntStack {
    /// The hop with the deepest queue — the congestion suspect a
    /// feedback-driven controller should bend away from. `None` for an
    /// empty stack.
    pub fn blamed_hop(&self) -> Option<IntHop> {
        self.hops.iter().copied().max_by_key(|h| h.qbytes)
    }
}

/// A simulated packet.
///
/// Cheap to copy (`Clone`), small, and payload-free. The `size` field is the
/// full wire size (headers + payload) used for serialization-time and queue
/// accounting.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Flow this packet belongs to (bookkeeping, not used for forwarding).
    pub flow: FlowId,
    /// ECMP 5-tuple.
    pub key: FlowKey,
    /// FlowBender's flexible hash field (the paper's "V", e.g. TTL or VLAN
    /// id). Switches configured for FlowBender include it in the ECMP hash;
    /// changing it re-routes the flow.
    pub vfield: u8,
    /// Byte offset of the first payload byte (TCP sequence number).
    pub seq: u64,
    /// Payload length in bytes (0 for pure ACKs).
    pub payload: u32,
    /// Cumulative acknowledgment number (valid when `Flags::ACK` set).
    pub ack: u64,
    /// Full wire size in bytes.
    pub size: u32,
    /// Flag bits.
    pub flags: Flags,
    /// Timestamp echoed by the receiver (TCP timestamp option), used by the
    /// sender for RTT estimation. On data packets this is the send time; on
    /// ACKs it is the echoed value.
    pub tstamp: SimTime,
    /// Number of duplicate-ACK-relevant SACK-less ordering information: the
    /// highest sequence number the receiver has seen (used only for
    /// statistics, not by the protocol).
    pub rcv_high: u64,
    /// Simulator-internal: the ingress port through which this packet
    /// entered the switch currently buffering it. Used for PFC (combined
    /// input/output queueing) accounting. [`INGRESS_NONE`] when the packet
    /// is not attributed to any ingress (e.g. host-originated).
    pub ingress_tag: u16,
    /// The INT stack: per-hop telemetry stamped by switches with INT
    /// enabled, `None` everywhere else (the default for every
    /// constructor). On a CN packet this carries exactly the blamed hop.
    pub int: Option<Box<IntStack>>,
}

/// Sentinel for [`Packet::ingress_tag`]: not attributed to an ingress port.
pub const INGRESS_NONE: u16 = u16::MAX;

impl Packet {
    /// Build a data segment.
    pub fn data(
        flow: FlowId,
        key: FlowKey,
        vfield: u8,
        seq: u64,
        payload: u32,
        now: SimTime,
    ) -> Packet {
        let mut flags = Flags::default();
        flags.set(Flags::ECT);
        Packet {
            flow,
            key,
            vfield,
            seq,
            payload,
            ack: 0,
            size: payload + HEADER_BYTES,
            flags,
            tstamp: now,
            rcv_high: 0,
            ingress_tag: INGRESS_NONE,
            int: None,
        }
    }

    /// Build a pure ACK for `key`'s reverse direction.
    pub fn ack_packet(
        flow: FlowId,
        data_key: FlowKey,
        vfield: u8,
        ack: u64,
        echo: SimTime,
    ) -> Packet {
        let mut flags = Flags::default();
        flags.set(Flags::ACK);
        flags.set(Flags::ECT);
        Packet {
            flow,
            key: data_key.reversed(),
            vfield,
            seq: 0,
            payload: 0,
            ack,
            size: ACK_BYTES,
            flags,
            tstamp: echo,
            rcv_high: 0,
            ingress_tag: INGRESS_NONE,
            int: None,
        }
    }

    /// Build a switch-generated congestion notification headed back to
    /// `data_key`'s source. Wire-wise a bare header ([`ACK_BYTES`]); the
    /// blamed hop rides in the INT stack.
    pub fn cn(flow: FlowId, data_key: FlowKey, vfield: u8, blame: IntHop, now: SimTime) -> Packet {
        let mut flags = Flags::default();
        flags.set(Flags::CN);
        flags.set(Flags::ECT);
        Packet {
            flow,
            key: data_key.reversed(),
            vfield,
            seq: 0,
            payload: 0,
            ack: 0,
            size: ACK_BYTES,
            flags,
            tstamp: now,
            rcv_high: 0,
            ingress_tag: INGRESS_NONE,
            int: Some(Box::new(IntStack { hops: vec![blame] })),
        }
    }

    /// Destination host of this packet.
    #[inline]
    pub fn dst(&self) -> HostId {
        self.key.dst
    }

    /// True if this packet may be ECN-marked rather than dropped.
    #[inline]
    pub fn ecn_capable(&self) -> bool {
        self.flags.has(Flags::ECT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            src: 1,
            dst: 2,
            sport: 1000,
            dport: 80,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn mss_and_mtu_are_consistent() {
        assert_eq!(MSS + HEADER_BYTES, MTU);
        assert_eq!(MSS, 1460);
    }

    #[test]
    fn reversed_key_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src, 2);
        assert_eq!(r.dst, 1);
        assert_eq!(r.sport, 80);
        assert_eq!(r.dport, 1000);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn flags_set_clear_has() {
        let mut f = Flags::default();
        assert!(!f.has(Flags::ACK));
        f.set(Flags::ACK);
        f.set(Flags::CE);
        assert!(f.has(Flags::ACK));
        assert!(f.has(Flags::CE));
        assert!(f.has(Flags::ACK | Flags::CE));
        f.clear(Flags::CE);
        assert!(!f.has(Flags::CE));
        assert!(f.has(Flags::ACK));
    }

    #[test]
    fn data_packet_sizes() {
        let p = Packet::data(7, key(), 3, 0, MSS, SimTime::ZERO);
        assert_eq!(p.size, MTU);
        assert!(p.ecn_capable());
        assert!(!p.flags.has(Flags::ACK));
        let a = Packet::ack_packet(7, key(), 0, 1460, SimTime::from_us(5));
        assert_eq!(a.size, ACK_BYTES);
        assert!(a.flags.has(Flags::ACK));
        assert_eq!(a.key, key().reversed());
        assert_eq!(a.tstamp, SimTime::from_us(5));
        assert!(a.int.is_none(), "no INT stack unless a switch stamps one");
    }

    #[test]
    fn int_stack_blames_the_deepest_queue() {
        let mut s = IntStack::default();
        assert_eq!(s.blamed_hop(), None);
        s.hops.push(IntHop {
            node: 8,
            port: 1,
            qbytes: 3000,
            marked: false,
        });
        s.hops.push(IntHop {
            node: 12,
            port: 0,
            qbytes: 90_000,
            marked: true,
        });
        s.hops.push(IntHop {
            node: 9,
            port: 2,
            qbytes: 100,
            marked: false,
        });
        let blame = s.blamed_hop().unwrap();
        assert_eq!((blame.node, blame.port), (12, 0));
    }

    #[test]
    fn cn_packet_reverses_key_and_carries_blame() {
        let blame = IntHop {
            node: 12,
            port: 3,
            qbytes: 64_000,
            marked: true,
        };
        let p = Packet::cn(7, key(), 2, blame, SimTime::from_us(9));
        assert!(p.flags.has(Flags::CN));
        assert!(!p.flags.has(Flags::ACK));
        assert_eq!(p.key, key().reversed());
        assert_eq!(p.dst(), 1, "headed back to the data source");
        assert_eq!(p.size, ACK_BYTES);
        assert_eq!(p.payload, 0);
        assert_eq!(p.int.as_ref().unwrap().hops, vec![blame]);
    }
}
