//! Output queues with drop-tail and DCTCP-style ECN marking.
//!
//! Every transmitting port owns one [`EcnQueue`]. Enqueue performs the
//! switch's AQM decision: if the instantaneous occupancy (in bytes) exceeds
//! the marking threshold `K`, an ECN-capable packet gets its CE bit set —
//! this is the single-threshold marking DCTCP relies on (paper §4.2:
//! "a congested switch marks every packet exceeding a desired queue size
//! threshold", K = 90 KB for 10 Gbps links). Non-ECN packets (or any packet
//! once the byte capacity is exhausted) are dropped at the tail.

use std::collections::VecDeque;

use crate::packet::{Flags, Packet};

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Packet accepted (possibly CE-marked).
    Queued,
    /// Packet dropped: the queue was at capacity.
    Dropped,
}

/// A byte-bounded FIFO with single-threshold ECN marking.
#[derive(Debug)]
pub struct EcnQueue {
    fifo: VecDeque<Packet>,
    bytes: u64,
    /// Maximum occupancy in bytes; arrivals beyond this are dropped.
    capacity: u64,
    /// ECN marking threshold `K` in bytes; `u64::MAX` disables marking.
    mark_threshold: u64,
    /// Lifetime statistics.
    stats: QueueStats,
}

/// Counters maintained by each queue over its lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets CE-marked on enqueue.
    pub marked: u64,
    /// Highest byte occupancy ever observed.
    pub max_bytes: u64,
}

impl EcnQueue {
    /// Create a queue with the given byte capacity and marking threshold.
    pub fn new(capacity: u64, mark_threshold: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        EcnQueue {
            fifo: VecDeque::new(),
            bytes: 0,
            capacity,
            mark_threshold,
            stats: QueueStats::default(),
        }
    }

    /// Create a queue that never marks (plain drop-tail).
    pub fn drop_tail(capacity: u64) -> Self {
        Self::new(capacity, u64::MAX)
    }

    /// Attempt to enqueue `pkt`, applying drop-tail and ECN marking.
    ///
    /// The marking decision uses the occupancy *before* the packet is added
    /// (instantaneous queue length seen by the arriving packet), matching
    /// DCTCP's specification.
    pub fn enqueue(&mut self, mut pkt: Packet) -> EnqueueResult {
        if self.bytes + pkt.size as u64 > self.capacity {
            self.stats.dropped += 1;
            return EnqueueResult::Dropped;
        }
        if self.bytes >= self.mark_threshold && pkt.ecn_capable() {
            pkt.flags.set(Flags::CE);
            self.stats.marked += 1;
        }
        self.bytes += pkt.size as u64;
        self.stats.enqueued += 1;
        if self.bytes > self.stats.max_bytes {
            self.stats.max_bytes = self.bytes;
        }
        self.fifo.push_back(pkt);
        EnqueueResult::Queued
    }

    /// Remove and return the head-of-line packet, if any.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.size as u64;
        Some(pkt)
    }

    /// Current occupancy in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current occupancy in packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True if no packet is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Byte capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Marking threshold `K` in bytes.
    #[inline]
    pub fn mark_threshold(&self) -> u64 {
        self.mark_threshold
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drop every queued packet (used when a link fails), returning how many
    /// packets were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.fifo.len();
        self.stats.dropped += n as u64;
        self.fifo.clear();
        self.bytes = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Proto, MSS};
    use crate::time::SimTime;

    fn pkt(size_payload: u32) -> Packet {
        let key = FlowKey {
            src: 1,
            dst: 2,
            sport: 9,
            dport: 80,
            proto: Proto::Tcp,
        };
        Packet::data(0, key, 0, 0, size_payload, SimTime::ZERO)
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        let mut a = pkt(100);
        a.seq = 1;
        let mut b = pkt(200);
        b.seq = 2;
        q.enqueue(a);
        q.enqueue(b);
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 100 + 40 + 200 + 40);
        assert_eq!(q.dequeue().unwrap().seq, 1);
        assert_eq!(q.bytes(), 240);
        assert_eq!(q.dequeue().unwrap().seq, 2);
        assert!(q.dequeue().is_none());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn drops_when_full() {
        let mut q = EcnQueue::drop_tail(3000);
        assert_eq!(q.enqueue(pkt(MSS)), EnqueueResult::Queued);
        assert_eq!(q.enqueue(pkt(MSS)), EnqueueResult::Queued);
        // Third full-size packet exceeds 3000 bytes.
        assert_eq!(q.enqueue(pkt(MSS)), EnqueueResult::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn marks_above_threshold_only() {
        // Threshold = one full packet: the second packet sees occupancy 1500
        // >= 1500 and is marked; the first sees 0 and is not.
        let mut q = EcnQueue::new(1_000_000, 1500);
        q.enqueue(pkt(MSS));
        q.enqueue(pkt(MSS));
        let first = q.dequeue().unwrap();
        let second = q.dequeue().unwrap();
        assert!(!first.flags.has(Flags::CE));
        assert!(second.flags.has(Flags::CE));
        assert_eq!(q.stats().marked, 1);
    }

    #[test]
    fn non_ect_packets_are_not_marked() {
        let mut q = EcnQueue::new(1_000_000, 0); // mark everything eligible
        let mut p = pkt(100);
        p.flags.clear(Flags::ECT);
        q.enqueue(p);
        assert!(!q.dequeue().unwrap().flags.has(Flags::CE));
        assert_eq!(q.stats().marked, 0);
    }

    #[test]
    fn max_bytes_high_watermark() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        q.enqueue(pkt(MSS));
        q.enqueue(pkt(MSS));
        q.dequeue();
        q.enqueue(pkt(100));
        assert_eq!(q.stats().max_bytes, 3000);
    }

    #[test]
    fn clear_empties_and_counts_drops() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        q.enqueue(pkt(100));
        q.enqueue(pkt(100));
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.stats().dropped, 2);
    }
}
