//! Output queues with drop-tail and DCTCP-style ECN marking.
//!
//! Every transmitting port owns one [`EcnQueue`]. Enqueue performs the
//! switch's AQM decision: if the instantaneous occupancy (in bytes) exceeds
//! the marking threshold `K`, an ECN-capable packet gets its CE bit set —
//! this is the single-threshold marking DCTCP relies on (paper §4.2:
//! "a congested switch marks every packet exceeding a desired queue size
//! threshold", K = 90 KB for 10 Gbps links). Non-ECN packets (or any packet
//! once the byte capacity is exhausted) are dropped at the tail.
//!
//! The queue stores `(PacketId, size)` entries, not packets — packets live
//! in the simulator's [`crate::slab::PacketSlab`]. The marking decision is
//! returned in [`EnqueueResult::Queued`]; the caller (which owns the slab)
//! applies the CE bit. This keeps the hot enqueue/dequeue path free of
//! packet copies: one entry is 8 bytes.

use std::collections::VecDeque;

use crate::slab::PacketId;

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Packet accepted. `marked` reports the AQM decision: the caller must
    /// set the packet's CE bit when true.
    Queued {
        /// The packet crossed the marking threshold and was ECN-capable.
        marked: bool,
    },
    /// Packet dropped: the queue was at capacity.
    Dropped,
}

/// One queued packet: its slab id and wire size (cached here so dequeue and
/// byte accounting never touch the slab).
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: PacketId,
    size: u32,
}

/// A byte-bounded FIFO of packet ids with single-threshold ECN marking.
#[derive(Debug)]
pub struct EcnQueue {
    fifo: VecDeque<Entry>,
    bytes: u64,
    /// Maximum occupancy in bytes; arrivals beyond this are dropped.
    capacity: u64,
    /// ECN marking threshold `K` in bytes; `u64::MAX` disables marking.
    mark_threshold: u64,
    /// Lifetime statistics.
    stats: QueueStats,
}

/// Counters maintained by each queue over its lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets CE-marked on enqueue.
    pub marked: u64,
    /// Highest byte occupancy ever observed.
    pub max_bytes: u64,
}

impl EcnQueue {
    /// Create a queue with the given byte capacity and marking threshold.
    pub fn new(capacity: u64, mark_threshold: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        EcnQueue {
            fifo: VecDeque::new(),
            bytes: 0,
            capacity,
            mark_threshold,
            stats: QueueStats::default(),
        }
    }

    /// Create a queue that never marks (plain drop-tail).
    pub fn drop_tail(capacity: u64) -> Self {
        Self::new(capacity, u64::MAX)
    }

    /// Attempt to enqueue the packet behind `id` (of wire size `size`),
    /// applying drop-tail and ECN marking. `ecn_capable` is the packet's
    /// ECT codepoint; non-capable packets are never marked.
    ///
    /// The marking decision uses the occupancy *before* the packet is added
    /// (instantaneous queue length seen by the arriving packet), matching
    /// DCTCP's specification.
    #[inline]
    pub fn enqueue(&mut self, id: PacketId, size: u32, ecn_capable: bool) -> EnqueueResult {
        if self.bytes + size as u64 > self.capacity {
            self.stats.dropped += 1;
            return EnqueueResult::Dropped;
        }
        let marked = self.bytes >= self.mark_threshold && ecn_capable;
        if marked {
            self.stats.marked += 1;
        }
        self.bytes += size as u64;
        self.stats.enqueued += 1;
        if self.bytes > self.stats.max_bytes {
            self.stats.max_bytes = self.bytes;
        }
        self.fifo.push_back(Entry { id, size });
        EnqueueResult::Queued { marked }
    }

    /// Remove and return the head-of-line packet id, if any.
    #[inline]
    pub fn dequeue(&mut self) -> Option<PacketId> {
        let e = self.fifo.pop_front()?;
        self.bytes -= e.size as u64;
        Some(e.id)
    }

    /// Current occupancy in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current occupancy in packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True if no packet is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Byte capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Marking threshold `K` in bytes.
    #[inline]
    pub fn mark_threshold(&self) -> u64 {
        self.mark_threshold
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drop every queued packet (used when a link fails), returning the
    /// discarded ids so the caller can free their slab slots.
    pub fn clear(&mut self) -> Vec<PacketId> {
        let ids: Vec<PacketId> = self.fifo.drain(..).map(|e| e.id).collect();
        self.stats.dropped += ids.len() as u64;
        self.bytes = 0;
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MTU;

    const QUEUED: EnqueueResult = EnqueueResult::Queued { marked: false };
    const MARKED: EnqueueResult = EnqueueResult::Queued { marked: true };

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        q.enqueue(1, 140, true);
        q.enqueue(2, 240, true);
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 140 + 240);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.bytes(), 240);
        assert_eq!(q.dequeue(), Some(2));
        assert!(q.dequeue().is_none());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn drops_when_full() {
        let mut q = EcnQueue::drop_tail(3000);
        assert_eq!(q.enqueue(0, MTU, true), QUEUED);
        assert_eq!(q.enqueue(1, MTU, true), QUEUED);
        // Third full-size packet exceeds 3000 bytes.
        assert_eq!(q.enqueue(2, MTU, true), EnqueueResult::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn marks_above_threshold_only() {
        // Threshold = one full packet: the second packet sees occupancy 1500
        // >= 1500 and is marked; the first sees 0 and is not.
        let mut q = EcnQueue::new(1_000_000, 1500);
        assert_eq!(q.enqueue(0, MTU, true), QUEUED);
        assert_eq!(q.enqueue(1, MTU, true), MARKED);
        assert_eq!(q.stats().marked, 1);
    }

    #[test]
    fn non_ect_packets_are_not_marked() {
        let mut q = EcnQueue::new(1_000_000, 0); // mark everything eligible
        assert_eq!(q.enqueue(0, 140, false), QUEUED);
        assert_eq!(q.stats().marked, 0);
    }

    #[test]
    fn max_bytes_high_watermark() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        q.enqueue(0, MTU, true);
        q.enqueue(1, MTU, true);
        q.dequeue();
        q.enqueue(2, 140, true);
        assert_eq!(q.stats().max_bytes, 2 * MTU as u64);
    }

    #[test]
    fn clear_empties_counts_drops_and_returns_ids() {
        let mut q = EcnQueue::drop_tail(1_000_000);
        q.enqueue(7, 140, true);
        q.enqueue(9, 140, true);
        assert_eq!(q.clear(), vec![7, 9]);
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.stats().dropped, 2);
    }
}
