//! Run-wide measurement collection.
//!
//! A single [`Recorder`] lives inside the simulator. Transports and the
//! simulator core report into it: flow completions (the raw material for
//! every latency figure in the paper), global event counters (out-of-order
//! arrivals, retransmissions, timeouts, reroutes, drops, PFC pauses, ...),
//! and — when enabled via [`TelemetryConfig`] — named time-series probes.
//!
//! The API is split along the write/read boundary:
//!
//! * [`Sink`] is the narrow *write-side* interface the simulator core and
//!   transports report through; [`Recorder`] is its standard
//!   implementation (tests can substitute their own).
//! * [`RunResults`] is the immutable *read-side* view handed to the
//!   `stats` and `experiments` crates once a run finishes
//!   ([`Recorder::finish`]).

use crate::hashing::DetHashMap;
use crate::packet::{FlowId, HostId, NodeId, PortId, Proto};
use crate::telemetry::{ProbeKind, Series, SeriesKey, Telemetry, TelemetryConfig};
use crate::time::SimTime;
use crate::trace::{FlowTimeline, Trace, TraceConfig, TraceEvent};

/// One completed (or still-running, see [`Recorder::flow_started`]) flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Globally unique flow id.
    pub flow: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes transferred.
    pub bytes: u64,
    /// Time the flow arrived at the sender (application hand-off).
    pub start: SimTime,
    /// Time the receiver held the complete data, [`SimTime::MAX`] while
    /// still in progress.
    pub end: SimTime,
    /// Partition-aggregate job this flow belongs to, if any.
    pub job: Option<u32>,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowRecord {
    /// Flow completion time; `None` if the flow never finished.
    pub fn fct(&self) -> Option<SimTime> {
        (self.end != SimTime::MAX).then(|| self.end - self.start)
    }
}

/// Global event counters. Extend freely; the array in [`Recorder`] sizes
/// itself from [`Counter::COUNT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Data packets delivered to receivers.
    DataPktsRcvd,
    /// Data packets that arrived out of order (seq below the highest seq
    /// already seen for the flow).
    OooPktsRcvd,
    /// ACK packets delivered to senders.
    AcksRcvd,
    /// ACKs carrying the ECN echo.
    MarkedAcksRcvd,
    /// Segments retransmitted (fast retransmit or RTO).
    Retransmits,
    /// Retransmission timeouts fired.
    Timeouts,
    /// FlowBender reroutes triggered by congestion (F > T for N RTTs).
    Reroutes,
    /// FlowBender reroutes triggered by an RTO.
    TimeoutReroutes,
    /// Packets dropped at a full queue.
    QueueDrops,
    /// Packets black-holed on a failed link.
    LinkDrops,
    /// PFC pause frames sent.
    PfcPauses,
    /// PFC resume frames sent.
    PfcResumes,
    /// Duplicate ACKs observed by senders.
    DupAcks,
    /// Fast retransmits entered.
    FastRetransmits,
    /// DSACKs received by senders (spurious retransmissions detected).
    DsacksRcvd,
    /// Switch-generated congestion notifications emitted.
    CnSent,
    /// Congestion notifications delivered back to their senders.
    CnDelivered,
    /// Congestion notifications suppressed by the per-(port, flow) rate
    /// limiter.
    CnSuppressed,
    /// INT per-hop telemetry records stamped into forwarded packets.
    IntStamps,
    /// Summed lead time (picoseconds) by which a CN beat the end-to-end
    /// ECN echo for the same congestion window. Divide by
    /// [`Counter::FeedbackLeadSamples`] for the mean.
    FeedbackLeadPs,
    /// Number of CN-vs-ECN-echo lead samples in
    /// [`Counter::FeedbackLeadPs`].
    FeedbackLeadSamples,
    /// Retransmissions proven spurious by a DSACK: the "lost" segment's
    /// original copy arrived after all (the reordering tax of spraying).
    SpuriousRetransmits,
    /// Congestion-state undos driven by DSACKs: the sender restored the
    /// cwnd/ssthresh it cut on entering a recovery that turned out to be
    /// spurious.
    DsackUndos,
    /// Payload bytes delivered more than once to receivers (segments the
    /// reassembly buffer already held in full).
    DupBytes,
    /// High-water mark, in bytes, of any single receiver's out-of-order
    /// reassembly buffer. Merges by maximum, not sum (see
    /// [`RunResults::merge`]).
    OooBytesMax,
    /// Flowcut boundaries at which a switch actually re-routed a pinned
    /// flow to a different egress (switch-side flowcut switching).
    FlowcutReroutes,
    /// Packets forwarded on an already-pinned flowcut egress (the sticky
    /// fast path of switch-side flowcut switching).
    FlowcutPinned,
}

impl Counter {
    /// Number of counter variants.
    pub const COUNT: usize = 27;

    /// Human-readable name for report rendering.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DataPktsRcvd => "data_pkts_rcvd",
            Counter::OooPktsRcvd => "ooo_pkts_rcvd",
            Counter::AcksRcvd => "acks_rcvd",
            Counter::MarkedAcksRcvd => "marked_acks_rcvd",
            Counter::Retransmits => "retransmits",
            Counter::Timeouts => "timeouts",
            Counter::Reroutes => "reroutes",
            Counter::TimeoutReroutes => "timeout_reroutes",
            Counter::QueueDrops => "queue_drops",
            Counter::LinkDrops => "link_drops",
            Counter::PfcPauses => "pfc_pauses",
            Counter::PfcResumes => "pfc_resumes",
            Counter::DupAcks => "dup_acks",
            Counter::FastRetransmits => "fast_retransmits",
            Counter::DsacksRcvd => "dsacks_rcvd",
            Counter::CnSent => "cn_sent",
            Counter::CnDelivered => "cn_delivered",
            Counter::CnSuppressed => "cn_suppressed",
            Counter::IntStamps => "int_stamps",
            Counter::FeedbackLeadPs => "feedback_lead_ps",
            Counter::FeedbackLeadSamples => "feedback_lead_samples",
            Counter::SpuriousRetransmits => "spurious_retransmits",
            Counter::DsackUndos => "dsack_undos",
            Counter::DupBytes => "dup_bytes",
            Counter::OooBytesMax => "ooo_bytes_max",
            Counter::FlowcutReroutes => "flowcut_reroutes",
            Counter::FlowcutPinned => "flowcut_pinned",
        }
    }

    /// Counters that only the switch-assisted feedback layer (INT / CN)
    /// can move. Report layers omit these when zero so runs with feedback
    /// disabled keep their historical JSON byte layout.
    pub fn feedback_only(self) -> bool {
        matches!(
            self,
            Counter::CnSent
                | Counter::CnDelivered
                | Counter::CnSuppressed
                | Counter::IntStamps
                | Counter::FeedbackLeadPs
                | Counter::FeedbackLeadSamples
        )
    }

    /// Counters added by the reordering metric suite (PR 10). Like
    /// [`Counter::feedback_only`], report layers omit these when zero so
    /// historical runs — which never move them — keep their exact JSON
    /// byte layout.
    pub fn reordering_metric(self) -> bool {
        matches!(
            self,
            Counter::SpuriousRetransmits
                | Counter::DsackUndos
                | Counter::DupBytes
                | Counter::OooBytesMax
                | Counter::FlowcutReroutes
                | Counter::FlowcutPinned
        )
    }

    /// Counters that record a high-water mark rather than an event count:
    /// shard merges take the maximum instead of the sum.
    pub fn merges_by_max(self) -> bool {
        matches!(self, Counter::OooBytesMax)
    }

    /// All variants, for iteration in reports.
    pub fn all() -> [Counter; Counter::COUNT] {
        [
            Counter::DataPktsRcvd,
            Counter::OooPktsRcvd,
            Counter::AcksRcvd,
            Counter::MarkedAcksRcvd,
            Counter::Retransmits,
            Counter::Timeouts,
            Counter::Reroutes,
            Counter::TimeoutReroutes,
            Counter::QueueDrops,
            Counter::LinkDrops,
            Counter::PfcPauses,
            Counter::PfcResumes,
            Counter::DupAcks,
            Counter::FastRetransmits,
            Counter::DsacksRcvd,
            Counter::CnSent,
            Counter::CnDelivered,
            Counter::CnSuppressed,
            Counter::IntStamps,
            Counter::FeedbackLeadPs,
            Counter::FeedbackLeadSamples,
            Counter::SpuriousRetransmits,
            Counter::DsackUndos,
            Counter::DupBytes,
            Counter::OooBytesMax,
            Counter::FlowcutReroutes,
            Counter::FlowcutPinned,
        ]
    }
}

/// Why a packet left the simulation without being delivered.
///
/// Every drop site in the simulator reports through
/// [`Sink::drop_packet`] with one of these reasons; the per-port tallies
/// feed the end-of-run conservation audit
/// (`injected == delivered + dropped(reason) + in-flight`). The first two
/// reasons mirror the legacy [`Counter::QueueDrops`] / [`Counter::LinkDrops`]
/// counters (which keep incrementing for backwards compatibility); the last
/// two are produced only by the fault-injection layer (`netsim::faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum DropReason {
    /// Drop-tail: the egress queue was at capacity.
    QueueFull,
    /// Black-holed on an administratively-down link.
    LinkDown,
    /// Lost to a gray failure (per-port probabilistic loss).
    GrayLoss,
    /// Corrupted on the wire (bit-error-rate loss) and discarded.
    Corruption,
}

impl DropReason {
    /// Number of drop reasons.
    pub const COUNT: usize = 4;

    /// Stable machine-readable name (used as a JSON key).
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::LinkDown => "link_down",
            DropReason::GrayLoss => "gray_loss",
            DropReason::Corruption => "corruption",
        }
    }

    /// All variants, in `repr` order.
    pub fn all() -> [DropReason; DropReason::COUNT] {
        [
            DropReason::QueueFull,
            DropReason::LinkDown,
            DropReason::GrayLoss,
            DropReason::Corruption,
        ]
    }
}

/// Configuration of the reconvergence / goodput SLO probe
/// ([`crate::Simulator::set_slo`]).
///
/// When set, the recorder watches every data delivery: per-flow
/// reconvergence latency (first delivery at or after `fail_at`, for flows
/// that started no later than `fail_at`) and a goodput histogram binned by
/// `bin`, both reported through [`SloResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// The failure instant reconvergence latencies are measured against.
    pub fail_at: SimTime,
    /// Goodput histogram bin width (must be positive).
    pub bin: SimTime,
}

/// The write-side state behind [`SloConfig`].
#[derive(Debug)]
struct SloProbe {
    cfg: SloConfig,
    /// First at-or-post-failure delivery instant per affected flow.
    first_after: DetHashMap<FlowId, SimTime>,
    /// Delivered payload bytes per `cfg.bin`-wide time bin, from t = 0.
    goodput_bins: Vec<u64>,
}

/// Reconvergence and goodput measurements of one run, produced when the
/// SLO probe was configured ([`crate::Simulator::set_slo`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloResults {
    /// The configured failure instant.
    pub fail_at: SimTime,
    /// The configured goodput bin width.
    pub bin: SimTime,
    /// `(flow, first delivery at or after fail_at)` for every flow that
    /// started no later than `fail_at` and delivered again, sorted by
    /// flow id. Reconvergence latency is the difference to `fail_at`.
    pub first_after: Vec<(FlowId, SimTime)>,
    /// Delivered payload bytes per `bin`-wide time bin, from t = 0.
    pub goodput_bins: Vec<u64>,
}

impl SloResults {
    /// Per-flow reconvergence latencies (first post-failure delivery minus
    /// the failure instant), in flow-id order.
    pub fn reconvergence_latencies(&self) -> Vec<SimTime> {
        self.first_after
            .iter()
            .map(|&(_, at)| at - self.fail_at)
            .collect()
    }

    /// Number of flows with a recorded post-failure delivery.
    pub fn samples(&self) -> usize {
        self.first_after.len()
    }

    /// Fold another shard's SLO view into this one. A flow delivers at
    /// exactly one shard (its destination's owner), so the per-flow maps
    /// are disjoint; the earliest instant is kept anyway for safety.
    /// Goodput bins sum elementwise, padding to the longer histogram.
    pub fn merge(&mut self, other: SloResults) {
        assert_eq!(
            (self.fail_at, self.bin),
            (other.fail_at, other.bin),
            "shards must share one SLO config"
        );
        for (flow, at) in other.first_after {
            match self.first_after.binary_search_by_key(&flow, |&(f, _)| f) {
                Ok(i) => {
                    if at < self.first_after[i].1 {
                        self.first_after[i].1 = at;
                    }
                }
                Err(i) => self.first_after.insert(i, (flow, at)),
            }
        }
        if other.goodput_bins.len() > self.goodput_bins.len() {
            self.goodput_bins.resize(other.goodput_bins.len(), 0);
        }
        for (slot, n) in self.goodput_bins.iter_mut().zip(other.goodput_bins) {
            *slot += n;
        }
    }
}

/// Per-port, per-reason drop tallies for one run.
///
/// Rows are kept in first-drop order internally (deterministic, since the
/// event order is); [`DropAudit::per_port`] returns them sorted by
/// `(node, port)` for stable rendering.
#[derive(Debug, Default)]
pub struct DropAudit {
    index: DetHashMap<(NodeId, PortId), usize>,
    rows: Vec<((NodeId, PortId), [u64; DropReason::COUNT])>,
    totals: [u64; DropReason::COUNT],
}

impl DropAudit {
    /// Record one dropped packet at `(node, port)`.
    pub fn record(&mut self, reason: DropReason, node: NodeId, port: PortId) {
        self.totals[reason as usize] += 1;
        let rows = &mut self.rows;
        let idx = *self.index.entry((node, port)).or_insert_with(|| {
            rows.push(((node, port), [0; DropReason::COUNT]));
            rows.len() - 1
        });
        self.rows[idx].1[reason as usize] += 1;
    }

    /// Total packets dropped, all reasons.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Total packets dropped for `reason`.
    pub fn by_reason(&self, reason: DropReason) -> u64 {
        self.totals[reason as usize]
    }

    /// Per-reason totals, indexed by `DropReason as usize`.
    pub fn totals(&self) -> [u64; DropReason::COUNT] {
        self.totals
    }

    /// True if no packet was dropped.
    pub fn is_empty(&self) -> bool {
        self.totals.iter().all(|&n| n == 0)
    }

    /// Per-port tallies, sorted by `(node, port)`.
    pub fn per_port(&self) -> Vec<((NodeId, PortId), [u64; DropReason::COUNT])> {
        let mut rows = self.rows.clone();
        rows.sort_unstable_by_key(|&(k, _)| k);
        rows
    }

    /// Fold another audit into this one (sharded-run aggregation). Ports
    /// first seen in `other` append in `other`'s first-drop order, so
    /// merging shards in a fixed order keeps the row order deterministic.
    pub fn merge(&mut self, other: &DropAudit) {
        for &((node, port), counts) in &other.rows {
            let rows = &mut self.rows;
            let idx = *self.index.entry((node, port)).or_insert_with(|| {
                rows.push(((node, port), [0; DropReason::COUNT]));
                rows.len() - 1
            });
            for (slot, &n) in self.rows[idx].1.iter_mut().zip(counts.iter()) {
                *slot += n;
            }
        }
        for (slot, &n) in self.totals.iter_mut().zip(other.totals.iter()) {
            *slot += n;
        }
    }
}

/// The write-side interface to run-wide measurement collection.
///
/// The simulator core and transports report through this trait; they never
/// read results back. [`Recorder`] is the standard implementation. The
/// probe methods must be cheap no-ops when the corresponding telemetry
/// family is disabled — call sites on hot paths rely on that.
pub trait Sink {
    /// Register a flow at its start.
    fn flow_started(&mut self, rec: FlowRecord);
    /// Mark a flow complete at `end` (receiver has all bytes).
    fn flow_completed(&mut self, flow: FlowId, end: SimTime);
    /// Increment counter `c` by `n`.
    fn add(&mut self, c: Counter, n: u64);
    /// Increment counter `c` by one.
    fn bump(&mut self, c: Counter) {
        self.add(c, 1);
    }
    /// Record one packet dropped at `(node, port)` for `reason`. Every drop
    /// site must report here (the conservation audit counts on it); the
    /// default implementation also feeds the legacy aggregate counters.
    fn drop_packet(&mut self, now: SimTime, reason: DropReason, node: NodeId, port: PortId) {
        let _ = (now, node, port);
        match reason {
            DropReason::QueueFull => self.bump(Counter::QueueDrops),
            DropReason::LinkDown => self.bump(Counter::LinkDrops),
            DropReason::GrayLoss | DropReason::Corruption => {}
        }
    }
    /// Is the probe family of `kind` being collected? Lets call sites skip
    /// value computation entirely when telemetry is off.
    fn wants(&self, kind: ProbeKind) -> bool;
    /// Record `value` for the time series `key` at `now`.
    fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64);
}

/// Collects flow records, counters, and telemetry for one simulation run.
#[derive(Debug)]
pub struct Recorder {
    flows: Vec<FlowRecord>,
    counters: [u64; Counter::COUNT],
    drops: DropAudit,
    telemetry: Telemetry,
    trace: Trace,
    slo: Option<SloProbe>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            flows: Vec::new(),
            counters: [0; Counter::COUNT],
            drops: DropAudit::default(),
            telemetry: Telemetry::new(),
            trace: Trace::new(),
            slo: None,
        }
    }
}

impl Recorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a flow at its start. Returns nothing; completion is matched
    /// by flow id via [`Recorder::flow_completed`]. Flow ids must be dense
    /// and unique (the workload layer assigns them 0..n).
    pub fn flow_started(&mut self, rec: FlowRecord) {
        debug_assert_eq!(
            rec.flow as usize,
            self.flows.len(),
            "flow ids must be dense"
        );
        self.flows.push(rec);
    }

    /// Mark a flow complete at `end` (receiver has all bytes).
    pub fn flow_completed(&mut self, flow: FlowId, end: SimTime) {
        let rec = &mut self.flows[flow as usize];
        debug_assert_eq!(rec.end, SimTime::MAX, "flow {flow} completed twice");
        rec.end = end;
    }

    /// Increment `c` by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increment `c` by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Raise `c` to `v` if `v` exceeds its current value (high-water-mark
    /// counters, e.g. [`Counter::OooBytesMax`]).
    #[inline]
    pub fn record_max(&mut self, c: Counter, v: u64) {
        let slot = &mut self.counters[c as usize];
        if v > *slot {
            *slot = v;
        }
    }

    /// Read counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Record one dropped packet at `(node, port)` for `reason`, updating
    /// both the per-port audit and the legacy aggregate counters. Emits a
    /// `drops.*` trace point when that telemetry family is enabled.
    pub fn drop_packet(&mut self, now: SimTime, reason: DropReason, node: NodeId, port: PortId) {
        self.drops.record(reason, node, port);
        match reason {
            DropReason::QueueFull => self.bump(Counter::QueueDrops),
            DropReason::LinkDown => self.bump(Counter::LinkDrops),
            DropReason::GrayLoss | DropReason::Corruption => {}
        }
        if self.wants(ProbeKind::Drops) {
            self.probe(now, SeriesKey::Drops { node, port }, reason as usize as f64);
        }
    }

    /// Per-port, per-reason drop tallies so far.
    pub fn drops(&self) -> &DropAudit {
        &self.drops
    }

    /// All flow records (completed and not).
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Consume the recorder, returning the flow records.
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.flows.iter().filter(|f| f.end != SimTime::MAX).count()
    }

    /// Configure telemetry collection. Call before the run starts.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry.set_config(cfg);
    }

    /// The telemetry store (read access to collected series mid-run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Is the probe family of `kind` being collected?
    #[inline]
    pub fn wants(&self, kind: ProbeKind) -> bool {
        self.telemetry.wants(kind)
    }

    /// Record `value` for the time series `key` at `now`. A single branch
    /// when the key's family is disabled.
    #[inline]
    pub fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        self.telemetry.record(now, key, value);
    }

    /// Configure the per-flow flight recorder. Call before the run
    /// starts; with the default (disabled) config every trace hook is a
    /// single branch.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace.set_config(cfg);
    }

    /// Arm the reconvergence / goodput SLO probe. Call before the run
    /// starts; without it every delivery hook is a single branch.
    pub fn set_slo(&mut self, cfg: SloConfig) {
        assert!(cfg.bin.as_ps() > 0, "SLO goodput bin must be positive");
        self.slo = Some(SloProbe {
            cfg,
            first_after: DetHashMap::default(),
            goodput_bins: Vec::new(),
        });
    }

    /// Report one packet delivered to its destination host. A single
    /// branch when the SLO probe is disarmed. ACKs (`payload == 0`) carry
    /// no goodput and never count as reconvergence evidence — the paper's
    /// recovery story is about *data* flowing again on the new path.
    #[inline]
    pub fn slo_delivery(&mut self, now: SimTime, flow: FlowId, payload: u32) {
        let Some(slo) = &mut self.slo else { return };
        if payload == 0 {
            return;
        }
        let bin = (now.as_ps() / slo.cfg.bin.as_ps()) as usize;
        if bin >= slo.goodput_bins.len() {
            slo.goodput_bins.resize(bin + 1, 0);
        }
        slo.goodput_bins[bin] += payload as u64;
        if now >= slo.cfg.fail_at
            && self
                .flows
                .get(flow as usize)
                .is_some_and(|f| f.start <= slo.cfg.fail_at)
            && !slo.first_after.contains_key(&flow)
        {
            slo.first_after.insert(flow, now);
            if self.trace.wants(flow) {
                self.trace.record(now, flow, TraceEvent::Reconverge);
            }
        }
    }

    /// Is any flow being traced? One load; hot paths branch on this
    /// before computing anything trace-only (e.g. queue depth).
    #[inline]
    pub fn trace_active(&self) -> bool {
        self.trace.active()
    }

    /// Is `flow` being traced? One branch when tracing is disabled.
    #[inline]
    pub fn trace_wants(&self, flow: FlowId) -> bool {
        self.trace.wants(flow)
    }

    /// Record flight-recorder event `ev` for `flow` at `now`. A no-op
    /// (one branch) when the flow is not selected.
    #[inline]
    pub fn trace_event(&mut self, now: SimTime, flow: FlowId, ev: TraceEvent) {
        self.trace.record(now, flow, ev);
    }

    /// Finish the run: consume the recorder and hand the read-side view to
    /// the analysis layers.
    pub fn finish(self) -> RunResults {
        RunResults {
            flows: self.flows,
            counters: self.counters,
            drops: self.drops,
            series: self.telemetry.into_series(),
            timelines: self.trace.into_timelines(),
            slo: self.slo.map(|p| {
                let mut first_after: Vec<(FlowId, SimTime)> = p.first_after.into_iter().collect();
                first_after.sort_unstable_by_key(|&(f, _)| f);
                SloResults {
                    fail_at: p.cfg.fail_at,
                    bin: p.cfg.bin,
                    first_after,
                    goodput_bins: p.goodput_bins,
                }
            }),
        }
    }
}

impl Sink for Recorder {
    fn flow_started(&mut self, rec: FlowRecord) {
        Recorder::flow_started(self, rec);
    }
    fn flow_completed(&mut self, flow: FlowId, end: SimTime) {
        Recorder::flow_completed(self, flow, end);
    }
    fn add(&mut self, c: Counter, n: u64) {
        Recorder::add(self, c, n);
    }
    fn drop_packet(&mut self, now: SimTime, reason: DropReason, node: NodeId, port: PortId) {
        Recorder::drop_packet(self, now, reason, node, port);
    }
    fn wants(&self, kind: ProbeKind) -> bool {
        Recorder::wants(self, kind)
    }
    fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        Recorder::probe(self, now, key, value);
    }
}

/// The immutable read-side view of one finished run: every flow record,
/// every counter, and every collected time series.
///
/// Produced by [`Recorder::finish`]; consumed by the `stats` and
/// `experiments` crates.
#[derive(Debug, Default)]
pub struct RunResults {
    /// All flow records (completed and not).
    pub flows: Vec<FlowRecord>,
    counters: [u64; Counter::COUNT],
    drops: DropAudit,
    series: Vec<Series>,
    timelines: Vec<FlowTimeline>,
    slo: Option<SloResults>,
}

impl RunResults {
    /// All flow records (completed and not), as a slice.
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Consume the view, returning the flow records.
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }

    /// Fold another shard's results into this one. Every shard of a
    /// sharded run registers the *same* dense flow list (only the owner of
    /// a flow's endpoints completes it), so flow records merge by taking
    /// the earliest completion; counters and drop audits sum; telemetry
    /// series concatenate (each series key lives in exactly one shard);
    /// timelines of a flow traced across shards merge-sort by timestamp.
    /// Merging shards in a fixed order (0, 1, 2, ...) makes the combined
    /// view deterministic regardless of worker scheduling.
    pub fn merge(&mut self, other: RunResults) {
        assert_eq!(
            self.flows.len(),
            other.flows.len(),
            "shards must register identical flow lists"
        );
        for (a, b) in self.flows.iter_mut().zip(other.flows) {
            debug_assert_eq!(
                (a.flow, a.src, a.dst, a.start),
                (b.flow, b.src, b.dst, b.start)
            );
            if b.end < a.end {
                a.end = b.end;
            }
        }
        for (c, (a, b)) in Counter::all()
            .iter()
            .zip(self.counters.iter_mut().zip(other.counters))
        {
            if c.merges_by_max() {
                *a = (*a).max(b);
            } else {
                *a += b;
            }
        }
        self.drops.merge(&other.drops);
        self.series.extend(other.series);
        match (&mut self.slo, other.slo) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, theirs) => *mine = theirs,
            (_, None) => {}
        }
        for tl in other.timelines {
            match self.timelines.iter_mut().find(|t| t.flow == tl.flow) {
                None => self.timelines.push(tl),
                Some(mine) => {
                    mine.truncated += tl.truncated;
                    mine.events.extend(tl.events);
                    mine.events.sort_by_key(|&(t, _)| t);
                }
            }
        }
    }

    /// Read counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.flows.iter().filter(|f| f.end != SimTime::MAX).count()
    }

    /// Per-port, per-reason drop tallies for the run.
    pub fn drops(&self) -> &DropAudit {
        &self.drops
    }

    /// All collected time series, in order of first recording.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Look up a series by its stable dotted name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Flight-recorder timelines, one per traced flow, sorted by flow
    /// id. Empty unless tracing was enabled for the run.
    pub fn timelines(&self) -> &[FlowTimeline] {
        &self.timelines
    }

    /// Reconvergence / goodput measurements; `None` unless the SLO probe
    /// was armed ([`crate::Simulator::set_slo`]).
    pub fn slo(&self) -> Option<&SloResults> {
        self.slo.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: FlowId) -> FlowRecord {
        FlowRecord {
            flow,
            src: 0,
            dst: 1,
            bytes: 1000,
            start: SimTime::from_us(10),
            end: SimTime::MAX,
            job: None,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn flow_lifecycle() {
        let mut r = Recorder::new();
        r.flow_started(rec(0));
        r.flow_started(rec(1));
        assert_eq!(r.completed_count(), 0);
        assert_eq!(r.flows()[0].fct(), None);
        r.flow_completed(0, SimTime::from_us(110));
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.flows()[0].fct(), Some(SimTime::from_us(100)));
        assert_eq!(r.flows()[1].fct(), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new();
        r.bump(Counter::OooPktsRcvd);
        r.add(Counter::OooPktsRcvd, 4);
        r.bump(Counter::Timeouts);
        assert_eq!(r.get(Counter::OooPktsRcvd), 5);
        assert_eq!(r.get(Counter::Timeouts), 1);
        assert_eq!(r.get(Counter::Reroutes), 0);
    }

    #[test]
    fn finish_hands_everything_to_the_read_side() {
        let mut r = Recorder::new();
        r.set_telemetry(TelemetryConfig::all(SimTime::from_us(1)));
        r.flow_started(rec(0));
        r.flow_completed(0, SimTime::from_us(20));
        r.bump(Counter::Reroutes);
        r.probe(SimTime::from_us(5), SeriesKey::Vfield { flow: 0 }, 3.0);
        let out = r.finish();
        assert_eq!(out.flows().len(), 1);
        assert_eq!(out.completed_count(), 1);
        assert_eq!(out.get(Counter::Reroutes), 1);
        assert_eq!(out.series().len(), 1);
        let s = out.series_named("vfield.f0").unwrap();
        assert_eq!(s.points(), &[(SimTime::from_us(5), 3.0)]);
        assert!(out.series_named("cwnd.f0").is_none());
    }

    #[test]
    fn sink_trait_dispatches_to_recorder() {
        fn use_sink(s: &mut dyn Sink) {
            s.bump(Counter::Timeouts);
            s.probe(SimTime::ZERO, SeriesKey::Cwnd { flow: 0 }, 1.0);
            assert!(!s.wants(ProbeKind::Cwnd), "telemetry defaults to off");
        }
        let mut r = Recorder::new();
        use_sink(&mut r);
        assert_eq!(r.get(Counter::Timeouts), 1);
        assert!(r.telemetry().series().is_empty());
    }

    #[test]
    fn drop_audit_tallies_per_port_and_reason() {
        let mut r = Recorder::new();
        r.drop_packet(SimTime::ZERO, DropReason::QueueFull, 5, 1);
        r.drop_packet(SimTime::ZERO, DropReason::QueueFull, 5, 1);
        r.drop_packet(SimTime::ZERO, DropReason::GrayLoss, 5, 1);
        r.drop_packet(SimTime::ZERO, DropReason::LinkDown, 2, 0);
        r.drop_packet(SimTime::ZERO, DropReason::Corruption, 9, 3);
        let audit = r.drops();
        assert_eq!(audit.total(), 5);
        assert_eq!(audit.by_reason(DropReason::QueueFull), 2);
        assert_eq!(audit.by_reason(DropReason::GrayLoss), 1);
        assert_eq!(audit.totals().iter().sum::<u64>(), audit.total());
        // Legacy counters track only their historical reasons.
        assert_eq!(r.get(Counter::QueueDrops), 2);
        assert_eq!(r.get(Counter::LinkDrops), 1);
        // Per-port rows come back sorted by (node, port).
        let rows = audit.per_port();
        assert_eq!(
            rows.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![(2, 0), (5, 1), (9, 3)]
        );
        let port5: u64 = rows[1].1.iter().sum();
        assert_eq!(port5, 3);
    }

    #[test]
    fn finish_carries_trace_timelines() {
        let mut r = Recorder::new();
        r.flow_started(rec(0));
        r.flow_started(rec(1));
        assert!(!r.trace_active());
        r.set_trace(TraceConfig::flows(vec![1]));
        assert!(r.trace_active());
        assert!(r.trace_wants(1) && !r.trace_wants(0));
        r.trace_event(
            SimTime::from_us(2),
            1,
            TraceEvent::CwndChange { cwnd_bytes: 1460 },
        );
        r.trace_event(SimTime::from_us(3), 0, TraceEvent::FastRetransmitEnter); // unselected
        let out = r.finish();
        assert_eq!(out.timelines().len(), 1);
        assert_eq!(out.timelines()[0].flow, 1);
        assert_eq!(out.timelines()[0].count_kind("cwnd"), 1);
    }

    #[test]
    fn slo_probe_records_reconvergence_and_goodput() {
        let mut r = Recorder::new();
        r.flow_started(rec(0)); // starts at 10us
        r.flow_started(rec(1));
        r.set_slo(SloConfig {
            fail_at: SimTime::from_us(100),
            bin: SimTime::from_us(50),
        });
        r.slo_delivery(SimTime::from_us(20), 0, 1000); // pre-failure: goodput only
        r.slo_delivery(SimTime::from_us(120), 0, 1000); // first post-failure
        r.slo_delivery(SimTime::from_us(130), 0, 1000); // later: goodput only
        r.slo_delivery(SimTime::from_us(140), 1, 0); // ACK: ignored entirely
        let out = r.finish();
        let slo = out.slo().unwrap();
        assert_eq!(slo.first_after, vec![(0, SimTime::from_us(120))]);
        assert_eq!(slo.reconvergence_latencies(), vec![SimTime::from_us(20)]);
        assert_eq!(slo.samples(), 1);
        assert_eq!(slo.goodput_bins, vec![1000, 0, 2000]);
    }

    #[test]
    fn slo_probe_ignores_flows_started_after_the_failure() {
        let mut r = Recorder::new();
        let mut late = rec(0);
        late.start = SimTime::from_us(200);
        r.flow_started(late);
        r.set_slo(SloConfig {
            fail_at: SimTime::from_us(100),
            bin: SimTime::from_us(50),
        });
        r.slo_delivery(SimTime::from_us(250), 0, 500);
        let out = r.finish();
        let slo = out.slo().unwrap();
        assert_eq!(slo.samples(), 0, "post-failure flows never reconverge");
        assert_eq!(slo.goodput_bins.last(), Some(&500), "goodput still counts");
    }

    #[test]
    fn slo_merge_unions_flows_and_sums_bins() {
        let mut a = SloResults {
            fail_at: SimTime::from_us(100),
            bin: SimTime::from_us(50),
            first_after: vec![(0, SimTime::from_us(120)), (2, SimTime::from_us(150))],
            goodput_bins: vec![100, 200],
        };
        let b = SloResults {
            fail_at: SimTime::from_us(100),
            bin: SimTime::from_us(50),
            first_after: vec![(1, SimTime::from_us(110)), (2, SimTime::from_us(140))],
            goodput_bins: vec![10, 20, 30],
        };
        a.merge(b);
        assert_eq!(
            a.first_after,
            vec![
                (0, SimTime::from_us(120)),
                (1, SimTime::from_us(110)),
                (2, SimTime::from_us(140)),
            ]
        );
        assert_eq!(a.goodput_bins, vec![110, 220, 30]);
    }

    #[test]
    fn drop_reason_names_unique_and_complete() {
        let all = DropReason::all();
        assert_eq!(all.len(), DropReason::COUNT);
        let names: std::collections::HashSet<_> = all.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), DropReason::COUNT);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(*r as usize, i, "repr order must match all() order");
        }
    }

    #[test]
    fn counter_all_matches_count_and_names_unique() {
        let all = Counter::all();
        assert_eq!(all.len(), Counter::COUNT);
        let names: std::collections::HashSet<_> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn feedback_only_covers_exactly_the_feedback_counters() {
        let feedback: Vec<_> = Counter::all()
            .iter()
            .copied()
            .filter(|c| c.feedback_only())
            .collect();
        assert_eq!(
            feedback,
            vec![
                Counter::CnSent,
                Counter::CnDelivered,
                Counter::CnSuppressed,
                Counter::IntStamps,
                Counter::FeedbackLeadPs,
                Counter::FeedbackLeadSamples,
            ]
        );
        // The legacy counters (everything a feedback-free run can move)
        // must never be filtered, or existing JSON layouts would change.
        assert!(!Counter::Reroutes.feedback_only());
        assert!(!Counter::MarkedAcksRcvd.feedback_only());
    }

    #[test]
    fn reordering_metric_covers_exactly_the_new_counters() {
        let new: Vec<_> = Counter::all()
            .iter()
            .copied()
            .filter(|c| c.reordering_metric())
            .collect();
        assert_eq!(
            new,
            vec![
                Counter::SpuriousRetransmits,
                Counter::DsackUndos,
                Counter::DupBytes,
                Counter::OooBytesMax,
                Counter::FlowcutReroutes,
                Counter::FlowcutPinned,
            ]
        );
        // The two omission predicates must never overlap or cover legacy
        // counters — each guards its own JSON-layout invariant.
        for c in Counter::all() {
            assert!(!(c.feedback_only() && c.reordering_metric()));
        }
        assert!(!Counter::OooPktsRcvd.reordering_metric());
        assert!(!Counter::DsacksRcvd.reordering_metric());
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let mut r = Recorder::new();
        r.record_max(Counter::OooBytesMax, 1460);
        r.record_max(Counter::OooBytesMax, 400);
        r.record_max(Counter::OooBytesMax, 2920);
        r.record_max(Counter::OooBytesMax, 2000);
        assert_eq!(r.get(Counter::OooBytesMax), 2920);
    }

    #[test]
    fn merge_sums_counts_but_maxes_high_water_marks() {
        assert!(Counter::OooBytesMax.merges_by_max());
        assert!(!Counter::DupBytes.merges_by_max());
        let mut a = Recorder::new();
        a.add(Counter::DupBytes, 100);
        a.record_max(Counter::OooBytesMax, 5000);
        let mut b = Recorder::new();
        b.add(Counter::DupBytes, 50);
        b.record_max(Counter::OooBytesMax, 3000);
        let mut out = a.finish();
        out.merge(b.finish());
        assert_eq!(out.get(Counter::DupBytes), 150, "event counts sum");
        assert_eq!(out.get(Counter::OooBytesMax), 5000, "high-water maxes");
    }
}
