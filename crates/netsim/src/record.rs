//! Run-wide measurement collection.
//!
//! A single [`Recorder`] lives inside the simulator. Transports and the
//! simulator core report into it: flow completions (the raw material for
//! every latency figure in the paper), global event counters (out-of-order
//! arrivals, retransmissions, timeouts, reroutes, drops, PFC pauses, ...),
//! and — when enabled via [`TelemetryConfig`] — named time-series probes.
//!
//! The API is split along the write/read boundary:
//!
//! * [`Sink`] is the narrow *write-side* interface the simulator core and
//!   transports report through; [`Recorder`] is its standard
//!   implementation (tests can substitute their own).
//! * [`RunResults`] is the immutable *read-side* view handed to the
//!   `stats` and `experiments` crates once a run finishes
//!   ([`Recorder::finish`]).

use crate::packet::{FlowId, HostId, Proto};
use crate::telemetry::{ProbeKind, Series, SeriesKey, Telemetry, TelemetryConfig};
use crate::time::SimTime;

/// One completed (or still-running, see [`Recorder::flow_started`]) flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Globally unique flow id.
    pub flow: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes transferred.
    pub bytes: u64,
    /// Time the flow arrived at the sender (application hand-off).
    pub start: SimTime,
    /// Time the receiver held the complete data, [`SimTime::MAX`] while
    /// still in progress.
    pub end: SimTime,
    /// Partition-aggregate job this flow belongs to, if any.
    pub job: Option<u32>,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowRecord {
    /// Flow completion time; `None` if the flow never finished.
    pub fn fct(&self) -> Option<SimTime> {
        (self.end != SimTime::MAX).then(|| self.end - self.start)
    }
}

/// Global event counters. Extend freely; the array in [`Recorder`] sizes
/// itself from [`Counter::COUNT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Data packets delivered to receivers.
    DataPktsRcvd,
    /// Data packets that arrived out of order (seq below the highest seq
    /// already seen for the flow).
    OooPktsRcvd,
    /// ACK packets delivered to senders.
    AcksRcvd,
    /// ACKs carrying the ECN echo.
    MarkedAcksRcvd,
    /// Segments retransmitted (fast retransmit or RTO).
    Retransmits,
    /// Retransmission timeouts fired.
    Timeouts,
    /// FlowBender reroutes triggered by congestion (F > T for N RTTs).
    Reroutes,
    /// FlowBender reroutes triggered by an RTO.
    TimeoutReroutes,
    /// Packets dropped at a full queue.
    QueueDrops,
    /// Packets black-holed on a failed link.
    LinkDrops,
    /// PFC pause frames sent.
    PfcPauses,
    /// PFC resume frames sent.
    PfcResumes,
    /// Duplicate ACKs observed by senders.
    DupAcks,
    /// Fast retransmits entered.
    FastRetransmits,
    /// DSACKs received by senders (spurious retransmissions detected).
    DsacksRcvd,
}

impl Counter {
    /// Number of counter variants.
    pub const COUNT: usize = 15;

    /// Human-readable name for report rendering.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DataPktsRcvd => "data_pkts_rcvd",
            Counter::OooPktsRcvd => "ooo_pkts_rcvd",
            Counter::AcksRcvd => "acks_rcvd",
            Counter::MarkedAcksRcvd => "marked_acks_rcvd",
            Counter::Retransmits => "retransmits",
            Counter::Timeouts => "timeouts",
            Counter::Reroutes => "reroutes",
            Counter::TimeoutReroutes => "timeout_reroutes",
            Counter::QueueDrops => "queue_drops",
            Counter::LinkDrops => "link_drops",
            Counter::PfcPauses => "pfc_pauses",
            Counter::PfcResumes => "pfc_resumes",
            Counter::DupAcks => "dup_acks",
            Counter::FastRetransmits => "fast_retransmits",
            Counter::DsacksRcvd => "dsacks_rcvd",
        }
    }

    /// All variants, for iteration in reports.
    pub fn all() -> [Counter; Counter::COUNT] {
        [
            Counter::DataPktsRcvd,
            Counter::OooPktsRcvd,
            Counter::AcksRcvd,
            Counter::MarkedAcksRcvd,
            Counter::Retransmits,
            Counter::Timeouts,
            Counter::Reroutes,
            Counter::TimeoutReroutes,
            Counter::QueueDrops,
            Counter::LinkDrops,
            Counter::PfcPauses,
            Counter::PfcResumes,
            Counter::DupAcks,
            Counter::FastRetransmits,
            Counter::DsacksRcvd,
        ]
    }
}

/// The write-side interface to run-wide measurement collection.
///
/// The simulator core and transports report through this trait; they never
/// read results back. [`Recorder`] is the standard implementation. The
/// probe methods must be cheap no-ops when the corresponding telemetry
/// family is disabled — call sites on hot paths rely on that.
pub trait Sink {
    /// Register a flow at its start.
    fn flow_started(&mut self, rec: FlowRecord);
    /// Mark a flow complete at `end` (receiver has all bytes).
    fn flow_completed(&mut self, flow: FlowId, end: SimTime);
    /// Increment counter `c` by `n`.
    fn add(&mut self, c: Counter, n: u64);
    /// Increment counter `c` by one.
    fn bump(&mut self, c: Counter) {
        self.add(c, 1);
    }
    /// Is the probe family of `kind` being collected? Lets call sites skip
    /// value computation entirely when telemetry is off.
    fn wants(&self, kind: ProbeKind) -> bool;
    /// Record `value` for the time series `key` at `now`.
    fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64);
}

/// Collects flow records, counters, and telemetry for one simulation run.
#[derive(Debug)]
pub struct Recorder {
    flows: Vec<FlowRecord>,
    counters: [u64; Counter::COUNT],
    telemetry: Telemetry,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            flows: Vec::new(),
            counters: [0; Counter::COUNT],
            telemetry: Telemetry::new(),
        }
    }
}

impl Recorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a flow at its start. Returns nothing; completion is matched
    /// by flow id via [`Recorder::flow_completed`]. Flow ids must be dense
    /// and unique (the workload layer assigns them 0..n).
    pub fn flow_started(&mut self, rec: FlowRecord) {
        debug_assert_eq!(
            rec.flow as usize,
            self.flows.len(),
            "flow ids must be dense"
        );
        self.flows.push(rec);
    }

    /// Mark a flow complete at `end` (receiver has all bytes).
    pub fn flow_completed(&mut self, flow: FlowId, end: SimTime) {
        let rec = &mut self.flows[flow as usize];
        debug_assert_eq!(rec.end, SimTime::MAX, "flow {flow} completed twice");
        rec.end = end;
    }

    /// Increment `c` by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increment `c` by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Read counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// All flow records (completed and not).
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Consume the recorder, returning the flow records.
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.flows.iter().filter(|f| f.end != SimTime::MAX).count()
    }

    /// Configure telemetry collection. Call before the run starts.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry.set_config(cfg);
    }

    /// The telemetry store (read access to collected series mid-run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Is the probe family of `kind` being collected?
    #[inline]
    pub fn wants(&self, kind: ProbeKind) -> bool {
        self.telemetry.wants(kind)
    }

    /// Record `value` for the time series `key` at `now`. A single branch
    /// when the key's family is disabled.
    #[inline]
    pub fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        self.telemetry.record(now, key, value);
    }

    /// Finish the run: consume the recorder and hand the read-side view to
    /// the analysis layers.
    pub fn finish(self) -> RunResults {
        RunResults {
            flows: self.flows,
            counters: self.counters,
            series: self.telemetry.into_series(),
        }
    }
}

impl Sink for Recorder {
    fn flow_started(&mut self, rec: FlowRecord) {
        Recorder::flow_started(self, rec);
    }
    fn flow_completed(&mut self, flow: FlowId, end: SimTime) {
        Recorder::flow_completed(self, flow, end);
    }
    fn add(&mut self, c: Counter, n: u64) {
        Recorder::add(self, c, n);
    }
    fn wants(&self, kind: ProbeKind) -> bool {
        Recorder::wants(self, kind)
    }
    fn probe(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        Recorder::probe(self, now, key, value);
    }
}

/// The immutable read-side view of one finished run: every flow record,
/// every counter, and every collected time series.
///
/// Produced by [`Recorder::finish`]; consumed by the `stats` and
/// `experiments` crates.
#[derive(Debug, Default)]
pub struct RunResults {
    /// All flow records (completed and not).
    pub flows: Vec<FlowRecord>,
    counters: [u64; Counter::COUNT],
    series: Vec<Series>,
}

impl RunResults {
    /// All flow records (completed and not), as a slice.
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Consume the view, returning the flow records.
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }

    /// Read counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.flows.iter().filter(|f| f.end != SimTime::MAX).count()
    }

    /// All collected time series, in order of first recording.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Look up a series by its stable dotted name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: FlowId) -> FlowRecord {
        FlowRecord {
            flow,
            src: 0,
            dst: 1,
            bytes: 1000,
            start: SimTime::from_us(10),
            end: SimTime::MAX,
            job: None,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn flow_lifecycle() {
        let mut r = Recorder::new();
        r.flow_started(rec(0));
        r.flow_started(rec(1));
        assert_eq!(r.completed_count(), 0);
        assert_eq!(r.flows()[0].fct(), None);
        r.flow_completed(0, SimTime::from_us(110));
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.flows()[0].fct(), Some(SimTime::from_us(100)));
        assert_eq!(r.flows()[1].fct(), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new();
        r.bump(Counter::OooPktsRcvd);
        r.add(Counter::OooPktsRcvd, 4);
        r.bump(Counter::Timeouts);
        assert_eq!(r.get(Counter::OooPktsRcvd), 5);
        assert_eq!(r.get(Counter::Timeouts), 1);
        assert_eq!(r.get(Counter::Reroutes), 0);
    }

    #[test]
    fn finish_hands_everything_to_the_read_side() {
        let mut r = Recorder::new();
        r.set_telemetry(TelemetryConfig::all(SimTime::from_us(1)));
        r.flow_started(rec(0));
        r.flow_completed(0, SimTime::from_us(20));
        r.bump(Counter::Reroutes);
        r.probe(SimTime::from_us(5), SeriesKey::Vfield { flow: 0 }, 3.0);
        let out = r.finish();
        assert_eq!(out.flows().len(), 1);
        assert_eq!(out.completed_count(), 1);
        assert_eq!(out.get(Counter::Reroutes), 1);
        assert_eq!(out.series().len(), 1);
        let s = out.series_named("vfield.f0").unwrap();
        assert_eq!(s.points(), &[(SimTime::from_us(5), 3.0)]);
        assert!(out.series_named("cwnd.f0").is_none());
    }

    #[test]
    fn sink_trait_dispatches_to_recorder() {
        fn use_sink(s: &mut dyn Sink) {
            s.bump(Counter::Timeouts);
            s.probe(SimTime::ZERO, SeriesKey::Cwnd { flow: 0 }, 1.0);
            assert!(!s.wants(ProbeKind::Cwnd), "telemetry defaults to off");
        }
        let mut r = Recorder::new();
        use_sink(&mut r);
        assert_eq!(r.get(Counter::Timeouts), 1);
        assert!(r.telemetry().series().is_empty());
    }

    #[test]
    fn counter_all_matches_count_and_names_unique() {
        let all = Counter::all();
        assert_eq!(all.len(), Counter::COUNT);
        let names: std::collections::HashSet<_> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
    }
}
