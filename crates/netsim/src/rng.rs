//! Deterministic random number generation.
//!
//! Every stochastic decision in the simulator (ECMP hash salts, RPS port
//! picks, workload arrivals, FlowBender V choices, ...) draws from a
//! [`DetRng`], a small PCG-XSH-RR generator implemented here so that results
//! do not depend on the `rand` crate's internals and are reproducible across
//! `rand` versions. The master seed is split into independent per-component
//! streams with [`DetRng::split`], so adding a consumer in one component
//! never perturbs the stream seen by another.

/// A deterministic PCG-XSH-RR 64/32 random number generator.
///
/// This is the classic PCG generator: 64-bit LCG state, 32-bit output with
/// xorshift-high + random rotation. It is fast, has good statistical quality
/// for simulation purposes, and — crucially for this repository — its output
/// is fixed forever by this implementation.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl DetRng {
    /// Create a generator from a seed and a stream id. Different stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = DetRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator. The child's stream is a hash
    /// of this generator's stream and the supplied label, so the same label
    /// always yields the same child for a given parent.
    pub fn split(&self, label: u64) -> DetRng {
        // Mix the label through splitmix64 to decorrelate nearby labels.
        let mut z = label
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_add(self.inc.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        DetRng::new(self.state ^ z, z)
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift with
    /// rejection to avoid modulo bias. Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's method.
        let mut x = self.next_u32();
        let mut m = (x as u64) * (bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64) * (bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0 && bound <= u32::MAX as usize);
        self.gen_range(bound as u32) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponentially distributed duration with the given mean, for
    /// Poisson inter-arrival processes. Mean is in the caller's unit.
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Use 1 - u so the argument of ln is never exactly zero.
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }
}

/// Lets the `flowbender` core crate (generic over [`flowbender::Rng`])
/// draw from the same deterministic per-host stream as everything else in
/// the simulator. The bounded-draw override routes through the inherent
/// Lemire implementation so trait and inherent calls emit identical
/// sequences.
impl flowbender::Rng for DetRng {
    fn next_u32(&mut self) -> u32 {
        DetRng::next_u32(self)
    }

    fn gen_range(&mut self, bound: u32) -> u32 {
        DetRng::gen_range(self, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 1);
        let mut b = DetRng::new(42, 2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 3,
            "streams should be nearly disjoint, got {same} collisions"
        );
    }

    #[test]
    fn split_children_are_independent_and_stable() {
        let parent = DetRng::new(1, 1);
        let mut c1 = parent.split(10);
        let mut c1_again = parent.split(10);
        let mut c2 = parent.split(11);
        let v1: Vec<u32> = (0..50).map(|_| c1.next_u32()).collect();
        let v1b: Vec<u32> = (0..50).map(|_| c1_again.next_u32()).collect();
        let v2: Vec<u32> = (0..50).map(|_| c2.next_u32()).collect();
        assert_eq!(v1, v1b);
        assert_ne!(v1, v2);
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = DetRng::new(3, 3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            let x = rng.gen_range(8);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow 10% slack.
            assert!((9_000..11_000).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DetRng::new(9, 9);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_exp_has_right_mean() {
        let mut rng = DetRng::new(5, 5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = DetRng::new(8, 8);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
