//! The simulator: world state, builder API, and the event loop.
//!
//! A [`Simulator`] owns every node (hosts and switches), every link (stored
//! as paired ports), the event queue, and the measurement [`Recorder`]. The
//! `topology` crate builds the network through the `add_host` / `add_switch`
//! / `connect` / `set_routes` methods; the `transport` crate attaches
//! [`Agent`]s to hosts; then [`Simulator::run_until`] drives everything.
//!
//! ## Packet life cycle
//!
//! 1. An agent calls [`crate::agent::Ctx::send`]; after the host TX stack
//!    delay the packet is enqueued at the host NIC ([`EventKind::HostTx`]).
//! 2. When a port is idle (not serializing, not PFC-paused) it dequeues the
//!    head packet and schedules [`EventKind::TxDone`] one serialization time
//!    later.
//! 3. `TxDone` puts the packet on the wire: it arrives at the peer after the
//!    link's propagation delay plus the peer's ingress processing delay
//!    ([`EventKind::Arrive`]).
//! 4. At a switch, `Arrive` runs the forwarding scheme (ECMP hash / RPS /
//!    adaptive), enqueues at the chosen egress (drop-tail + ECN marking),
//!    and performs PFC accounting. At a host, `Arrive` is delivered to the
//!    agent.

use std::fmt;

use crate::agent::{Agent, Ctx, NullAgent};
use crate::event::{EventKind, Scheduler};
use crate::faults::{DirectedFault, FaultAction, FaultPlan};
use crate::hashing::{EcmpHasher, HashConfig};
use crate::packet::{Flags, IntHop, NodeId, Packet, PortId, Proto, INGRESS_NONE};
use crate::queue::{EcnQueue, EnqueueResult, QueueStats};
use crate::record::{Counter, DropReason, Recorder, RunResults, SloConfig};
use crate::rng::DetRng;
use crate::slab::{PacketId, PacketSlab};
use crate::switch::{
    select_port, CnLimiter, FeedbackConfig, FlowcutConfig, FlowcutDecision, FlowcutState,
    FlowletState, ForwardingScheme, PfcAction, PfcConfig, PfcState, RoutingTable,
};
use crate::telemetry::{ProbeKind, SeriesKey, TelemetryConfig};
use crate::time::SimTime;
use crate::trace::{TraceConfig, TraceEvent};

/// Egress queue parameters for one side of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSpec {
    /// Byte capacity (drop-tail beyond this).
    pub capacity: u64,
    /// ECN marking threshold `K` in bytes (`u64::MAX` = never mark).
    pub mark_threshold: u64,
}

impl QueueSpec {
    /// Paper §4.2 switch-port defaults for 10 Gbps: K = 90 KB marking.
    /// Capacity models the testbed's 2 MB shared buffer (§4.3) as a
    /// per-port bound: DCTCP keeps steady-state occupancy near K, and the
    /// headroom absorbs transient bursts the way a shared buffer would.
    pub fn switch_10g() -> Self {
        QueueSpec {
            capacity: 2 * 1024 * 1024,
            mark_threshold: 90_000,
        }
    }

    /// Host NIC queue: large and unmarked (host buffers are big; congestion
    /// signalling happens in the fabric).
    pub fn host_nic() -> Self {
        QueueSpec {
            capacity: 16 * 1024 * 1024,
            mark_threshold: u64::MAX,
        }
    }

    /// Effectively-lossless queue for PFC operation (PFC backpressure keeps
    /// occupancy bounded well below this).
    pub fn lossless() -> Self {
        QueueSpec {
            capacity: 64 * 1024 * 1024,
            mark_threshold: 90_000,
        }
    }
}

/// Parameters of a full-duplex link between two nodes.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Rate of each direction, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay (wire only; node processing delays are
    /// node properties).
    pub delay: SimTime,
    /// Egress queue at the first endpoint.
    pub a_queue: QueueSpec,
    /// Egress queue at the second endpoint.
    pub b_queue: QueueSpec,
}

impl LinkSpec {
    /// A symmetric 10 Gbps fabric link with switch queues on both ends.
    pub fn fabric_10g() -> Self {
        LinkSpec {
            rate_bps: 10_000_000_000,
            delay: SimTime::from_ns(100),
            a_queue: QueueSpec::switch_10g(),
            b_queue: QueueSpec::switch_10g(),
        }
    }

    /// A 10 Gbps host-to-ToR link: host NIC queue on the host side, switch
    /// queue on the ToR side.
    pub fn host_10g() -> Self {
        LinkSpec {
            rate_bps: 10_000_000_000,
            delay: SimTime::from_ns(100),
            a_queue: QueueSpec::host_nic(),
            b_queue: QueueSpec::switch_10g(),
        }
    }

    /// Replace both queue specs (e.g. for lossless PFC fabrics).
    pub fn with_queues(mut self, q: QueueSpec) -> Self {
        self.a_queue = q;
        self.b_queue = q;
        self
    }
}

/// One directed attachment point: this node's egress queue plus the wire
/// towards the peer.
#[derive(Debug)]
struct Port {
    queue: EcnQueue,
    peer: NodeId,
    peer_port: PortId,
    rate_bps: u64,
    delay: SimTime,
    up: bool,
    /// A packet is currently being serialized on this port.
    busy: bool,
    /// The downstream ingress has PFC-paused us.
    paused: bool,
    /// Gray-failure loss probability per departing packet (0 = healthy).
    loss_rate: f64,
    /// Bit error rate: a departing packet of `b` bits is corrupted (and
    /// dropped) with probability `1 - (1 - ber)^b` (0 = healthy).
    ber: f64,
    /// Lazily-split per-port fault RNG stream: gray-loss and corruption
    /// draws for packets departing this egress come from here, so the
    /// sequence of draws a port sees depends only on its own departure
    /// order — which every shard count reproduces identically — never on
    /// the global interleaving of faulted ports. `None` until the first
    /// draw; fault-free ports never split a stream at all.
    fault_rng: Option<DetRng>,
    /// Serialization epoch. Bumped when a mid-run rate change reschedules
    /// the in-flight `TxDone`; a pending `TxDone` carrying a stale epoch is
    /// ignored when it fires.
    tx_epoch: u16,
    /// While `busy`: when the current serialization completes.
    tx_end: SimTime,
    /// While `busy`: the packet being serialized.
    tx_pkt: PacketId,
    /// Transmitted wire bytes by protocol ([Tcp, Udp]).
    tx_bytes: [u64; 2],
    /// Transmitted packets.
    tx_pkts: u64,
}

/// Observable per-port statistics.
#[derive(Debug, Clone, Copy)]
pub struct PortStats {
    /// Wire bytes transmitted carrying TCP.
    pub tx_bytes_tcp: u64,
    /// Wire bytes transmitted carrying UDP.
    pub tx_bytes_udp: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
    /// Egress queue statistics.
    pub queue: QueueStats,
}

#[derive(Debug)]
struct HostMeta {
    tx_stack_delay: SimTime,
}

struct SwitchMeta {
    scheme: ForwardingScheme,
    hasher: EcmpHasher,
    routes: RoutingTable,
    pfc: Option<PfcState>,
    flowlets: FlowletState,
    flowcuts: FlowcutState,
    rng: DetRng,
    /// Switch-assisted feedback (INT stamping / CN emission); `None` (the
    /// default) keeps the forwarding hot path on a single branch.
    feedback: Option<FeedbackConfig>,
    /// Per-(port, flow) CN pacing state; empty unless CN is enabled.
    cn_limiter: CnLimiter,
}

// Hosts waste `SwitchMeta`-sized slots, but boxing the variant would put a
// pointer chase on every packet forward; a few hundred bytes per host is
// the cheaper side of that trade even on 8192-host fabrics.
#[allow(clippy::large_enum_variant)]
enum NodeKind {
    Host(HostMeta),
    Switch(SwitchMeta),
}

struct Node {
    kind: NodeKind,
    ports: Vec<Port>,
    /// Ingress processing delay added to every packet arriving at this node
    /// (1 µs at switches, 20 µs at hosts per the paper).
    proc_delay: SimTime,
}

/// Configuration of a switch to be added to the simulator.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Load-balancing scheme among equal-cost ports.
    pub scheme: ForwardingScheme,
    /// Which fields the ECMP hash covers (only meaningful for `EcmpHash`).
    pub hash: HashConfig,
    /// Ingress processing delay.
    pub proc_delay: SimTime,
    /// PFC configuration, if this switch generates pause frames.
    pub pfc: Option<PfcConfig>,
    /// Switch-assisted feedback (INT per-hop stamping and/or early CN
    /// emission); `None` (the default everywhere) is byte-identical to a
    /// switch that never heard of the feedback layer.
    pub feedback: Option<FeedbackConfig>,
}

impl SwitchConfig {
    /// ECMP switch hashing the 5-tuple plus the FlowBender V-field, 1 µs
    /// processing delay, no PFC — the commodity switch of the paper.
    pub fn commodity(hash: HashConfig) -> Self {
        SwitchConfig {
            scheme: ForwardingScheme::EcmpHash,
            hash,
            proc_delay: SimTime::from_us(1),
            pfc: None,
            feedback: None,
        }
    }

    /// RPS switch: per-packet random spraying.
    pub fn rps() -> Self {
        SwitchConfig {
            scheme: ForwardingScheme::Rps,
            hash: HashConfig::FiveTuple,
            proc_delay: SimTime::from_us(1),
            pfc: None,
            feedback: None,
        }
    }

    /// DeTail-style switch: per-packet adaptive routing plus PFC at the
    /// paper's thresholds.
    pub fn detail() -> Self {
        SwitchConfig {
            scheme: ForwardingScheme::Adaptive,
            hash: HashConfig::FiveTuple,
            proc_delay: SimTime::from_us(1),
            pfc: Some(PfcConfig::detail_defaults()),
            feedback: None,
        }
    }

    /// Flowlet-switching (LetFlow-style) switch with the given inactivity
    /// gap. 100 µs suits 10 Gbps fabrics with ~90 µs RTTs: larger than the
    /// path-delay spread (no reordering within a flowlet change), small
    /// enough that bursts split often.
    pub fn flowlet(gap: SimTime) -> Self {
        SwitchConfig {
            scheme: ForwardingScheme::Flowlet { gap },
            hash: HashConfig::FiveTuple,
            proc_delay: SimTime::from_us(1),
            pfc: None,
            feedback: None,
        }
    }

    /// Flowcut-switching switch (Bonato et al.): flows pin to one egress
    /// until an idle gap proves their in-flight packets drained, and only
    /// such boundaries may re-route — adaptively, to the least-queued
    /// port. Validates `cfg` eagerly so a zero gap fails at build time.
    pub fn flowcut_sw(cfg: FlowcutConfig) -> Self {
        cfg.validate();
        SwitchConfig {
            scheme: ForwardingScheme::Flowcut { cfg },
            hash: HashConfig::FiveTuple,
            proc_delay: SimTime::from_us(1),
            pfc: None,
            feedback: None,
        }
    }

    /// Enable the switch-assisted feedback layer (INT stamping / early
    /// CN) on this switch. Validates `cfg` eagerly so misconfigured
    /// thresholds fail at build time, not mid-run.
    pub fn with_feedback(mut self, cfg: FeedbackConfig) -> Self {
        cfg.validate();
        self.feedback = Some(cfg);
        self
    }
}

/// A periodic queue-occupancy sampler (see [`Simulator::watch_queue`]).
#[derive(Debug)]
struct QueueWatcher {
    node: NodeId,
    port: PortId,
    every: SimTime,
    until: SimTime,
    samples: Vec<(SimTime, u64)>,
}

/// A message crossing a shard boundary in the sharded engine: the owning
/// simulator of the source node produced it during a synchronization
/// window; the owning simulator of `node` schedules it at `at` (which the
/// conservative lookahead guarantees lies beyond every window already
/// processed).
#[derive(Debug, Clone)]
pub enum Handoff {
    /// A packet finishing propagation towards non-owned `node`; the owner
    /// re-inserts it into its slab and schedules the arrival.
    Arrive {
        /// Arrival time (link propagation + receiver processing delay).
        at: SimTime,
        /// Receiving node.
        node: NodeId,
        /// Receiving port on `node`.
        port: PortId,
        /// The packet itself, lifted out of the exporting shard's slab.
        pkt: Packet,
    },
    /// A PFC pause/resume frame towards non-owned `node`'s egress port.
    Pfc {
        /// Frame arrival time (link propagation only).
        at: SimTime,
        /// Node whose egress port is being paused/resumed.
        node: NodeId,
        /// The egress port.
        port: PortId,
        /// `true` = pause, `false` = resume.
        pause: bool,
    },
    /// One directed fault transition whose `(node, port)` egress is owned
    /// by another shard. Fault-plan steps that span a shard boundary — a
    /// `LinkState`/`LinkRate` on a cross-shard link, a `SwitchDown` whose
    /// peers live elsewhere — are compiled by the shard owning the action's
    /// anchor node; the directions it does not own travel through the epoch
    /// mailbox as this variant, so both owners commit the transition in the
    /// same synchronization window and at the same instant.
    Fault {
        /// When the transition fires.
        at: SimTime,
        /// The directed transition; its [`DirectedFault::node`] is the
        /// destination the coordinator routes on.
        fault: DirectedFault,
    },
    /// A switch-generated congestion notification towards a non-owned
    /// sender host. CNs skip the fabric (delivered a fixed `cn_delay`
    /// after emission, see [`crate::switch::FeedbackConfig`]), so they
    /// carry their own variant: the owner re-inserts the packet into its
    /// slab and schedules a direct arrival at the host — exactly what the
    /// emitting shard would have done locally, keeping every shard count
    /// byte-identical.
    Cn {
        /// Delivery time (emission + `cn_delay`).
        at: SimTime,
        /// The sender host the CN targets.
        node: NodeId,
        /// The CN packet itself (blamed hop in its INT stack).
        pkt: Packet,
    },
}

impl Handoff {
    /// The destination node — what the coordinator routes on.
    pub fn node(&self) -> NodeId {
        match self {
            Handoff::Arrive { node, .. } | Handoff::Pfc { node, .. } | Handoff::Cn { node, .. } => {
                *node
            }
            Handoff::Fault { fault, .. } => fault.node(),
        }
    }

    /// Scheduled arrival time at the destination shard.
    pub fn at(&self) -> SimTime {
        match self {
            Handoff::Arrive { at, .. }
            | Handoff::Pfc { at, .. }
            | Handoff::Fault { at, .. }
            | Handoff::Cn { at, .. } => *at,
        }
    }
}

/// The packet-conservation ledger: every packet the slab ever issued must
/// be delivered to an agent, dropped with a [`DropReason`], exported to
/// another shard, or still in flight. Produced by
/// [`Simulator::conservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conservation {
    /// Packets ever inserted into the slab ([`Ctx::send`] injections plus
    /// cross-shard imports).
    pub injected: u64,
    /// Packets handed to destination agents.
    pub delivered: u64,
    /// Packets dropped, by [`DropReason`] index.
    pub dropped: [u64; DropReason::COUNT],
    /// Packets still parked in the slab.
    pub in_flight: u64,
    /// Packets exported to other shards (0 in single-shard runs).
    pub exported: u64,
    /// Packets imported from other shards (0 in single-shard runs; a
    /// subset of `injected`, reported so the coordinator can check that
    /// `Σ exported == Σ imported` across shards at quiesce).
    pub imported: u64,
}

impl Conservation {
    /// Total dropped packets across all reasons.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Does `injected == delivered + dropped + in-flight + exported`
    /// hold? (Imports count inside `injected`; `exported` is 0 outside
    /// sharded runs, reducing to the classic single-engine invariant.)
    pub fn holds(&self) -> bool {
        self.injected == self.delivered + self.dropped_total() + self.in_flight + self.exported
    }
}

impl fmt::Display for Conservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} != delivered {} + dropped {} (",
            self.injected,
            self.delivered,
            self.dropped_total()
        )?;
        for (i, reason) in DropReason::all().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", reason.name(), self.dropped[i])?;
        }
        write!(f, ") + in-flight {}", self.in_flight)?;
        if self.exported != 0 || self.imported != 0 {
            write!(
                f,
                " + exported {} (imported {})",
                self.exported, self.imported
            )?;
        }
        Ok(())
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    now: SimTime,
    sched: Scheduler,
    /// Every in-flight packet, referenced by [`PacketId`] from events and
    /// queues. Packets enter in [`Ctx::send`] and leave on delivery or drop.
    packets: PacketSlab,
    nodes: Vec<Node>,
    agents: Vec<Option<Box<dyn Agent>>>,
    host_rngs: Vec<DetRng>,
    recorder: Recorder,
    master_rng: DetRng,
    /// Root of the fault RNG tree. Never advanced: each faulted port
    /// lazily splits its own child stream off this root ([`Port::fault_rng`])
    /// on its first gray-loss/corruption draw, keyed by `(node, port)` —
    /// so draw sequences are a pure function of each port's own departure
    /// order, identical for every shard count, and fault-free runs never
    /// touch any fault stream at all.
    faults_rng: DetRng,
    /// Installed directed fault transitions; `EventKind::Fault` events
    /// index into this (indices are local to this simulator — in a sharded
    /// run each worker compiles its own subset).
    fault_actions: Vec<DirectedFault>,
    /// Packets handed to destination agents (the conservation audit's
    /// "delivered" term).
    delivered: u64,
    started: bool,
    events_processed: u64,
    host_ids: Vec<NodeId>,
    watchers: Vec<QueueWatcher>,
    /// Sharded-engine ownership mask, indexed by node id: `None` (the
    /// default) means this simulator owns every node — the classic
    /// single-threaded engine with zero extra work on the hot path. When
    /// set, packets leaving an owned node towards a non-owned peer are
    /// diverted into `outbox` instead of being scheduled locally.
    owned: Option<Vec<bool>>,
    /// Cross-shard messages generated by the current window, drained by
    /// the shard coordinator via [`Simulator::take_outbox`].
    outbox: Vec<Handoff>,
    /// Packets exported to other shards (conservation ledger term).
    exported: u64,
    /// Packets imported from other shards (already counted in the slab's
    /// `total_inserted`).
    imported: u64,
}

impl Simulator {
    /// Create an empty world seeded with `seed`. The same seed and build
    /// sequence reproduce a run bit-for-bit.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            sched: Scheduler::new(),
            packets: PacketSlab::new(),
            nodes: Vec::new(),
            agents: Vec::new(),
            host_rngs: Vec::new(),
            recorder: Recorder::new(),
            master_rng: DetRng::new(seed, 0xF10B),
            faults_rng: DetRng::new(seed, 0xF10B).split(0xFA17_5EED),
            fault_actions: Vec::new(),
            delivered: 0,
            started: false,
            events_processed: 0,
            host_ids: Vec::new(),
            watchers: Vec::new(),
            owned: None,
            outbox: Vec::new(),
            exported: 0,
            imported: 0,
        }
    }

    // ------------------------------------------------------------------
    // Builder API
    // ------------------------------------------------------------------

    /// Add a host with the given TX stack delay and RX processing delay.
    /// Returns its node id. Attach a transport with [`Simulator::set_agent`].
    pub fn add_host(&mut self, tx_stack_delay: SimTime, rx_proc_delay: SimTime) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            kind: NodeKind::Host(HostMeta { tx_stack_delay }),
            ports: Vec::new(),
            proc_delay: rx_proc_delay,
        });
        self.agents.push(Some(Box::new(NullAgent)));
        self.host_rngs
            .push(self.master_rng.split(0x7057_0000 | id as u64));
        self.host_ids.push(id);
        id
    }

    /// Add a host with the paper's delays (20 µs TX stack, 20 µs RX stack).
    pub fn add_host_default(&mut self) -> NodeId {
        self.add_host(SimTime::from_us(20), SimTime::from_us(20))
    }

    /// Add a switch. Returns its node id. Routing tables are installed
    /// later with [`Simulator::set_routes`].
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let salt = self.master_rng.split(0x5A17_0000 | id as u64).next_u64();
        self.nodes.push(Node {
            kind: NodeKind::Switch(SwitchMeta {
                scheme: cfg.scheme,
                hasher: EcmpHasher::new(cfg.hash, salt),
                routes: RoutingTable::default(),
                pfc: cfg.pfc.map(|p| PfcState::new(p, 0)),
                flowlets: FlowletState::new(),
                flowcuts: FlowcutState::new(),
                rng: self.master_rng.split(0x5311_0000 | id as u64),
                feedback: cfg.feedback,
                cn_limiter: CnLimiter::new(),
            }),
            ports: Vec::new(),
            proc_delay: cfg.proc_delay,
        });
        self.agents.push(None);
        self.host_rngs.push(self.master_rng.split(0));
        id
    }

    /// Connect `a` and `b` with a full-duplex link. Returns the port ids
    /// allocated on each side.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortId, PortId) {
        assert_ne!(a, b, "self-links are not allowed");
        let pa = self.nodes[a as usize].ports.len() as PortId;
        let pb = self.nodes[b as usize].ports.len() as PortId;
        self.nodes[a as usize].ports.push(Port {
            queue: EcnQueue::new(spec.a_queue.capacity, spec.a_queue.mark_threshold),
            peer: b,
            peer_port: pb,
            rate_bps: spec.rate_bps,
            delay: spec.delay,
            up: true,
            busy: false,
            paused: false,
            loss_rate: 0.0,
            ber: 0.0,
            fault_rng: None,
            tx_epoch: 0,
            tx_end: SimTime::ZERO,
            tx_pkt: 0,
            tx_bytes: [0; 2],
            tx_pkts: 0,
        });
        self.nodes[b as usize].ports.push(Port {
            queue: EcnQueue::new(spec.b_queue.capacity, spec.b_queue.mark_threshold),
            peer: a,
            peer_port: pa,
            rate_bps: spec.rate_bps,
            delay: spec.delay,
            up: true,
            busy: false,
            paused: false,
            loss_rate: 0.0,
            ber: 0.0,
            fault_rng: None,
            tx_epoch: 0,
            tx_end: SimTime::ZERO,
            tx_pkt: 0,
            tx_bytes: [0; 2],
            tx_pkts: 0,
        });
        for id in [a, b] {
            if let NodeKind::Switch(meta) = &mut self.nodes[id as usize].kind {
                if let Some(pfc) = &mut meta.pfc {
                    pfc.add_port();
                }
            }
        }
        (pa, pb)
    }

    /// Install the multipath routing table of a switch.
    pub fn set_routes(&mut self, switch: NodeId, routes: RoutingTable) {
        match &mut self.nodes[switch as usize].kind {
            NodeKind::Switch(meta) => meta.routes = routes,
            NodeKind::Host(_) => panic!("node {switch} is a host, not a switch"),
        }
    }

    /// Attach the protocol stack of a host.
    pub fn set_agent(&mut self, host: NodeId, agent: Box<dyn Agent>) {
        assert!(
            matches!(self.nodes[host as usize].kind, NodeKind::Host(_)),
            "node {host} is not a host"
        );
        self.agents[host as usize] = Some(agent);
    }

    /// Schedule an administrative link state change (both directions) for
    /// the link attached at `(node, port)`.
    pub fn schedule_link_state(&mut self, node: NodeId, port: PortId, up: bool, at: SimTime) {
        self.sched
            .schedule(at, EventKind::LinkState { node, port, up });
    }

    /// Change the rate of the link attached at `(node, port)` — both
    /// directions. Models heterogeneous or degraded links (partial
    /// upgrades, the §4.3.1 WCMP discussion) and mid-run renegotiation
    /// (fault injection). Legal at any time: a packet being serialized when
    /// the rate changes has its remaining bits rescaled to the new rate and
    /// its completion event rescheduled.
    pub fn set_link_rate(&mut self, node: NodeId, port: PortId, rate_bps: u64) {
        assert!(rate_bps > 0, "link rate must be positive");
        let (peer, peer_port) = self.peer_of(node, port);
        self.apply_rate(node, port, rate_bps);
        self.apply_rate(peer, peer_port, rate_bps);
    }

    /// Apply a rate change to one directed port, rescheduling the in-flight
    /// serialization if there is one.
    fn apply_rate(&mut self, node: NodeId, port: PortId, rate_bps: u64) {
        let now = self.now;
        let p = &mut self.nodes[node as usize].ports[port as usize];
        let old = p.rate_bps;
        p.rate_bps = rate_bps;
        if old == rate_bps || !p.busy {
            return;
        }
        // Rescale the un-serialized remainder: `remaining * old / new` bits
        // take the same wire time expressed under the new rate. u128 keeps
        // the product exact for any sane rate pair.
        let rem_ps = (p.tx_end.as_ps().saturating_sub(now.as_ps())) as u128;
        let new_rem = (rem_ps * old as u128 / rate_bps as u128) as u64;
        p.tx_epoch = p.tx_epoch.wrapping_add(1);
        p.tx_end = now + SimTime::from_ps(new_rem);
        let ev = EventKind::TxDone {
            node,
            port,
            pkt: p.tx_pkt,
            epoch: p.tx_epoch,
        };
        let at = p.tx_end;
        self.sched.schedule(at, ev);
    }

    /// Set the gray-failure loss probability on the directed egress
    /// `(node, port)`, effective immediately. `0.0` restores a healthy link.
    pub fn set_gray_loss(&mut self, node: NodeId, port: PortId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss {loss} outside [0, 1]");
        self.nodes[node as usize].ports[port as usize].loss_rate = loss;
    }

    /// Set the bit error rate on the directed egress `(node, port)`,
    /// effective immediately. `0.0` restores a healthy link.
    pub fn set_corruption(&mut self, node: NodeId, port: PortId, ber: f64) {
        assert!((0.0..=1.0).contains(&ber), "ber {ber} outside [0, 1]");
        self.nodes[node as usize].ports[port as usize].ber = ber;
    }

    /// Install a [`FaultPlan`]: validate every referenced node/port,
    /// compile each step into its [`DirectedFault`] transitions, and
    /// schedule each owned transition as an [`EventKind::Fault`] event at
    /// its time. May be called repeatedly (plans accumulate) and mid-run
    /// for future times.
    ///
    /// Both-direction steps (`LinkState`, `LinkRate`, `SwitchDown/Up`)
    /// expand to one directed transition per affected egress. In a sharded
    /// run, only the shard owning a step's *anchor* node
    /// ([`FaultAction::node`]) compiles it: transitions on egresses it owns
    /// are scheduled locally, the rest are pushed into the outbox as
    /// [`Handoff::Fault`] for their owners to import before the run starts
    /// (or before the next window, mid-run). Every worker still validates
    /// every step, so a bad plan panics identically on every shard.
    ///
    /// Caveat: two *different* steps targeting the *same* directed egress
    /// at the *same* instant from *different* anchor nodes may apply in a
    /// different relative order than the classic engine (imports land after
    /// locally-anchored steps). Transitions on distinct egresses commute,
    /// so plans without such same-instant/same-egress conflicts — any plan
    /// [`FaultPlan::randomized`] can produce — are exactly reproduced.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for &(at, action) in plan.steps() {
            let node = action.node();
            assert!(
                (node as usize) < self.nodes.len(),
                "fault plan references nonexistent node {node}"
            );
            if let FaultAction::LinkState { port, .. }
            | FaultAction::LinkRate { port, .. }
            | FaultAction::GrayLoss { port, .. }
            | FaultAction::Corruption { port, .. } = action
            {
                assert!(
                    (port as usize) < self.nodes[node as usize].ports.len(),
                    "fault plan references nonexistent port ({node}, {port})"
                );
            }
            if !self.is_owned(node) {
                continue;
            }
            let mut directed: Vec<DirectedFault> = Vec::new();
            match action {
                FaultAction::LinkState { node, port, up } => {
                    let (peer, peer_port) = self.peer_of(node, port);
                    directed.push(DirectedFault::LinkState { node, port, up });
                    directed.push(DirectedFault::LinkState {
                        node: peer,
                        port: peer_port,
                        up,
                    });
                }
                FaultAction::LinkRate {
                    node,
                    port,
                    rate_bps,
                } => {
                    let (peer, peer_port) = self.peer_of(node, port);
                    directed.push(DirectedFault::Rate {
                        node,
                        port,
                        rate_bps,
                    });
                    directed.push(DirectedFault::Rate {
                        node: peer,
                        port: peer_port,
                        rate_bps,
                    });
                }
                FaultAction::GrayLoss { node, port, loss } => {
                    directed.push(DirectedFault::GrayLoss { node, port, loss });
                }
                FaultAction::Corruption { node, port, ber } => {
                    directed.push(DirectedFault::Corruption { node, port, ber });
                }
                FaultAction::SwitchDown { node } | FaultAction::SwitchUp { node } => {
                    let up = matches!(action, FaultAction::SwitchUp { .. });
                    for port in 0..self.nodes[node as usize].ports.len() as PortId {
                        let (peer, peer_port) = self.peer_of(node, port);
                        directed.push(DirectedFault::LinkState { node, port, up });
                        directed.push(DirectedFault::LinkState {
                            node: peer,
                            port: peer_port,
                            up,
                        });
                    }
                }
            }
            for d in directed {
                if self.is_owned(d.node()) {
                    self.schedule_directed_fault(at, d);
                } else {
                    self.outbox.push(Handoff::Fault { at, fault: d });
                }
            }
        }
    }

    /// Register one owned directed transition and schedule its event.
    fn schedule_directed_fault(&mut self, at: SimTime, fault: DirectedFault) {
        let idx = self.fault_actions.len() as u32;
        self.fault_actions.push(fault);
        self.sched.schedule(at, EventKind::Fault { action: idx });
    }

    /// The current rate of the directed link out of `(node, port)`.
    pub fn link_rate(&self, node: NodeId, port: PortId) -> u64 {
        self.nodes[node as usize].ports[port as usize].rate_bps
    }

    /// Sample the byte occupancy of `(node, port)`'s egress queue every
    /// `every`, from now until `until` (bounded so the simulation can
    /// still quiesce). Returns a watcher id for [`Simulator::queue_samples`].
    pub fn watch_queue(
        &mut self,
        node: NodeId,
        port: PortId,
        every: SimTime,
        until: SimTime,
    ) -> usize {
        assert!(every.as_ps() > 0, "sampling period must be positive");
        let id = self.watchers.len();
        self.watchers.push(QueueWatcher {
            node,
            port,
            every,
            until,
            samples: Vec::new(),
        });
        self.sched
            .schedule(self.now, EventKind::Sample { watcher: id });
        id
    }

    /// The `(time, bytes)` series collected by watcher `id`.
    pub fn queue_samples(&self, id: usize) -> &[(SimTime, u64)] {
        &self.watchers[id].samples
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the recorder (for registering flows up front).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Consume the simulator, returning the recorder.
    pub fn into_recorder(self) -> Recorder {
        self.recorder
    }

    /// Consume the simulator, returning the read-side view of the run
    /// (flow records, counters, telemetry series).
    pub fn into_results(self) -> RunResults {
        self.recorder.finish()
    }

    /// Configure telemetry collection. Call before the run starts; with
    /// the default (disabled) config every probe hook is a single branch.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.recorder.set_telemetry(cfg);
    }

    /// Configure the per-flow flight recorder. Call before the run
    /// starts; with the default (disabled) config every trace hook is a
    /// single branch.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.recorder.set_trace(cfg);
    }

    /// Arm the reconvergence / goodput SLO probe: per-flow reconvergence
    /// latency against `cfg.fail_at` and a delivered-goodput histogram.
    /// Call before the run starts; disarmed (the default), every delivery
    /// hook is a single branch.
    pub fn set_slo(&mut self, cfg: SloConfig) {
        self.recorder.set_slo(cfg);
    }

    /// Ids of all hosts, in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.host_ids
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.nodes[node as usize].ports.len()
    }

    /// Statistics of one port.
    pub fn port_stats(&self, node: NodeId, port: PortId) -> PortStats {
        let p = &self.nodes[node as usize].ports[port as usize];
        PortStats {
            tx_bytes_tcp: p.tx_bytes[0],
            tx_bytes_udp: p.tx_bytes[1],
            tx_pkts: p.tx_pkts,
            queue: p.queue.stats(),
        }
    }

    /// The peer `(node, port)` on the other end of `(node, port)`'s link.
    pub fn peer_of(&self, node: NodeId, port: PortId) -> (NodeId, PortId) {
        let p = &self.nodes[node as usize].ports[port as usize];
        (p.peer, p.peer_port)
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Packets currently in flight (parked in the slab).
    pub fn packets_in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Packets delivered to destination agents so far.
    pub fn packets_delivered(&self) -> u64 {
        self.delivered
    }

    /// Snapshot the packet-conservation ledger. The invariant
    /// `injected == delivered + dropped(reason) + in-flight` holds at every
    /// event boundary (each slab removal is accounted at the site it
    /// happens); [`Conservation::holds`] checks it.
    pub fn conservation(&self) -> Conservation {
        Conservation {
            injected: self.packets.total_inserted(),
            delivered: self.delivered,
            dropped: self.recorder.drops().totals(),
            in_flight: self.packets.len() as u64,
            exported: self.exported,
            imported: self.imported,
        }
    }

    /// Panic (in every build profile) if the conservation invariant is
    /// violated. The event loop also checks it at the end of every run in
    /// debug builds; release-mode harnesses call this explicitly.
    pub fn assert_conservation(&self) {
        let c = self.conservation();
        assert!(c.holds(), "packet conservation violated: {c}");
    }

    /// High-water mark of simultaneously in-flight packets.
    pub fn packets_peak(&self) -> usize {
        self.packets.peak()
    }

    // ------------------------------------------------------------------
    // Sharded engine
    // ------------------------------------------------------------------

    /// Declare which nodes this simulator owns (sharded engine). `mask`
    /// is indexed by node id and must cover every node; call after the
    /// topology is built. Packets leaving an owned node towards a
    /// non-owned peer are diverted to the [`Simulator::take_outbox`]
    /// buffer instead of being scheduled locally, and non-owned nodes
    /// never process events. Without this call (the default) every node
    /// is owned and the engine behaves exactly as it always has.
    pub fn set_owned(&mut self, mask: Vec<bool>) {
        assert_eq!(
            mask.len(),
            self.nodes.len(),
            "ownership mask must cover every node"
        );
        self.owned = Some(mask);
    }

    #[inline]
    fn is_owned(&self, node: NodeId) -> bool {
        match &self.owned {
            None => true,
            Some(m) => m[node as usize],
        }
    }

    /// The conservative lookahead this shard grants the others: the
    /// minimum latency any message needs to cross *into* this shard
    /// (minimum over links from a non-owned node to an owned one of
    /// propagation delay, plus the receiver's ingress processing delay —
    /// unless any switch runs PFC, whose pause frames skip ingress
    /// processing). `None` when no cross-shard link exists (single-shard)
    /// or ownership was never set.
    pub fn lookahead(&self) -> Option<SimTime> {
        let owned = self.owned.as_ref()?;
        let any_pfc = self
            .nodes
            .iter()
            .any(|n| matches!(&n.kind, NodeKind::Switch(m) if m.pfc.is_some()));
        let mut best: Option<SimTime> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if owned[i] {
                continue;
            }
            for p in &n.ports {
                if !owned[p.peer as usize] {
                    continue;
                }
                let lat = if any_pfc {
                    p.delay
                } else {
                    p.delay + self.nodes[p.peer as usize].proc_delay
                };
                if best.is_none_or(|b| lat < b) {
                    best = Some(lat);
                }
            }
        }
        // Switch-generated CNs skip the fabric entirely: one emitted by a
        // non-owned switch lands on an owned host exactly `cn_delay` after
        // emission, so it bounds the crossing latency alongside the link
        // terms above.
        for (i, n) in self.nodes.iter().enumerate() {
            if owned[i] {
                continue;
            }
            if let NodeKind::Switch(m) = &n.kind {
                if let Some(fb) = m.feedback {
                    if fb.cn_threshold.is_some() && best.is_none_or(|b| fb.cn_delay < b) {
                        best = Some(fb.cn_delay);
                    }
                }
            }
        }
        best
    }

    /// Time of the earliest pending event, or `None` when quiescent. The
    /// shard coordinator publishes this each epoch to agree on the next
    /// safe window. Starts the agents on first call — their initial sends
    /// must be visible before the first window is negotiated, or an
    /// untouched shard would report quiescence and end the run early.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.start_agents();
        self.sched.next_time()
    }

    /// Run every event with `time <= deadline` without parking the clock
    /// at the deadline afterwards — one synchronization window of a
    /// sharded run. The coordinator guarantees every cross-shard message
    /// generated anywhere during this window arrives strictly after
    /// `deadline`, so importing between windows never travels back in
    /// time.
    pub fn run_window(&mut self, deadline: SimTime) {
        self.run_core(deadline);
    }

    /// Drain the cross-shard messages generated since the last call, in
    /// generation order.
    pub fn take_outbox(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.outbox)
    }

    /// Accept a message exported by another shard. Must target an owned
    /// node at a time beyond the last processed window.
    pub fn import(&mut self, h: Handoff) {
        debug_assert!(self.is_owned(h.node()), "import for non-owned node");
        match h {
            Handoff::Arrive {
                at,
                node,
                port,
                pkt,
            } => {
                let id = self.packets.insert(pkt);
                self.imported += 1;
                self.sched.schedule(
                    at,
                    EventKind::Arrive {
                        node,
                        port,
                        pkt: id,
                    },
                );
            }
            Handoff::Pfc {
                at,
                node,
                port,
                pause,
            } => {
                self.sched
                    .schedule(at, EventKind::Pfc { node, port, pause });
            }
            // A directed fault transition compiled by the anchor's owner.
            // Not a packet, so the imported/exported ledger is untouched
            // (those two terms count packets only, and must stay equal
            // across shards at quiesce).
            Handoff::Fault { at, fault } => self.schedule_directed_fault(at, fault),
            // A CN skips the fabric: deliver it straight to the target
            // host (port 0 is cosmetic — hosts have one NIC and the
            // arrival handler ignores the port for host nodes).
            Handoff::Cn { at, node, pkt } => {
                let id = self.packets.insert(pkt);
                self.imported += 1;
                self.sched.schedule(
                    at,
                    EventKind::Arrive {
                        node,
                        port: 0,
                        pkt: id,
                    },
                );
            }
        }
    }

    /// Packets exported to other shards so far.
    pub fn exported(&self) -> u64 {
        self.exported
    }

    /// Packets imported from other shards so far.
    pub fn imported(&self) -> u64 {
        self.imported
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Run until the event queue is exhausted or `deadline` is reached,
    /// whichever comes first; the clock is then parked at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_core(deadline);
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run until no events remain (all flows quiesce). The clock stops at
    /// the time of the last event.
    pub fn run_to_quiescence(&mut self) {
        self.run_core(SimTime::MAX);
    }

    fn run_core(&mut self, deadline: SimTime) {
        self.start_agents();
        while let Some(ev) = self.sched.pop_before(deadline) {
            self.now = ev.time;
            self.events_processed += 1;
            self.dispatch(ev.kind);
        }
        debug_assert!(
            self.conservation().holds(),
            "packet conservation violated: {}",
            self.conservation()
        );
    }

    fn start_agents(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for &h in &self.host_ids.clone() {
            self.with_agent(h, |agent, ctx| agent.on_start(ctx));
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrive { node, port, pkt } => self.handle_arrive(node, port, pkt),
            EventKind::TxDone {
                node,
                port,
                pkt,
                epoch,
            } => self.handle_tx_done(node, port, pkt, epoch),
            EventKind::HostTx { host, pkt } => self.handle_host_tx(host, pkt),
            EventKind::Timer { host, token } => {
                self.with_agent(host, |agent, ctx| agent.on_timer(token, ctx));
            }
            EventKind::Pfc { node, port, pause } => self.handle_pfc(node, port, pause),
            EventKind::LinkState { node, port, up } => self.handle_link_state(node, port, up),
            EventKind::Sample { watcher } => self.handle_sample(watcher),
            EventKind::Fault { action } => self.apply_fault(action),
        }
    }

    fn apply_fault(&mut self, idx: u32) {
        match self.fault_actions[idx as usize] {
            DirectedFault::LinkState { node, port, up } => self.apply_link_dir(node, port, up),
            DirectedFault::Rate {
                node,
                port,
                rate_bps,
            } => self.apply_rate(node, port, rate_bps),
            DirectedFault::GrayLoss { node, port, loss } => self.set_gray_loss(node, port, loss),
            DirectedFault::Corruption { node, port, ber } => self.set_corruption(node, port, ber),
        }
    }

    /// Apply a link-state change to one directed egress. The other
    /// direction is a separate [`DirectedFault`] applied by its own owner
    /// at the same instant; together they reproduce
    /// [`Simulator::schedule_link_state`]'s both-direction semantics.
    fn apply_link_dir(&mut self, node: NodeId, port: PortId, up: bool) {
        self.nodes[node as usize].ports[port as usize].up = up;
        // Down: black-hole anything already queued towards the dead
        // egress. Up: restart serialization if the queue has backlog.
        self.try_start_tx(node, port);
    }

    fn handle_sample(&mut self, id: usize) {
        let w = &mut self.watchers[id];
        let bytes = self.nodes[w.node as usize].ports[w.port as usize]
            .queue
            .bytes();
        w.samples.push((self.now, bytes));
        let next = self.now + w.every;
        if next <= w.until {
            self.sched.schedule(next, EventKind::Sample { watcher: id });
        }
    }

    /// Temporarily take the agent out of its slot so the callback can borrow
    /// the rest of the world through `Ctx` without aliasing.
    fn with_agent(&mut self, host: NodeId, f: impl FnOnce(&mut dyn Agent, &mut Ctx<'_>)) {
        let mut agent = self.agents[host as usize]
            .take()
            .unwrap_or_else(|| panic!("node {host} has no agent (switch or reentrant call)"));
        let tx_stack_delay = match &self.nodes[host as usize].kind {
            NodeKind::Host(m) => m.tx_stack_delay,
            NodeKind::Switch(_) => panic!("agent callback on a switch"),
        };
        let mut ctx = Ctx::new(
            self.now,
            host,
            tx_stack_delay,
            &mut self.sched,
            &mut self.packets,
            &mut self.host_rngs[host as usize],
            &mut self.recorder,
        );
        f(agent.as_mut(), &mut ctx);
        self.agents[host as usize] = Some(agent);
    }

    fn handle_arrive(&mut self, node: NodeId, port: PortId, id: PacketId) {
        match &self.nodes[node as usize].kind {
            NodeKind::Host(_) => {
                // The packet leaves the slab here: the agent owns it now.
                let pkt = self.packets.remove(id);
                self.delivered += 1;
                self.recorder.slo_delivery(self.now, pkt.flow, pkt.payload);
                if pkt.flags.has(Flags::CN) {
                    self.recorder.bump(Counter::CnDelivered);
                    if self.recorder.trace_wants(pkt.flow) {
                        let (bn, bp) = pkt
                            .int
                            .as_ref()
                            .and_then(|s| s.blamed_hop())
                            .map(|h| (h.node, h.port))
                            .unwrap_or((node, port));
                        self.recorder.trace_event(
                            self.now,
                            pkt.flow,
                            TraceEvent::CnArrive { node: bn, port: bp },
                        );
                    }
                }
                self.with_agent(node, |agent, ctx| agent.on_packet(pkt, ctx));
            }
            NodeKind::Switch(_) => self.forward(node, port, id),
        }
    }

    /// Switch forwarding: scheme-based egress selection, enqueue with
    /// AQM, PFC accounting, and TX kick.
    fn forward(&mut self, sw: NodeId, in_port: PortId, id: PacketId) {
        // Phase 1: pick egress and enqueue, collecting any PFC action.
        // The slab and the node table are disjoint fields, so the packet
        // can be read while the switch is mutably borrowed.
        let (enq, egress, pfc_send, qbytes, flow, int_stamped, cn_send, cn_suppressed, flowcut) = {
            let pkt = self.packets.get_mut(id);
            let size = pkt.size as u64;
            let node = &mut self.nodes[sw as usize];
            let NodeKind::Switch(meta) = &mut node.kind else {
                unreachable!()
            };
            let ports = &node.ports;
            let eligible = meta.routes.eligible(pkt.dst());
            let weights = meta.routes.weights(pkt.dst());
            let mut flowcut = None;
            let egress = match meta.scheme {
                ForwardingScheme::Flowlet { gap } => meta.flowlets.select(
                    self.now,
                    gap,
                    meta.hasher.hash(pkt),
                    eligible,
                    &mut meta.rng,
                ),
                ForwardingScheme::Flowcut { cfg } => {
                    let (port, decision) = meta.flowcuts.select(
                        self.now,
                        cfg,
                        meta.hasher.hash(pkt),
                        eligible,
                        &mut meta.rng,
                        |p| ports[p as usize].queue.bytes(),
                        |p| ports[p as usize].up,
                    );
                    flowcut = Some(decision);
                    port
                }
                scheme => select_port(
                    scheme,
                    &meta.hasher,
                    &mut meta.rng,
                    pkt,
                    eligible,
                    weights,
                    |p| ports[p as usize].queue.bytes(),
                    |p| ports[p as usize].up,
                ),
            };
            pkt.ingress_tag = in_port;
            let enq = node.ports[egress as usize]
                .queue
                .enqueue(id, pkt.size, pkt.ecn_capable());
            if let EnqueueResult::Queued { marked: true } = enq {
                pkt.flags.set(Flags::CE);
            }
            let qbytes = node.ports[egress as usize].queue.bytes();
            // Feedback layer: INT stamping and the CN decision both look
            // at the post-enqueue occupancy of the chosen egress. The CN
            // packet itself is built after this borrow block (it needs
            // the slab), so phase 1 only collects what it will carry.
            let mut int_stamped = false;
            let mut cn_send = None;
            let mut cn_suppressed = false;
            if let EnqueueResult::Queued { marked } = enq {
                if let NodeKind::Switch(meta) = &mut node.kind {
                    if let Some(fb) = meta.feedback {
                        let hop = IntHop {
                            node: sw,
                            port: egress,
                            qbytes,
                            marked,
                        };
                        if fb.int_stamp {
                            pkt.int.get_or_insert_with(Default::default).hops.push(hop);
                            int_stamped = true;
                        }
                        if let Some(threshold) = fb.cn_threshold {
                            if qbytes > threshold {
                                if meta
                                    .cn_limiter
                                    .allow(self.now, fb.cn_min_gap, egress, pkt.flow)
                                {
                                    cn_send = Some((pkt.key, pkt.vfield, hop, fb.cn_delay));
                                } else {
                                    cn_suppressed = true;
                                }
                            }
                        }
                    }
                }
            }
            // PFC: account the buffered packet against its ingress.
            let mut pfc_send = None;
            if matches!(enq, EnqueueResult::Queued { .. }) {
                if let NodeKind::Switch(meta) = &mut node.kind {
                    if let Some(pfc) = &mut meta.pfc {
                        if pfc.on_buffered(in_port, size) == PfcAction::SendPause {
                            let ip = &node.ports[in_port as usize];
                            pfc_send = Some((ip.peer, ip.peer_port, ip.delay, true));
                        }
                    }
                }
            }
            (
                enq,
                egress,
                pfc_send,
                qbytes,
                pkt.flow,
                int_stamped,
                cn_send,
                cn_suppressed,
                flowcut,
            )
        };
        match flowcut {
            Some(FlowcutDecision::Pinned) => self.recorder.bump(Counter::FlowcutPinned),
            Some(FlowcutDecision::Rerouted) => {
                self.recorder.bump(Counter::FlowcutReroutes);
                if self.recorder.trace_wants(flow) {
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::FlowcutReroute {
                            node: sw,
                            port: egress,
                        },
                    );
                }
            }
            _ => {}
        }
        if self.recorder.trace_wants(flow) {
            self.recorder.trace_event(
                self.now,
                flow,
                TraceEvent::Hop {
                    node: sw,
                    in_port,
                    out_port: egress,
                },
            );
            match enq {
                EnqueueResult::Queued { marked } => {
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::Enqueue {
                            node: sw,
                            port: egress,
                            qbytes,
                        },
                    );
                    if marked {
                        self.recorder.trace_event(
                            self.now,
                            flow,
                            TraceEvent::EcnMark {
                                node: sw,
                                port: egress,
                            },
                        );
                    }
                }
                EnqueueResult::Dropped => {
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::Drop {
                            reason: DropReason::QueueFull,
                            node: sw,
                            port: egress,
                        },
                    );
                }
            }
            if int_stamped {
                self.recorder.trace_event(
                    self.now,
                    flow,
                    TraceEvent::IntStamp {
                        node: sw,
                        port: egress,
                        qbytes,
                    },
                );
            }
            if cn_send.is_some() {
                self.recorder.trace_event(
                    self.now,
                    flow,
                    TraceEvent::CnEmit {
                        node: sw,
                        port: egress,
                        qbytes,
                    },
                );
            }
        }
        if int_stamped {
            self.recorder.bump(Counter::IntStamps);
        }
        if cn_suppressed {
            self.recorder.bump(Counter::CnSuppressed);
        }
        if let Some((data_key, vfield, blame, cn_delay)) = cn_send {
            // Emit the back-to-sender CN: a first-class slab packet (the
            // conservation ledger counts it as injected here) delivered
            // straight to the sender host `cn_delay` later — no queues,
            // no fabric, so every shard count reproduces it identically.
            self.recorder.bump(Counter::CnSent);
            let cn = Packet::cn(flow, data_key, vfield, blame, self.now);
            let sender = cn.dst();
            let at = self.now + cn_delay;
            let cn_id = self.packets.insert(cn);
            if self.is_owned(sender) {
                self.sched.schedule(
                    at,
                    EventKind::Arrive {
                        node: sender,
                        port: 0,
                        pkt: cn_id,
                    },
                );
            } else {
                let pkt = self.packets.remove(cn_id);
                self.exported += 1;
                self.outbox.push(Handoff::Cn {
                    at,
                    node: sender,
                    pkt,
                });
            }
        }
        match enq {
            EnqueueResult::Dropped => {
                self.packets.remove(id);
                self.recorder
                    .drop_packet(self.now, DropReason::QueueFull, sw, egress);
            }
            EnqueueResult::Queued { .. } => {
                if self.recorder.wants(ProbeKind::QueueDepth) {
                    self.recorder.probe(
                        self.now,
                        SeriesKey::QueueDepth {
                            node: sw,
                            port: egress,
                        },
                        qbytes as f64,
                    );
                }
                if let Some((peer, peer_port, delay, pause)) = pfc_send {
                    self.recorder.bump(Counter::PfcPauses);
                    if self.is_owned(peer) {
                        self.sched.schedule(
                            self.now + delay,
                            EventKind::Pfc {
                                node: peer,
                                port: peer_port,
                                pause,
                            },
                        );
                    } else {
                        self.outbox.push(Handoff::Pfc {
                            at: self.now + delay,
                            node: peer,
                            port: peer_port,
                            pause,
                        });
                    }
                }
                self.try_start_tx(sw, egress);
            }
        }
    }

    fn handle_host_tx(&mut self, host: NodeId, id: PacketId) {
        debug_assert!(
            !self.nodes[host as usize].ports.is_empty(),
            "host {host} has no NIC link"
        );
        let (size, ect, flow) = {
            let pkt = self.packets.get(id);
            (pkt.size, pkt.ecn_capable(), pkt.flow)
        };
        let enq = self.nodes[host as usize].ports[0]
            .queue
            .enqueue(id, size, ect);
        if self.recorder.trace_wants(flow) {
            match enq {
                EnqueueResult::Queued { marked } => {
                    let qbytes = self.nodes[host as usize].ports[0].queue.bytes();
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::Enqueue {
                            node: host,
                            port: 0,
                            qbytes,
                        },
                    );
                    if marked {
                        self.recorder.trace_event(
                            self.now,
                            flow,
                            TraceEvent::EcnMark {
                                node: host,
                                port: 0,
                            },
                        );
                    }
                }
                EnqueueResult::Dropped => {
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::Drop {
                            reason: DropReason::QueueFull,
                            node: host,
                            port: 0,
                        },
                    );
                }
            }
        }
        match enq {
            EnqueueResult::Dropped => {
                self.packets.remove(id);
                self.recorder
                    .drop_packet(self.now, DropReason::QueueFull, host, 0);
            }
            EnqueueResult::Queued { marked } => {
                if marked {
                    self.packets.get_mut(id).flags.set(Flags::CE);
                }
                self.try_start_tx(host, 0);
            }
        }
    }

    /// If `(node, port)` is idle and unpaused, start serializing the next
    /// queued packet. Packets destined for a dead link are black-holed.
    fn try_start_tx(&mut self, node: NodeId, port: PortId) {
        loop {
            let (id, link_up) = {
                let p = &mut self.nodes[node as usize].ports[port as usize];
                if p.busy || p.paused {
                    return;
                }
                let Some(id) = p.queue.dequeue() else { return };
                (id, p.up)
            };
            let (size, ingress_tag, proto, flow) = {
                let pkt = self.packets.get(id);
                (pkt.size as u64, pkt.ingress_tag, pkt.key.proto, pkt.flow)
            };
            // PFC release: the packet left this switch's buffer.
            self.pfc_release(node, ingress_tag, size);
            if !link_up {
                self.packets.remove(id);
                if self.recorder.trace_wants(flow) {
                    self.recorder.trace_event(
                        self.now,
                        flow,
                        TraceEvent::Drop {
                            reason: DropReason::LinkDown,
                            node,
                            port,
                        },
                    );
                }
                self.recorder
                    .drop_packet(self.now, DropReason::LinkDown, node, port);
                continue;
            }
            if self.recorder.trace_wants(flow) {
                self.recorder
                    .trace_event(self.now, flow, TraceEvent::Dequeue { node, port });
            }
            let now = self.now;
            let (at, epoch) = {
                let p = &mut self.nodes[node as usize].ports[port as usize];
                p.busy = true;
                p.tx_bytes[proto_index(proto)] += size;
                p.tx_pkts += 1;
                let ser = SimTime::serialization(size, p.rate_bps);
                p.tx_end = now + ser;
                p.tx_pkt = id;
                (p.tx_end, p.tx_epoch)
            };
            if self.recorder.wants(ProbeKind::LinkUtil) {
                let p = &self.nodes[node as usize].ports[port as usize];
                let total = p.tx_bytes[0] + p.tx_bytes[1];
                self.recorder
                    .probe(self.now, SeriesKey::LinkUtil { node, port }, total as f64);
            }
            self.sched.schedule(
                at,
                EventKind::TxDone {
                    node,
                    port,
                    pkt: id,
                    epoch,
                },
            );
            return;
        }
    }

    /// Decrement PFC ingress accounting for a departing packet; send RESUME
    /// upstream if occupancy dropped below the resume threshold.
    fn pfc_release(&mut self, node: NodeId, ingress_tag: u16, size: u64) {
        if ingress_tag == INGRESS_NONE {
            return;
        }
        let resume = {
            let n = &mut self.nodes[node as usize];
            let NodeKind::Switch(meta) = &mut n.kind else {
                return;
            };
            let Some(pfc) = &mut meta.pfc else { return };
            if pfc.on_released(ingress_tag, size) == PfcAction::SendResume {
                let ip = &n.ports[ingress_tag as usize];
                Some((ip.peer, ip.peer_port, ip.delay))
            } else {
                None
            }
        };
        if let Some((peer, peer_port, delay)) = resume {
            self.recorder.bump(Counter::PfcResumes);
            if self.is_owned(peer) {
                self.sched.schedule(
                    self.now + delay,
                    EventKind::Pfc {
                        node: peer,
                        port: peer_port,
                        pause: false,
                    },
                );
            } else {
                self.outbox.push(Handoff::Pfc {
                    at: self.now + delay,
                    node: peer,
                    port: peer_port,
                    pause: false,
                });
            }
        }
    }

    fn handle_tx_done(&mut self, node: NodeId, port: PortId, id: PacketId, epoch: u16) {
        let (peer, peer_port, delay, link_up, loss_rate, ber) = {
            let p = &mut self.nodes[node as usize].ports[port as usize];
            if epoch != p.tx_epoch {
                // Superseded by a mid-run rate change; the rescheduled
                // TxDone (current epoch) is still pending.
                return;
            }
            p.busy = false;
            (p.peer, p.peer_port, p.delay, p.up, p.loss_rate, p.ber)
        };
        // Fault checks, in severity order. Each consults the departing
        // port's private fault stream only when its fault is actually
        // configured, so healthy runs make no draws at all — and since a
        // port's departure order is identical for every shard count, so is
        // its draw sequence.
        let dropped = if !link_up {
            Some(DropReason::LinkDown)
        } else if loss_rate > 0.0 && self.fault_rng_draw(node, port) < loss_rate {
            Some(DropReason::GrayLoss)
        } else if ber > 0.0 && {
            let bits = self.packets.get(id).size as i32 * 8;
            let survive = (1.0 - ber).powi(bits);
            self.fault_rng_draw(node, port) >= survive
        } {
            Some(DropReason::Corruption)
        } else {
            None
        };
        if let Some(reason) = dropped {
            let flow = self.packets.get(id).flow;
            self.packets.remove(id);
            if self.recorder.trace_wants(flow) {
                self.recorder
                    .trace_event(self.now, flow, TraceEvent::Drop { reason, node, port });
            }
            self.recorder.drop_packet(self.now, reason, node, port);
        } else {
            let arrive_at = self.now + delay + self.nodes[peer as usize].proc_delay;
            // Clear simulator-internal state before the packet enters the
            // next node.
            self.packets.get_mut(id).ingress_tag = INGRESS_NONE;
            if self.is_owned(peer) {
                self.sched.schedule(
                    arrive_at,
                    EventKind::Arrive {
                        node: peer,
                        port: peer_port,
                        pkt: id,
                    },
                );
            } else {
                // Shard boundary: the peer's owner schedules the arrival.
                let pkt = self.packets.remove(id);
                self.exported += 1;
                self.outbox.push(Handoff::Arrive {
                    at: arrive_at,
                    node: peer,
                    port: peer_port,
                    pkt,
                });
            }
        }
        self.try_start_tx(node, port);
    }

    /// Draw from `(node, port)`'s private fault stream, splitting it off
    /// the never-advanced root on first use. The split label is the
    /// directed port identity, so every worker derives the same stream for
    /// the same egress no matter which other ports are faulted.
    fn fault_rng_draw(&mut self, node: NodeId, port: PortId) -> f64 {
        let root = &self.faults_rng;
        let p = &mut self.nodes[node as usize].ports[port as usize];
        p.fault_rng
            .get_or_insert_with(|| root.split(((node as u64) << 16) | port as u64))
            .gen_f64()
    }

    fn handle_pfc(&mut self, node: NodeId, port: PortId, pause: bool) {
        self.nodes[node as usize].ports[port as usize].paused = pause;
        if !pause {
            self.try_start_tx(node, port);
        }
    }

    fn handle_link_state(&mut self, node: NodeId, port: PortId, up: bool) {
        let (peer, peer_port) = self.peer_of(node, port);
        self.nodes[node as usize].ports[port as usize].up = up;
        self.nodes[peer as usize].ports[peer_port as usize].up = up;
        if up {
            self.try_start_tx(node, port);
            self.try_start_tx(peer, peer_port);
        } else {
            // Black-hole anything already queued towards the dead link.
            self.try_start_tx(node, port);
            self.try_start_tx(peer, peer_port);
        }
    }
}

#[inline]
fn proto_index(p: Proto) -> usize {
    match p {
        Proto::Tcp => 0,
        Proto::Udp => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, HostId, Packet, MSS};

    /// An agent that sends `count` MSS-sized packets to `dst` at start and
    /// counts everything it receives.
    struct Blaster {
        dst: HostId,
        count: u32,
        received: std::rc::Rc<std::cell::Cell<u32>>,
        echo: bool,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let src = ctx.host();
            for i in 0..self.count {
                let key = FlowKey {
                    src,
                    dst: self.dst,
                    sport: 1,
                    dport: 2,
                    proto: Proto::Tcp,
                };
                let pkt = Packet::data(0, key, 0, i as u64 * MSS as u64, MSS, ctx.now());
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.set(self.received.get() + 1);
            if self.echo {
                let ack = Packet::ack_packet(
                    pkt.flow,
                    pkt.key,
                    0,
                    pkt.seq + pkt.payload as u64,
                    pkt.tstamp,
                );
                ctx.send(ack);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    fn two_hosts_one_switch() -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(7);
        let h0 = sim.add_host_default();
        let h1 = sim.add_host_default();
        let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
        sim.connect(h0, sw, LinkSpec::host_10g());
        sim.connect(h1, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(2);
        rt.set(h0, vec![0]);
        rt.set(h1, vec![1]);
        sim.set_routes(sw, rt);
        (sim, h0, h1, sw)
    }

    #[test]
    fn packets_traverse_a_switch() {
        let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
        let received = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 10,
                received: received.clone(),
                echo: false,
            }),
        );
        let sink = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h1,
                count: 0,
                received: sink.clone(),
                echo: false,
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(sink.get(), 10);
        assert_eq!(received.get(), 0);
    }

    #[test]
    fn latency_matches_paper_delay_model() {
        // One-way latency for one MSS packet host->switch->host:
        //   20us TX stack + 1.2us ser + 100ns wire + 1us switch proc
        // + 1.2us ser + 100ns wire + 20us RX stack = 43.6us
        let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
        let sink = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 1,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h1,
                count: 0,
                received: sink.clone(),
                echo: false,
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(sink.get(), 1);
        let expect = SimTime::from_us(20)
            + SimTime::serialization(1500, 10_000_000_000)
            + SimTime::from_ns(100)
            + SimTime::from_us(1)
            + SimTime::serialization(1500, 10_000_000_000)
            + SimTime::from_ns(100)
            + SimTime::from_us(20);
        assert_eq!(sim.now(), expect);
    }

    #[test]
    fn rtt_matches_paper_model_with_echo() {
        // Round trip with an ACK (40B) on the way back adds the reverse
        // direction: 20 + ack_ser + .1 + 1 + ack_ser + .1 + 20.
        let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
        let got_ack = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 1,
                received: got_ack.clone(),
                echo: false,
            }),
        );
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h1,
                count: 0,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: true,
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(got_ack.get(), 1);
        let data_ser = SimTime::serialization(1500, 10_000_000_000);
        let ack_ser = SimTime::serialization(40, 10_000_000_000);
        let hop = SimTime::from_ns(100);
        let one_way_data = SimTime::from_us(20)
            + data_ser
            + hop
            + SimTime::from_us(1)
            + data_ser
            + hop
            + SimTime::from_us(20);
        let one_way_ack = SimTime::from_us(20)
            + ack_ser
            + hop
            + SimTime::from_us(1)
            + ack_ser
            + hop
            + SimTime::from_us(20);
        assert_eq!(sim.now(), one_way_data + one_way_ack);
        // The paper's "~90us baremetal RTT" arithmetic (4 host delays +
        // per-switch delays) should be in the right ballpark here: 1 switch
        // each way -> 82us + serialization.
        assert!(sim.now() > SimTime::from_us(82) && sim.now() < SimTime::from_us(90));
    }

    #[test]
    fn dead_link_black_holes_traffic() {
        let (mut sim, h0, h1, sw) = two_hosts_one_switch();
        let sink = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 5,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h1,
                count: 0,
                received: sink.clone(),
                echo: false,
            }),
        );
        // Kill the switch->h1 link before anything is sent.
        sim.schedule_link_state(sw, 1, false, SimTime::ZERO);
        sim.run_to_quiescence();
        assert_eq!(sink.get(), 0);
        assert_eq!(sim.recorder().get(Counter::LinkDrops), 5);
    }

    #[test]
    fn deterministic_event_counts() {
        let run = || {
            let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
            let sink = std::rc::Rc::new(std::cell::Cell::new(0));
            sim.set_agent(
                h0,
                Box::new(Blaster {
                    dst: h1,
                    count: 50,
                    received: std::rc::Rc::new(std::cell::Cell::new(0)),
                    echo: false,
                }),
            );
            sim.set_agent(
                h1,
                Box::new(Blaster {
                    dst: h1,
                    count: 0,
                    received: sink.clone(),
                    echo: true,
                }),
            );
            sim.run_to_quiescence();
            (sim.events_processed(), sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn port_stats_account_tx_bytes() {
        let (mut sim, h0, h1, sw) = two_hosts_one_switch();
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 4,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        sim.run_to_quiescence();
        let host_port = sim.port_stats(h0, 0);
        assert_eq!(host_port.tx_pkts, 4);
        assert_eq!(host_port.tx_bytes_tcp, 4 * 1500);
        assert_eq!(host_port.tx_bytes_udp, 0);
        let sw_port = sim.port_stats(sw, 1);
        assert_eq!(sw_port.tx_pkts, 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 1,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        sim.run_until(SimTime::from_us(5));
        // Only the HostTx (at 20us) is pending; nothing has fired except
        // agent starts. Clock parked exactly at the deadline.
        assert_eq!(sim.now(), SimTime::from_us(5));
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(sim.now(), SimTime::from_ms(1));
    }

    #[test]
    fn queue_watcher_samples_on_schedule_and_stops() {
        let (mut sim, h0, h1, sw) = two_hosts_one_switch();
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 200,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        let w = sim.watch_queue(sw, 1, SimTime::from_us(10), SimTime::from_us(100));
        sim.run_to_quiescence();
        let samples = sim.queue_samples(w);
        // One sample at t=0 plus one every 10us through t=100us inclusive.
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0].0, SimTime::ZERO);
        assert_eq!(samples[10].0, SimTime::from_us(100));
        // 200 back-to-back packets from a single 10G sender drain at line
        // rate: the switch queue stays empty at every sampling instant
        // (store-and-forward, equal rates) — the watcher must report that
        // faithfully rather than inventing occupancy.
        assert!(samples.iter().all(|&(_, b)| b <= 3000), "{samples:?}");
        // And the simulation still quiesced (bounded watcher).
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn set_link_rate_changes_serialization() {
        let (mut sim, h0, h1, _sw) = two_hosts_one_switch();
        sim.set_link_rate(h0, 0, 1_000_000_000); // 1G host uplink
        let sink = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h1,
                count: 100,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h1,
                count: 0,
                received: sink.clone(),
                echo: false,
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(sink.get(), 100);
        // 100 x 1500B at 1G = 1.2ms of serialization at the slow link alone.
        assert!(sim.now() > SimTime::from_ms(1), "now = {}", sim.now());
        assert_eq!(sim.link_rate(h0, 0), 1_000_000_000);
    }

    #[test]
    #[should_panic]
    fn set_agent_on_switch_panics() {
        let mut sim = Simulator::new(1);
        let sw = sim.add_switch(SwitchConfig::rps());
        sim.set_agent(sw, Box::new(NullAgent));
    }

    /// Three hosts on one switch with feedback `fb`; h0 and h1 send
    /// towards h2 (convergecast, so the egress queue actually builds).
    fn feedback_world(fb: FeedbackConfig) -> (Simulator, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(7);
        let h0 = sim.add_host_default();
        let h1 = sim.add_host_default();
        let h2 = sim.add_host_default();
        let sw = sim
            .add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField).with_feedback(fb));
        sim.connect(h0, sw, LinkSpec::host_10g());
        sim.connect(h1, sw, LinkSpec::host_10g());
        sim.connect(h2, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(3);
        rt.set(h0, vec![0]);
        rt.set(h1, vec![1]);
        rt.set(h2, vec![2]);
        sim.set_routes(sw, rt);
        (sim, h0, h1, h2)
    }

    /// Counts delivered packets that carry an INT stack.
    struct IntProbe {
        stamped: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl Agent for IntProbe {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            if let Some(stack) = &pkt.int {
                assert_eq!(stack.hops.len(), 1, "one switch on this path");
                assert!(stack.hops[0].qbytes > 0, "post-enqueue occupancy");
                self.stamped.set(self.stamped.get() + 1);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    #[test]
    fn int_stamps_every_forwarded_packet() {
        let (mut sim, h0, _h1, h2) = feedback_world(FeedbackConfig::int_only());
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h2,
                count: 5,
                received: std::rc::Rc::new(std::cell::Cell::new(0)),
                echo: false,
            }),
        );
        let stamped = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h2,
            Box::new(IntProbe {
                stamped: stamped.clone(),
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(stamped.get(), 5, "every data packet carries its hop");
        assert_eq!(sim.recorder().get(Counter::IntStamps), 5);
        assert_eq!(sim.recorder().get(Counter::CnSent), 0, "CN disabled");
        sim.assert_conservation();
    }

    #[test]
    fn cn_emitted_on_congested_queue_and_delivered_to_senders() {
        // Two line-rate senders into one egress: the queue crosses 3000 B
        // (two packets deep) almost immediately.
        let (mut sim, h0, h1, h2) = feedback_world(FeedbackConfig::cn(3000));
        let cn_at_h0 = std::rc::Rc::new(std::cell::Cell::new(0));
        let cn_at_h1 = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h0,
            Box::new(Blaster {
                dst: h2,
                count: 30,
                received: cn_at_h0.clone(),
                echo: false,
            }),
        );
        sim.set_agent(
            h1,
            Box::new(Blaster {
                dst: h2,
                count: 30,
                received: cn_at_h1.clone(),
                echo: false,
            }),
        );
        let sink = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.set_agent(
            h2,
            Box::new(Blaster {
                dst: h2,
                count: 0,
                received: sink.clone(),
                echo: false,
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(sink.get(), 60, "all data still delivered");
        let sent = sim.recorder().get(Counter::CnSent);
        assert!(sent > 0, "congested queue must emit CNs");
        assert_eq!(
            sim.recorder().get(Counter::CnDelivered),
            sent,
            "every CN reaches its sender"
        );
        // h2 sent nothing, so everything h0/h1 received is a CN.
        assert_eq!(u64::from(cn_at_h0.get() + cn_at_h1.get()), sent);
        // The per-(port, flow) limiter paces emission: with a 100 µs gap
        // and a run much shorter than 2 x 100 µs, at most one CN per flow
        // escaped suppression beyond the first.
        assert!(
            sent <= 2 * 2,
            "rate limiter must pace per (port, flow): {sent}"
        );
        sim.assert_conservation();
    }
}
