//! A free-list slab owning every in-flight [`Packet`].
//!
//! The event queue used to carry whole `Packet`s inside event payloads, so
//! every heap sift copied ~80 bytes. Instead, the simulator owns a
//! [`PacketSlab`] and events carry a 4-byte [`PacketId`]; the packet is
//! materialised exactly once (when an agent hands it to [`crate::Ctx::send`])
//! and moved out exactly once (delivery to the destination agent, or a
//! drop). Slots are recycled through a LIFO free list, which keeps the slab
//! dense, cache-warm, and — because ids are handed out by a deterministic
//! rule — bit-for-bit reproducible across runs.

use crate::packet::Packet;

/// Index of a live packet in a [`PacketSlab`].
///
/// Ids are only meaningful to the slab that issued them and only until the
/// packet is removed; the slab panics on stale or foreign ids rather than
/// returning garbage.
pub type PacketId = u32;

/// Slab of in-flight packets with LIFO slot reuse.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<PacketId>,
    live: usize,
    peak: usize,
    inserted: u64,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> Self {
        PacketSlab::default()
    }

    /// Insert `pkt`, returning its id. Reuses the most recently freed slot
    /// if one exists (LIFO keeps hot slots hot).
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketId {
        self.inserted += 1;
        self.live += 1;
        if self.live > self.peak {
            self.peak = self.live;
        }
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(pkt);
                id
            }
            None => {
                let id = self.slots.len() as PacketId;
                self.slots.push(Some(pkt));
                id
            }
        }
    }

    /// Move the packet out of the slab, freeing its slot.
    ///
    /// Panics if `id` is stale (already removed) or was never issued.
    #[inline]
    pub fn remove(&mut self, id: PacketId) -> Packet {
        let pkt = self.slots[id as usize]
            .take()
            .expect("stale packet id: slot already freed");
        self.live -= 1;
        self.free.push(id);
        pkt
    }

    /// Borrow the packet behind `id`. Panics on stale ids.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slots[id as usize]
            .as_ref()
            .expect("stale packet id: slot already freed")
    }

    /// Mutably borrow the packet behind `id`. Panics on stale ids.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.slots[id as usize]
            .as_mut()
            .expect("stale packet id: slot already freed")
    }

    /// Number of live (in-flight) packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no packet is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of simultaneously live packets (diagnostics: the
    /// slab's memory footprint is `peak * size_of::<Packet>()`).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total packets ever inserted (the "injected" side of the conservation
    /// audit: every packet the slab issued must end up delivered, dropped
    /// with a reason, or still live here).
    pub fn total_inserted(&self) -> u64 {
        self.inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Proto, MSS};
    use crate::time::SimTime;

    fn pkt(seq: u64) -> Packet {
        let key = FlowKey {
            src: 1,
            dst: 2,
            sport: 3,
            dport: 4,
            proto: Proto::Tcp,
        };
        Packet::data(0, key, 0, seq, MSS, SimTime::ZERO)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        let b = slab.insert(pkt(2));
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).seq, 1);
        slab.get_mut(b).seq = 99;
        assert_eq!(slab.remove(b).seq, 99);
        assert_eq!(slab.remove(a).seq, 1);
        assert!(slab.is_empty());
        assert_eq!(slab.peak(), 2);
        assert_eq!(slab.total_inserted(), 2, "inserted never decrements");
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        let b = slab.insert(pkt(2));
        slab.remove(a);
        slab.remove(b);
        // LIFO: b's slot comes back first, then a's; no new slots grown.
        assert_eq!(slab.insert(pkt(3)), b);
        assert_eq!(slab.insert(pkt(4)), a);
        assert_eq!(slab.len(), 2);
    }

    #[test]
    #[should_panic(expected = "stale packet id")]
    fn stale_id_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1));
        slab.remove(a);
        slab.get(a);
    }
}
