//! Switch models: forwarding schemes, routing tables, and PFC state.
//!
//! The paper compares four load-balancing designs. Three of them live in the
//! switch (the fourth, FlowBender, is pure end-host logic riding on the
//! [`ForwardingScheme::EcmpHash`] switch with the V-field enabled):
//!
//! * **ECMP** — static hash of header fields picks one of the equal-cost
//!   egress ports; same flow, same path, forever.
//! * **RPS** (Random Packet Spraying) — every packet independently picks a
//!   uniformly random eligible egress port.
//! * **DeTail-style adaptive** — every packet picks the *least congested*
//!   eligible egress port (full comparison across all candidates, the
//!   paper's "best-possible DeTail"), combined with PFC for losslessness.
//!
//! Routing tables map destination host → the set of eligible egress ports,
//! as computed by the `topology` crate.

use crate::hashing::{DetHashMap, EcmpHasher};
use crate::packet::{FlowId, Packet, PortId};
use crate::rng::DetRng;
use crate::time::SimTime;

/// How a switch picks among equal-cost egress ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingScheme {
    /// Hash-based static flow-to-path assignment (ECMP; also carries
    /// FlowBender traffic when the hasher covers the V-field).
    EcmpHash,
    /// Per-packet uniform random spraying (RPS).
    Rps,
    /// Per-packet least-queued adaptive routing (DeTail's load balancer).
    /// Locally failed links are excluded (a switch knows its own link
    /// state); remote failures are invisible, matching the paper's
    /// critique of link-level schemes.
    Adaptive,
    /// Flowlet switching (LetFlow-style): a flow keeps its port while its
    /// packets arrive within `gap` of each other; an idle gap larger than
    /// that starts a new flowlet on a uniformly random eligible port.
    /// Reordering is avoided as long as `gap` exceeds the path-delay
    /// difference. A contemporary (CONGA/LetFlow) baseline beyond the
    /// paper's four schemes.
    Flowlet {
        /// Inactivity gap that ends a flowlet.
        gap: SimTime,
    },
    /// Flowcut switching (Bonato et al.): a flow is pinned to one egress
    /// until a *flowcut boundary* — an idle gap long enough that every
    /// in-flight packet of the flow has drained ahead — and only at a
    /// boundary may the switch re-route, adaptively, to the least-queued
    /// eligible port. Unlike [`ForwardingScheme::Flowlet`], the boundary
    /// re-route is load-triggered (an uncongested pinned egress holds its
    /// path) and adaptive rather than random, so the scheme combines
    /// in-order delivery with congestion-aware path selection.
    Flowcut {
        /// Detection and re-route parameters.
        cfg: FlowcutConfig,
    },
}

/// Parameters of switch-side flowcut switching
/// ([`ForwardingScheme::Flowcut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowcutConfig {
    /// Idle gap that ends a flowcut. Re-routing is only permitted after
    /// the flow has been silent this long at the switch, which is the
    /// in-order safety condition: choose it larger than the fabric's
    /// path-delay skew and every packet of the previous flowcut has
    /// drained before the next one can take a different path.
    pub gap: SimTime,
    /// Load trigger: at a boundary, re-route only if the pinned egress
    /// queue holds more than this many bytes. `None` re-evaluates the
    /// path at every boundary regardless of load.
    pub load_threshold: Option<u64>,
}

impl FlowcutConfig {
    /// Flowcut detection with idle gap `gap` and the default load trigger
    /// (re-route at a boundary only when the pinned egress queue exceeds
    /// one MTU — a quiet path is never abandoned).
    pub fn new(gap: SimTime) -> Self {
        FlowcutConfig {
            gap,
            load_threshold: Some(crate::packet::MTU as u64),
        }
    }

    /// Override the load trigger (`None` = re-evaluate at every boundary).
    pub fn with_load_threshold(mut self, threshold: Option<u64>) -> Self {
        self.load_threshold = threshold;
        self
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        assert!(self.gap.as_ps() > 0, "flowcut gap must be positive");
    }
}

/// What [`FlowcutState::select`] decided for one packet (the simulator
/// turns these into counters and trace events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowcutDecision {
    /// First packet of a flow at this switch: a new flowcut started.
    Start,
    /// Mid-flowcut: the packet followed the pinned egress.
    Pinned,
    /// Boundary reached, but the pinned egress was kept (load below the
    /// trigger, or it was still the best choice).
    Held,
    /// Boundary reached and the flowcut moved to a different egress.
    Rerouted,
}

/// Per-switch flowcut table: flow hash → (last packet seen, pinned port).
///
/// Like [`FlowletState`], entries are never evicted and the table is
/// driven purely by the switch's local arrival order — which sharding
/// does not change — so flowcut runs are byte-identical across shard
/// counts by construction.
#[derive(Debug, Default)]
pub struct FlowcutState {
    table: DetHashMap<u64, (SimTime, PortId)>,
}

impl FlowcutState {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the egress port for a packet of flow `flow_hash` arriving at
    /// `now`. Within a flowcut the pinned port is authoritative; at a
    /// boundary (idle gap exceeded, pinned port unusable, or first
    /// packet) the least-queued live eligible port is chosen, with the
    /// load trigger able to veto a move off an uncongested pinned egress.
    #[allow(clippy::too_many_arguments)]
    pub fn select(
        &mut self,
        now: SimTime,
        cfg: FlowcutConfig,
        flow_hash: u64,
        eligible: &[PortId],
        rng: &mut DetRng,
        queue_bytes: impl Fn(PortId) -> u64,
        link_up: impl Fn(PortId) -> bool,
    ) -> (PortId, FlowcutDecision) {
        debug_assert!(!eligible.is_empty());
        match self.table.get_mut(&flow_hash) {
            Some((last, port)) if eligible.contains(port) && link_up(*port) => {
                let idle = now.saturating_sub(*last);
                *last = now;
                if idle <= cfg.gap {
                    // Mid-flowcut: packets of this flowcut may still be in
                    // flight on the pinned path; moving now could overtake
                    // them. Stay pinned unconditionally.
                    (*port, FlowcutDecision::Pinned)
                } else if cfg.load_threshold.is_some_and(|t| queue_bytes(*port) <= t) {
                    // Boundary, but the pinned egress is uncongested: the
                    // load trigger holds the path.
                    (*port, FlowcutDecision::Held)
                } else {
                    let next = adaptive_pick(eligible, rng, &queue_bytes, &link_up);
                    let moved = next != *port;
                    *port = next;
                    (
                        next,
                        if moved {
                            FlowcutDecision::Rerouted
                        } else {
                            FlowcutDecision::Held
                        },
                    )
                }
            }
            _ => {
                // First packet of the flow here, or the pinned port became
                // unusable (routing change / local link death): start a
                // fresh flowcut on the best live port.
                let port = adaptive_pick(eligible, rng, &queue_bytes, &link_up);
                self.table.insert(flow_hash, (now, port));
                (port, FlowcutDecision::Start)
            }
        }
    }

    /// Number of tracked flows (diagnostics).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no flow is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Per-switch flowlet table: flow hash → (last packet seen, chosen port).
///
/// Entries are never evicted — at simulation scale the table stays small,
/// and keeping them preserves the "same port while active" invariant.
/// Backed by a [`DetHashMap`]: the lookup runs once per packet on the
/// flowlet fast path, where SipHash would dominate the whole selection.
#[derive(Debug, Default)]
pub struct FlowletState {
    table: DetHashMap<u64, (SimTime, PortId)>,
}

impl FlowletState {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the egress port for a packet of flow `flow_hash` arriving at
    /// `now`: sticky while the inter-packet gap stays within `gap`,
    /// re-drawn uniformly at random otherwise.
    pub fn select(
        &mut self,
        now: SimTime,
        gap: SimTime,
        flow_hash: u64,
        eligible: &[PortId],
        rng: &mut DetRng,
    ) -> PortId {
        debug_assert!(!eligible.is_empty());
        match self.table.get_mut(&flow_hash) {
            Some((last, port)) if now.saturating_sub(*last) <= gap && eligible.contains(port) => {
                *last = now;
                *port
            }
            _ => {
                let port = eligible[rng.gen_index(eligible.len())];
                self.table.insert(flow_hash, (now, port));
                port
            }
        }
    }

    /// Number of tracked flows (diagnostics).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no flow is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// PFC (IEEE 802.1Qbb priority flow control) thresholds, in bytes of
/// per-ingress buffered data. The paper's DeTail configuration pauses at
/// 20 KB and resumes at 10 KB (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcConfig {
    /// Send PAUSE upstream when per-ingress occupancy exceeds this.
    pub pause_threshold: u64,
    /// Send RESUME when occupancy falls back below this.
    pub resume_threshold: u64,
}

impl PfcConfig {
    /// The paper's DeTail setting: pause at 20 KB, resume at 10 KB.
    pub fn detail_defaults() -> Self {
        PfcConfig {
            pause_threshold: 20_000,
            resume_threshold: 10_000,
        }
    }
}

/// Switch-assisted feedback: opt-in INT per-hop telemetry stamping and
/// switch-generated early congestion notifications (CN), the P4-style
/// fast-feedback layer. Entirely off by default — a fabric without a
/// `FeedbackConfig` forwards byte-identically to one that predates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackConfig {
    /// Stamp an [`crate::IntHop`] (node, egress port, queue bytes, ECN
    /// state) into every forwarded packet's INT stack.
    pub int_stamp: bool,
    /// Emit a CN packet back to the sender when the egress queue exceeds
    /// this many bytes at enqueue; `None` disables CN generation.
    pub cn_threshold: Option<u64>,
    /// Minimum spacing between CNs per (egress port, flow): one
    /// outstanding notification per RTT, so a congested queue can't storm
    /// the sender.
    pub cn_min_gap: SimTime,
    /// Fixed delivery latency of a CN back to the source host. Modeled as
    /// a constant (the CN skips data queues, like a priority-queued
    /// control frame) so feedback timing is independent of fabric load —
    /// and of how the fabric is sharded.
    pub cn_delay: SimTime,
}

impl FeedbackConfig {
    /// INT stamping only: per-hop telemetry, no switch-generated packets.
    pub fn int_only() -> Self {
        FeedbackConfig {
            int_stamp: true,
            cn_threshold: None,
            cn_min_gap: SimTime::from_us(100),
            cn_delay: SimTime::from_us(20),
        }
    }

    /// CN generation at `threshold` bytes of egress queue, with the
    /// default pacing (one CN per (port, flow) per ~RTT of 100 µs) and a
    /// 20 µs constant return latency — roughly the reverse-path wire +
    /// host-RX-stack time, and several times faster than the ~86 µs
    /// end-to-end echo it pre-empts.
    pub fn cn(threshold: u64) -> Self {
        FeedbackConfig {
            int_stamp: false,
            cn_threshold: Some(threshold),
            cn_min_gap: SimTime::from_us(100),
            cn_delay: SimTime::from_us(20),
        }
    }

    /// Both INT stamping and CN generation.
    pub fn full(threshold: u64) -> Self {
        FeedbackConfig {
            int_stamp: true,
            ..FeedbackConfig::cn(threshold)
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        if let Some(t) = self.cn_threshold {
            assert!(t > 0, "CN threshold must be positive");
            assert!(self.cn_min_gap.as_ps() > 0, "CN min gap must be positive");
            assert!(self.cn_delay.as_ps() > 0, "CN delay must be positive");
        }
    }
}

/// Per-switch CN pacing state: at most one notification per
/// (egress port, flow) per [`FeedbackConfig::cn_min_gap`].
///
/// Pure bookkeeping (no simulator types beyond ids and time), so the
/// "never more than one outstanding CN per (port, flow) per gap"
/// guarantee is property-testable in isolation.
#[derive(Debug, Default)]
pub struct CnLimiter {
    /// (egress port, flow) → earliest time the next CN may be emitted.
    next_allowed: DetHashMap<(PortId, FlowId), SimTime>,
}

impl CnLimiter {
    /// Create an empty limiter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a CN may be emitted at `now` for `(port, flow)`. When it
    /// may, the emission is registered and the next one is blocked until
    /// `now + min_gap`.
    pub fn allow(&mut self, now: SimTime, min_gap: SimTime, port: PortId, flow: FlowId) -> bool {
        match self.next_allowed.get_mut(&(port, flow)) {
            Some(next) if now < *next => false,
            Some(next) => {
                *next = now + min_gap;
                true
            }
            None => {
                self.next_allowed.insert((port, flow), now + min_gap);
                true
            }
        }
    }

    /// Number of (port, flow) pairs tracked (diagnostics).
    pub fn len(&self) -> usize {
        self.next_allowed.len()
    }

    /// True if no pair is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.next_allowed.is_empty()
    }
}
///
/// `eligible(dst)` returns the egress ports on which the destination host
/// is reachable; `weights(dst)` returns matching WCMP weights (empty =
/// equal cost). Real switches implement WCMP by replicating ECMP table
/// entries in proportion to the weights — same hash engine, uneven
/// shares — which is exactly how [`crate::hashing::EcmpHasher`] consumes
/// them. Tables are dense vectors because host ids are dense (0..n_hosts).
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    per_dst: Vec<Vec<PortId>>,
    /// Parallel to `per_dst`; empty inner vec = equal weights.
    per_dst_weights: Vec<Vec<u32>>,
}

impl RoutingTable {
    /// Build an empty table for `n_hosts` destinations.
    pub fn new(n_hosts: usize) -> Self {
        RoutingTable {
            per_dst: vec![Vec::new(); n_hosts],
            per_dst_weights: vec![Vec::new(); n_hosts],
        }
    }

    /// Set the eligible egress ports towards `dst` (equal-cost).
    pub fn set(&mut self, dst: u32, ports: Vec<PortId>) {
        self.per_dst[dst as usize] = ports;
        self.per_dst_weights[dst as usize].clear();
    }

    /// Set eligible ports towards `dst` with WCMP weights (§4.3.1's
    /// weighted-cost multipathing). Zero-weight ports are legal (they are
    /// never selected) but at least one weight must be positive.
    pub fn set_weighted(&mut self, dst: u32, ports: Vec<PortId>, weights: Vec<u32>) {
        assert_eq!(ports.len(), weights.len(), "weights must match ports");
        assert!(weights.iter().any(|&w| w > 0), "all-zero WCMP weights");
        self.per_dst[dst as usize] = ports;
        self.per_dst_weights[dst as usize] = weights;
    }

    /// Eligible egress ports towards `dst`. Empty means unreachable
    /// (a routing bug — the simulator treats it as a hard error).
    pub fn eligible(&self, dst: u32) -> &[PortId] {
        &self.per_dst[dst as usize]
    }

    /// WCMP weights towards `dst`; empty slice = equal cost.
    pub fn weights(&self, dst: u32) -> &[u32] {
        &self.per_dst_weights[dst as usize]
    }

    /// Number of destinations this table covers.
    pub fn len(&self) -> usize {
        self.per_dst.len()
    }

    /// True if the table covers no destinations.
    pub fn is_empty(&self) -> bool {
        self.per_dst.is_empty()
    }
}

/// Per-ingress-port PFC accounting state for one switch.
#[derive(Debug)]
pub struct PfcState {
    cfg: PfcConfig,
    /// Bytes buffered in this switch attributed to each ingress port.
    ingress_bytes: Vec<u64>,
    /// Whether we have an outstanding PAUSE towards each ingress' upstream.
    pause_sent: Vec<bool>,
}

/// What the PFC bookkeeping asks the simulator to do after an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfcAction {
    /// Nothing to send.
    None,
    /// Send a PAUSE frame to the upstream of this ingress port.
    SendPause,
    /// Send a RESUME frame to the upstream of this ingress port.
    SendResume,
}

impl PfcState {
    /// Create state for a switch with `n_ports` ports.
    pub fn new(cfg: PfcConfig, n_ports: usize) -> Self {
        assert!(
            cfg.resume_threshold <= cfg.pause_threshold,
            "resume threshold must not exceed pause threshold"
        );
        PfcState {
            cfg,
            ingress_bytes: vec![0; n_ports],
            pause_sent: vec![false; n_ports],
        }
    }

    /// Extend the accounting to one more port (called as the simulator
    /// builder wires up links).
    pub fn add_port(&mut self) {
        self.ingress_bytes.push(0);
        self.pause_sent.push(false);
    }

    /// Account a packet of `bytes` arriving via `ingress` and staying
    /// buffered; returns whether a PAUSE must be sent upstream.
    pub fn on_buffered(&mut self, ingress: u16, bytes: u64) -> PfcAction {
        let b = &mut self.ingress_bytes[ingress as usize];
        *b += bytes;
        if *b > self.cfg.pause_threshold && !self.pause_sent[ingress as usize] {
            self.pause_sent[ingress as usize] = true;
            PfcAction::SendPause
        } else {
            PfcAction::None
        }
    }

    /// Account a packet of `bytes` leaving the buffer that had arrived via
    /// `ingress`; returns whether a RESUME must be sent upstream.
    pub fn on_released(&mut self, ingress: u16, bytes: u64) -> PfcAction {
        let b = &mut self.ingress_bytes[ingress as usize];
        debug_assert!(*b >= bytes, "PFC accounting underflow");
        *b -= bytes;
        if *b < self.cfg.resume_threshold && self.pause_sent[ingress as usize] {
            self.pause_sent[ingress as usize] = false;
            PfcAction::SendResume
        } else {
            PfcAction::None
        }
    }

    /// Current buffered bytes attributed to `ingress`.
    pub fn ingress_bytes(&self, ingress: u16) -> u64 {
        self.ingress_bytes[ingress as usize]
    }

    /// Whether a PAUSE is outstanding for `ingress`.
    pub fn is_pausing(&self, ingress: u16) -> bool {
        self.pause_sent[ingress as usize]
    }
}

/// Pick an egress port for `pkt` among `eligible` according to `scheme`.
///
/// `weights` are WCMP weights parallel to `eligible` (empty = equal cost;
/// only the hash-based scheme honours them, like real silicon).
/// `queue_bytes(port)` reports the instantaneous egress occupancy (used by
/// `Adaptive`); `link_up(port)` reports local link state (Adaptive skips
/// locally dead links; hash/RPS do not, faithfully modelling oblivious
/// schemes that keep black-holing until routing reconverges).
#[allow(clippy::too_many_arguments)]
pub fn select_port(
    scheme: ForwardingScheme,
    hasher: &EcmpHasher,
    rng: &mut DetRng,
    pkt: &Packet,
    eligible: &[PortId],
    weights: &[u32],
    queue_bytes: impl Fn(PortId) -> u64,
    link_up: impl Fn(PortId) -> bool,
) -> PortId {
    assert!(!eligible.is_empty(), "no route to host {}", pkt.dst());
    if eligible.len() == 1 {
        return eligible[0];
    }
    match scheme {
        ForwardingScheme::EcmpHash if !weights.is_empty() => {
            eligible[hasher.select_weighted(pkt, weights)]
        }
        ForwardingScheme::EcmpHash => eligible[hasher.select(pkt, eligible.len())],
        ForwardingScheme::Rps => eligible[rng.gen_index(eligible.len())],
        ForwardingScheme::Adaptive => adaptive_pick(eligible, rng, &queue_bytes, &link_up),
        ForwardingScheme::Flowlet { .. } | ForwardingScheme::Flowcut { .. } => {
            unreachable!("flowlet/flowcut selection is stateful; the simulator handles it")
        }
    }
}

/// Least-occupied among live local links, with an unbiased
/// (reservoir-sampled) random tie-break. Shared by the DeTail-style
/// [`ForwardingScheme::Adaptive`] per-packet path and the boundary
/// re-route of [`FlowcutState`]. If every local link is down, falls back
/// to the first eligible port (the packet will be black-holed, as it
/// would in reality).
fn adaptive_pick(
    eligible: &[PortId],
    rng: &mut DetRng,
    queue_bytes: &impl Fn(PortId) -> u64,
    link_up: &impl Fn(PortId) -> bool,
) -> PortId {
    let mut best: Option<PortId> = None;
    let mut best_bytes = u64::MAX;
    let mut ties = 0u32;
    for &p in eligible {
        if !link_up(p) {
            continue;
        }
        let b = queue_bytes(p);
        if b < best_bytes {
            best = Some(p);
            best_bytes = b;
            ties = 1;
        } else if b == best_bytes {
            // Reservoir-sample among ties for an unbiased pick.
            ties += 1;
            if rng.gen_range(ties) == 0 {
                best = Some(p);
            }
        }
    }
    best.unwrap_or(eligible[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashConfig;
    use crate::packet::{FlowKey, Proto};
    use crate::time::SimTime;

    fn pkt(sport: u16) -> Packet {
        let key = FlowKey {
            src: 1,
            dst: 5,
            sport,
            dport: 80,
            proto: Proto::Tcp,
        };
        Packet::data(0, key, 0, 0, 1460, SimTime::ZERO)
    }

    fn hasher() -> EcmpHasher {
        EcmpHasher::new(HashConfig::FiveTupleAndVField, 42)
    }

    #[test]
    fn routing_table_set_get() {
        let mut rt = RoutingTable::new(8);
        rt.set(5, vec![1, 2, 3]);
        assert_eq!(rt.eligible(5), &[1, 2, 3]);
        assert!(rt.eligible(0).is_empty());
        assert_eq!(rt.len(), 8);
    }

    #[test]
    fn ecmp_is_static_per_flow() {
        let h = hasher();
        let mut rng = DetRng::new(1, 1);
        let elig = vec![0, 1, 2, 3];
        let first = select_port(
            ForwardingScheme::EcmpHash,
            &h,
            &mut rng,
            &pkt(7),
            &elig,
            &[],
            |_| 0,
            |_| true,
        );
        for _ in 0..20 {
            let again = select_port(
                ForwardingScheme::EcmpHash,
                &h,
                &mut rng,
                &pkt(7),
                &elig,
                &[],
                |_| 0,
                |_| true,
            );
            assert_eq!(again, first);
        }
    }

    #[test]
    fn rps_uses_all_ports() {
        let h = hasher();
        let mut rng = DetRng::new(1, 1);
        let elig = vec![0, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let p = select_port(
                ForwardingScheme::Rps,
                &h,
                &mut rng,
                &pkt(7),
                &elig,
                &[],
                |_| 0,
                |_| true,
            );
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adaptive_picks_least_queued() {
        let h = hasher();
        let mut rng = DetRng::new(1, 1);
        let elig = vec![0, 1, 2, 3];
        let occupancy = |p: PortId| match p {
            0 => 5000,
            1 => 100,
            2 => 9000,
            _ => 700,
        };
        let p = select_port(
            ForwardingScheme::Adaptive,
            &h,
            &mut rng,
            &pkt(7),
            &elig,
            &[],
            occupancy,
            |_| true,
        );
        assert_eq!(p, 1);
    }

    #[test]
    fn adaptive_skips_dead_links_and_breaks_ties() {
        let h = hasher();
        let mut rng = DetRng::new(1, 1);
        let elig = vec![0, 1, 2];
        // Port 1 is least-queued but dead; ports 0 and 2 tie.
        let mut picked = [0u32; 3];
        for _ in 0..400 {
            let p = select_port(
                ForwardingScheme::Adaptive,
                &h,
                &mut rng,
                &pkt(7),
                &elig,
                &[],
                |p| if p == 1 { 0 } else { 500 },
                |p| p != 1,
            );
            picked[p as usize] += 1;
        }
        assert_eq!(picked[1], 0, "dead link must not be picked");
        assert!(
            picked[0] > 100 && picked[2] > 100,
            "ties should split: {picked:?}"
        );
    }

    #[test]
    fn single_eligible_short_circuits() {
        let h = hasher();
        let mut rng = DetRng::new(1, 1);
        for scheme in [
            ForwardingScheme::EcmpHash,
            ForwardingScheme::Rps,
            ForwardingScheme::Adaptive,
        ] {
            assert_eq!(
                select_port(scheme, &h, &mut rng, &pkt(7), &[9], &[], |_| 0, |_| true),
                9
            );
        }
    }

    #[test]
    fn pfc_pause_resume_hysteresis() {
        let cfg = PfcConfig {
            pause_threshold: 1000,
            resume_threshold: 500,
        };
        let mut pfc = PfcState::new(cfg, 4);
        assert_eq!(pfc.on_buffered(2, 900), PfcAction::None);
        assert_eq!(pfc.on_buffered(2, 200), PfcAction::SendPause);
        // Further growth does not re-send.
        assert_eq!(pfc.on_buffered(2, 100), PfcAction::None);
        assert!(pfc.is_pausing(2));
        // Draining above resume threshold: nothing.
        assert_eq!(pfc.on_released(2, 600), PfcAction::None);
        // Below resume threshold: resume.
        assert_eq!(pfc.on_released(2, 200), PfcAction::SendResume);
        assert!(!pfc.is_pausing(2));
        assert_eq!(pfc.ingress_bytes(2), 400);
        // Other ingress ports are independent.
        assert_eq!(pfc.ingress_bytes(0), 0);
    }

    #[test]
    #[should_panic]
    fn pfc_rejects_inverted_thresholds() {
        PfcState::new(
            PfcConfig {
                pause_threshold: 100,
                resume_threshold: 200,
            },
            1,
        );
    }

    #[test]
    fn flowlet_sticks_within_gap_and_moves_after() {
        let mut fl = FlowletState::new();
        let mut rng = DetRng::new(4, 4);
        let gap = SimTime::from_us(100);
        let elig = vec![0u16, 1, 2, 3];
        let p0 = fl.select(SimTime::from_us(0), gap, 42, &elig, &mut rng);
        // Packets within the gap stick to the same port.
        for t in [10u64, 60, 150, 240] {
            // each arrival refreshes last-seen, so gaps are measured
            // packet-to-packet
            assert_eq!(fl.select(SimTime::from_us(t), gap, 42, &elig, &mut rng), p0);
        }
        assert_eq!(fl.len(), 1);
        // After an idle period > gap, the flowlet may move: over many
        // re-draws all ports get used.
        let mut seen = std::collections::HashSet::new();
        let mut t = SimTime::from_ms(1);
        for _ in 0..64 {
            seen.insert(fl.select(t, gap, 42, &elig, &mut rng));
            t += SimTime::from_us(500); // always > gap
        }
        assert!(
            seen.len() >= 3,
            "re-draws should cover most ports: {seen:?}"
        );
    }

    #[test]
    fn flowlet_flows_are_independent() {
        let mut fl = FlowletState::new();
        let mut rng = DetRng::new(9, 9);
        let gap = SimTime::from_us(100);
        let elig: Vec<u16> = (0..8).collect();
        let now = SimTime::from_us(5);
        let ports: Vec<u16> = (0..32)
            .map(|f| fl.select(now, gap, f, &elig, &mut rng))
            .collect();
        assert_eq!(fl.len(), 32);
        let distinct: std::collections::HashSet<_> = ports.iter().collect();
        assert!(
            distinct.len() >= 4,
            "32 flows should spread over several ports"
        );
    }

    #[test]
    fn flowlet_redraws_when_port_no_longer_eligible() {
        let mut fl = FlowletState::new();
        let mut rng = DetRng::new(2, 2);
        let gap = SimTime::from_us(100);
        let p = fl.select(SimTime::ZERO, gap, 7, &[5, 6], &mut rng);
        // Routing changed: the cached port is not eligible any more.
        let only = if p == 5 { vec![6u16] } else { vec![5u16] };
        let np = fl.select(SimTime::from_us(1), gap, 7, &only, &mut rng);
        assert_eq!(np, only[0]);
    }

    #[test]
    fn flowcut_pins_within_gap_even_under_congestion() {
        let mut fc = FlowcutState::new();
        let mut rng = DetRng::new(3, 3);
        let cfg = FlowcutConfig::new(SimTime::from_us(100));
        let elig = vec![0u16, 1, 2, 3];
        // The pinned port becomes the most congested one — mid-flowcut the
        // flow must stay anyway (moving could overtake in-flight packets).
        let (p0, d0) = fc.select(SimTime::ZERO, cfg, 7, &elig, &mut rng, |_| 0, |_| true);
        assert_eq!(d0, FlowcutDecision::Start);
        for t in [10u64, 60, 150, 240] {
            let (p, d) = fc.select(
                SimTime::from_us(t),
                cfg,
                7,
                &elig,
                &mut rng,
                |q| if q == p0 { 1_000_000 } else { 0 },
                |_| true,
            );
            assert_eq!((p, d), (p0, FlowcutDecision::Pinned));
        }
        assert_eq!(fc.len(), 1);
    }

    #[test]
    fn flowcut_boundary_reroutes_to_least_queued_only_when_loaded() {
        let mut fc = FlowcutState::new();
        let mut rng = DetRng::new(5, 5);
        let cfg = FlowcutConfig::new(SimTime::from_us(100));
        let elig = vec![0u16, 1, 2];
        let (p0, _) = fc.select(SimTime::ZERO, cfg, 9, &elig, &mut rng, |_| 0, |_| true);
        // Boundary (idle 1 ms > gap) but the pinned egress is empty: the
        // load trigger holds the path.
        let (p1, d1) = fc.select(
            SimTime::from_ms(1),
            cfg,
            9,
            &elig,
            &mut rng,
            |_| 0,
            |_| true,
        );
        assert_eq!((p1, d1), (p0, FlowcutDecision::Held));
        // Next boundary with the pinned egress congested: move to the
        // least-queued alternative.
        let free = if p0 == 0 { 1 } else { 0 };
        let (p2, d2) = fc.select(
            SimTime::from_ms(2),
            cfg,
            9,
            &elig,
            &mut rng,
            |q| if q == free { 0 } else { 1_000_000 },
            |_| true,
        );
        assert_eq!((p2, d2), (free, FlowcutDecision::Rerouted));
    }

    #[test]
    fn flowcut_always_reevaluates_without_load_trigger() {
        let mut fc = FlowcutState::new();
        let mut rng = DetRng::new(6, 6);
        let cfg = FlowcutConfig::new(SimTime::from_us(100)).with_load_threshold(None);
        let elig = vec![0u16, 1];
        let (p0, _) = fc.select(SimTime::ZERO, cfg, 1, &elig, &mut rng, |_| 0, |_| true);
        // Boundary with equal queues: re-evaluation may keep the port, in
        // which case the decision is Held, not Rerouted.
        let other = 1 - p0;
        let (p1, d1) = fc.select(
            SimTime::from_ms(1),
            cfg,
            1,
            &elig,
            &mut rng,
            |q| if q == p0 { 1 } else { 0 },
            |_| true,
        );
        assert_eq!((p1, d1), (other, FlowcutDecision::Rerouted));
    }

    #[test]
    fn flowcut_restarts_when_pinned_port_dies() {
        let mut fc = FlowcutState::new();
        let mut rng = DetRng::new(8, 8);
        let cfg = FlowcutConfig::new(SimTime::from_us(100));
        let (p0, _) = fc.select(SimTime::ZERO, cfg, 4, &[5, 6], &mut rng, |_| 0, |_| true);
        // Mid-flowcut, but the pinned link died locally: a fresh flowcut
        // starts on the surviving port.
        let other = if p0 == 5 { 6 } else { 5 };
        let (p1, d1) = fc.select(
            SimTime::from_us(1),
            cfg,
            4,
            &[5, 6],
            &mut rng,
            |_| 0,
            |q| q != p0,
        );
        assert_eq!((p1, d1), (other, FlowcutDecision::Start));
    }

    #[test]
    fn flowcut_config_defaults_and_validation() {
        let cfg = FlowcutConfig::new(SimTime::from_us(100));
        assert_eq!(cfg.gap, SimTime::from_us(100));
        assert_eq!(cfg.load_threshold, Some(crate::packet::MTU as u64));
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn flowcut_config_rejects_zero_gap() {
        FlowcutConfig::new(SimTime::ZERO).validate();
    }

    #[test]
    fn detail_default_thresholds_match_paper() {
        let d = PfcConfig::detail_defaults();
        assert_eq!(d.pause_threshold, 20_000);
        assert_eq!(d.resume_threshold, 10_000);
    }

    #[test]
    fn feedback_config_presets() {
        let i = FeedbackConfig::int_only();
        assert!(i.int_stamp && i.cn_threshold.is_none());
        i.validate();
        let c = FeedbackConfig::cn(64_000);
        assert!(!c.int_stamp);
        assert_eq!(c.cn_threshold, Some(64_000));
        assert!(c.cn_delay < SimTime::from_us(86), "CN beats the e2e echo");
        c.validate();
        let f = FeedbackConfig::full(64_000);
        assert!(f.int_stamp && f.cn_threshold == Some(64_000));
        f.validate();
    }

    #[test]
    #[should_panic]
    fn feedback_config_rejects_zero_threshold() {
        FeedbackConfig::cn(0).validate();
    }

    #[test]
    fn cn_limiter_paces_per_port_flow() {
        let mut lim = CnLimiter::new();
        let gap = SimTime::from_us(100);
        assert!(lim.allow(SimTime::ZERO, gap, 1, 7));
        // Within the gap: suppressed, repeatedly.
        assert!(!lim.allow(SimTime::from_us(10), gap, 1, 7));
        assert!(!lim.allow(SimTime::from_us(99), gap, 1, 7));
        // Other (port, flow) pairs are independent.
        assert!(lim.allow(SimTime::from_us(10), gap, 2, 7));
        assert!(lim.allow(SimTime::from_us(10), gap, 1, 8));
        // At/after the gap: allowed again.
        assert!(lim.allow(SimTime::from_us(100), gap, 1, 7));
        assert!(!lim.allow(SimTime::from_us(150), gap, 1, 7));
        assert_eq!(lim.len(), 3);
    }

    /// Property: over a long randomized query stream, no (port, flow)
    /// pair is ever granted two CNs less than `min_gap` apart — the "one
    /// outstanding CN per (port, flow) per RTT" guarantee.
    #[test]
    fn cn_limiter_never_exceeds_one_per_gap_property() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(seed, 0xC0FFEE);
            let mut lim = CnLimiter::new();
            let gap = SimTime::from_us(100);
            let mut now = SimTime::ZERO;
            let mut last_granted: DetHashMap<(PortId, FlowId), SimTime> = DetHashMap::default();
            for _ in 0..5_000 {
                // Time advances by random sub-gap steps so queries land
                // densely inside each pacing window.
                now += SimTime::from_ps(rng.gen_range(20_000_000) as u64);
                let port = rng.gen_range(4) as PortId;
                let flow = rng.gen_range(8);
                if lim.allow(now, gap, port, flow) {
                    if let Some(&prev) = last_granted.get(&(port, flow)) {
                        assert!(
                            now.saturating_sub(prev) >= gap,
                            "seed {seed}: CNs {prev:?} and {now:?} within the gap"
                        );
                    }
                    last_granted.insert((port, flow), now);
                }
            }
        }
    }
}
