//! Named time-series probes collected alongside counters and flow records.
//!
//! The simulator core and the transport layer carry cheap, always-compiled
//! probe hooks (egress queue depth, cumulative link bytes, per-flow cwnd,
//! per-epoch marked-ACK fraction `F`, and V-field reroute traces). Each
//! hook forwards to [`Telemetry::record`], which is a single branch when
//! telemetry is disabled — the default — so the hot path stays
//! unmeasurably close to a probe-free build. A [`TelemetryConfig`] turns
//! individual probe families on and rate-limits the *sampled* families to
//! one point per [`TelemetryConfig::sample_every`] per series; *trace*
//! families (V-field reroutes) record every event, because each one is a
//! routing decision.
//!
//! Series live inside the run's `Recorder` and come out through
//! `RunResults` for the `stats`/`experiments` crates to serialize.

use crate::hashing::DetHashMap;

use crate::packet::{FlowId, NodeId, PortId};
use crate::time::SimTime;

/// Which probe families a run collects, and the sampling period for the
/// rate-limited ones. The default is fully disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch; when false every probe is a single cold branch.
    pub enabled: bool,
    /// Minimum spacing between two recorded points of one sampled series.
    pub sample_every: SimTime,
    /// Egress queue occupancy (bytes) after each successful enqueue.
    pub queue_depth: bool,
    /// Cumulative transmitted bytes per port (the slope is utilization).
    pub link_util: bool,
    /// Per-flow congestion window (bytes) at each RTT-epoch boundary.
    pub cwnd: bool,
    /// Per-flow marked-ACK fraction `F` at each RTT-epoch boundary.
    pub f_fraction: bool,
    /// Per-flow V-field value at start and after every reroute (a trace:
    /// never rate-limited).
    pub reroutes: bool,
    /// Per-port drop trace: one point per dropped packet, valued by its
    /// [`crate::record::DropReason`] index (a trace: never rate-limited).
    pub drops: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

impl TelemetryConfig {
    /// Fully disabled collection (the default).
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_every: SimTime::from_us(100),
            queue_depth: false,
            link_util: false,
            cwnd: false,
            f_fraction: false,
            reroutes: false,
            drops: false,
        }
    }

    /// Every probe family on, sampled series limited to one point per
    /// `sample_every`.
    pub fn all(sample_every: SimTime) -> Self {
        TelemetryConfig {
            enabled: true,
            sample_every,
            queue_depth: true,
            link_util: true,
            cwnd: true,
            f_fraction: true,
            reroutes: true,
            drops: true,
        }
    }

    /// Is the family of `kind` enabled (and the master switch on)?
    #[inline]
    pub fn wants(&self, kind: ProbeKind) -> bool {
        self.enabled
            && match kind {
                ProbeKind::QueueDepth => self.queue_depth,
                ProbeKind::LinkUtil => self.link_util,
                ProbeKind::Cwnd => self.cwnd,
                ProbeKind::FFraction => self.f_fraction,
                ProbeKind::Vfield => self.reroutes,
                ProbeKind::Drops => self.drops,
            }
    }
}

/// The probe families, used for enablement checks without constructing a
/// full [`SeriesKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Egress queue occupancy in bytes.
    QueueDepth,
    /// Cumulative transmitted bytes on a port.
    LinkUtil,
    /// Per-flow congestion window in bytes.
    Cwnd,
    /// Per-flow marked-ACK fraction per epoch.
    FFraction,
    /// Per-flow V-field trace.
    Vfield,
    /// Per-port packet-drop trace.
    Drops,
}

/// The identity of one time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeriesKey {
    /// Occupancy of the egress queue at `(node, port)`.
    QueueDepth {
        /// Owning node.
        node: NodeId,
        /// Egress port index on that node.
        port: PortId,
    },
    /// Cumulative bytes transmitted by `(node, port)`.
    LinkUtil {
        /// Owning node.
        node: NodeId,
        /// Egress port index on that node.
        port: PortId,
    },
    /// Congestion window of `flow`.
    Cwnd {
        /// Flow id.
        flow: FlowId,
    },
    /// Marked-ACK fraction `F` of `flow`, one point per RTT epoch.
    FFraction {
        /// Flow id.
        flow: FlowId,
    },
    /// V-field of `flow`: initial value plus one point per reroute.
    Vfield {
        /// Flow id.
        flow: FlowId,
    },
    /// Drops at the egress `(node, port)`: one point per dropped packet,
    /// valued by the [`crate::record::DropReason`] index.
    Drops {
        /// Owning node.
        node: NodeId,
        /// Egress port index on that node.
        port: PortId,
    },
}

impl SeriesKey {
    /// The family this key belongs to.
    #[inline]
    pub fn kind(&self) -> ProbeKind {
        match self {
            SeriesKey::QueueDepth { .. } => ProbeKind::QueueDepth,
            SeriesKey::LinkUtil { .. } => ProbeKind::LinkUtil,
            SeriesKey::Cwnd { .. } => ProbeKind::Cwnd,
            SeriesKey::FFraction { .. } => ProbeKind::FFraction,
            SeriesKey::Vfield { .. } => ProbeKind::Vfield,
            SeriesKey::Drops { .. } => ProbeKind::Drops,
        }
    }

    /// Whether this series is rate-limited (`true`) or an exhaustive event
    /// trace (`false`).
    fn sampled(&self) -> bool {
        !matches!(self, SeriesKey::Vfield { .. } | SeriesKey::Drops { .. })
    }

    /// Stable dotted name, used in reports and JSON output
    /// (e.g. `queue_depth.n3.p2`, `cwnd.f17`).
    pub fn name(&self) -> String {
        match self {
            SeriesKey::QueueDepth { node, port } => format!("queue_depth.n{node}.p{port}"),
            SeriesKey::LinkUtil { node, port } => format!("link_util.n{node}.p{port}"),
            SeriesKey::Cwnd { flow } => format!("cwnd.f{flow}"),
            SeriesKey::FFraction { flow } => format!("f_fraction.f{flow}"),
            SeriesKey::Vfield { flow } => format!("vfield.f{flow}"),
            SeriesKey::Drops { node, port } => format!("drops.n{node}.p{port}"),
        }
    }
}

/// One named time series of `(time, value)` points, in recording order.
#[derive(Debug, Clone)]
pub struct Series {
    key: SeriesKey,
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// The series' key.
    pub fn key(&self) -> SeriesKey {
        self.key
    }

    /// The series' stable dotted name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recorded points, oldest first.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

/// All time series collected during one run. Owned by the `Recorder`.
#[derive(Debug, Default)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    index: DetHashMap<SeriesKey, usize>,
    series: Vec<Series>,
}

impl Telemetry {
    /// Create an empty, disabled store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the configuration. Call before the run starts; existing
    /// series are kept.
    pub fn set_config(&mut self, cfg: TelemetryConfig) {
        self.cfg = cfg;
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Is the family of `kind` being collected?
    #[inline]
    pub fn wants(&self, kind: ProbeKind) -> bool {
        self.cfg.wants(kind)
    }

    /// Record `value` for `key` at `now`. A no-op (one branch) when the
    /// key's family is disabled; sampled families additionally drop points
    /// closer than [`TelemetryConfig::sample_every`] to the series' last.
    #[inline]
    pub fn record(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        if !self.cfg.wants(key.kind()) {
            return;
        }
        self.record_slow(now, key, value);
    }

    /// The enabled-path tail of [`Telemetry::record`], kept out of line so
    /// the disabled path inlines to a single test.
    fn record_slow(&mut self, now: SimTime, key: SeriesKey, value: f64) {
        let idx = match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.index.insert(key, i);
                self.series.push(Series {
                    key,
                    name: key.name(),
                    points: Vec::new(),
                });
                i
            }
        };
        let s = &mut self.series[idx];
        if key.sampled() {
            if let Some(&(last, _)) = s.points.last() {
                if now < last + self.cfg.sample_every {
                    return;
                }
            }
        }
        s.points.push((now, value));
    }

    /// All series, in order of first recording.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Consume the store, returning the series in order of first recording.
    pub fn into_series(self) -> Vec<Series> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Telemetry::new();
        t.record(SimTime::ZERO, SeriesKey::Cwnd { flow: 1 }, 1.0);
        assert!(t.series().is_empty());
        assert!(!t.wants(ProbeKind::Cwnd));
    }

    #[test]
    fn per_family_enablement() {
        let mut cfg = TelemetryConfig::off();
        cfg.enabled = true;
        cfg.queue_depth = true;
        let mut t = Telemetry::new();
        t.set_config(cfg);
        t.record(
            SimTime::ZERO,
            SeriesKey::QueueDepth { node: 0, port: 0 },
            5.0,
        );
        t.record(SimTime::ZERO, SeriesKey::Cwnd { flow: 1 }, 1.0);
        assert_eq!(t.series().len(), 1);
        assert_eq!(t.series()[0].name(), "queue_depth.n0.p0");
    }

    #[test]
    fn sampling_rate_limits_but_traces_do_not() {
        let mut t = Telemetry::new();
        t.set_config(TelemetryConfig::all(SimTime::from_us(10)));
        let q = SeriesKey::QueueDepth { node: 1, port: 2 };
        let v = SeriesKey::Vfield { flow: 3 };
        for us in 0..100 {
            t.record(SimTime::from_us(us), q, us as f64);
            t.record(SimTime::from_us(us), v, us as f64);
        }
        let qs = t.series().iter().find(|s| s.key() == q).unwrap();
        let vs = t.series().iter().find(|s| s.key() == v).unwrap();
        assert_eq!(qs.points().len(), 10, "sampled at 10 us over 100 us");
        assert_eq!(vs.points().len(), 100, "traces keep every event");
    }

    #[test]
    fn series_order_is_first_recording_order() {
        let mut t = Telemetry::new();
        t.set_config(TelemetryConfig::all(SimTime::ZERO));
        t.record(SimTime::ZERO, SeriesKey::Cwnd { flow: 9 }, 1.0);
        t.record(
            SimTime::ZERO,
            SeriesKey::QueueDepth { node: 0, port: 1 },
            2.0,
        );
        t.record(SimTime::from_us(1), SeriesKey::Cwnd { flow: 9 }, 3.0);
        let names: Vec<_> = t.series().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["cwnd.f9", "queue_depth.n0.p1"]);
        assert_eq!(t.series()[0].points().len(), 2);
    }

    #[test]
    fn key_names_are_stable() {
        assert_eq!(
            SeriesKey::QueueDepth { node: 3, port: 2 }.name(),
            "queue_depth.n3.p2"
        );
        assert_eq!(
            SeriesKey::LinkUtil { node: 0, port: 7 }.name(),
            "link_util.n0.p7"
        );
        assert_eq!(SeriesKey::Cwnd { flow: 17 }.name(), "cwnd.f17");
        assert_eq!(SeriesKey::FFraction { flow: 1 }.name(), "f_fraction.f1");
        assert_eq!(SeriesKey::Vfield { flow: 0 }.name(), "vfield.f0");
        assert_eq!(SeriesKey::Drops { node: 4, port: 1 }.name(), "drops.n4.p1");
    }
}
