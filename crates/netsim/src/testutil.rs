//! Minimal traffic agents for tests and examples.
//!
//! These are *not* real transports (no congestion control, no reliability) —
//! the `transport` crate provides those. They exist so that structural
//! tests (topology reachability, link failure behaviour, queue accounting)
//! can inject and count packets without pulling in a full TCP stack.

use std::cell::RefCell;
use std::rc::Rc;

use crate::agent::{Agent, Ctx};
use crate::packet::{FlowKey, HostId, Packet, Proto, MSS};
use crate::time::SimTime;

/// Shared counters written by a [`CountingSink`] / [`Blaster`].
#[derive(Debug, Default)]
pub struct RxLog {
    /// Packets received, in arrival order, as `(time, flow, seq)`.
    pub arrivals: Vec<(SimTime, u32, u64)>,
}

impl RxLog {
    /// New, shareable log.
    pub fn shared() -> Rc<RefCell<RxLog>> {
        Rc::new(RefCell::new(RxLog::default()))
    }
}

/// Sends a fixed burst of MSS-sized packets to one destination at start,
/// optionally spaced by a fixed gap, and logs everything it receives.
pub struct Blaster {
    /// Destination host.
    pub dst: HostId,
    /// Number of packets to send.
    pub count: u32,
    /// Gap between consecutive sends (`SimTime::ZERO` = back-to-back).
    pub gap: SimTime,
    /// Flow id stamped on packets.
    pub flow: u32,
    /// Source port (varies the ECMP hash).
    pub sport: u16,
    /// V-field stamped on packets.
    pub vfield: u8,
    /// Arrival log.
    pub log: Rc<RefCell<RxLog>>,
    sent: u32,
}

impl Blaster {
    /// A blaster sending `count` packets to `dst`, logging into `log`.
    pub fn new(dst: HostId, count: u32, log: Rc<RefCell<RxLog>>) -> Self {
        Blaster {
            dst,
            count,
            gap: SimTime::ZERO,
            flow: 0,
            sport: 1,
            vfield: 0,
            log,
            sent: 0,
        }
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_>) {
        let key = FlowKey {
            src: ctx.host(),
            dst: self.dst,
            sport: self.sport,
            dport: 7,
            proto: Proto::Tcp,
        };
        let pkt = Packet::data(
            self.flow,
            key,
            self.vfield,
            self.sent as u64 * MSS as u64,
            MSS,
            ctx.now(),
        );
        ctx.send(pkt);
        self.sent += 1;
    }
}

impl Agent for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.count == 0 {
            return;
        }
        if self.gap == SimTime::ZERO {
            for _ in 0..self.count {
                self.send_one(ctx);
            }
        } else {
            self.send_one(ctx);
            if self.sent < self.count {
                ctx.set_timer(ctx.now() + self.gap, 0);
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.log
            .borrow_mut()
            .arrivals
            .push((ctx.now(), pkt.flow, pkt.seq));
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        self.send_one(ctx);
        if self.sent < self.count {
            ctx.set_timer(ctx.now() + self.gap, 0);
        }
    }
}

/// A standalone harness for unit-testing components that need a [`Ctx`]
/// without spinning up a whole simulator: it owns a scheduler, RNG, and
/// recorder, hands out contexts at chosen instants, and lets the test
/// inspect what was sent and which timers were armed.
pub struct CtxHarness {
    sched: crate::event::Scheduler,
    packets: crate::slab::PacketSlab,
    rng: crate::rng::DetRng,
    recorder: crate::record::Recorder,
    /// The simulated instant handed to the next [`CtxHarness::ctx`] call.
    pub now: SimTime,
}

impl CtxHarness {
    /// New harness with the given RNG seed; the clock starts at zero.
    pub fn new(seed: u64) -> Self {
        CtxHarness {
            sched: crate::event::Scheduler::new(),
            packets: crate::slab::PacketSlab::new(),
            rng: crate::rng::DetRng::new(seed, 0x7E57),
            recorder: crate::record::Recorder::new(),
            now: SimTime::ZERO,
        }
    }

    /// A context for host 0 at the current `now` (zero TX stack delay, so
    /// sent packets are observable immediately).
    pub fn ctx(&mut self) -> Ctx<'_> {
        Ctx::new(
            self.now,
            0,
            SimTime::ZERO,
            &mut self.sched,
            &mut self.packets,
            &mut self.rng,
            &mut self.recorder,
        )
    }

    /// Drain and return everything scheduled so far as
    /// `(fire_time, sent_packet_or_timer_token)` pairs, splitting packets
    /// from timers. Sent packets are pulled back out of the harness slab.
    pub fn drain(&mut self) -> (Vec<Packet>, Vec<(SimTime, u64)>) {
        let mut pkts = Vec::new();
        let mut timers = Vec::new();
        while let Some(ev) = self.sched.pop() {
            match ev.kind {
                crate::event::EventKind::HostTx { pkt, .. } => {
                    pkts.push(self.packets.remove(pkt));
                }
                crate::event::EventKind::Timer { token, .. } => timers.push((ev.time, token)),
                other => panic!("unexpected event in harness: {other:?}"),
            }
        }
        (pkts, timers)
    }

    /// The measurement recorder (register flows before completing them).
    pub fn recorder_mut(&mut self) -> &mut crate::record::Recorder {
        &mut self.recorder
    }

    /// Read access to the recorder.
    pub fn recorder(&self) -> &crate::record::Recorder {
        &self.recorder
    }
}

/// Pure receiver: logs arrivals, never sends.
pub struct CountingSink {
    /// Arrival log.
    pub log: Rc<RefCell<RxLog>>,
}

impl Agent for CountingSink {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.log
            .borrow_mut()
            .arrivals
            .push((ctx.now(), pkt.flow, pkt.seq));
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::HashConfig;
    use crate::sim::{LinkSpec, Simulator, SwitchConfig};
    use crate::switch::RoutingTable;

    #[test]
    fn paced_blaster_spaces_packets() {
        let mut sim = Simulator::new(1);
        let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
        let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
        let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
        sim.connect(h0, sw, LinkSpec::host_10g());
        sim.connect(h1, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(2);
        rt.set(0, vec![0]);
        rt.set(1, vec![1]);
        sim.set_routes(sw, rt);
        let log = RxLog::shared();
        let mut b = Blaster::new(h1, 3, RxLog::shared());
        b.gap = SimTime::from_us(100);
        sim.set_agent(h0, Box::new(b));
        sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
        sim.run_to_quiescence();
        let log = log.borrow();
        assert_eq!(log.arrivals.len(), 3);
        let dt = log.arrivals[1].0 - log.arrivals[0].0;
        assert_eq!(dt, SimTime::from_us(100));
    }
}
