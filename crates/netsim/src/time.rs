//! Simulated time.
//!
//! Time is kept as an integer number of **picoseconds** in a [`SimTime`].
//! Picosecond granularity makes every quantity in the simulated network
//! exact: the serialization time of a 1500-byte frame on a 10 Gbps link is
//! precisely 1 200 000 ps, so no rounding error can accumulate over the
//! billions of events of a long run, and runs are bit-for-bit reproducible.
//!
//! A `u64` of picoseconds covers about 213 days of simulated time, far more
//! than any experiment in this suite needs.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant of simulated time, in picoseconds since the start of
/// the simulation.
///
/// `SimTime` is also used for durations: the difference of two instants is
/// again a `SimTime`. Keeping a single type avoids a proliferation of
/// conversions in hot event-handling code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far away"
    /// sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant/duration of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// An instant/duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// An instant/duration of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// An instant/duration of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// An instant/duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// A duration of `s` (fractional) seconds, rounded to the nearest
    /// picosecond. Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant/duration expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// This instant/duration expressed in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This instant/duration expressed in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The exact time needed to serialize `bytes` bytes onto a link running
    /// at `bits_per_sec`.
    ///
    /// Computed as `bytes * 8 * 1e12 / bits_per_sec` in 128-bit arithmetic so
    /// the result is exact for every realistic rate and size.
    #[inline]
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> SimTime {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let num = (bytes as u128) * 8 * (PS_PER_SEC as u128);
        SimTime((num / bits_per_sec as u128) as u64)
    }

    /// Multiply a duration by an integer factor (for exponential backoff).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimTime {
        SimTime(self.0.saturating_mul(k))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", ps as f64 / PS_PER_NS as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_us(90).as_ps(), 90 * PS_PER_US);
        assert_eq!(SimTime::from_ms(10), SimTime::from_us(10_000));
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_ms(500));
    }

    #[test]
    fn serialization_time_is_exact_for_10g() {
        // 1500 bytes on 10 Gbps = 1.2 us exactly.
        let t = SimTime::serialization(1500, 10_000_000_000);
        assert_eq!(t, SimTime::from_ns(1200));
        // 64 bytes on 40 Gbps = 12.8 ns exactly.
        let t = SimTime::serialization(64, 40_000_000_000);
        assert_eq!(t.as_ps(), 12_800);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(3);
        assert_eq!(a + b, SimTime::from_us(8));
        assert_eq!(a - b, SimTime::from_us(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_us(8));
        assert_eq!(b.saturating_mul(4), SimTime::from_us(12));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimTime::from_ns(500)), "500ns");
        assert_eq!(format!("{}", SimTime::from_us(90)), "90.000us");
        assert_eq!(format!("{}", SimTime::from_ms(10)), "10.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
