//! Per-flow flight recorder: opt-in, ring-buffered event timelines.
//!
//! The paper's evaluation turns on *why* a tail flow was slow — which
//! queue built up, which hop marked it, when the sender bent to a new
//! path. Aggregate counters and telemetry series answer "how much"; the
//! flight recorder answers "what happened to flow 17, in order".
//!
//! Design mirrors [`crate::telemetry`]:
//!
//! * A [`TraceConfig`] selects the traced flows up front. The default is
//!   disabled; every hook in the hot path is then a single branch
//!   ([`Recorder::trace_wants`](crate::Recorder::trace_wants) reads one
//!   `bool`), so an untraced run pays nothing measurable (see
//!   `BENCH_engine.json`, `forward_5k_pkts` vs `forward_5k_pkts_traced`).
//! * Each traced flow owns a fixed-capacity ring of
//!   `(SimTime, TraceEvent)` pairs. When the ring is full the *oldest*
//!   events are overwritten and counted in
//!   [`FlowTimeline::truncated`] — the tail of a timeline (the part that
//!   explains a slow completion) is always retained.
//! * Events are recorded in simulation-event order, which is
//!   deterministic, so two runs with the same seed and the same trace
//!   selection produce byte-identical timelines.
//!
//! Network-side events (hops, queue occupancy, ECN marks, drops) are
//! hooked from the simulator core; sender-side events (cwnd changes,
//! fast-retransmit entry/exit, RTO fires, `PathController` decisions)
//! from the transport crate. All of them funnel through
//! [`crate::Recorder::trace_event`].

use crate::packet::{FlowId, NodeId, PortId};
use crate::record::DropReason;
use crate::time::SimTime;

/// Default per-flow ring capacity (events retained per traced flow).
///
/// Large enough to hold every event of a multi-megabyte flow at paper
/// scale; small enough that tracing a handful of flows costs a few
/// hundred KiB. Override with [`TraceConfig::with_capacity`].
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Selects which flows the flight recorder follows.
///
/// Construct with [`TraceConfig::off`] (the default) or
/// [`TraceConfig::flows`]; install via `Simulator::set_trace` before the
/// run starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` makes every trace hook a single branch.
    pub enabled: bool,
    /// Traced flow ids, sorted and deduplicated.
    pub flows: Vec<FlowId>,
    /// Per-flow ring capacity in events.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            flows: Vec::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Trace exactly the given flows (order and duplicates are
    /// normalized away). An empty selection is equivalent to
    /// [`TraceConfig::off`].
    pub fn flows(mut ids: Vec<FlowId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        TraceConfig {
            enabled: !ids.is_empty(),
            flows: ids,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Override the per-flow ring capacity (minimum 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// Is `flow` selected?
    #[inline]
    pub fn wants(&self, flow: FlowId) -> bool {
        self.enabled && self.flows.binary_search(&flow).is_ok()
    }
}

/// One timestamped flight-recorder event.
///
/// Network events carry the node/port where they happened; sender events
/// carry the sender state that changed. Field types are the simulator's
/// own id types so the recorder stays allocation-free per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A switch accepted the packet on `in_port` and routed it to
    /// `out_port` (the hashing decision, V-field included).
    Hop {
        /// Switch the packet traversed.
        node: NodeId,
        /// Ingress port.
        in_port: PortId,
        /// Chosen egress port.
        out_port: PortId,
    },
    /// The packet was appended to an egress queue.
    Enqueue {
        /// Node owning the queue.
        node: NodeId,
        /// Egress port.
        port: PortId,
        /// Queue occupancy in bytes *after* the enqueue.
        qbytes: u64,
    },
    /// The enqueue found the queue over the ECN threshold and set CE.
    EcnMark {
        /// Node owning the queue.
        node: NodeId,
        /// Egress port.
        port: PortId,
    },
    /// The packet left its queue and started serializing onto the link.
    Dequeue {
        /// Node owning the queue.
        node: NodeId,
        /// Egress port.
        port: PortId,
    },
    /// The packet left the simulation undelivered.
    Drop {
        /// Why it was dropped.
        reason: DropReason,
        /// Node where it died.
        node: NodeId,
        /// Port where it died.
        port: PortId,
    },
    /// The sender's congestion window changed.
    CwndChange {
        /// New congestion window in bytes.
        cwnd_bytes: u64,
    },
    /// The sender entered fast-retransmit/recovery (dup-ACK threshold).
    FastRetransmitEnter,
    /// The sender left recovery (full ACK of the recovery point).
    FastRetransmitExit,
    /// A retransmission timeout fired (a genuine one, not a stale timer).
    RtoFire {
        /// Exponential-backoff exponent *after* this timeout.
        backoff_exp: u32,
    },
    /// The flow's `PathController` decided to bend to a new path.
    Decision {
        /// V-field value before the decision.
        from_v: u8,
        /// V-field value after the decision.
        to_v: u8,
    },
    /// First data delivery at or after a configured failure instant: the
    /// flow's path works again (the reconvergence SLO probe's per-flow
    /// sample, see [`crate::record::SloConfig`]).
    Reconverge,
    /// A switch stamped an INT per-hop record into the packet at enqueue.
    IntStamp {
        /// Stamping switch.
        node: NodeId,
        /// Egress port the record describes.
        port: PortId,
        /// Queue occupancy in bytes after the enqueue.
        qbytes: u64,
    },
    /// A switch emitted a back-to-sender congestion notification because
    /// this flow's packet found the egress queue over the CN threshold.
    CnEmit {
        /// Emitting switch (the blamed hop).
        node: NodeId,
        /// Blamed egress port.
        port: PortId,
        /// Queue occupancy in bytes that triggered the CN.
        qbytes: u64,
    },
    /// A congestion notification reached the flow's sender, carrying the
    /// blamed hop — this is the early signal that pre-empts the
    /// end-to-end ECN echo.
    CnArrive {
        /// Blamed switch (from the CN's INT record).
        node: NodeId,
        /// Blamed egress port.
        port: PortId,
    },
    /// A switch re-routed this flow's flowcut at a detected boundary
    /// (idle gap exceeded and the load trigger fired): subsequent packets
    /// pin to the new egress.
    FlowcutReroute {
        /// The re-routing switch.
        node: NodeId,
        /// The newly pinned egress port.
        port: PortId,
    },
}

impl TraceEvent {
    /// Stable machine-readable kind name (used as the JSON `kind` key).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Hop { .. } => "hop",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::CwndChange { .. } => "cwnd",
            TraceEvent::FastRetransmitEnter => "fast_retransmit_enter",
            TraceEvent::FastRetransmitExit => "fast_retransmit_exit",
            TraceEvent::RtoFire { .. } => "rto_fire",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::Reconverge => "reconverge",
            TraceEvent::IntStamp { .. } => "int_stamp",
            TraceEvent::CnEmit { .. } => "cn_emit",
            TraceEvent::CnArrive { .. } => "cn_arrive",
            TraceEvent::FlowcutReroute { .. } => "flowcut_reroute",
        }
    }
}

/// Fixed-capacity ring of timestamped events; oldest overwritten first.
#[derive(Debug)]
struct Ring {
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    truncated: u64,
    events: Vec<(SimTime, TraceEvent)>,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap,
            head: 0,
            truncated: 0,
            events: Vec::new(),
        }
    }

    fn push(&mut self, at: SimTime, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push((at, ev));
        } else {
            self.events[self.head] = (at, ev);
            self.head = (self.head + 1) % self.cap;
            self.truncated += 1;
        }
    }

    /// Drain into chronological order.
    fn into_chronological(mut self) -> (Vec<(SimTime, TraceEvent)>, u64) {
        self.events.rotate_left(self.head);
        (self.events, self.truncated)
    }
}

/// The finished timeline of one traced flow, in chronological order.
#[derive(Debug, Clone)]
pub struct FlowTimeline {
    /// The traced flow.
    pub flow: FlowId,
    /// Events lost to ring overflow (always the *oldest* ones).
    pub truncated: u64,
    /// Timestamped events, oldest first.
    pub events: Vec<(SimTime, TraceEvent)>,
}

impl FlowTimeline {
    /// Number of retained events whose kind name is `kind`.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|(_, e)| e.kind() == kind).count()
    }
}

/// The flight-recorder store: one ring per selected flow.
///
/// Owned by [`crate::Recorder`]; the simulator core and transports reach
/// it through `Recorder::trace_wants` / `Recorder::trace_event`.
#[derive(Debug, Default)]
pub struct Trace {
    cfg: TraceConfig,
    /// One `(flow, ring)` pair per selected flow, sorted by flow id
    /// (selections are small; lookup is a binary search).
    buffers: Vec<(FlowId, Ring)>,
}

impl Trace {
    /// An empty, disabled flight recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a configuration, allocating one ring per selected flow.
    /// Call before the run starts.
    pub fn set_config(&mut self, cfg: TraceConfig) {
        self.buffers = cfg
            .flows
            .iter()
            .map(|&f| (f, Ring::new(cfg.ring_capacity)))
            .collect();
        self.cfg = cfg;
    }

    /// The installed configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Is any flow being traced? A single load; hot paths branch on this.
    #[inline]
    pub fn active(&self) -> bool {
        self.cfg.enabled
    }

    /// Is `flow` being traced? One branch when tracing is disabled.
    #[inline]
    pub fn wants(&self, flow: FlowId) -> bool {
        self.cfg.enabled && self.buffers.binary_search_by_key(&flow, |b| b.0).is_ok()
    }

    /// Record `ev` for `flow` at `at`. A no-op (one branch) when the flow
    /// is not selected.
    #[inline]
    pub fn record(&mut self, at: SimTime, flow: FlowId, ev: TraceEvent) {
        if !self.cfg.enabled {
            return;
        }
        self.record_slow(at, flow, ev);
    }

    #[cold]
    fn record_slow(&mut self, at: SimTime, flow: FlowId, ev: TraceEvent) {
        if let Ok(i) = self.buffers.binary_search_by_key(&flow, |b| b.0) {
            self.buffers[i].1.push(at, ev);
        }
    }

    /// Consume the store, returning one timeline per selected flow,
    /// sorted by flow id. Flows that never produced an event still get a
    /// (possibly empty) timeline, so the selection is visible downstream.
    pub fn into_timelines(self) -> Vec<FlowTimeline> {
        self.buffers
            .into_iter()
            .map(|(flow, ring)| {
                let (events, truncated) = ring.into_chronological();
                FlowTimeline {
                    flow,
                    truncated,
                    events,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(n: NodeId) -> TraceEvent {
        TraceEvent::Hop {
            node: n,
            in_port: 0,
            out_port: 1,
        }
    }

    #[test]
    fn disabled_by_default_and_wants_nothing() {
        let t = Trace::new();
        assert!(!t.active());
        assert!(!t.wants(0));
        assert!(t.into_timelines().is_empty());
    }

    #[test]
    fn config_normalizes_selection() {
        let cfg = TraceConfig::flows(vec![7, 3, 7, 1]);
        assert!(cfg.enabled);
        assert_eq!(cfg.flows, vec![1, 3, 7]);
        assert!(cfg.wants(3));
        assert!(!cfg.wants(2));
        assert!(!TraceConfig::flows(vec![]).enabled);
    }

    #[test]
    fn records_only_selected_flows_in_order() {
        let mut t = Trace::new();
        t.set_config(TraceConfig::flows(vec![2, 5]));
        t.record(SimTime::from_us(1), 2, hop(10));
        t.record(SimTime::from_us(2), 3, hop(11)); // not selected
        t.record(SimTime::from_us(3), 5, hop(12));
        t.record(
            SimTime::from_us(4),
            2,
            TraceEvent::RtoFire { backoff_exp: 1 },
        );
        let tl = t.into_timelines();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].flow, 2);
        assert_eq!(tl[0].events.len(), 2);
        assert_eq!(tl[0].events[0], (SimTime::from_us(1), hop(10)));
        assert_eq!(tl[0].count_kind("rto_fire"), 1);
        assert_eq!(tl[1].flow, 5);
        assert_eq!(tl[1].events.len(), 1);
        assert_eq!(tl[0].truncated + tl[1].truncated, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_truncation() {
        let mut t = Trace::new();
        t.set_config(TraceConfig::flows(vec![0]).with_capacity(3));
        for i in 0..5u64 {
            t.record(SimTime::from_us(i), 0, hop(i as NodeId));
        }
        let tl = t.into_timelines().remove(0);
        assert_eq!(tl.truncated, 2);
        // Oldest two (hops via nodes 0, 1) were overwritten; the rest are
        // chronological.
        let nodes: Vec<NodeId> = tl
            .events
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::Hop { node, .. } => *node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![2, 3, 4]);
        assert!(tl.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn kind_names_are_stable_and_unique() {
        let evs = [
            hop(0),
            TraceEvent::Enqueue {
                node: 0,
                port: 0,
                qbytes: 0,
            },
            TraceEvent::EcnMark { node: 0, port: 0 },
            TraceEvent::Dequeue { node: 0, port: 0 },
            TraceEvent::Drop {
                reason: DropReason::QueueFull,
                node: 0,
                port: 0,
            },
            TraceEvent::CwndChange { cwnd_bytes: 1 },
            TraceEvent::FastRetransmitEnter,
            TraceEvent::FastRetransmitExit,
            TraceEvent::RtoFire { backoff_exp: 0 },
            TraceEvent::Decision { from_v: 0, to_v: 1 },
            TraceEvent::Reconverge,
            TraceEvent::IntStamp {
                node: 0,
                port: 0,
                qbytes: 0,
            },
            TraceEvent::CnEmit {
                node: 0,
                port: 0,
                qbytes: 0,
            },
            TraceEvent::CnArrive { node: 0, port: 0 },
            TraceEvent::FlowcutReroute { node: 0, port: 0 },
        ];
        let kinds: std::collections::HashSet<_> = evs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), evs.len());
        assert!(kinds.contains("decision"));
    }
}
