//! Simulator dynamics under adverse events: link flapping, PFC
//! back-pressure reaching hosts, and watcher interaction with failures.

use std::cell::Cell;
use std::rc::Rc;

use netsim::testutil::{Blaster, CountingSink, RxLog};
use netsim::{Counter, HashConfig, LinkSpec, RoutingTable, SimTime, Simulator, SwitchConfig};

fn line_topology(pfc: bool) -> (Simulator, u32, u32, u32) {
    // h0 -- sw -- h1
    let mut sim = Simulator::new(3);
    let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let sw = if pfc {
        sim.add_switch(SwitchConfig::detail())
    } else {
        sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple))
    };
    sim.connect(h0, sw, LinkSpec::host_10g());
    // Slow egress toward h1 so the switch must buffer.
    let mut slow = LinkSpec::host_10g();
    slow.rate_bps = 1_000_000_000;
    sim.connect(h1, sw, slow);
    let mut rt = RoutingTable::new(2);
    rt.set(0, vec![0]);
    rt.set(1, vec![1]);
    sim.set_routes(sw, rt);
    (sim, h0, h1, sw)
}

#[test]
fn link_flap_black_holes_then_recovers() {
    let (mut sim, h0, h1, sw) = line_topology(false);
    let log = RxLog::shared();
    let mut b = Blaster::new(h1, 200, RxLog::shared());
    b.gap = SimTime::from_us(20); // 200 packets over 4ms
    sim.set_agent(h0, Box::new(b));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    // Down from 1ms to 2ms.
    sim.schedule_link_state(sw, 1, false, SimTime::from_ms(1));
    sim.schedule_link_state(sw, 1, true, SimTime::from_ms(2));
    sim.run_to_quiescence();
    let arrivals = log.borrow().arrivals.clone();
    // Some packets lost during the outage, but traffic resumed after.
    let drops = sim.recorder().get(Counter::LinkDrops);
    assert!(drops > 10, "outage should drop packets: {drops}");
    assert!(
        arrivals.len() > 100,
        "traffic must resume: {}",
        arrivals.len()
    );
    assert_eq!(arrivals.len() + drops as usize, 200);
    // Deliveries exist on both sides of the outage window.
    assert!(arrivals.iter().any(|&(t, _, _)| t < SimTime::from_ms(1)));
    assert!(arrivals.iter().any(|&(t, _, _)| t > SimTime::from_ms(2)));
}

#[test]
fn pfc_backpressure_reaches_the_host_and_is_lossless() {
    // A 10G sender into a 1G egress behind a PFC switch: without PFC the
    // lossless claim fails at small buffers; with PFC the host NIC gets
    // paused and nothing is dropped.
    let (mut sim, h0, h1, sw) = line_topology(true);
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, 2_000, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    sim.run_to_quiescence();
    assert_eq!(
        log.borrow().arrivals.len(),
        2_000,
        "PFC fabric must deliver everything"
    );
    assert_eq!(sim.recorder().get(Counter::QueueDrops), 0);
    assert!(
        sim.recorder().get(Counter::PfcPauses) > 0,
        "pause frames must have fired"
    );
    assert_eq!(
        sim.recorder().get(Counter::PfcPauses),
        sim.recorder().get(Counter::PfcResumes),
        "every pause is eventually resumed"
    );
    // The switch's buffered backlog stayed near the PFC thresholds, far
    // below what 2000 x 1500B (3MB) would otherwise pile up.
    let stats = sim.port_stats(sw, 1);
    assert!(
        stats.queue.max_bytes < 100_000,
        "PFC should bound switch occupancy, saw {}",
        stats.queue.max_bytes
    );
}

#[test]
fn watcher_sees_the_queue_grow_and_drain_around_an_outage() {
    let (mut sim, h0, h1, sw) = line_topology(false);
    let mut b = Blaster::new(h1, 300, RxLog::shared());
    b.gap = SimTime::from_us(15);
    sim.set_agent(h0, Box::new(b));
    let sink = Rc::new(Cell::new(0));
    let _ = sink;
    // Outage 1..2ms: the egress queue to h1 piles up during it.
    sim.schedule_link_state(sw, 1, false, SimTime::from_ms(1));
    sim.schedule_link_state(sw, 1, true, SimTime::from_ms(2));
    let w = sim.watch_queue(sw, 1, SimTime::from_us(50), SimTime::from_ms(4));
    sim.run_to_quiescence();
    let samples = sim.queue_samples(w);
    let max_during = samples
        .iter()
        .filter(|&&(t, _)| t > SimTime::from_ms(1) && t < SimTime::from_ms(2))
        .map(|&(_, b)| b)
        .max()
        .unwrap_or(0);
    let end = samples.last().unwrap().1;
    // Note: during the outage the switch *drains* its queue into the void
    // (black-holing), so occupancy during the outage stays bounded; after
    // recovery the queue drains normally to zero.
    assert_eq!(end, 0, "queue must be empty at the end");
    assert!(max_during < 2_000_000, "occupancy bounded: {max_during}");
}
