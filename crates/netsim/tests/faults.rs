//! The fault-injection layer end to end: gray loss, corruption, flap
//! plans, mid-run rate changes, and the packet-conservation audit.

use netsim::testutil::{Blaster, CountingSink, RxLog};
use netsim::{
    Counter, DetRng, DropReason, FaultPlan, HashConfig, LinkSpec, RoutingTable, SimTime, Simulator,
    SwitchConfig,
};

/// h0 -- sw -- h1 with zero host stack delays (so wire timing is exact).
fn line_topology(seed: u64) -> (Simulator, u32, u32, u32) {
    let mut sim = Simulator::new(seed);
    let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
    sim.connect(h0, sw, LinkSpec::host_10g());
    sim.connect(h1, sw, LinkSpec::host_10g());
    let mut rt = RoutingTable::new(2);
    rt.set(0, vec![0]);
    rt.set(1, vec![1]);
    sim.set_routes(sw, rt);
    (sim, h0, h1, sw)
}

fn run_gray(seed: u64, loss: f64, count: u32) -> (Simulator, usize) {
    let (mut sim, h0, h1, sw) = line_topology(seed);
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, count, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    let mut plan = FaultPlan::new();
    plan.gray_loss(sw, 1, loss, SimTime::ZERO);
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    let arrivals = log.borrow().arrivals.len();
    (sim, arrivals)
}

#[test]
fn gray_loss_drops_expected_fraction_and_conserves() {
    let (sim, arrivals) = run_gray(11, 0.10, 1000);
    let audit = sim.recorder().drops();
    let gray = audit.by_reason(DropReason::GrayLoss);
    assert!(
        (40..=200).contains(&gray),
        "10% of 1000 should lose roughly 100 packets, lost {gray}"
    );
    assert_eq!(arrivals as u64 + gray, 1000, "every packet accounted");
    // The audit localizes the loss to the faulted egress.
    let rows = audit.per_port();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, (2, 1), "all drops at the sw->h1 egress");
    // Gray loss is not congestion loss and not an administrative outage.
    assert_eq!(sim.recorder().get(Counter::QueueDrops), 0);
    assert_eq!(sim.recorder().get(Counter::LinkDrops), 0);
    sim.assert_conservation();
    let c = sim.conservation();
    assert_eq!(c.injected, 1000);
    assert_eq!(c.delivered, arrivals as u64);
    assert_eq!(c.in_flight, 0);
}

#[test]
fn gray_loss_is_deterministic() {
    let a = run_gray(42, 0.05, 500);
    let b = run_gray(42, 0.05, 500);
    assert_eq!(a.1, b.1, "same seed, same survivors");
    assert_eq!(
        a.0.conservation(),
        b.0.conservation(),
        "same seed, same ledger"
    );
    assert_eq!(a.0.events_processed(), b.0.events_processed());
    let c = run_gray(43, 0.05, 500);
    assert_eq!(c.0.conservation().injected, 500);
}

#[test]
fn corruption_counts_separately_from_gray_loss() {
    let (mut sim, h0, h1, sw) = line_topology(5);
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, 1000, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    // BER tuned so a 1500B (12000-bit) packet dies with p ~ 0.1.
    let mut plan = FaultPlan::new();
    plan.corruption(sw, 1, 8.8e-6, SimTime::ZERO);
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    let audit = sim.recorder().drops();
    let corrupted = audit.by_reason(DropReason::Corruption);
    assert!(
        (40..=200).contains(&corrupted),
        "~10% per-packet corruption expected, saw {corrupted}"
    );
    assert_eq!(audit.by_reason(DropReason::GrayLoss), 0);
    assert_eq!(
        log.borrow().arrivals.len() as u64 + corrupted,
        1000,
        "every packet accounted"
    );
    sim.assert_conservation();
}

#[test]
fn flap_plan_black_holes_then_recovers() {
    // The FaultPlan generalization of the scripted link_flap dynamics test.
    let (mut sim, h0, h1, sw) = line_topology(3);
    let log = RxLog::shared();
    let mut b = Blaster::new(h1, 200, RxLog::shared());
    b.gap = SimTime::from_us(20); // 200 packets over 4ms
    sim.set_agent(h0, Box::new(b));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    let mut plan = FaultPlan::new();
    plan.flap(sw, 1, SimTime::from_ms(1), SimTime::from_ms(2));
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    let arrivals = log.borrow().arrivals.clone();
    let down = sim.recorder().drops().by_reason(DropReason::LinkDown);
    assert!(down > 10, "outage should drop packets: {down}");
    assert_eq!(arrivals.len() as u64 + down, 200);
    assert!(arrivals.iter().any(|&(t, _, _)| t > SimTime::from_ms(2)));
    sim.assert_conservation();
}

#[test]
fn midrun_degrade_rescales_inflight_serialization() {
    // One packet; the host uplink renegotiates 10G -> 1G halfway through
    // serialization. The un-serialized 600ns-worth of bits now take 10x
    // longer: arrival shifts by exactly the rescaled remainder.
    let (mut sim, h0, h1, _sw) = line_topology(1);
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, 1, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    let mut plan = FaultPlan::new();
    plan.degrade(h0, 0, 1_000_000_000, SimTime::from_ns(600));
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    let ser_10g = SimTime::serialization(1500, 10_000_000_000); // 1.2us
    let half = SimTime::from_ns(600);
    let rescaled_rest = SimTime::from_ns(600 * 10);
    let hop = SimTime::from_ns(100);
    let expect = half
        + rescaled_rest
        + hop
        + SimTime::from_us(1) // switch proc
        + ser_10g // sw->h1 egress unaffected
        + hop;
    let arrivals = log.borrow().arrivals.clone();
    assert_eq!(arrivals.len(), 1);
    assert_eq!(arrivals[0].0, expect);
    assert_eq!(sim.link_rate(h0, 0), 1_000_000_000);
    sim.assert_conservation();
}

#[test]
fn midrun_upgrade_pulls_completion_earlier() {
    // The other direction: 1G -> 10G mid-serialization. The stale TxDone
    // (still queued for the old, later completion time) must be ignored —
    // the packet arrives once, early, and nothing double-fires.
    let (mut sim, h0, h1, _sw) = line_topology(1);
    sim.set_link_rate(h0, 0, 1_000_000_000); // 12us serialization
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, 1, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    let mut plan = FaultPlan::new();
    plan.degrade(h0, 0, 10_000_000_000, SimTime::from_us(6));
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    let hop = SimTime::from_ns(100);
    let expect = SimTime::from_us(6) // first half at 1G
        + SimTime::from_ns(600) // remaining 6us of 1G bits at 10G
        + hop
        + SimTime::from_us(1)
        + SimTime::serialization(1500, 10_000_000_000)
        + hop;
    let arrivals = log.borrow().arrivals.clone();
    assert_eq!(arrivals.len(), 1, "stale TxDone must not double-deliver");
    assert_eq!(arrivals[0].0, expect);
    sim.assert_conservation();
}

#[test]
fn midrun_rate_change_under_load_keeps_every_packet() {
    // A back-to-back burst with two rate renegotiations mid-run: whatever
    // the interleaving with in-flight serializations, nothing is lost or
    // duplicated and the run still quiesces.
    let (mut sim, h0, h1, _sw) = line_topology(9);
    let log = RxLog::shared();
    sim.set_agent(h0, Box::new(Blaster::new(h1, 400, RxLog::shared())));
    sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
    let mut plan = FaultPlan::new();
    plan.degrade(h0, 0, 1_000_000_000, SimTime::from_us(50));
    plan.degrade(h0, 0, 10_000_000_000, SimTime::from_us(500));
    sim.install_faults(&plan);
    sim.run_to_quiescence();
    assert_eq!(log.borrow().arrivals.len(), 400);
    sim.assert_conservation();
    let c = sim.conservation();
    assert_eq!(c.delivered, 400);
    assert_eq!(c.dropped_total(), 0);
}

#[test]
fn randomized_plans_conserve_across_seeds() {
    // Conservation under arbitrary flap + gray-loss schedules on both
    // links, across seeds: the audit must balance no matter what the plan
    // does to the topology.
    for seed in 0..8 {
        let (mut sim, h0, h1, sw) = line_topology(seed);
        let log = RxLog::shared();
        let mut b = Blaster::new(h1, 300, RxLog::shared());
        b.gap = SimTime::from_us(10);
        sim.set_agent(h0, Box::new(b));
        sim.set_agent(h1, Box::new(CountingSink { log: log.clone() }));
        let mut rng = DetRng::new(seed, 0xFA17);
        let links = [(h0, 0u16), (sw, 1u16)];
        let plan = FaultPlan::randomized(&mut rng, &links, SimTime::from_ms(3), 0.2);
        sim.install_faults(&plan);
        sim.run_to_quiescence();
        sim.assert_conservation();
        let c = sim.conservation();
        assert_eq!(c.injected, 300, "seed {seed}");
        assert_eq!(c.in_flight, 0, "seed {seed}: quiesced runs park nothing");
        assert_eq!(c.delivered + c.dropped_total(), 300, "seed {seed}: {c:?}");
        assert_eq!(log.borrow().arrivals.len() as u64, c.delivered);
    }
}
