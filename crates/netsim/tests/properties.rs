//! Randomized tests of the simulator's core data structures against
//! reference models. All inputs are drawn from seeded [`DetRng`] streams,
//! so failures reproduce exactly.

use netsim::event::{EventKind, Scheduler};
use netsim::switch::{PfcAction, PfcConfig, PfcState};
use netsim::{
    DetRng, EcmpHasher, EcnQueue, EnqueueResult, FlowKey, HashConfig, Packet, Proto, SimTime,
};

fn mk_pkt(seq: u64, payload: u32, sport: u16, v: u8) -> Packet {
    let key = FlowKey {
        src: 1,
        dst: 2,
        sport,
        dport: 80,
        proto: Proto::Tcp,
    };
    Packet::data(0, key, v, seq, payload.max(1), SimTime::ZERO)
}

/// The queue's byte counter always equals the sum of queued packet
/// sizes, never exceeds capacity, and FIFO order is preserved.
#[test]
fn queue_matches_reference_model() {
    for seed in 0..40u64 {
        let mut rng = DetRng::new(seed, 0x10);
        let capacity = 2_000 + rng.next_u32() as u64 % 98_000;
        let n_ops = 1 + rng.gen_index(200);
        let mut q = EcnQueue::new(capacity, capacity / 2);
        let mut model: std::collections::VecDeque<(u32, u64)> = Default::default(); // (id, size)
        let mut bytes = 0u64;
        let mut next_id = 0u32;
        for _ in 0..n_ops {
            let enq = rng.gen_range(2) == 0;
            let payload = 1 + rng.gen_range(1_999);
            if enq {
                let size = mk_pkt(0, payload, 7, 0).size;
                match q.enqueue(next_id, size, true) {
                    EnqueueResult::Queued { .. } => {
                        model.push_back((next_id, size as u64));
                        bytes += size as u64;
                        assert!(bytes <= capacity, "seed {seed}: over capacity");
                    }
                    EnqueueResult::Dropped => {
                        assert!(
                            bytes + size as u64 > capacity,
                            "seed {seed}: dropped below capacity"
                        );
                    }
                }
                next_id += 1;
            } else {
                match (q.dequeue(), model.pop_front()) {
                    (Some(got), Some((id, size))) => {
                        assert_eq!(got, id, "seed {seed}: FIFO order broken");
                        bytes -= size;
                    }
                    (None, None) => {}
                    (a, b) => {
                        panic!("seed {seed}: queue/model disagree: {a:?} vs {b:?}")
                    }
                }
            }
            assert_eq!(q.bytes(), bytes, "seed {seed}");
            assert_eq!(q.len(), model.len(), "seed {seed}");
        }
    }
}

/// Packets enqueued while occupancy >= K report `marked`; packets
/// enqueued below K do not.
#[test]
fn queue_marks_exactly_above_threshold() {
    for seed in 0..40u64 {
        let mut rng = DetRng::new(seed, 0x11);
        let n = 1 + rng.gen_index(100);
        let payloads: Vec<u32> = (0..n).map(|_| 100 + rng.gen_range(1360)).collect();
        let k = 10_000u64;
        let mut q = EcnQueue::new(1_000_000, k);
        let mut occupancy = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            let size = mk_pkt(0, *p, 7, 0).size;
            let expect = occupancy >= k;
            occupancy += size as u64;
            assert_eq!(
                q.enqueue(i as u32, size, true),
                EnqueueResult::Queued { marked: expect },
                "seed {seed}"
            );
        }
    }
}

/// The scheduler releases events in exact (time, insertion) order.
#[test]
fn scheduler_is_a_stable_priority_queue() {
    for seed in 0..40u64 {
        let mut rng = DetRng::new(seed, 0x12);
        let n = 1 + rng.gen_index(300);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1_000) as u64).collect();
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(
                SimTime::from_ns(t),
                EventKind::Timer {
                    host: 0,
                    token: i as u64,
                },
            );
        }
        let mut expected: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        expected.sort();
        for (t, token) in expected {
            let e = s.pop().unwrap();
            assert_eq!(e.time, SimTime::from_ns(t), "seed {seed}");
            match e.kind {
                EventKind::Timer { token: got, .. } => assert_eq!(got, token, "seed {seed}"),
                _ => panic!("seed {seed}: unexpected event kind"),
            }
        }
        assert!(s.pop().is_none(), "seed {seed}");
    }
}

/// The ladder scheduler and a plain binary heap agree on every pop, under
/// random interleavings of schedules and pops that exercise same-instant
/// ties, in-ring buckets, beyond-ring spills, and deep far-future jumps.
#[test]
fn scheduler_matches_reference_heap() {
    use std::cmp::Reverse;
    for seed in 0..30u64 {
        let mut rng = DetRng::new(seed, 0x18);
        let mut s = Scheduler::new();
        let mut reference: std::collections::BinaryHeap<Reverse<(u64, u64)>> = Default::default();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut last_scheduled = 0u64;
        let n_ops = 200 + rng.gen_index(600);
        let check = |e: netsim::event::Event, t: u64, token: u64, seed: u64| {
            assert_eq!(e.time.as_ps(), t, "seed {seed}: pop time diverged");
            match e.kind {
                EventKind::Timer { token: got, .. } => {
                    assert_eq!(got, token, "seed {seed}: pop order diverged")
                }
                _ => panic!("unexpected kind"),
            }
        };
        for _ in 0..n_ops {
            if rng.gen_range(3) < 2 || reference.is_empty() {
                // Deltas spanning every scheduler regime: same-instant ties,
                // sub-bucket, in-ring, beyond-ring (far heap), deep far future.
                let delta = match rng.gen_range(6) {
                    0 => 0,
                    1 => rng.gen_range(1_000) as u64,
                    2 => rng.gen_range(1_000_000) as u64,
                    3 => rng.gen_range(200_000_000) as u64,
                    4 => rng.gen_range(2_000_000_000) as u64,
                    _ => 50_000_000_000 + rng.gen_range(1_000_000_000) as u64,
                };
                // Occasionally reuse an earlier future instant to force
                // cross-call (time, seq) ties.
                let at = if rng.gen_range(4) == 0 && last_scheduled >= now {
                    last_scheduled
                } else {
                    now + delta
                };
                last_scheduled = at;
                s.schedule(
                    SimTime::from_ps(at),
                    EventKind::Timer {
                        host: 0,
                        token: seq,
                    },
                );
                reference.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let e = s.pop().expect("scheduler empty while reference is not");
                let Reverse((t, token)) = reference.pop().unwrap();
                check(e, t, token, seed);
                now = t;
            }
        }
        // Drain the remainder in lockstep.
        while let Some(Reverse((t, token))) = reference.pop() {
            let e = s.pop().expect("scheduler drained early");
            check(e, t, token, seed);
        }
        assert!(s.pop().is_none(), "seed {seed}: scheduler has extra events");
    }
}

/// Serialization time is exactly linear in bytes and inverse in rate.
#[test]
fn serialization_scales_linearly() {
    for seed in 0..100u64 {
        let mut rng = DetRng::new(seed, 0x13);
        let bytes = 1 + rng.next_u32() as u64 % 999_999;
        let rate_gbps = 1 + rng.gen_range(399) as u64;
        let rate = rate_gbps * 1_000_000_000;
        let one = SimTime::serialization(bytes, rate);
        let two = SimTime::serialization(bytes * 2, rate);
        // Integer division may lose at most 1 ps per call.
        let diff = (two.as_ps() as i128 - 2 * one.as_ps() as i128).abs();
        assert!(diff <= 2, "seed {seed}: nonlinear: {one} vs {two}");
        let faster = SimTime::serialization(bytes, rate * 2);
        assert!(faster <= one, "seed {seed}");
    }
}

/// ECMP selection is deterministic, in-bounds, and V-insensitive when
/// configured without the V-field.
#[test]
fn hasher_bounds_and_determinism() {
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed, 0x14);
        let salt = rng.next_u64();
        let sport = rng.next_u32() as u16;
        let v = rng.next_u32() as u8;
        let n = 1 + rng.gen_index(63);
        let with_v = EcmpHasher::new(HashConfig::FiveTupleAndVField, salt);
        let without_v = EcmpHasher::new(HashConfig::FiveTuple, salt);
        let pkt = mk_pkt(0, 1000, sport, v);
        let a = with_v.select(&pkt, n);
        assert!(a < n, "seed {seed}");
        assert_eq!(a, with_v.select(&pkt, n), "seed {seed}: non-deterministic");
        let b0 = without_v.select(&mk_pkt(0, 1000, sport, 0), n);
        let bv = without_v.select(&pkt, n);
        assert_eq!(b0, bv, "seed {seed}: V leaked into a 5-tuple hash");
    }
}

/// Weighted selection never picks zero-weight entries.
#[test]
fn weighted_selection_avoids_zero_weights() {
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed, 0x15);
        let salt = rng.next_u64();
        let sport = rng.next_u32() as u16;
        let len = 2 + rng.gen_index(6);
        let mut weights: Vec<u32> = (0..len).map(|_| rng.gen_range(5)).collect();
        if weights.iter().all(|&w| w == 0) {
            weights[rng.gen_index(len)] = 1 + rng.gen_range(4);
        }
        let h = EcmpHasher::new(HashConfig::FiveTuple, salt);
        let idx = h.select_weighted(&mk_pkt(0, 1000, sport, 0), &weights);
        assert!(
            weights[idx] > 0,
            "seed {seed}: picked zero-weight index {idx} of {weights:?}"
        );
    }
}

/// PFC accounting: pause/resume alternate per ingress, byte counts
/// match a reference model, and the underflow guard holds.
#[test]
fn pfc_model_alternates_and_balances() {
    for seed in 0..40u64 {
        let mut rng = DetRng::new(seed, 0x16);
        let cfg = PfcConfig {
            pause_threshold: 10_000,
            resume_threshold: 5_000,
        };
        let mut pfc = PfcState::new(cfg, 4);
        let mut bytes = [0u64; 4];
        let mut paused = [false; 4];
        let n_ops = 1 + rng.gen_index(300);
        for _ in 0..n_ops {
            let port = rng.gen_range(4) as u16;
            let size = 1 + rng.gen_range(4_999) as u64;
            let buffer = rng.gen_range(2) == 0;
            let p = port as usize;
            if buffer {
                let action = pfc.on_buffered(port, size);
                bytes[p] += size;
                match action {
                    PfcAction::SendPause => {
                        assert!(!paused[p], "seed {seed}: double pause");
                        assert!(bytes[p] > cfg.pause_threshold, "seed {seed}");
                        paused[p] = true;
                    }
                    PfcAction::SendResume => panic!("seed {seed}: resume on buffer"),
                    PfcAction::None => {}
                }
            } else {
                let take = size.min(bytes[p]);
                if take == 0 {
                    continue;
                }
                let action = pfc.on_released(port, take);
                bytes[p] -= take;
                match action {
                    PfcAction::SendResume => {
                        assert!(paused[p], "seed {seed}: resume while not paused");
                        assert!(bytes[p] < cfg.resume_threshold, "seed {seed}");
                        paused[p] = false;
                    }
                    PfcAction::SendPause => panic!("seed {seed}: pause on release"),
                    PfcAction::None => {}
                }
            }
            assert_eq!(pfc.ingress_bytes(port), bytes[p], "seed {seed}");
            assert_eq!(pfc.is_pausing(port), paused[p], "seed {seed}");
        }
    }
}

/// DetRng::gen_range stays in bounds for arbitrary bounds and seeds.
#[test]
fn rng_range_in_bounds() {
    for seed in 0..100u64 {
        let mut meta = DetRng::new(seed, 0x17);
        let stream = meta.next_u64();
        let bound = 1 + meta.gen_range(999_999);
        let mut rng = DetRng::new(seed, stream);
        for _ in 0..50 {
            assert!(rng.gen_range(bound) < bound, "seed {seed}");
        }
    }
}

/// gen_exp is always non-negative and finite.
#[test]
fn rng_exp_nonnegative() {
    for seed in 0..100u64 {
        let mut rng = DetRng::new(seed, 1);
        let mean = 0.001 + rng.gen_f64() * 1e6;
        for _ in 0..50 {
            let x = rng.gen_exp(mean);
            assert!(x.is_finite() && x >= 0.0, "seed {seed}");
        }
    }
}
