//! Property-based tests of the simulator's core data structures against
//! reference models.

use proptest::prelude::*;

use netsim::event::{EventKind, Scheduler};
use netsim::switch::{PfcAction, PfcConfig, PfcState};
use netsim::{DetRng, EcmpHasher, EcnQueue, EnqueueResult, FlowKey, HashConfig, Packet, Proto, SimTime};

fn mk_pkt(seq: u64, payload: u32, sport: u16, v: u8) -> Packet {
    let key = FlowKey { src: 1, dst: 2, sport, dport: 80, proto: Proto::Tcp };
    Packet::data(0, key, v, seq, payload.max(1), SimTime::ZERO)
}

proptest! {
    /// The queue's byte counter always equals the sum of queued packet
    /// sizes, never exceeds capacity, and FIFO order is preserved.
    #[test]
    fn queue_matches_reference_model(
        capacity in 2_000u64..100_000,
        ops in prop::collection::vec((any::<bool>(), 1u32..2_000), 1..200),
    ) {
        let mut q = EcnQueue::new(capacity, capacity / 2);
        let mut model: std::collections::VecDeque<(u64, u64)> = Default::default(); // (seq, size)
        let mut bytes = 0u64;
        let mut next_seq = 0u64;
        for (enq, payload) in ops {
            if enq {
                let pkt = mk_pkt(next_seq, payload, 7, 0);
                let size = pkt.size as u64;
                match q.enqueue(pkt) {
                    EnqueueResult::Queued => {
                        model.push_back((next_seq, size));
                        bytes += size;
                        prop_assert!(bytes <= capacity, "over capacity");
                    }
                    EnqueueResult::Dropped => {
                        prop_assert!(bytes + size > capacity, "dropped below capacity");
                    }
                }
                next_seq += 1;
            } else {
                match (q.dequeue(), model.pop_front()) {
                    (Some(p), Some((seq, size))) => {
                        prop_assert_eq!(p.seq, seq, "FIFO order broken");
                        bytes -= size;
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "queue/model disagree: {:?} vs {:?}", a.map(|p| p.seq), b),
                }
            }
            prop_assert_eq!(q.bytes(), bytes);
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// Packets enqueued while occupancy >= K come out CE-marked; packets
    /// enqueued below K do not.
    #[test]
    fn queue_marks_exactly_above_threshold(payloads in prop::collection::vec(100u32..1460, 1..100)) {
        let k = 10_000u64;
        let mut q = EcnQueue::new(1_000_000, k);
        let mut occupancy = 0u64;
        let mut expect_marks = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let pkt = mk_pkt(i as u64, *p, 7, 0);
            expect_marks.push(occupancy >= k);
            occupancy += pkt.size as u64;
            q.enqueue(pkt);
        }
        for expect in expect_marks {
            let pkt = q.dequeue().unwrap();
            prop_assert_eq!(pkt.flags.has(netsim::Flags::CE), expect);
        }
    }

    /// The scheduler releases events in exact (time, insertion) order.
    #[test]
    fn scheduler_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_ns(t), EventKind::Timer { host: 0, token: i as u64 });
        }
        let mut expected: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expected.sort();
        for (t, token) in expected {
            let e = s.pop().unwrap();
            prop_assert_eq!(e.time, SimTime::from_ns(t));
            match e.kind {
                EventKind::Timer { token: got, .. } => prop_assert_eq!(got, token),
                _ => prop_assert!(false),
            }
        }
        prop_assert!(s.pop().is_none());
    }

    /// Serialization time is exactly linear in bytes and inverse in rate.
    #[test]
    fn serialization_scales_linearly(bytes in 1u64..1_000_000, rate_gbps in 1u64..400) {
        let rate = rate_gbps * 1_000_000_000;
        let one = SimTime::serialization(bytes, rate);
        let two = SimTime::serialization(bytes * 2, rate);
        // Integer division may lose at most 1 ps per call.
        let diff = (two.as_ps() as i128 - 2 * one.as_ps() as i128).abs();
        prop_assert!(diff <= 2, "nonlinear: {one} vs {two}");
        let faster = SimTime::serialization(bytes, rate * 2);
        prop_assert!(faster <= one);
    }

    /// ECMP selection is deterministic, in-bounds, and V-insensitive when
    /// configured without the V-field.
    #[test]
    fn hasher_bounds_and_determinism(
        salt: u64,
        sport: u16,
        v: u8,
        n in 1usize..64,
    ) {
        let with_v = EcmpHasher::new(HashConfig::FiveTupleAndVField, salt);
        let without_v = EcmpHasher::new(HashConfig::FiveTuple, salt);
        let pkt = mk_pkt(0, 1000, sport, v);
        let a = with_v.select(&pkt, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, with_v.select(&pkt, n), "non-deterministic");
        let b0 = without_v.select(&mk_pkt(0, 1000, sport, 0), n);
        let bv = without_v.select(&pkt, n);
        prop_assert_eq!(b0, bv, "V leaked into a 5-tuple hash");
    }

    /// Weighted selection never picks zero-weight entries.
    #[test]
    fn weighted_selection_avoids_zero_weights(
        salt: u64,
        sport: u16,
        weights in prop::collection::vec(0u32..5, 2..8),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0));
        let h = EcmpHasher::new(HashConfig::FiveTuple, salt);
        let idx = h.select_weighted(&mk_pkt(0, 1000, sport, 0), &weights);
        prop_assert!(weights[idx] > 0, "picked zero-weight index {idx} of {weights:?}");
    }

    /// PFC accounting: pause/resume alternate per ingress, byte counts
    /// match a reference model, and the underflow guard holds.
    #[test]
    fn pfc_model_alternates_and_balances(
        ops in prop::collection::vec((0u16..4, 1u64..5_000, any::<bool>()), 1..300),
    ) {
        let cfg = PfcConfig { pause_threshold: 10_000, resume_threshold: 5_000 };
        let mut pfc = PfcState::new(cfg, 4);
        let mut bytes = [0u64; 4];
        let mut paused = [false; 4];
        for (port, size, buffer) in ops {
            let p = port as usize;
            if buffer {
                let action = pfc.on_buffered(port, size);
                bytes[p] += size;
                match action {
                    PfcAction::SendPause => {
                        prop_assert!(!paused[p], "double pause");
                        prop_assert!(bytes[p] > cfg.pause_threshold);
                        paused[p] = true;
                    }
                    PfcAction::SendResume => prop_assert!(false, "resume on buffer"),
                    PfcAction::None => {}
                }
            } else {
                let take = size.min(bytes[p]);
                if take == 0 {
                    continue;
                }
                let action = pfc.on_released(port, take);
                bytes[p] -= take;
                match action {
                    PfcAction::SendResume => {
                        prop_assert!(paused[p], "resume while not paused");
                        prop_assert!(bytes[p] < cfg.resume_threshold);
                        paused[p] = false;
                    }
                    PfcAction::SendPause => prop_assert!(false, "pause on release"),
                    PfcAction::None => {}
                }
            }
            prop_assert_eq!(pfc.ingress_bytes(port), bytes[p]);
            prop_assert_eq!(pfc.is_pausing(port), paused[p]);
        }
    }

    /// DetRng::gen_range stays in bounds for arbitrary bounds and seeds.
    #[test]
    fn rng_range_in_bounds(seed: u64, stream: u64, bound in 1u32..1_000_000) {
        let mut rng = DetRng::new(seed, stream);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    /// gen_exp is always non-negative and finite.
    #[test]
    fn rng_exp_nonnegative(seed: u64, mean in 0.001f64..1e6) {
        let mut rng = DetRng::new(seed, 1);
        for _ in 0..50 {
            let x = rng.gen_exp(mean);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }
}
