//! Flow-completion-time statistics: filtering, percentiles, size bins.

use netsim::{FlowRecord, Proto, SimTime};

/// One completed flow, reduced to what the figures need.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Flow size in bytes.
    pub bytes: u64,
    /// Flow completion time in seconds.
    pub fct_s: f64,
}

/// Extract completed TCP flows as samples, keeping only flows that
/// *arrived* within `[window_start, window_end)` (standard warm-up /
/// cool-down trimming: late arrivals that couldn't finish before the run
/// ended must not be counted, and neither should a cold-start transient).
pub fn samples(records: &[FlowRecord], window_start: SimTime, window_end: SimTime) -> Vec<Sample> {
    records
        .iter()
        .filter(|r| r.proto == Proto::Tcp)
        .filter(|r| r.start >= window_start && r.start < window_end)
        .filter_map(|r| {
            r.fct().map(|fct| Sample {
                bytes: r.bytes,
                fct_s: fct.as_secs_f64(),
            })
        })
        .collect()
}

/// Fraction of TCP flows arriving in the window that completed (a run
/// health check: should be ~1.0 when the drain period is adequate).
pub fn completion_fraction(
    records: &[FlowRecord],
    window_start: SimTime,
    window_end: SimTime,
) -> f64 {
    let in_window: Vec<_> = records
        .iter()
        .filter(|r| r.proto == Proto::Tcp && r.start >= window_start && r.start < window_end)
        .collect();
    if in_window.is_empty() {
        return 1.0;
    }
    let done = in_window.iter().filter(|r| r.fct().is_some()).count();
    done as f64 / in_window.len() as f64
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

/// The `p`-quantile (0 ≤ p ≤ 1) by the nearest-rank method on a sorted
/// copy; `None` on empty input.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Empirical CDF of `xs` sampled at `n` evenly spaced quantiles, as
/// `(value, cumulative_probability)` pairs — the raw material for the
/// paper-style latency CDF plots. Empty input yields an empty vec.
pub fn cdf_points(xs: &[f64], n: usize) -> Vec<(f64, f64)> {
    if xs.is_empty() || n == 0 {
        return Vec::new();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    (1..=n)
        .map(|i| {
            let p = i as f64 / n as f64;
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            (sorted[rank - 1], p)
        })
        .collect()
}

/// A half-open flow-size bin `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeBin {
    /// Human-readable label (the paper's axis labels).
    pub label: &'static str,
    /// Inclusive lower bound, bytes.
    pub lo: u64,
    /// Exclusive upper bound, bytes.
    pub hi: u64,
}

impl SizeBin {
    /// True if `bytes` falls in this bin.
    ///
    /// Edge cases are pinned by tests: a degenerate bin with `lo >= hi`
    /// contains nothing, and `hi == u64::MAX` means "unbounded above" —
    /// it admits `bytes == u64::MAX` rather than silently excluding the
    /// one value the half-open convention can't express.
    pub fn contains(&self, bytes: u64) -> bool {
        if self.lo >= self.hi {
            return false;
        }
        bytes >= self.lo && (bytes < self.hi || self.hi == u64::MAX)
    }
}

/// A value-type set of flow-size bins — the unit the binned-FCT APIs take
/// ([`binned`], [`crate::FctAccumulator`]) instead of a loose `&[SizeBin]`
/// slice. Constructors carry the semantics: [`BinSpec::paper`] (also the
/// `Default`) is the paper's Figure 3/4 binning; [`BinSpec::custom`] takes
/// any bin list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinSpec {
    bins: Vec<SizeBin>,
}

impl BinSpec {
    /// The paper's Figure 3/4 bins (see [`paper_bins`]).
    pub fn paper() -> Self {
        BinSpec {
            bins: paper_bins().to_vec(),
        }
    }

    /// An arbitrary bin list (need not partition; overlaps mean a flow
    /// counts toward its first matching bin in index order).
    pub fn custom(bins: Vec<SizeBin>) -> Self {
        BinSpec { bins }
    }

    /// The bins, in order.
    pub fn bins(&self) -> &[SizeBin] {
        &self.bins
    }

    /// Index of the first bin containing `bytes`, if any.
    pub fn index_of(&self, bytes: u64) -> Option<usize> {
        self.bins.iter().position(|b| b.contains(bytes))
    }
}

impl Default for BinSpec {
    fn default() -> Self {
        BinSpec::paper()
    }
}

/// The paper's Figure 3/4 bins: `[1KB,10KB]`, `(10KB,128KB]`,
/// `(128KB,1MB]`, `>1MB` (expressed half-open on byte counts).
pub fn paper_bins() -> [SizeBin; 4] {
    [
        SizeBin {
            label: "[1KB,10KB]",
            lo: 0,
            hi: 10_001,
        },
        SizeBin {
            label: "(10KB,128KB]",
            lo: 10_001,
            hi: 128_001,
        },
        SizeBin {
            label: "(128KB,1MB]",
            lo: 128_001,
            hi: 1_000_001,
        },
        SizeBin {
            label: ">1MB",
            lo: 1_000_001,
            hi: u64::MAX,
        },
    ]
}

/// Per-bin latency summary.
///
/// Statistics are `None` when the bin received no samples. An empty bin
/// used to report `0.0`, which read as "perfect tail" in tables and
/// JSON; consumers must render the absence explicitly (`-` in tables,
/// omitted keys in JSON) instead.
#[derive(Debug, Clone, Copy)]
pub struct BinStats {
    /// The bin.
    pub bin: SizeBin,
    /// Number of samples.
    pub count: usize,
    /// Mean FCT in seconds; `None` if the bin is empty.
    pub mean_s: Option<f64>,
    /// 99th-percentile FCT in seconds; `None` if the bin is empty.
    pub p99_s: Option<f64>,
    /// 99.9th-percentile FCT in seconds; `None` if the bin is empty.
    pub p999_s: Option<f64>,
}

/// Summarize `samples` into the given bins (exact path: holds all FCTs
/// per bin in memory — fine at experiment scale; at millions of flows use
/// the streaming [`crate::FctAccumulator`] instead).
pub fn binned(samples: &[Sample], spec: &BinSpec) -> Vec<BinStats> {
    spec.bins()
        .iter()
        .map(|&bin| {
            let fcts: Vec<f64> = samples
                .iter()
                .filter(|s| bin.contains(s.bytes))
                .map(|s| s.fct_s)
                .collect();
            BinStats {
                bin,
                count: fcts.len(),
                mean_s: mean(&fcts),
                p99_s: percentile(&fcts, 0.99),
                p999_s: percentile(&fcts, 0.999),
            }
        })
        .collect()
}

/// Job/coflow completion-time summary: flows are grouped by job id; a job
/// completes when its last flow completes; a job only counts toward the
/// latency statistics if every one of its flows completed.
#[derive(Debug, Clone, Copy)]
pub struct JobStats {
    /// Distinct job ids seen (complete or not).
    pub jobs_total: usize,
    /// Jobs whose every flow completed.
    pub jobs_complete: usize,
    /// Mean JCT in seconds over complete jobs; `None` if none completed.
    pub mean_s: Option<f64>,
    /// Median JCT in seconds; `None` if no job completed.
    pub p50_s: Option<f64>,
    /// 99th-percentile JCT in seconds; `None` if no job completed.
    pub p99_s: Option<f64>,
    /// Slowest complete job's JCT in seconds; `None` if none completed.
    pub max_s: Option<f64>,
}

/// Full job/coflow completion-time statistics from `jobs_by_id`-style
/// tagging (the paper's partition-aggregate jobs; RepNet-style coflows).
pub fn job_completion(records: &[FlowRecord]) -> JobStats {
    use std::collections::HashMap;
    let mut jobs: HashMap<u32, (SimTime, SimTime, bool)> = HashMap::new();
    for r in records {
        let Some(job) = r.job else { continue };
        let e = jobs.entry(job).or_insert((r.start, SimTime::ZERO, true));
        e.0 = e.0.min(r.start);
        match r.fct() {
            Some(_) => e.1 = e.1.max(r.end),
            None => e.2 = false,
        }
    }
    let jcts: Vec<f64> = jobs
        .values()
        .filter(|(_, _, complete)| *complete)
        .map(|(start, end, _)| (*end - *start).as_secs_f64())
        .collect();
    JobStats {
        jobs_total: jobs.len(),
        jobs_complete: jcts.len(),
        mean_s: mean(&jcts),
        p50_s: percentile(&jcts, 0.5),
        p99_s: percentile(&jcts, 0.99),
        max_s: percentile(&jcts, 1.0),
    }
}

/// Average job completion time in seconds, as `(avg_jct, jobs_counted)`.
/// Thin wrapper over [`job_completion`] kept for the original call sites;
/// note it reports `0.0` (not `None`) when no job completed.
pub fn avg_job_completion(records: &[FlowRecord]) -> (f64, usize) {
    let js = job_completion(records);
    (js.mean_s.unwrap_or(0.0), js.jobs_complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        flow: u32,
        bytes: u64,
        start_us: u64,
        fct_us: Option<u64>,
        job: Option<u32>,
    ) -> FlowRecord {
        FlowRecord {
            flow,
            src: 0,
            dst: 1,
            bytes,
            start: SimTime::from_us(start_us),
            end: match fct_us {
                Some(f) => SimTime::from_us(start_us + f),
                None => SimTime::MAX,
            },
            job,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn samples_respect_window_and_completion() {
        let records = vec![
            rec(0, 1000, 10, Some(100), None),
            rec(1, 1000, 20, None, None),            // incomplete
            rec(2, 1000, 5_000_000, Some(50), None), // after window
        ];
        let s = samples(&records, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(s.len(), 1);
        assert!((s[0].fct_s - 100e-6).abs() < 1e-12);
        let frac = completion_fraction(&records, SimTime::ZERO, SimTime::from_secs(1));
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_and_percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(percentile(&xs, 0.5), Some(2.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_nearest_rank_on_100() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.99), Some(99.0));
        assert_eq!(percentile(&xs, 0.999), Some(100.0));
        assert_eq!(percentile(&xs, 0.01), Some(1.0));
    }

    #[test]
    fn percentile_edge_cases() {
        // Single element: every quantile is that element.
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 0.5), Some(7.0));
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
        // Two elements: p = 0 pins the min, anything above 0.5 the max.
        assert_eq!(percentile(&[2.0, 1.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[2.0, 1.0], 0.5), Some(1.0));
        assert_eq!(percentile(&[2.0, 1.0], 0.51), Some(2.0));
        // Ties collapse to the tied value; input order is irrelevant.
        assert_eq!(percentile(&[3.0, 3.0, 3.0], 0.99), Some(3.0));
        assert_eq!(
            percentile(&[5.0, 1.0, 3.0], 0.5),
            percentile(&[1.0, 3.0, 5.0], 0.5)
        );
        // Empty input never panics, for any p.
        assert_eq!(percentile(&[], 0.0), None);
        assert_eq!(percentile(&[], 1.0), None);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range_p() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_max() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let c = cdf_points(&xs, 10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.last().unwrap(), &(5.0, 1.0));
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0, "values must be nondecreasing");
            assert!(w[1].1 > w[0].1, "probabilities must increase");
        }
        // Median lands on the middle element.
        let mid = c.iter().find(|&&(_, p)| (p - 0.5).abs() < 1e-12).unwrap();
        assert_eq!(mid.0, 3.0);
        assert!(cdf_points(&[], 10).is_empty());
        assert!(cdf_points(&xs, 0).is_empty());
    }

    #[test]
    fn paper_bins_partition_sizes() {
        let bins = paper_bins();
        for bytes in [
            1_000u64, 10_000, 10_001, 128_000, 128_001, 1_000_000, 1_000_001, 30_000_000,
        ] {
            let hits = bins.iter().filter(|b| b.contains(bytes)).count();
            assert_eq!(hits, 1, "bytes {bytes} in {hits} bins");
        }
        // Boundary semantics: 10KB in the first bin, >10KB in the second.
        assert!(bins[0].contains(10_000));
        assert!(bins[1].contains(10_001));
        assert!(bins[2].contains(1_000_000));
        assert!(bins[3].contains(1_000_001));
    }

    #[test]
    fn binned_stats_split_by_size() {
        let samples = vec![
            Sample {
                bytes: 5_000,
                fct_s: 1.0,
            },
            Sample {
                bytes: 5_000,
                fct_s: 3.0,
            },
            Sample {
                bytes: 2_000_000,
                fct_s: 10.0,
            },
        ];
        let b = binned(&samples, &BinSpec::paper());
        assert_eq!(b[0].count, 2);
        assert_eq!(b[0].mean_s, Some(2.0));
        assert_eq!(b[0].p99_s, Some(3.0));
        assert_eq!(b[3].count, 1);
        assert_eq!(b[3].mean_s, Some(10.0));
    }

    #[test]
    fn size_bin_degenerate_and_unbounded_edges() {
        // lo == hi: an empty interval contains nothing, not even lo.
        let empty = SizeBin {
            label: "empty",
            lo: 100,
            hi: 100,
        };
        assert!(!empty.contains(100));
        assert!(!empty.contains(99));
        assert!(!empty.contains(101));
        // lo > hi is equally degenerate.
        let inverted = SizeBin {
            label: "inverted",
            lo: 200,
            hi: 100,
        };
        assert!(!inverted.contains(150));
        // hi == u64::MAX acts unbounded: u64::MAX itself is included,
        // instead of being the one value a half-open bin can never hold.
        let top = SizeBin {
            label: "top",
            lo: 1_000_001,
            hi: u64::MAX,
        };
        assert!(top.contains(1_000_001));
        assert!(top.contains(u64::MAX - 1));
        assert!(top.contains(u64::MAX));
        assert!(!top.contains(1_000_000));
        // A bounded bin still excludes its upper edge.
        let bounded = SizeBin {
            label: "bounded",
            lo: 0,
            hi: 10,
        };
        assert!(bounded.contains(9));
        assert!(!bounded.contains(10));
    }

    #[test]
    fn bin_spec_default_is_paper_and_indexes_first_match() {
        let spec = BinSpec::default();
        assert_eq!(spec, BinSpec::paper());
        assert_eq!(spec.bins().len(), 4);
        assert_eq!(spec.index_of(5_000), Some(0));
        assert_eq!(spec.index_of(50_000), Some(1));
        assert_eq!(spec.index_of(2_000_000), Some(3));
        assert_eq!(spec.index_of(u64::MAX), Some(3));
        // Overlapping custom bins: first match wins.
        let overlap = BinSpec::custom(vec![
            SizeBin {
                label: "a",
                lo: 0,
                hi: 100,
            },
            SizeBin {
                label: "b",
                lo: 50,
                hi: 200,
            },
        ]);
        assert_eq!(overlap.index_of(75), Some(0));
        assert_eq!(overlap.index_of(150), Some(1));
        assert_eq!(overlap.index_of(500), None);
    }

    #[test]
    fn empty_bins_report_none_not_zero() {
        // Regression: an empty bin's p99 used to come back as 0.0 via
        // `unwrap_or(0.0)`, masquerading as a perfect tail.
        let samples = vec![Sample {
            bytes: 5_000,
            fct_s: 1.0,
        }];
        let b = binned(&samples, &BinSpec::paper());
        assert_eq!(b[1].count, 0);
        assert_eq!(b[1].mean_s, None);
        assert_eq!(b[1].p99_s, None);
        assert_eq!(b[1].p999_s, None);
        // And a fully empty input leaves every bin explicit about it.
        for bs in binned(&[], &BinSpec::paper()) {
            assert_eq!(bs.count, 0);
            assert_eq!(bs.p99_s, None);
        }
    }

    #[test]
    fn job_completion_takes_last_flow() {
        let records = vec![
            rec(0, 1000, 0, Some(100), Some(1)),
            rec(1, 1000, 0, Some(300), Some(1)),
            rec(2, 1000, 0, Some(200), Some(1)),
            // Job 2 incomplete: excluded.
            rec(3, 1000, 0, Some(100), Some(2)),
            rec(4, 1000, 0, None, Some(2)),
            // Non-job flow ignored.
            rec(5, 1000, 0, Some(999), None),
        ];
        let (avg, n) = avg_job_completion(&records);
        assert_eq!(n, 1);
        assert!((avg - 300e-6).abs() < 1e-12);
        // The full summary agrees and adds the tail view.
        let js = job_completion(&records);
        assert_eq!(js.jobs_total, 2);
        assert_eq!(js.jobs_complete, 1);
        assert!((js.mean_s.unwrap() - 300e-6).abs() < 1e-12);
        assert_eq!(js.p50_s, js.p99_s, "one job: every quantile is it");
        assert_eq!(js.p99_s, js.max_s);
    }

    #[test]
    fn job_completion_percentiles_over_many_jobs() {
        // 100 jobs with JCTs 100us..10ms; p99 picks the 99th.
        let mut records = Vec::new();
        for j in 0..100u32 {
            records.push(rec(j, 1000, 0, Some(100 * (j as u64 + 1)), Some(j)));
        }
        let js = job_completion(&records);
        assert_eq!(js.jobs_total, 100);
        assert_eq!(js.jobs_complete, 100);
        assert!((js.p50_s.unwrap() - 5_000e-6).abs() < 1e-12);
        assert!((js.p99_s.unwrap() - 9_900e-6).abs() < 1e-12);
        assert!((js.max_s.unwrap() - 10_000e-6).abs() < 1e-12);
    }

    #[test]
    fn job_completion_empty_reports_none() {
        let js = job_completion(&[rec(0, 1000, 0, Some(5), None)]);
        assert_eq!(js.jobs_total, 0);
        assert_eq!(js.jobs_complete, 0);
        assert_eq!(js.mean_s, None);
        assert_eq!(js.p99_s, None);
        let (avg, n) = avg_job_completion(&[]);
        assert_eq!((avg, n), (0.0, 0));
    }
}
