//! A minimal, deterministic JSON writer.
//!
//! The experiment suite emits machine-readable results (`--json DIR`)
//! without pulling in a serialization framework — the build runs fully
//! offline. This module provides a [`Json`] value tree plus a writer with
//! two properties the golden-file tests rely on:
//!
//! * **Determinism**: object keys serialize in insertion order, floats
//!   render via Rust's shortest-round-trip `Display`, and nothing depends
//!   on hash iteration order — the same value tree always produces the
//!   same bytes.
//! * **Strict output**: all mandatory escapes (quote, backslash, control
//!   characters as `\u00XX`), `null` for non-finite floats (JSON has no
//!   NaN/Infinity), arrays and objects with no trailing separators.

use std::fmt::Write as _;

/// A JSON value. Build trees with the constructors and [`Json::push`] /
/// [`Json::set`], then render with [`Json::to_string`] (compact) or
/// [`Json::to_string_pretty`] (2-space indent).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// An unsigned integer (exact — no float round-trip).
    U64(u64),
    /// A signed integer (exact — no float round-trip).
    I64(i64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Append `(key, value)` to an object. Panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Obj(entries) => entries.push((key.into(), value)),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Append `value` to an array. Panics on non-arrays.
    pub fn push(&mut self, value: Json) -> &mut Json {
        match self {
            Json::Arr(items) => items.push(value),
            other => panic!("push() on non-array {other:?}"),
        }
        self
    }

    /// Compact rendering (no whitespace).
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: 2-space indent, one key or element per line,
    /// trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's Display prints the shortest string that
                    // round-trips, which is stable across platforms.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Json::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(entries) => {
                write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

/// Shared array/object layout: compact (`[a,b]`) or pretty (one element
/// per line at `depth + 1` indentation).
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Write `s` as a JSON string literal with all mandatory escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Bool(false).to_string(), "false");
        assert_eq!(
            Json::U64(18_446_744_073_709_551_615).to_string(),
            "18446744073709551615"
        );
        assert_eq!(Json::I64(-42).to_string(), "-42");
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_is_null() {
        assert_eq!(Json::Num(0.1).to_string(), "0.1");
        assert_eq!(Json::Num(1.0).to_string(), "1");
        assert_eq!(Json::Num(-2.5e-9).to_string(), "-0.0000000025");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_mandatory_characters() {
        assert_eq!(Json::str("plain").to_string(), "\"plain\"");
        assert_eq!(Json::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Json::str("a\\b").to_string(), "\"a\\\\b\"");
        assert_eq!(Json::str("a\nb\tc\rd").to_string(), "\"a\\nb\\tc\\rd\"");
        assert_eq!(Json::str("\u{1}\u{1f}").to_string(), "\"\\u0001\\u001f\"");
        // Non-ASCII passes through unescaped (output is UTF-8).
        assert_eq!(Json::str("héllo").to_string(), "\"héllo\"");
    }

    #[test]
    fn compact_layout() {
        let mut o = Json::obj();
        o.set("a", Json::U64(1));
        o.set("b", {
            let mut a = Json::arr();
            a.push(Json::Num(1.5));
            a.push(Json::Null);
            a
        });
        assert_eq!(o.to_string(), r#"{"a":1,"b":[1.5,null]}"#);
        assert_eq!(Json::arr().to_string(), "[]");
        assert_eq!(Json::obj().to_string(), "{}");
    }

    #[test]
    fn pretty_layout() {
        let mut o = Json::obj();
        o.set("k", {
            let mut a = Json::arr();
            a.push(Json::U64(1));
            a.push(Json::U64(2));
            a
        });
        o.set("e", Json::obj());
        assert_eq!(
            o.to_string_pretty(),
            "{\n  \"k\": [\n    1,\n    2\n  ],\n  \"e\": {}\n}\n"
        );
    }

    #[test]
    fn keys_keep_insertion_order() {
        let mut o = Json::obj();
        o.set("zebra", Json::U64(1));
        o.set("alpha", Json::U64(2));
        assert_eq!(o.to_string(), r#"{"zebra":1,"alpha":2}"#);
    }
}
