//! # stats — measurement reduction for the FlowBender experiment suite
//!
//! Takes a run's [`netsim::FlowRecord`]s and counters and produces the
//! numbers the paper's tables and figures report: windowed FCT samples,
//! means and tail percentiles, the paper's flow-size bins, job completion
//! times, plain-text/CSV table rendering, and a dependency-free
//! deterministic JSON writer for machine-readable results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fct;
pub mod json;
pub mod sketch;
pub mod table;

pub use fct::{
    avg_job_completion, binned, cdf_points, completion_fraction, job_completion, mean, paper_bins,
    percentile, samples, BinSpec, BinStats, JobStats, Sample, SizeBin,
};
pub use json::Json;
pub use sketch::{FctAccumulator, QuantileSketch};
pub use table::{fmt_gbps, fmt_ratio, fmt_secs, Table};
