//! Streaming quantile sketches for flow-completion-time statistics at
//! millions of flows.
//!
//! [`QuantileSketch`] is a hand-rolled DDSketch-style mergeable quantile
//! summary: values are counted into logarithmically spaced buckets with
//! relative width `gamma = (1 + alpha) / (1 - alpha)`, so any quantile is
//! answered with relative error at most `alpha` using memory proportional
//! to the *value range* (a few hundred buckets for microsecond-to-minute
//! FCTs) — never to the number of observations. Everything is
//! deterministic (sorted bucket maps, no randomness, no wall clock), in
//! the same spirit as [`crate::Json`]: two identical runs serialize and
//! summarize byte-identically.
//!
//! [`FctAccumulator`] layers the flow-size bins on top: one overall sketch
//! plus one per [`crate::fct::SizeBin`], fed incrementally one completed
//! flow at a time (`record(bytes, fct_s)`), so a run over 10^6+ flows
//! needs O(buckets) stats memory instead of a `Vec<Sample>` per flow.

use std::collections::BTreeMap;

use crate::fct::{BinSpec, BinStats, Sample};

/// Values below this (in the caller's unit; seconds for FCTs) are counted
/// in a dedicated underflow bucket and reported as the observed minimum.
/// One picosecond is far below any representable simulated FCT.
const MIN_TRACKED: f64 = 1e-12;

/// A mergeable, deterministic DDSketch-style quantile summary of
/// non-negative values.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Relative-accuracy guarantee: quantile estimates are within
    /// `alpha * true_value` of the exact order statistic.
    alpha: f64,
    /// `ln(gamma)` with `gamma = (1 + alpha) / (1 - alpha)`.
    ln_gamma: f64,
    /// Observations counted.
    count: u64,
    /// Exact running sum (for exact means).
    sum: f64,
    /// Exact observed extremes.
    min: f64,
    max: f64,
    /// Count of values below [`MIN_TRACKED`].
    underflow: u64,
    /// Log-bucket index -> count. A `BTreeMap` keeps iteration sorted,
    /// which makes quantile walks and serialization deterministic.
    buckets: BTreeMap<i32, u64>,
}

impl QuantileSketch {
    /// A sketch guaranteeing `alpha` relative accuracy (`0 < alpha < 1`).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0 && alpha.is_finite(),
            "alpha {alpha} out of range"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            underflow: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// The default FCT sketch: 0.5 % relative accuracy, comfortably inside
    /// the 1 % equivalence budget with room for rank-vs-interpolation slop.
    pub fn for_fct() -> Self {
        QuantileSketch::new(0.005)
    }

    /// The accuracy guarantee this sketch was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Count one value. Values must be finite and non-negative (FCTs are).
    pub fn add(&mut self, v: f64) {
        assert!(v.is_finite() && v >= 0.0, "sketch value {v} out of domain");
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < MIN_TRACKED {
            self.underflow += 1;
        } else {
            let idx = (v.ln() / self.ln_gamma).ceil() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Fold `other` into `self`. Both sketches must share an `alpha`
    /// (merging across accuracies would silently lose the guarantee).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.alpha.to_bits(),
            other.alpha.to_bits(),
            "merging sketches with different accuracies"
        );
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.underflow += other.underflow;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// Observations counted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the same nearest-rank convention as
    /// [`crate::fct::percentile`], accurate to `alpha` relative error;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.underflow;
        if rank <= cum {
            return Some(self.min);
        }
        for (&idx, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                // Mid-point of the bucket (gamma^(idx-1), gamma^idx]:
                // 2*gamma^idx/(gamma+1), within alpha of any member.
                let gamma_idx = (self.ln_gamma * idx as f64).exp();
                let est = 2.0 * gamma_idx / ((self.ln_gamma.exp()) + 1.0);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Number of occupied buckets — the memory driver. Bounded by the
    /// dynamic range of the data (≈ `ln(max/min)/ln(gamma)`), independent
    /// of how many values were added.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate heap footprint in bytes (BTreeMap entries plus the
    /// fixed header) — what "O(sketch), not O(flows)" means in numbers.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.len() * (std::mem::size_of::<(i32, u64)>() + 16)
    }
}

/// Streaming per-size-bin FCT statistics: the O(buckets) replacement for
/// collecting a `Vec<Sample>` and calling [`crate::fct::binned`].
///
/// Feed it one completed flow at a time; ask for the same [`BinStats`]
/// rows the exact path produces (counts and means exact, tail percentiles
/// within the sketch's `alpha`). Accumulators over the same `BinSpec` and
/// accuracy merge, so shards can aggregate independently.
#[derive(Debug, Clone)]
pub struct FctAccumulator {
    bins: BinSpec,
    overall: QuantileSketch,
    per_bin: Vec<QuantileSketch>,
}

impl FctAccumulator {
    /// An accumulator over `bins` at the default FCT accuracy (0.5 %).
    pub fn new(bins: BinSpec) -> Self {
        FctAccumulator::with_alpha(bins, 0.005)
    }

    /// An accumulator over `bins` with an explicit accuracy.
    pub fn with_alpha(bins: BinSpec, alpha: f64) -> Self {
        let per_bin = bins
            .bins()
            .iter()
            .map(|_| QuantileSketch::new(alpha))
            .collect();
        FctAccumulator {
            bins,
            overall: QuantileSketch::new(alpha),
            per_bin,
        }
    }

    /// Count one completed flow of `bytes` with completion time `fct_s`.
    pub fn record(&mut self, bytes: u64, fct_s: f64) {
        self.overall.add(fct_s);
        if let Some(i) = self.bins.index_of(bytes) {
            self.per_bin[i].add(fct_s);
        }
    }

    /// [`FctAccumulator::record`] from a [`Sample`].
    pub fn record_sample(&mut self, s: &Sample) {
        self.record(s.bytes, s.fct_s);
    }

    /// Fold `other` into `self` (same `BinSpec`, same accuracy).
    pub fn merge(&mut self, other: &FctAccumulator) {
        assert_eq!(self.bins, other.bins, "merging different bin specs");
        self.overall.merge(&other.overall);
        for (a, b) in self.per_bin.iter_mut().zip(&other.per_bin) {
            a.merge(b);
        }
    }

    /// Flows recorded (all sizes).
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// The sketch over every recorded flow, for overall percentiles.
    pub fn overall(&self) -> &QuantileSketch {
        &self.overall
    }

    /// The bins this accumulator splits on.
    pub fn bin_spec(&self) -> &BinSpec {
        &self.bins
    }

    /// Per-bin summary rows, shaped exactly like [`crate::fct::binned`]:
    /// counts and means are exact; p99/p99.9 carry the sketch guarantee.
    pub fn binned(&self) -> Vec<BinStats> {
        self.bins
            .bins()
            .iter()
            .zip(&self.per_bin)
            .map(|(&bin, sk)| BinStats {
                bin,
                count: sk.count() as usize,
                mean_s: sk.mean(),
                p99_s: sk.quantile(0.99),
                p999_s: sk.quantile(0.999),
            })
            .collect()
    }

    /// Total occupied buckets across the overall and per-bin sketches.
    pub fn bucket_count(&self) -> usize {
        self.overall.bucket_count() + self.per_bin.iter().map(|s| s.bucket_count()).sum::<usize>()
    }

    /// Approximate heap footprint in bytes — flat in the flow count.
    pub fn memory_bytes(&self) -> usize {
        self.overall.memory_bytes() + self.per_bin.iter().map(|s| s.memory_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fct::percentile;

    /// Deterministic heavy-tailed pseudo-FCTs without pulling in a real
    /// RNG dependency: a simple xorshift over a log-uniform range.
    fn synth_fcts(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                // 10us .. 10s, log-uniform: a realistic FCT spread.
                1e-5 * (1e6f64).powf(u)
            })
            .collect()
    }

    #[test]
    fn quantiles_match_exact_within_alpha_at_10k() {
        // The acceptance bar: p50/p99/p99.9 within 1% relative error of
        // the exact nearest-rank values at 10k samples.
        let xs = synth_fcts(10_000, 42);
        let mut sk = QuantileSketch::for_fct();
        for &v in &xs {
            sk.add(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = percentile(&xs, q).unwrap();
            let est = sk.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.01, "q={q}: exact {exact} vs sketch {est} ({rel})");
        }
        // Mean, min, max, count are exact.
        assert_eq!(sk.count(), 10_000);
        let exact_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((sk.mean().unwrap() - exact_mean).abs() < 1e-12 * exact_mean.abs().max(1.0));
        assert_eq!(
            sk.min().unwrap(),
            xs.iter().cloned().fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            sk.max().unwrap(),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn memory_is_flat_in_the_observation_count() {
        let mut small = QuantileSketch::for_fct();
        let mut big = QuantileSketch::for_fct();
        for &v in &synth_fcts(1_000, 7) {
            small.add(v);
        }
        for &v in &synth_fcts(100_000, 7) {
            big.add(v);
        }
        // 100x the data, same value range: bucket count stays in the same
        // ballpark (it can only grow toward the range-implied ceiling).
        assert!(big.bucket_count() < 4_000, "buckets {}", big.bucket_count());
        assert!(
            big.memory_bytes() < 64 * small.memory_bytes().max(1),
            "memory must not scale with n: {} vs {}",
            big.memory_bytes(),
            small.memory_bytes()
        );
    }

    #[test]
    fn merge_equals_bulk_feed() {
        let xs = synth_fcts(5_000, 3);
        let mut whole = QuantileSketch::for_fct();
        let mut a = QuantileSketch::for_fct();
        let mut b = QuantileSketch::for_fct();
        for (i, &v) in xs.iter().enumerate() {
            whole.add(v);
            if i % 2 == 0 {
                a.add(v)
            } else {
                b.add(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.bucket_count(), whole.bucket_count());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton_sketches() {
        let mut sk = QuantileSketch::for_fct();
        assert_eq!(sk.count(), 0);
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.mean(), None);
        assert_eq!(sk.min(), None);
        sk.add(0.25);
        for q in [0.0, 0.5, 1.0] {
            let v = sk.quantile(q).unwrap();
            assert!((v - 0.25).abs() / 0.25 < 0.005, "q={q}: {v}");
        }
    }

    #[test]
    fn zero_values_count_toward_low_quantiles() {
        let mut sk = QuantileSketch::for_fct();
        for _ in 0..90 {
            sk.add(0.0);
        }
        for _ in 0..10 {
            sk.add(1.0);
        }
        assert_eq!(sk.quantile(0.5), Some(0.0), "median of mostly-zeros");
        let p99 = sk.quantile(0.99).unwrap();
        assert!((p99 - 1.0).abs() < 0.01, "p99 {p99}");
        assert_eq!(sk.min(), Some(0.0));
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        QuantileSketch::for_fct().add(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn rejects_merge_across_accuracies() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    fn accumulator_matches_exact_binned_at_10k() {
        // Exact-vs-sketch equivalence over the full accumulator: same
        // counts, same means, tails within 1%.
        let mut vals = Vec::new();
        let mut x: u64 = 99;
        for i in 0..10_000usize {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let bytes = 1_000 + (x % 5_000_000);
            let fct = 1e-4 + (i as f64) * 1e-6 + (x % 1000) as f64 * 1e-5;
            vals.push(Sample { bytes, fct_s: fct });
        }
        let spec = BinSpec::paper();
        let exact = crate::fct::binned(&vals, &spec);
        let mut acc = FctAccumulator::new(BinSpec::paper());
        for s in &vals {
            acc.record_sample(s);
        }
        let sketched = acc.binned();
        assert_eq!(acc.count(), 10_000);
        for (e, s) in exact.iter().zip(&sketched) {
            assert_eq!(e.bin, s.bin);
            assert_eq!(e.count, s.count, "{}", e.bin.label);
            match (e.mean_s, s.mean_s) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9 * a.max(1.0)),
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
            for (ep, sp) in [(e.p99_s, s.p99_s), (e.p999_s, s.p999_s)] {
                if let (Some(a), Some(b)) = (ep, sp) {
                    assert!((a - b).abs() / a < 0.01, "{}: {a} vs {b}", e.bin.label);
                }
            }
        }
    }

    #[test]
    fn accumulator_merges_across_shards() {
        let spec = BinSpec::paper();
        let mut whole = FctAccumulator::new(spec.clone());
        let mut shard_a = FctAccumulator::new(spec.clone());
        let mut shard_b = FctAccumulator::new(spec);
        for i in 0..2_000u64 {
            let bytes = 500 + i * 700;
            let fct = 1e-4 + i as f64 * 3e-7;
            whole.record(bytes, fct);
            if i % 2 == 0 {
                shard_a.record(bytes, fct)
            } else {
                shard_b.record(bytes, fct)
            }
        }
        shard_a.merge(&shard_b);
        assert_eq!(shard_a.count(), whole.count());
        let (a, w) = (shard_a.binned(), whole.binned());
        for (x, y) in a.iter().zip(&w) {
            assert_eq!(x.count, y.count);
            assert_eq!(x.p99_s, y.p99_s);
        }
    }
}
