//! Plain-text table rendering for the experiment harness.
//!
//! The harness's job is to print "the same rows the paper reports"; this
//! module renders aligned text tables (for humans) and CSV (for plotting).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:width$}", cell, width = widths[i]);
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            debug_assert!(!s.contains(','), "CSV cell contains a comma: {s}");
            s.to_string()
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds as adaptive human units (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "-".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.3}s", s)
    }
}

/// Format a ratio to a baseline with 2 decimals ("0.27x").
pub fn fmt_ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}x")
    } else {
        "-".to_string()
    }
}

/// Format a rate in Gbps.
pub fn fmt_gbps(bps: f64) -> String {
    format!("{:.2}Gbps", bps / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["scheme", "mean", "p99"]);
        t.row(vec!["ECMP", "1.00x", "1.00x"]);
        t.row(vec!["FlowBender", "0.27x", "0.07x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("FlowBender"));
        // Columns align: "mean" starts at the same offset in each row.
        let col = lines[0].find("mean").unwrap();
        assert_eq!(&lines[2][col..col + 5], "1.00x");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0), "-");
        assert_eq!(fmt_secs(50e-6), "50.0us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_ratio(0.266), "0.27x");
        assert_eq!(fmt_ratio(f64::NAN), "-");
        assert_eq!(fmt_gbps(9.5e9), "9.50Gbps");
    }
}
