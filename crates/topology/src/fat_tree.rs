//! The paper's fat-tree fabric (§4.2, Figure 2).
//!
//! The evaluated network has 128 servers in 4 pods. Each pod holds 4
//! top-of-rack (ToR) switches with 8 servers each and 4 aggregation
//! switches; 8 core switches interconnect the pods. Every link is 10 Gbps.
//! Each ToR has **two** links to each of its pod's 4 aggs (8 uplinks — the
//! ToR tier is 1:1), and each agg uplinks to 2 of the 8 cores (the agg
//! tier is 4:1), giving the paper's overall 4:1 server-to-core
//! oversubscription, 8 distinct paths between any pair of pods, and —
//! per Table 1's own arithmetic — enough ToR uplink capacity that 8
//! simultaneous cross-pod flows can each own a full 10 Gbps route.
//!
//! [`FatTreeParams`] generalizes all of these counts so the §4.3.3
//! path-diversity experiment can scale the fabric up.

use netsim::{LinkSpec, NodeId, PortId, QueueSpec, RoutingTable, SimTime, Simulator, SwitchConfig};

/// Dimensions and link parameters of a fat-tree fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeParams {
    /// Number of pods.
    pub pods: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Servers per ToR.
    pub hosts_per_tor: usize,
    /// Core uplinks per aggregation switch; the core layer has
    /// `aggs_per_pod * core_links_per_agg` switches.
    pub core_links_per_agg: usize,
    /// Parallel links between each (ToR, agg) pair. The paper's fabric
    /// needs 2 so that a ToR's 8 hosts see 8 uplinks (Table 1's "one flow
    /// per route" at full line rate).
    pub links_per_tor_agg: usize,
    /// Rate of every link, bits per second.
    pub link_bps: u64,
    /// Propagation delay of every link.
    pub link_delay: SimTime,
    /// Egress queue of every fabric port (ignored — replaced by a large
    /// lossless queue — when the switch config enables PFC).
    pub fabric_queue: QueueSpec,
}

impl FatTreeParams {
    /// The paper's §4.2 configuration: 128 servers, 4 pods, 4+4 switches
    /// per pod, 8 cores, 10 Gbps everywhere.
    pub fn paper() -> Self {
        FatTreeParams {
            pods: 4,
            tors_per_pod: 4,
            aggs_per_pod: 4,
            hosts_per_tor: 8,
            core_links_per_agg: 2,
            links_per_tor_agg: 2,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        }
    }

    /// A scaled-down fabric for fast tests: 2 pods, 2+2 switches per pod,
    /// 4 cores, 16 hosts.
    pub fn tiny() -> Self {
        FatTreeParams {
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            hosts_per_tor: 4,
            core_links_per_agg: 2,
            links_per_tor_agg: 2,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        }
    }

    /// The §4.3.3 "doubled port density" variant of the paper fabric:
    /// every switch tier doubles its port count and each ToR doubles its
    /// servers, quadrupling inter-pod path diversity (8 → 32) while
    /// preserving both per-tier 2:1 oversubscription ratios.
    pub fn paper_wide() -> Self {
        FatTreeParams {
            pods: 4,
            tors_per_pod: 8,
            aggs_per_pod: 8,
            hosts_per_tor: 16,
            core_links_per_agg: 4,
            links_per_tor_agg: 2,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        }
    }

    /// A canonical k-ary fat-tree (Al-Fares et al.): `k` pods of `k/2`
    /// ToRs and `k/2` aggs, `k/2` hosts per ToR, `(k/2)^2` cores, one
    /// link per (ToR, agg) pair — `k^3/4` hosts total with full bisection
    /// bandwidth (k=8 → 128 hosts, k=16 → 1024, k=32 → 8192). This is the
    /// `--topo k=<K>` fabric of the sharded-engine experiments.
    ///
    /// Returns an actionable error for a `k` that does not describe a
    /// fat-tree (odd, too small) or is beyond what a simulation can hold.
    pub fn k_ary(k: usize) -> Result<Self, String> {
        if k < 4 || !k.is_multiple_of(2) || k > 64 {
            return Err(format!(
                "--topo k={k}: a k-ary fat-tree needs an even k between 4 and 64 \
                 (hosts = k^3/4: k=8 -> 128, k=16 -> 1024, k=32 -> 8192)"
            ));
        }
        Ok(FatTreeParams {
            pods: k,
            tors_per_pod: k / 2,
            aggs_per_pod: k / 2,
            hosts_per_tor: k / 2,
            core_links_per_agg: k / 2,
            links_per_tor_agg: 1,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        })
    }

    /// Total number of servers.
    pub fn n_hosts(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Number of core switches.
    pub fn n_cores(&self) -> usize {
        self.aggs_per_pod * self.core_links_per_agg
    }

    /// Number of equal-cost paths between hosts in different pods.
    pub fn inter_pod_paths(&self) -> usize {
        self.aggs_per_pod * self.core_links_per_agg
    }

    /// Core-facing capacity of one pod in bits per second (the basis for
    /// the paper's "load relative to bisection bandwidth").
    pub fn pod_uplink_bps(&self) -> u64 {
        (self.aggs_per_pod * self.core_links_per_agg) as u64 * self.link_bps
    }
}

/// A built fat-tree: node ids and port maps for instrumentation.
#[derive(Debug)]
pub struct FatTree {
    /// The parameters it was built with.
    pub params: FatTreeParams,
    /// Host ids, dense `0..n_hosts`, grouped by ToR then pod:
    /// host `h` sits in pod `h / (tors_per_pod*hosts_per_tor)`.
    pub hosts: Vec<NodeId>,
    /// ToR ids, index = `pod * tors_per_pod + t`.
    pub tors: Vec<NodeId>,
    /// Agg ids, index = `pod * aggs_per_pod + a`.
    pub aggs: Vec<NodeId>,
    /// Core ids, index = `a * core_links_per_agg + k` for the k-th core
    /// attached to agg position `a`.
    pub cores: Vec<NodeId>,
    /// For each ToR (same indexing): the port towards each local host.
    pub tor_host_ports: Vec<Vec<PortId>>,
    /// For each ToR: every uplink port (`links_per_tor_agg` consecutive
    /// entries per agg, agg-major order).
    pub tor_uplinks: Vec<Vec<PortId>>,
    /// For each agg: the parallel ports towards each ToR position of its
    /// pod (`agg_tor_ports[agg][tor_pos]` lists `links_per_tor_agg` ports).
    pub agg_tor_ports: Vec<Vec<Vec<PortId>>>,
    /// For each agg: the uplink ports towards its cores.
    pub agg_core_ports: Vec<Vec<PortId>>,
    /// For each core: the port towards the connected agg of each pod.
    pub core_agg_ports: Vec<Vec<PortId>>,
}

impl FatTree {
    /// Pod index of host `h` (dense host index, not NodeId arithmetic —
    /// though they coincide because hosts are created first).
    pub fn pod_of(&self, h: usize) -> usize {
        h / (self.params.tors_per_pod * self.params.hosts_per_tor)
    }

    /// Global ToR index (into `self.tors`) of host `h`.
    pub fn tor_of(&self, h: usize) -> usize {
        h / self.params.hosts_per_tor
    }

    /// Dense host indices attached to global ToR index `t`.
    pub fn hosts_of_tor(&self, t: usize) -> std::ops::Range<usize> {
        let lo = t * self.params.hosts_per_tor;
        lo..lo + self.params.hosts_per_tor
    }

    /// The `(node, port)` of the `k`-th core uplink of agg `a` (global agg
    /// index), for failure injection.
    pub fn agg_core_link(&self, a: usize, k: usize) -> (NodeId, PortId) {
        (self.aggs[a], self.agg_core_ports[a][k])
    }
}

/// Build the fat-tree inside `sim`, with every switch configured per
/// `switch_cfg`. Hosts are created first so host NodeIds are dense from 0.
pub fn build_fat_tree(
    sim: &mut Simulator,
    params: FatTreeParams,
    switch_cfg: SwitchConfig,
) -> FatTree {
    let n_hosts = params.n_hosts();
    let lossless = switch_cfg.pfc.is_some();
    let fabric_queue = if lossless {
        QueueSpec::lossless()
    } else {
        params.fabric_queue
    };
    let host_link = LinkSpec {
        rate_bps: params.link_bps,
        delay: params.link_delay,
        a_queue: QueueSpec::host_nic(),
        b_queue: fabric_queue,
    };
    let fabric_link = LinkSpec {
        rate_bps: params.link_bps,
        delay: params.link_delay,
        a_queue: fabric_queue,
        b_queue: fabric_queue,
    };

    // Hosts first: ids 0..n_hosts.
    let hosts: Vec<NodeId> = (0..n_hosts).map(|_| sim.add_host_default()).collect();
    let tors: Vec<NodeId> = (0..params.pods * params.tors_per_pod)
        .map(|_| sim.add_switch(switch_cfg))
        .collect();
    let aggs: Vec<NodeId> = (0..params.pods * params.aggs_per_pod)
        .map(|_| sim.add_switch(switch_cfg))
        .collect();
    let cores: Vec<NodeId> = (0..params.n_cores())
        .map(|_| sim.add_switch(switch_cfg))
        .collect();

    // Host <-> ToR links.
    let mut tor_host_ports = vec![Vec::new(); tors.len()];
    for (h, &host) in hosts.iter().enumerate() {
        let t = h / params.hosts_per_tor;
        let (_, tor_port) = sim.connect(host, tors[t], host_link);
        tor_host_ports[t].push(tor_port);
    }

    // ToR <-> Agg links (full mesh within a pod, with parallel links).
    let mut tor_uplinks = vec![Vec::new(); tors.len()];
    let mut agg_tor_ports: Vec<Vec<Vec<PortId>>> =
        vec![vec![Vec::new(); params.tors_per_pod]; aggs.len()];
    for pod in 0..params.pods {
        #[allow(clippy::needless_range_loop)]
        for t in 0..params.tors_per_pod {
            let ti = pod * params.tors_per_pod + t;
            for a in 0..params.aggs_per_pod {
                let ai = pod * params.aggs_per_pod + a;
                for _ in 0..params.links_per_tor_agg {
                    let (tp, ap) = sim.connect(tors[ti], aggs[ai], fabric_link);
                    tor_uplinks[ti].push(tp);
                    agg_tor_ports[ai][t].push(ap);
                }
            }
        }
    }

    // Agg <-> Core links: agg at position `a` in each pod connects to cores
    // a*core_links_per_agg .. (a+1)*core_links_per_agg.
    let mut agg_core_ports = vec![Vec::new(); aggs.len()];
    let mut core_agg_ports = vec![Vec::new(); cores.len()];
    for pod in 0..params.pods {
        for a in 0..params.aggs_per_pod {
            let ai = pod * params.aggs_per_pod + a;
            for k in 0..params.core_links_per_agg {
                let ci = a * params.core_links_per_agg + k;
                let (ap, cp) = sim.connect(aggs[ai], cores[ci], fabric_link);
                agg_core_ports[ai].push(ap);
                // core_agg_ports[ci] indexed by pod; pods iterate outermost
                // so pushes line up.
                core_agg_ports[ci].push(cp);
            }
        }
    }

    let ft = FatTree {
        params,
        hosts,
        tors,
        aggs,
        cores,
        tor_host_ports,
        tor_uplinks,
        agg_tor_ports,
        agg_core_ports,
        core_agg_ports,
    };
    install_routes(sim, &ft);
    ft
}

/// §4.3.1 asymmetry helper: degrade the `k`-th core uplink of the agg at
/// position `agg_pos` in `pod` to `new_rate`, and (optionally) install
/// capacity-proportional WCMP weights on the affected pod's *upward*
/// tables — every ToR of the pod weights its uplinks by each agg's
/// remaining core capacity, and the degraded agg weights its core uplinks
/// by rate. Downward (reverse) tables keep equal weights: they carry only
/// ACK traffic in these experiments, and leaving them untouched also
/// mirrors the paper's point that WCMP tables are coarse in practice.
pub fn degrade_agg_core_link(
    sim: &mut Simulator,
    ft: &FatTree,
    pod: usize,
    agg_pos: usize,
    k: usize,
    new_rate: u64,
    install_wcmp: bool,
) {
    let p = &ft.params;
    let ai = pod * p.aggs_per_pod + agg_pos;
    let (node, port) = ft.agg_core_link(ai, k);
    sim.set_link_rate(node, port, new_rate);

    if !install_wcmp {
        return;
    }
    // Integer weights in 100 Mbps units.
    let unit = 100_000_000;
    let rate_of = |a: usize, kk: usize| {
        if a == ai && kk == k {
            new_rate
        } else {
            p.link_bps
        }
    };
    // Agg `ai`: weight its core uplinks by their rates (inter-pod only).
    let n_hosts = p.n_hosts();
    let core_weights: Vec<u32> = (0..p.core_links_per_agg)
        .map(|kk| (rate_of(ai, kk) / unit) as u32)
        .collect();
    {
        let mut rt = RoutingTable::new(n_hosts);
        for dst in 0..n_hosts {
            let dst_pod = ft.pod_of(dst);
            if dst_pod == pod {
                let tor_pos = ft.tor_of(dst) % p.tors_per_pod;
                rt.set(dst as u32, ft.agg_tor_ports[ai][tor_pos].clone());
            } else {
                rt.set_weighted(
                    dst as u32,
                    ft.agg_core_ports[ai].clone(),
                    core_weights.clone(),
                );
            }
        }
        sim.set_routes(ft.aggs[ai], rt);
    }
    // Every ToR of the pod: weight each uplink by its agg's total core
    // capacity (parallel links to the same agg share that weight equally,
    // which the identical per-link value already expresses).
    let agg_capacity: Vec<u32> = (0..p.aggs_per_pod)
        .map(|a| {
            let aj = pod * p.aggs_per_pod + a;
            (0..p.core_links_per_agg)
                .map(|kk| (rate_of(aj, kk) / unit) as u32)
                .sum()
        })
        .collect();
    for t in 0..p.tors_per_pod {
        let ti = pod * p.tors_per_pod + t;
        let mut rt = RoutingTable::new(n_hosts);
        let local = ft.hosts_of_tor(ti);
        // Uplink weights, agg-major order matching `tor_uplinks`.
        let up_weights: Vec<u32> = (0..p.aggs_per_pod)
            .flat_map(|a| vec![agg_capacity[a]; p.links_per_tor_agg])
            .collect();
        for dst in 0..n_hosts {
            if local.contains(&dst) {
                rt.set(dst as u32, vec![ft.tor_host_ports[ti][dst - local.start]]);
            } else if ft.pod_of(dst) == pod {
                // Intra-pod: all aggs reach the ToR at full rate.
                rt.set(dst as u32, ft.tor_uplinks[ti].clone());
            } else {
                rt.set_weighted(dst as u32, ft.tor_uplinks[ti].clone(), up_weights.clone());
            }
        }
        sim.set_routes(ft.tors[ti], rt);
    }
}

/// Compute and install the multipath routing tables of every switch.
fn install_routes(sim: &mut Simulator, ft: &FatTree) {
    let p = &ft.params;
    let n_hosts = p.n_hosts();

    // ToRs: local host -> host port; everything else -> all agg uplinks.
    for (ti, &tor) in ft.tors.iter().enumerate() {
        let mut rt = RoutingTable::new(n_hosts);
        let local = ft.hosts_of_tor(ti);
        for dst in 0..n_hosts {
            if local.contains(&dst) {
                rt.set(dst as u32, vec![ft.tor_host_ports[ti][dst - local.start]]);
            } else {
                rt.set(dst as u32, ft.tor_uplinks[ti].clone());
            }
        }
        sim.set_routes(tor, rt);
    }

    // Aggs: dst in my pod -> the single ToR port; else -> my core uplinks.
    for (ai, &agg) in ft.aggs.iter().enumerate() {
        let pod = ai / p.aggs_per_pod;
        let mut rt = RoutingTable::new(n_hosts);
        for dst in 0..n_hosts {
            let dst_pod = ft.pod_of(dst);
            if dst_pod == pod {
                let tor_pos = ft.tor_of(dst) % p.tors_per_pod;
                rt.set(dst as u32, ft.agg_tor_ports[ai][tor_pos].clone());
            } else {
                rt.set(dst as u32, ft.agg_core_ports[ai].clone());
            }
        }
        sim.set_routes(agg, rt);
    }

    // Cores: dst -> the port to the dst pod's connected agg (deterministic).
    for (ci, &core) in ft.cores.iter().enumerate() {
        let mut rt = RoutingTable::new(n_hosts);
        for dst in 0..n_hosts {
            let dst_pod = ft.pod_of(dst);
            rt.set(dst as u32, vec![ft.core_agg_ports[ci][dst_pod]]);
        }
        sim.set_routes(core, rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testutil::{Blaster, CountingSink, RxLog};
    use netsim::HashConfig;

    fn build(params: FatTreeParams) -> (Simulator, FatTree) {
        let mut sim = Simulator::new(11);
        let ft = build_fat_tree(
            &mut sim,
            params,
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        (sim, ft)
    }

    #[test]
    fn paper_dimensions() {
        let p = FatTreeParams::paper();
        assert_eq!(p.n_hosts(), 128);
        assert_eq!(p.n_cores(), 8);
        assert_eq!(p.inter_pod_paths(), 8);
        assert_eq!(p.pod_uplink_bps(), 80_000_000_000);
        let (sim, ft) = build(p);
        assert_eq!(ft.hosts.len(), 128);
        assert_eq!(ft.tors.len(), 16);
        assert_eq!(ft.aggs.len(), 16);
        assert_eq!(ft.cores.len(), 8);
        // ToR port counts: 8 hosts + 4 aggs x 2 links.
        for &t in &ft.tors {
            assert_eq!(sim.port_count(t), 16);
        }
        // Agg: 4 ToRs x 2 links + 2 cores.
        for &a in &ft.aggs {
            assert_eq!(sim.port_count(a), 10);
        }
        // Core: 1 agg per pod.
        for &c in &ft.cores {
            assert_eq!(sim.port_count(c), 4);
        }
        // Hosts have exactly one NIC.
        for &h in &ft.hosts {
            assert_eq!(sim.port_count(h), 1);
        }
    }

    #[test]
    fn indexing_helpers() {
        let (_sim, ft) = build(FatTreeParams::paper());
        assert_eq!(ft.pod_of(0), 0);
        assert_eq!(ft.pod_of(31), 0);
        assert_eq!(ft.pod_of(32), 1);
        assert_eq!(ft.pod_of(127), 3);
        assert_eq!(ft.tor_of(0), 0);
        assert_eq!(ft.tor_of(7), 0);
        assert_eq!(ft.tor_of(8), 1);
        assert_eq!(ft.hosts_of_tor(1), 8..16);
        assert_eq!(ft.tor_of(127), 15);
    }

    /// Route a packet from every host to a sample of destinations and check
    /// delivery — exercises ToR/agg/core tables along all tiers.
    #[test]
    fn all_pairs_sample_is_routable() {
        let params = FatTreeParams::tiny();
        let mut sim = Simulator::new(5);
        let ft = build_fat_tree(
            &mut sim,
            params,
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        let n = params.n_hosts();
        let log = RxLog::shared();
        // Every host sends one packet to (h + k) % n for several strides:
        // same-ToR, same-pod, and cross-pod destinations.
        let mut expected = 0;
        for (i, &h) in ft.hosts.iter().enumerate() {
            let mut b = Blaster::new(((i + 1) % n) as u32, 1, log.clone());
            b.sport = i as u16;
            let _ = h;
            sim.set_agent(ft.hosts[i], Box::new(b));
            expected += 1;
        }
        sim.run_to_quiescence();
        // Every sender's packet must arrive somewhere (receivers log).
        // Each host is also a receiver via its Blaster's log.
        assert_eq!(log.borrow().arrivals.len(), expected);
    }

    #[test]
    fn cross_pod_paths_use_multiple_routes() {
        // With the V-field in the hash, varying V and sport from one host
        // to one cross-pod destination must spread over several core links.
        let params = FatTreeParams::paper();
        let mut sim = Simulator::new(5);
        let ft = build_fat_tree(
            &mut sim,
            params,
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        let log = RxLog::shared();
        // 8 flows (one per ToR-0 host, distinct sports) to a pod-3 host.
        for (i, h) in ft.hosts_of_tor(0).enumerate() {
            let mut b = Blaster::new(100, 4, log.clone());
            b.sport = 1000 + i as u16;
            sim.set_agent(ft.hosts[h], Box::new(b));
        }
        sim.set_agent(ft.hosts[100], Box::new(CountingSink { log: log.clone() }));
        sim.run_to_quiescence();
        assert_eq!(log.borrow().arrivals.len(), 32);
        // Count how many distinct core switches carried traffic.
        let mut used = 0;
        for &c in &ft.cores {
            let bytes: u64 = (0..sim.port_count(c))
                .map(|p| sim.port_stats(c, p as u16).tx_bytes_tcp)
                .sum();
            if bytes > 0 {
                used += 1;
            }
        }
        assert!(
            used >= 2,
            "8 flows should spread over >=2 cores, used {used}"
        );
    }

    #[test]
    fn wide_variant_quadruples_path_diversity_at_same_oversubscription() {
        let base = FatTreeParams::paper();
        let p = FatTreeParams::paper_wide();
        assert_eq!(p.inter_pod_paths(), 4 * base.inter_pod_paths());
        assert_eq!(p.n_hosts(), 512);
        // Per-tier oversubscription preserved: ToR down/up and agg in/up.
        assert_eq!(
            p.hosts_per_tor / p.aggs_per_pod,
            base.hosts_per_tor / base.aggs_per_pod
        );
        assert_eq!(
            p.tors_per_pod / p.core_links_per_agg,
            base.tors_per_pod / base.core_links_per_agg
        );
        // Overall servers-to-core stays 4:1.
        let total_host_bw = p.n_hosts() as u64 * p.link_bps;
        let total_core_bw = p.pods as u64 * p.pod_uplink_bps();
        assert_eq!(total_host_bw / total_core_bw, 4);
    }
}
