//! # topology — datacenter fabrics for the FlowBender reproduction
//!
//! Builders that instantiate the paper's two evaluation networks inside a
//! [`netsim::Simulator`] and install multipath routing tables on every
//! switch:
//!
//! * [`fat_tree`] — the §4.2 simulation fabric: 128 servers, 4 pods,
//!   4 ToR + 4 agg switches per pod, 8 cores, 10 Gbps links, 4:1
//!   oversubscription, 8 equal-cost paths between pods (plus `tiny` and
//!   `paper_wide` variants).
//! * [`testbed`] — the §4.3 testbed shape: 15 ToRs of 12–16 servers behind
//!   4 aggregation switches, 4 equal-cost paths between ToRs.
//!
//! [`fat_tree::FatTreeParams::k_ary`] generalizes the fat-tree to the
//! canonical k-ary form (k=8..32 → 128–8192 hosts), and [`shard`] maps its
//! nodes onto event-engine shards for the multi-core simulator.
//!
//! Both builders create hosts first so host `NodeId`s are dense from 0,
//! which is what routing tables and the flow recorder index by.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fat_tree;
pub mod shard;
pub mod testbed;

pub use fat_tree::{build_fat_tree, degrade_agg_core_link, FatTree, FatTreeParams};
pub use shard::ShardPlan;
pub use testbed::{build_testbed, Testbed, TestbedParams};
