//! Partitioning a fat-tree across event-engine shards.
//!
//! The sharded simulator gives each worker thread its own
//! [`netsim::Simulator`] holding the *full* fabric (identical node ids and
//! RNG streams in every shard), but each node is *owned* by exactly one
//! shard: only the owner processes its events; packets leaving an owned
//! node towards a non-owned one are handed off between workers.
//!
//! [`ShardPlan`] is the ownership map. Partitioning is pod-granular —
//! a shard owns the hosts, ToRs, and aggs of a contiguous run of pods,
//! so the only cross-shard links are agg↔core. Core switches are dealt
//! round-robin. Pod granularity keeps the conservative lookahead large
//! (a packet crossing shards always pays one link propagation plus the
//! receiving switch's ingress delay) and makes ownership a pure function
//! of the node id, identical in every worker.

use netsim::NodeId;

use crate::FatTreeParams;

/// The node→shard ownership map of one sharded run. Construction
/// validates the shard count against the fabric; the map itself is a pure
/// function of `(params, shards)`, so every worker computes the same plan.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    pods_per_shard: usize,
    n_hosts: usize,
    n_tors: usize,
    n_aggs: usize,
    n_cores: usize,
    hosts_per_pod: usize,
    tors_per_pod: usize,
    aggs_per_pod: usize,
}

impl ShardPlan {
    /// Build the plan, or explain why `shards` cannot partition `params`.
    pub fn new(params: &FatTreeParams, shards: usize) -> Result<Self, String> {
        let n_hosts = params.n_hosts();
        if shards == 0 {
            return Err(
                "--shards 0: at least one shard is required; use --shards 1 for the \
                 single-threaded engine (the default)"
                    .to_string(),
            );
        }
        if shards > n_hosts {
            return Err(format!(
                "--shards {shards}: more shards than the fabric's {n_hosts} hosts; \
                 pick a shard count that divides the {} pods",
                params.pods
            ));
        }
        if !params.pods.is_multiple_of(shards) {
            let divisors: Vec<String> = (1..=params.pods)
                .filter(|d| params.pods.is_multiple_of(*d))
                .map(|d| d.to_string())
                .collect();
            return Err(format!(
                "--shards {shards}: sharding is pod-granular and {shards} does not divide \
                 this fabric's {} pods; valid shard counts: {}",
                params.pods,
                divisors.join(", ")
            ));
        }
        Ok(ShardPlan {
            shards,
            pods_per_shard: params.pods / shards,
            n_hosts,
            n_tors: params.pods * params.tors_per_pod,
            n_aggs: params.pods * params.aggs_per_pod,
            n_cores: params.n_cores(),
            hosts_per_pod: params.tors_per_pod * params.hosts_per_tor,
            tors_per_pod: params.tors_per_pod,
            aggs_per_pod: params.aggs_per_pod,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total number of nodes in the fabric (hosts + all switch tiers).
    pub fn n_nodes(&self) -> usize {
        self.n_hosts + self.n_tors + self.n_aggs + self.n_cores
    }

    /// The shard owning host `h` (dense host index).
    pub fn host_owner(&self, h: usize) -> usize {
        (h / self.hosts_per_pod) / self.pods_per_shard
    }

    /// The shard owning `node`. Node ids follow [`crate::build_fat_tree`]'s
    /// creation order: hosts, then ToRs, aggs, cores.
    pub fn owner_of(&self, node: NodeId) -> usize {
        let n = node as usize;
        if n < self.n_hosts {
            return self.host_owner(n);
        }
        let n = n - self.n_hosts;
        if n < self.n_tors {
            return (n / self.tors_per_pod) / self.pods_per_shard;
        }
        let n = n - self.n_tors;
        if n < self.n_aggs {
            return (n / self.aggs_per_pod) / self.pods_per_shard;
        }
        let n = n - self.n_aggs;
        assert!(n < self.n_cores, "node {node} beyond the fabric");
        // Cores belong to no pod; deal them round-robin so every shard
        // carries a similar slice of the core tier.
        n % self.shards
    }

    /// Ownership mask for `shard`, indexed by node id.
    pub fn owned_mask(&self, shard: usize) -> Vec<bool> {
        (0..self.n_nodes())
            .map(|n| self.owner_of(n as NodeId) == shard)
            .collect()
    }

    /// Whether a link between `a` and `b` crosses a shard boundary — the
    /// links whose faults must travel through the epoch mailbox. With
    /// pod-granular partitioning only agg↔core links can cross, and a
    /// chaos plan that wants to exercise the cross-shard fault path picks
    /// its targets with this.
    pub fn crosses(&self, a: NodeId, b: NodeId) -> bool {
        self.owner_of(a) != self.owner_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shard_counts_with_actionable_errors() {
        let p = FatTreeParams::k_ary(8).unwrap();
        let err = ShardPlan::new(&p, 0).unwrap_err();
        assert!(err.contains("--shards 1"), "{err}");
        let err = ShardPlan::new(&p, 1000).unwrap_err();
        assert!(err.contains("128 hosts"), "{err}");
        let err = ShardPlan::new(&p, 3).unwrap_err();
        assert!(err.contains("valid shard counts"), "{err}");
        assert!(err.contains("1, 2, 4, 8"), "{err}");
    }

    #[test]
    fn every_node_has_exactly_one_owner_and_pods_stay_whole() {
        let p = FatTreeParams::k_ary(8).unwrap();
        let plan = ShardPlan::new(&p, 4).unwrap();
        assert_eq!(plan.n_nodes(), 128 + 32 + 32 + 16);
        let masks: Vec<Vec<bool>> = (0..4).map(|s| plan.owned_mask(s)).collect();
        for n in 0..plan.n_nodes() {
            let owners = masks.iter().filter(|m| m[n]).count();
            assert_eq!(owners, 1, "node {n} owned by {owners} shards");
        }
        // Hosts of one pod share an owner with their pod's ToRs and aggs.
        for pod in 0..p.pods {
            let h0 = pod * p.tors_per_pod * p.hosts_per_tor;
            let owner = plan.host_owner(h0);
            for t in 0..p.tors_per_pod {
                let tor = 128 + pod * p.tors_per_pod + t;
                assert_eq!(plan.owner_of(tor as NodeId), owner);
            }
            for a in 0..p.aggs_per_pod {
                let agg = 128 + 32 + pod * p.aggs_per_pod + a;
                assert_eq!(plan.owner_of(agg as NodeId), owner);
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = FatTreeParams::paper();
        let plan = ShardPlan::new(&p, 1).unwrap();
        assert!(plan.owned_mask(0).iter().all(|&b| b));
    }

    #[test]
    fn crosses_flags_only_boundary_links() {
        let p = FatTreeParams::k_ary(8).unwrap();
        let plan = ShardPlan::new(&p, 4).unwrap();
        // Host ↔ its pod's ToR: same shard.
        assert!(!plan.crosses(0, 128));
        // Agg of pod 0 ↔ a core owned by another shard.
        let agg0 = (128 + 32) as NodeId;
        let cores0 = (128 + 32 + 32) as NodeId;
        let cross = (0..16).filter(|&c| plan.crosses(agg0, cores0 + c)).count();
        assert_eq!(cross, 12, "cores round-robin over 4 shards: 3/4 cross");
        // shards == 1 never crosses.
        let plan1 = ShardPlan::new(&p, 1).unwrap();
        assert!(!plan1.crosses(agg0, cores0));
    }

    #[test]
    fn cores_spread_over_all_shards() {
        let p = FatTreeParams::k_ary(16).unwrap();
        let plan = ShardPlan::new(&p, 4).unwrap();
        let core0 = 1024 + 128 + 128;
        let mut per_shard = [0usize; 4];
        for c in 0..64 {
            per_shard[plan.owner_of((core0 + c) as NodeId)] += 1;
        }
        assert_eq!(per_shard, [16, 16, 16, 16]);
    }
}
