//! The paper's §4.3 testbed topology, simulated.
//!
//! The real testbed was 15 ToR switches with 12–16 servers each, connected
//! by 10 Gbps links to 4 aggregation switches (one uplink from every ToR to
//! every agg) — so any two servers on different ToRs have exactly 4 equal-
//! cost paths. We rebuild the same leaf-spine shape in the simulator; per
//! the paper itself, testbed numbers are only *qualitatively* comparable to
//! simulation (§4.3), which is exactly the comparison EXPERIMENTS.md makes.

use netsim::{LinkSpec, NodeId, PortId, QueueSpec, RoutingTable, SimTime, Simulator, SwitchConfig};

/// Dimensions and link parameters of the leaf-spine testbed.
#[derive(Debug, Clone)]
pub struct TestbedParams {
    /// Servers attached to each ToR (the paper had 12–16; one entry per
    /// ToR).
    pub servers_per_tor: Vec<usize>,
    /// Number of aggregation (spine) switches.
    pub aggs: usize,
    /// Rate of every link, bits per second.
    pub link_bps: u64,
    /// Propagation delay of every link.
    pub link_delay: SimTime,
    /// Egress queue of every fabric port (ignored — replaced by a large
    /// lossless queue — when the switch config enables PFC).
    pub fabric_queue: QueueSpec,
}

impl TestbedParams {
    /// The paper's testbed: 15 ToRs with 12–16 servers (alternating 12, 14,
    /// 16 for an average of 14), 4 aggs, 10 Gbps links.
    pub fn paper() -> Self {
        TestbedParams {
            servers_per_tor: (0..15).map(|i| 12 + (i % 3) * 2).collect(),
            aggs: 4,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        }
    }

    /// A scaled-down testbed for fast tests: 3 ToRs × 4 servers, 4 aggs.
    pub fn tiny() -> Self {
        TestbedParams {
            servers_per_tor: vec![4; 3],
            aggs: 4,
            link_bps: 10_000_000_000,
            link_delay: SimTime::from_ns(100),
            fabric_queue: QueueSpec::switch_10g(),
        }
    }

    /// Total number of servers.
    pub fn n_hosts(&self) -> usize {
        self.servers_per_tor.iter().sum()
    }

    /// Number of ToRs.
    pub fn n_tors(&self) -> usize {
        self.servers_per_tor.len()
    }

    /// Uplink capacity of one ToR in bits per second (the denominator of
    /// the §4.3 "bisectional" load figures).
    pub fn tor_uplink_bps(&self) -> u64 {
        self.aggs as u64 * self.link_bps
    }
}

/// A built testbed: node ids and port maps.
#[derive(Debug)]
pub struct Testbed {
    /// Parameters it was built with.
    pub params: TestbedParams,
    /// Host ids, dense `0..n_hosts`, grouped by ToR.
    pub hosts: Vec<NodeId>,
    /// ToR switch ids.
    pub tors: Vec<NodeId>,
    /// Agg switch ids.
    pub aggs: Vec<NodeId>,
    /// For each ToR: the port towards each local host.
    pub tor_host_ports: Vec<Vec<PortId>>,
    /// For each ToR: the uplink port towards each agg. `tor_uplinks[t][a]`
    /// identifies the ToR-side end of path `a` out of ToR `t` — the
    /// measurement point of the §4.3.1 hotspot experiment.
    pub tor_uplinks: Vec<Vec<PortId>>,
    /// For each agg: the port towards each ToR.
    pub agg_tor_ports: Vec<Vec<PortId>>,
    /// First dense host index of each ToR (prefix sums).
    tor_base: Vec<usize>,
}

impl Testbed {
    /// ToR index of dense host index `h`.
    pub fn tor_of(&self, h: usize) -> usize {
        match self.tor_base.binary_search(&h) {
            Ok(t) => t,
            Err(t) => t - 1,
        }
    }

    /// Dense host indices attached to ToR `t`.
    pub fn hosts_of_tor(&self, t: usize) -> std::ops::Range<usize> {
        let lo = self.tor_base[t];
        let hi = lo + self.params.servers_per_tor[t];
        lo..hi
    }
}

/// Build the testbed inside `sim`. Hosts are created first so host NodeIds
/// are dense from 0.
pub fn build_testbed(
    sim: &mut Simulator,
    params: TestbedParams,
    switch_cfg: SwitchConfig,
) -> Testbed {
    let n_hosts = params.n_hosts();
    let lossless = switch_cfg.pfc.is_some();
    let fabric_queue = if lossless {
        QueueSpec::lossless()
    } else {
        params.fabric_queue
    };
    let host_link = LinkSpec {
        rate_bps: params.link_bps,
        delay: params.link_delay,
        a_queue: QueueSpec::host_nic(),
        b_queue: fabric_queue,
    };
    let fabric_link = LinkSpec {
        rate_bps: params.link_bps,
        delay: params.link_delay,
        a_queue: fabric_queue,
        b_queue: fabric_queue,
    };

    let hosts: Vec<NodeId> = (0..n_hosts).map(|_| sim.add_host_default()).collect();
    let tors: Vec<NodeId> = (0..params.n_tors())
        .map(|_| sim.add_switch(switch_cfg))
        .collect();
    let aggs: Vec<NodeId> = (0..params.aggs)
        .map(|_| sim.add_switch(switch_cfg))
        .collect();

    let mut tor_base = Vec::with_capacity(params.n_tors());
    let mut acc = 0;
    for &n in &params.servers_per_tor {
        tor_base.push(acc);
        acc += n;
    }

    let mut tor_host_ports = vec![Vec::new(); tors.len()];
    for t in 0..params.n_tors() {
        #[allow(clippy::needless_range_loop)]
        for h in tor_base[t]..tor_base[t] + params.servers_per_tor[t] {
            let (_, tp) = sim.connect(hosts[h], tors[t], host_link);
            tor_host_ports[t].push(tp);
        }
    }

    let mut tor_uplinks = vec![Vec::new(); tors.len()];
    let mut agg_tor_ports = vec![Vec::new(); aggs.len()];
    for t in 0..params.n_tors() {
        for a in 0..params.aggs {
            let (tp, ap) = sim.connect(tors[t], aggs[a], fabric_link);
            tor_uplinks[t].push(tp);
            agg_tor_ports[a].push(ap);
        }
    }

    let tb = Testbed {
        params,
        hosts,
        tors,
        aggs,
        tor_host_ports,
        tor_uplinks,
        agg_tor_ports,
        tor_base,
    };
    install_routes(sim, &tb);
    tb
}

fn install_routes(sim: &mut Simulator, tb: &Testbed) {
    let n_hosts = tb.params.n_hosts();

    for (t, &tor) in tb.tors.iter().enumerate() {
        let mut rt = RoutingTable::new(n_hosts);
        let local = tb.hosts_of_tor(t);
        for dst in 0..n_hosts {
            if local.contains(&dst) {
                rt.set(dst as u32, vec![tb.tor_host_ports[t][dst - local.start]]);
            } else {
                rt.set(dst as u32, tb.tor_uplinks[t].clone());
            }
        }
        sim.set_routes(tor, rt);
    }

    for (a, &agg) in tb.aggs.iter().enumerate() {
        let mut rt = RoutingTable::new(n_hosts);
        for dst in 0..n_hosts {
            let t = tb.tor_of(dst);
            rt.set(dst as u32, vec![tb.agg_tor_ports[a][t]]);
        }
        sim.set_routes(agg, rt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testutil::{Blaster, CountingSink, RxLog};
    use netsim::HashConfig;

    #[test]
    fn paper_dimensions() {
        let p = TestbedParams::paper();
        assert_eq!(p.n_tors(), 15);
        assert_eq!(p.aggs, 4);
        // 12..=16 servers per ToR, total 15 * 14 = 210.
        assert!(p.servers_per_tor.iter().all(|&n| (12..=16).contains(&n)));
        assert_eq!(p.n_hosts(), 210);
        assert_eq!(p.tor_uplink_bps(), 40_000_000_000);
    }

    #[test]
    fn structure_and_indexing() {
        let mut sim = Simulator::new(3);
        let tb = build_testbed(
            &mut sim,
            TestbedParams::paper(),
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        // Each ToR: local hosts + 4 uplinks.
        for (t, &tor) in tb.tors.iter().enumerate() {
            assert_eq!(sim.port_count(tor), tb.params.servers_per_tor[t] + 4);
        }
        // Each agg: one port per ToR.
        for &a in &tb.aggs {
            assert_eq!(sim.port_count(a), 15);
        }
        // tor_of on boundaries.
        assert_eq!(tb.tor_of(0), 0);
        assert_eq!(tb.tor_of(11), 0);
        assert_eq!(tb.tor_of(12), 1);
        let last = tb.params.n_hosts() - 1;
        assert_eq!(tb.tor_of(last), 14);
        assert_eq!(tb.hosts_of_tor(0), 0..12);
    }

    #[test]
    fn cross_tor_traffic_delivers_and_spreads() {
        let mut sim = Simulator::new(9);
        let tb = build_testbed(
            &mut sim,
            TestbedParams::tiny(),
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        let log = RxLog::shared();
        // All ToR-0 hosts blast a ToR-2 host with distinct sports.
        let dst = tb.hosts_of_tor(2).start as u32 + 1;
        for (i, h) in tb.hosts_of_tor(0).enumerate() {
            let mut b = Blaster::new(dst, 8, log.clone());
            b.sport = 40 + i as u16;
            sim.set_agent(tb.hosts[h], Box::new(b));
        }
        sim.set_agent(
            tb.hosts[dst as usize],
            Box::new(CountingSink { log: log.clone() }),
        );
        sim.run_to_quiescence();
        assert_eq!(log.borrow().arrivals.len(), 4 * 8);
        // Traffic should use more than one of the 4 uplinks of ToR 0.
        let used = (0..4)
            .filter(|&a| sim.port_stats(tb.tors[0], tb.tor_uplinks[0][a]).tx_pkts > 0)
            .count();
        assert!(used >= 2, "expected spread over >=2 uplinks, got {used}");
    }

    #[test]
    fn same_tor_traffic_stays_local() {
        let mut sim = Simulator::new(9);
        let tb = build_testbed(
            &mut sim,
            TestbedParams::tiny(),
            SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
        );
        let log = RxLog::shared();
        // Host 0 -> host 1 (same ToR).
        sim.set_agent(tb.hosts[0], Box::new(Blaster::new(1, 5, log.clone())));
        sim.set_agent(tb.hosts[1], Box::new(CountingSink { log: log.clone() }));
        sim.run_to_quiescence();
        assert_eq!(log.borrow().arrivals.len(), 5);
        // No uplink carried anything.
        for a in 0..4 {
            assert_eq!(sim.port_stats(tb.tors[0], tb.tor_uplinks[0][a]).tx_pkts, 0);
        }
    }
}
