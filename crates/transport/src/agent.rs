//! The per-host protocol stack: a [`netsim::Agent`] that owns every
//! TCP/UDP endpoint living on one host.
//!
//! The experiment layer hands each host the [`netsim::FlowSpec`]s it
//! originates and the ones it terminates ([`install_agents`] does this for
//! a whole simulator at once). The agent then:
//!
//! * arms a schedule timer and instantiates each [`TcpSender`] /
//!   [`UdpSender`] at its flow's arrival time,
//! * demultiplexes arriving packets to the right endpoint by flow id,
//! * services retransmit-timer events (deadline-based, so stale timer
//!   events are cheap no-ops).

use netsim::{
    register_flows, Agent, Ctx, DetHashMap, Flags, FlowId, FlowSpec, HostId, Packet, Proto,
    Simulator,
};

use crate::config::TcpConfig;
use crate::receiver::Receiver;
use crate::sender::{TcpSender, TimerOutcome};
use crate::udp::UdpSender;

/// Timer token for the flow-schedule tick.
const SCHED_TOKEN: u64 = u64::MAX;
const KIND_RTO: u64 = 1;
const KIND_UDP: u64 = 2;
const KIND_DELACK: u64 = 3;

fn token(flow: FlowId, kind: u64) -> u64 {
    ((flow as u64) << 8) | kind
}

fn untoken(tok: u64) -> (FlowId, u64) {
    ((tok >> 8) as FlowId, tok & 0xFF)
}

/// The protocol stack of one host.
pub struct HostAgent {
    cfg: TcpConfig,
    /// Flows originating here, sorted by start time.
    outgoing: Vec<FlowSpec>,
    next_out: usize,
    senders: DetHashMap<FlowId, TcpSender>,
    udp_senders: DetHashMap<FlowId, UdpSender>,
    receivers: DetHashMap<FlowId, Receiver>,
    /// Bytes received per incoming UDP flow (UDP has no reassembly).
    udp_rx_bytes: DetHashMap<FlowId, u64>,
    /// Flows fully sent and acknowledged (senders dropped).
    completed_sends: u64,
    /// Per-destination reordering estimate, persisted across connections
    /// like Linux's `tcp_metrics` cache.
    reorder_cache: DetHashMap<HostId, u32>,
}

impl HostAgent {
    /// Build the stack for one host from the flows it originates
    /// (`outgoing`) and terminates (`incoming`).
    pub fn new(cfg: TcpConfig, mut outgoing: Vec<FlowSpec>, incoming: &[FlowSpec]) -> Self {
        cfg.validate();
        outgoing.sort_by_key(|f| (f.start, f.id));
        let mut receivers = DetHashMap::default();
        let mut udp_rx_bytes = DetHashMap::default();
        for f in incoming {
            match f.proto {
                Proto::Tcp => {
                    let mut rx = Receiver::new(f.id, f.bytes);
                    if let Some(d) = cfg.delack {
                        rx = rx.with_delack(d);
                    }
                    receivers.insert(f.id, rx);
                }
                Proto::Udp => {
                    udp_rx_bytes.insert(f.id, 0);
                }
            }
        }
        HostAgent {
            cfg,
            outgoing,
            next_out: 0,
            senders: DetHashMap::default(),
            udp_senders: DetHashMap::default(),
            receivers,
            udp_rx_bytes,
            completed_sends: 0,
            reorder_cache: DetHashMap::default(),
        }
    }

    /// Number of sends fully completed (for tests).
    pub fn completed_sends(&self) -> u64 {
        self.completed_sends
    }

    fn arm_schedule(&self, ctx: &mut Ctx<'_>) {
        if let Some(next) = self.outgoing.get(self.next_out) {
            ctx.set_timer(next.start, SCHED_TOKEN);
        }
    }

    fn start_due_flows(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(spec) = self.outgoing.get(self.next_out) {
            if spec.start > ctx.now() {
                break;
            }
            let spec = spec.clone();
            self.next_out += 1;
            match spec.proto {
                Proto::Tcp => {
                    let cached = self.reorder_cache.get(&spec.dst).copied();
                    let mut sender = TcpSender::new(
                        spec.id,
                        spec.key(),
                        spec.bytes,
                        self.cfg.clone(),
                        cached,
                        spec.vhint,
                        ctx,
                    );
                    if let Some(deadline) = sender.start(ctx) {
                        ctx.set_timer(deadline, token(spec.id, KIND_RTO));
                    }
                    self.senders.insert(spec.id, sender);
                }
                Proto::Udp => {
                    let mut udp =
                        UdpSender::new(spec.id, spec.key(), spec.udp_rate_bps, spec.bytes)
                            .with_spray(spec.udp_spray_every);
                    if let Some(next) = udp.tick(ctx) {
                        ctx.set_timer(next, token(spec.id, KIND_UDP));
                        self.udp_senders.insert(spec.id, udp);
                    }
                }
            }
        }
        self.arm_schedule(ctx);
    }

    /// A switch-generated congestion notification landed: route it to the
    /// flow's sender so it can react mid-RTT. CNs for completed (or not
    /// yet started, after a shard-crossing race with the FIN) flows are
    /// silently dropped — they are advisory, never reliable.
    fn on_cn(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        let Some(sender) = self.senders.get_mut(&pkt.flow) else {
            return;
        };
        let Some(hop) = pkt.int.as_ref().and_then(|s| s.blamed_hop()) else {
            return; // malformed CN: no blamed hop
        };
        let fb = flowbender::Feedback::Cn {
            node: hop.node,
            port: hop.port,
            qbytes: hop.qbytes,
        };
        sender.on_feedback(fb, ctx);
    }

    fn on_ack(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        let Some(sender) = self.senders.get_mut(&pkt.flow) else {
            return; // late ACK for a completed flow
        };
        if let Some(deadline) = sender.on_ack(pkt, ctx) {
            ctx.set_timer(deadline, token(pkt.flow, KIND_RTO));
        }
        if sender.is_complete() {
            let dst = sender.dst();
            let learned = sender.reorder_threshold();
            let cached = self.reorder_cache.entry(dst).or_insert(0);
            *cached = (*cached).max(learned);
            self.senders.remove(&pkt.flow);
            self.completed_sends += 1;
        }
    }

    fn on_data(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        match pkt.key.proto {
            Proto::Tcp => {
                let rx = self.receivers.get_mut(&pkt.flow).unwrap_or_else(|| {
                    panic!("host {}: data for unknown flow {}", ctx.host(), pkt.flow)
                });
                if let Some(deadline) = rx.on_data(pkt, ctx) {
                    ctx.set_timer(deadline, token(pkt.flow, KIND_DELACK));
                }
            }
            Proto::Udp => {
                ctx.recorder().bump(netsim::Counter::DataPktsRcvd);
                let bytes = self.udp_rx_bytes.get_mut(&pkt.flow).unwrap_or_else(|| {
                    panic!("host {}: UDP for unknown flow {}", ctx.host(), pkt.flow)
                });
                *bytes += pkt.payload as u64;
            }
        }
    }
}

impl Agent for HostAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.arm_schedule(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.flags.has(Flags::CN) {
            // Must be demuxed before the ACK/data split: a CN is neither
            // (it targets the *sender* of the congested flow).
            self.on_cn(&pkt, ctx);
        } else if pkt.flags.has(Flags::ACK) {
            self.on_ack(&pkt, ctx);
        } else {
            self.on_data(&pkt, ctx);
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_>) {
        if tok == SCHED_TOKEN {
            self.start_due_flows(ctx);
            return;
        }
        let (flow, kind) = untoken(tok);
        match kind {
            KIND_RTO => {
                if let Some(sender) = self.senders.get_mut(&flow) {
                    if let TimerOutcome::Rearm(deadline) = sender.on_timer(ctx) {
                        ctx.set_timer(deadline, token(flow, KIND_RTO));
                    }
                }
            }
            KIND_UDP => {
                if let Some(udp) = self.udp_senders.get_mut(&flow) {
                    match udp.tick(ctx) {
                        Some(next) => ctx.set_timer(next, token(flow, KIND_UDP)),
                        None => {
                            self.udp_senders.remove(&flow);
                        }
                    }
                }
            }
            KIND_DELACK => {
                if let Some(rx) = self.receivers.get_mut(&flow) {
                    rx.on_delack_timer(ctx);
                }
            }
            other => panic!("unknown timer kind {other}"),
        }
    }
}

/// Register `specs` with the recorder and install a [`HostAgent`] on every
/// host of `sim`, each primed with its outgoing and incoming flows.
///
/// Specs must have dense ids `0..n` (workload generators guarantee this).
pub fn install_agents(sim: &mut Simulator, specs: &[FlowSpec], cfg: &TcpConfig) {
    install_agents_on(sim, specs, cfg, |_| true);
}

/// [`install_agents`] restricted to the hosts `owned` selects: *every*
/// spec still registers with the recorder (the flow table must be dense
/// and identical in every shard of a sharded run), but only owned hosts
/// get a protocol stack — the rest keep the inert default agent and
/// never source traffic. Single-shard callers pass `|_| true` and get the
/// classic behavior.
pub fn install_agents_on(
    sim: &mut Simulator,
    specs: &[FlowSpec],
    cfg: &TcpConfig,
    owned: impl Fn(HostId) -> bool,
) {
    register_flows(sim.recorder_mut(), specs);
    let hosts: Vec<HostId> = sim.hosts().to_vec();
    let mut outgoing: DetHashMap<HostId, Vec<FlowSpec>> = DetHashMap::default();
    let mut incoming: DetHashMap<HostId, Vec<FlowSpec>> = DetHashMap::default();
    for s in specs {
        outgoing.entry(s.src).or_default().push(s.clone());
        incoming.entry(s.dst).or_default().push(s.clone());
    }
    for h in hosts {
        if !owned(h) {
            continue;
        }
        let agent = HostAgent::new(
            cfg.clone(),
            outgoing.remove(&h).unwrap_or_default(),
            incoming.get(&h).map_or(&[][..], |v| &v[..]),
        );
        sim.set_agent(h, Box::new(agent));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Counter, HashConfig, LinkSpec, RoutingTable, SimTime, SwitchConfig};

    /// Two hosts through one switch; `specs` run under `cfg`.
    fn run_dumbbell(specs: Vec<FlowSpec>, cfg: TcpConfig, seed: u64) -> netsim::Recorder {
        let mut sim = Simulator::new(seed);
        let h0 = sim.add_host_default();
        let h1 = sim.add_host_default();
        let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
        sim.connect(h0, sw, LinkSpec::host_10g());
        sim.connect(h1, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(2);
        rt.set(0, vec![0]);
        rt.set(1, vec![1]);
        sim.set_routes(sw, rt);
        install_agents(&mut sim, &specs, &cfg);
        sim.run_until(SimTime::from_secs(10));
        sim.into_recorder()
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        let specs = vec![FlowSpec::tcp(0, 0, 1, 1_000_000, SimTime::ZERO)];
        let rec = run_dumbbell(specs, TcpConfig::default(), 1);
        assert_eq!(rec.completed_count(), 1);
        let fct = rec.flows()[0].fct().unwrap();
        // 1 MB over 10G is ~0.8ms of serialization; with ~86us RTT slow
        // start and stack delays the FCT must land well under 5ms and
        // above the raw serialization time.
        assert!(fct > SimTime::from_us(800), "fct = {fct}");
        assert!(fct < SimTime::from_ms(5), "fct = {fct}");
        assert_eq!(rec.get(Counter::Timeouts), 0);
        assert_eq!(rec.get(Counter::QueueDrops), 0);
    }

    #[test]
    fn tiny_flow_finishes_in_initial_window() {
        // 4 KB fits in IW=10; no retransmits, roughly one RTT + tx time.
        let specs = vec![FlowSpec::tcp(0, 0, 1, 4_096, SimTime::ZERO)];
        let rec = run_dumbbell(specs, TcpConfig::default(), 1);
        assert_eq!(rec.completed_count(), 1);
        let fct = rec.flows()[0].fct().unwrap();
        assert!(fct < SimTime::from_us(120), "fct = {fct}");
        assert_eq!(rec.get(Counter::Retransmits), 0);
    }

    /// `n` sender hosts, each with one flow to a single receiver host —
    /// the receiver's ToR downlink is the congestion point.
    fn run_star(n: u32, bytes: u64, cfg: TcpConfig, seed: u64) -> netsim::Recorder {
        let mut sim = Simulator::new(seed);
        let senders: Vec<_> = (0..n).map(|_| sim.add_host_default()).collect();
        let rx = sim.add_host_default();
        let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
        for &s in &senders {
            sim.connect(s, sw, LinkSpec::host_10g());
        }
        sim.connect(rx, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(n as usize + 1);
        for (i, _) in senders.iter().enumerate() {
            rt.set(i as u32, vec![i as u16]);
        }
        rt.set(n, vec![n as u16]);
        sim.set_routes(sw, rt);
        let specs: Vec<FlowSpec> = (0..n)
            .map(|i| FlowSpec::tcp(i, i, n, bytes, SimTime::from_us(i as u64)))
            .collect();
        install_agents(&mut sim, &specs, &cfg);
        sim.run_until(SimTime::from_secs(10));
        sim.into_recorder()
    }

    #[test]
    fn many_parallel_flows_all_complete() {
        // 8 senders of 200KB converge on one receiver: congestion, ECN
        // marking — and everyone must finish.
        let rec = run_star(8, 200_000, TcpConfig::default(), 2);
        assert_eq!(rec.completed_count(), 8);
        // DCTCP at the shared downlink: ECN marks must have appeared.
        assert!(rec.get(Counter::MarkedAcksRcvd) > 0);
    }

    #[test]
    fn dctcp_keeps_drops_rare_under_incast() {
        // The whole point of DCTCP: marking at K keeps queues short, so an
        // 8-way incast into a 512KB-buffer port should see essentially no
        // drops and no timeouts.
        let rec = run_star(8, 500_000, TcpConfig::default(), 7);
        assert_eq!(rec.completed_count(), 8);
        assert_eq!(
            rec.get(Counter::Timeouts),
            0,
            "DCTCP should avoid timeouts here"
        );
        assert!(rec.get(Counter::MarkedAcksRcvd) > 100);
    }

    #[test]
    fn severe_incast_recovers_via_retransmission() {
        // 200 senders overwhelm the 2MB downlink buffer at once (200 x
        // IW10 ~ 2.9MB of synchronized first windows): drops are
        // unavoidable; correctness demands every flow still completes.
        let rec = run_star(200, 100_000, TcpConfig::default(), 8);
        assert_eq!(rec.completed_count(), 200);
        assert!(rec.get(Counter::QueueDrops) > 0, "expected buffer overflow");
        assert!(rec.get(Counter::Retransmits) > 0);
    }

    #[test]
    fn staggered_flows_respect_start_times() {
        let specs = vec![
            FlowSpec::tcp(0, 0, 1, 50_000, SimTime::from_ms(1)),
            FlowSpec::tcp(1, 0, 1, 50_000, SimTime::from_ms(5)),
        ];
        let rec = run_dumbbell(specs, TcpConfig::default(), 3);
        assert_eq!(rec.completed_count(), 2);
        let f0 = &rec.flows()[0];
        let f1 = &rec.flows()[1];
        assert!(f0.end > f0.start && f1.end > f1.start);
        assert!(f1.start == SimTime::from_ms(5));
        assert!(f0.end < f1.end);
    }

    #[test]
    fn reverse_direction_flows_coexist() {
        let specs = vec![
            FlowSpec::tcp(0, 0, 1, 200_000, SimTime::ZERO),
            FlowSpec::tcp(1, 1, 0, 200_000, SimTime::ZERO),
        ];
        let rec = run_dumbbell(specs, TcpConfig::default(), 4);
        assert_eq!(rec.completed_count(), 2);
    }

    #[test]
    fn udp_cbr_delivers_at_rate() {
        // 1 Gbps for the run; 10ms run => ~1.25MB => ~833 packets+.
        let specs = vec![FlowSpec::udp(0, 0, 1, 1_000_000_000, SimTime::ZERO)];
        let mut sim = Simulator::new(5);
        let h0 = sim.add_host_default();
        let h1 = sim.add_host_default();
        let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
        sim.connect(h0, sw, LinkSpec::host_10g());
        sim.connect(h1, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(2);
        rt.set(0, vec![0]);
        rt.set(1, vec![1]);
        sim.set_routes(sw, rt);
        install_agents(&mut sim, &specs, &TcpConfig::default());
        sim.run_until(SimTime::from_ms(10));
        // Host egress carried ~10ms * 1Gbps = 1.25 MB of UDP.
        let stats = sim.port_stats(h0, 0);
        let expect = 1_250_000u64;
        assert!(
            (stats.tx_bytes_udp as i64 - expect as i64).unsigned_abs() < 20_000,
            "udp bytes = {}",
            stats.tx_bytes_udp
        );
        assert_eq!(stats.tx_bytes_tcp, 0);
    }

    /// [`run_star`] with switch feedback (INT stamping and/or CN) enabled.
    fn run_star_fb(
        n: u32,
        bytes: u64,
        cfg: TcpConfig,
        fb: netsim::FeedbackConfig,
        seed: u64,
    ) -> netsim::Recorder {
        let mut sim = Simulator::new(seed);
        let senders: Vec<_> = (0..n).map(|_| sim.add_host_default()).collect();
        let rx = sim.add_host_default();
        let sw = sim
            .add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField).with_feedback(fb));
        for &s in &senders {
            sim.connect(s, sw, LinkSpec::host_10g());
        }
        sim.connect(rx, sw, LinkSpec::host_10g());
        let mut rt = RoutingTable::new(n as usize + 1);
        for (i, _) in senders.iter().enumerate() {
            rt.set(i as u32, vec![i as u16]);
        }
        rt.set(n, vec![n as u16]);
        sim.set_routes(sw, rt);
        let specs: Vec<FlowSpec> = (0..n)
            .map(|i| FlowSpec::tcp(i, i, n, bytes, SimTime::from_us(i as u64)))
            .collect();
        install_agents(&mut sim, &specs, &cfg);
        sim.run_until(SimTime::from_secs(10));
        sim.into_recorder()
    }

    #[test]
    fn fastcc_reacts_to_cns_and_measures_the_lead_over_the_echo() {
        // CN threshold at the ECN mark point: every marked enqueue also
        // fires (rate-limited) switch feedback, so the CN and the echo
        // race for the same window — the CN must win by its shorter path.
        let cfg = TcpConfig {
            cn_fast_cc: true,
            ..TcpConfig::default()
        };
        let rec = run_star_fb(8, 500_000, cfg, netsim::FeedbackConfig::cn(90_000), 11);
        assert_eq!(rec.completed_count(), 8);
        assert!(rec.get(Counter::CnDelivered) > 0, "no CNs reached senders");
        let samples = rec.get(Counter::FeedbackLeadSamples);
        assert!(samples > 0, "no CN ever pre-empted an ECN echo");
        let mean_lead_ps = rec.get(Counter::FeedbackLeadPs) / samples;
        // The CN takes cn_delay (20us default); the echo takes the rest of
        // the data packet's journey plus the ACK's return (~40us+ here).
        assert!(
            mean_lead_ps > SimTime::from_us(5).as_ps(),
            "mean lead = {mean_lead_ps} ps"
        );
    }

    #[test]
    fn fastcc_without_the_flag_ignores_cns_for_cwnd() {
        // Same fabric feedback, stock stack: CNs are delivered and the
        // lead is still measured, but cwnd control is untouched (the run
        // behaves like plain DCTCP plus measurement).
        let rec = run_star_fb(
            8,
            500_000,
            TcpConfig::default(),
            netsim::FeedbackConfig::cn(90_000),
            11,
        );
        assert_eq!(rec.completed_count(), 8);
        assert!(rec.get(Counter::CnDelivered) > 0);
    }

    #[test]
    fn int_echo_drives_bender_int_controller() {
        // INT-only fabric: every forwarded packet is stamped, the receiver
        // echoes the stack, and the Bender-INT controller bends away from
        // the blamed hop once congestion is confirmed on consecutive ACKs.
        let path = crate::config::PathSpec::custom("bender-int(v=8,n=2)", |vhint, _rng| {
            Box::new(flowbender::BenderInt::new(
                8,
                vhint % 8,
                2,
                SimTime::from_us(100).as_ps(),
            ))
        });
        let cfg = TcpConfig::with_path(path);
        let rec = run_star_fb(8, 500_000, cfg, netsim::FeedbackConfig::int_only(), 12);
        assert_eq!(rec.completed_count(), 8);
        assert!(rec.get(Counter::IntStamps) > 0, "fabric stamped nothing");
        // The shared downlink marks under an 8-way incast; confirmed blame
        // must have produced at least one bend.
        assert!(rec.get(Counter::MarkedAcksRcvd) > 0);
        assert!(rec.get(Counter::Reroutes) > 0, "Bender-INT never bent");
        assert_eq!(rec.get(Counter::CnSent), 0, "INT-only fabric sent CNs");
    }

    #[test]
    fn flowbender_stack_runs_clean_path_without_reroutes() {
        // One flow, one path, no congestion: FlowBender must not reroute.
        let specs = vec![FlowSpec::tcp(0, 0, 1, 500_000, SimTime::ZERO)];
        let cfg = TcpConfig::flowbender(flowbender::Config::default());
        let rec = run_dumbbell(specs, cfg, 6);
        assert_eq!(rec.completed_count(), 1);
        assert_eq!(rec.get(Counter::Reroutes), 0);
        assert_eq!(rec.get(Counter::TimeoutReroutes), 0);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let mk = || {
            let specs: Vec<FlowSpec> = (0..10)
                .map(|i| FlowSpec::tcp(i, 0, 1, 200_000, SimTime::from_us(10 * i as u64)))
                .collect();
            let rec = run_dumbbell(specs, TcpConfig::default(), 42);
            let fcts: Vec<_> = rec.flows().iter().map(|f| f.end).collect();
            (
                fcts,
                rec.get(Counter::Retransmits),
                rec.get(Counter::MarkedAcksRcvd),
            )
        };
        assert_eq!(mk(), mk());
    }
}
