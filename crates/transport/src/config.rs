//! Transport configuration.
//!
//! One [`TcpConfig`] describes the whole stack of a run: the base TCP
//! New Reno parameters, the DCTCP congestion-control layer (the paper runs
//! *every* scheme over DCTCP, §4.2), and — when evaluating FlowBender —
//! the per-flow FlowBender configuration.

use netsim::{SimTime, MSS};

use crate::receiver::DelAckConfig;

/// DCTCP parameters (Alizadeh et al., SIGCOMM'10), as fixed by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpConfig {
    /// `g`, the gain of the exponentially weighted `alpha` estimate.
    /// Paper: 1/16.
    pub g: f64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig { g: 1.0 / 16.0 }
    }
}

/// Configuration of the TCP (New Reno + optional DCTCP + optional
/// FlowBender) stack.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u32,
    /// Lower bound on the retransmission timeout. Paper: 10 ms.
    pub rto_min: SimTime,
    /// RTO before any RTT sample exists. Datacenter stacks set this near
    /// `rto_min`; we default to `rto_min` as the paper's testbed did.
    pub rto_initial: SimTime,
    /// Duplicate-ACK threshold for fast retransmit (`None` disables fast
    /// retransmit entirely — the DeTail configuration). Linux default 3;
    /// the §4.3 testbed re-ran with 30 as a reordering sanity check.
    pub dupack_threshold: Option<u32>,
    /// DCTCP layer; `None` degrades to plain New Reno over ECN-blind TCP
    /// (marks are then ignored for congestion control, though FlowBender
    /// still sees them).
    pub dctcp: Option<DctcpConfig>,
    /// FlowBender end-host load balancing; `None` for the ECMP/RPS/DeTail
    /// baselines.
    pub flowbender: Option<flowbender::Config>,
    /// Delayed acknowledgments (the DCTCP paper's receiver state machine);
    /// `None` = per-packet ACKs, the exact-echo default used throughout
    /// the experiments.
    pub delack: Option<DelAckConfig>,
    /// Upper bound on the congestion window in bytes, modelling the
    /// receiver's advertised window (Linux auto-tunes to a few MB). Keeps
    /// in-flight data bounded even when no congestion signal arrives
    /// (e.g. a PFC-paused lossless fabric never marks).
    pub max_cwnd: u64,
}

impl Default for TcpConfig {
    /// The paper's base stack: DCTCP (g = 1/16), RTO_min = 10 ms, dupack
    /// threshold 3, no FlowBender.
    fn default() -> Self {
        TcpConfig {
            mss: MSS,
            init_cwnd_segs: 10,
            rto_min: SimTime::from_ms(10),
            rto_initial: SimTime::from_ms(10),
            dupack_threshold: Some(3),
            dctcp: Some(DctcpConfig::default()),
            flowbender: None,
            delack: None,
            max_cwnd: 1_000_000,
        }
    }
}

impl TcpConfig {
    /// The FlowBender stack: DCTCP plus FlowBender with the given config.
    pub fn flowbender(fb: flowbender::Config) -> Self {
        TcpConfig {
            flowbender: Some(fb),
            ..TcpConfig::default()
        }
    }

    /// The DeTail host stack: DCTCP with fast retransmit disabled (the
    /// paper disables it because per-packet adaptive routing reorders
    /// heavily and PFC makes the fabric lossless).
    pub fn detail() -> Self {
        TcpConfig {
            dupack_threshold: None,
            ..TcpConfig::default()
        }
    }

    /// Initial congestion window in bytes.
    pub fn init_cwnd_bytes(&self) -> f64 {
        (self.init_cwnd_segs * self.mss) as f64
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        assert!(self.mss > 0, "MSS must be positive");
        assert!(self.init_cwnd_segs > 0, "initial cwnd must be positive");
        assert!(self.rto_min.as_ps() > 0, "RTO_min must be positive");
        if let Some(th) = self.dupack_threshold {
            assert!(th >= 1, "dupack threshold must be >= 1");
        }
        if let Some(d) = self.dctcp {
            assert!(d.g > 0.0 && d.g <= 1.0, "DCTCP g must be in (0,1]");
        }
        if let Some(fb) = self.flowbender {
            fb.validate();
        }
        if let Some(d) = self.delack {
            assert!(d.every >= 1, "delack count must be >= 1");
            assert!(d.timeout.as_ps() > 0, "delack timeout must be positive");
        }
        assert!(
            self.max_cwnd >= 2 * self.mss as u64,
            "max_cwnd must hold at least two segments"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.rto_min, SimTime::from_ms(10));
        assert_eq!(c.dupack_threshold, Some(3));
        let d = c.dctcp.unwrap();
        assert!((d.g - 0.0625).abs() < 1e-12);
        assert!(c.flowbender.is_none());
        c.validate();
    }

    #[test]
    fn detail_disables_fast_retransmit() {
        let c = TcpConfig::detail();
        assert_eq!(c.dupack_threshold, None);
        assert!(c.dctcp.is_some());
        c.validate();
    }

    #[test]
    fn flowbender_stack_carries_config() {
        let c = TcpConfig::flowbender(flowbender::Config::default().with_t(0.01));
        assert_eq!(c.flowbender.unwrap().t, 0.01);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn zero_mss_rejected() {
        TcpConfig {
            mss: 0,
            ..TcpConfig::default()
        }
        .validate();
    }
}
