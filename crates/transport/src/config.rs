//! Transport configuration.
//!
//! One [`TcpConfig`] describes the whole stack of a run: the base TCP
//! New Reno parameters, the DCTCP congestion-control layer (the paper runs
//! *every* scheme over DCTCP, §4.2), and the host-side path-control policy
//! — a [`PathSpec`] naming which [`flowbender::PathController`] each flow
//! gets (FlowBender when evaluating the paper's scheme, a static no-op for
//! the oblivious baselines).

use std::sync::Arc;

use flowbender::{FlowBender, FlowcutGap, PathController, Rng, StaticPath};
use netsim::{SimTime, MSS};

use crate::receiver::DelAckConfig;

/// DCTCP parameters (Alizadeh et al., SIGCOMM'10), as fixed by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpConfig {
    /// `g`, the gain of the exponentially weighted `alpha` estimate.
    /// Paper: 1/16.
    pub g: f64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig { g: 1.0 / 16.0 }
    }
}

/// The per-flow path-controller factory of a [`TcpConfig`].
///
/// A `PathSpec` is a label plus a closure building one
/// [`PathController`] per flow. The closure receives the flow's V-hint
/// (the initial V a replication scheme assigned it; 0 for ordinary
/// flows) and the host's deterministic RNG, in case the controller draws
/// a random initial V the way FlowBender does.
///
/// Equality and `Debug` go through the label, so two configs compare
/// equal exactly when they would build identically configured
/// controllers — constructors embed every parameter in the label.
#[derive(Clone)]
pub struct PathSpec {
    label: String,
    #[allow(clippy::type_complexity)]
    build: Arc<dyn Fn(u8, &mut dyn Rng) -> Box<dyn PathController> + Send + Sync>,
}

impl PathSpec {
    /// The no-op controller: every flow keeps its V-hint forever (ECMP,
    /// RPS, DeTail — and the pinned halves of replication schemes).
    pub fn none() -> Self {
        PathSpec {
            label: "static".to_string(),
            build: Arc::new(|vhint, _rng| Box::new(StaticPath::new(vhint))),
        }
    }

    /// FlowBender with the given configuration (initial V drawn from the
    /// host RNG, exactly as [`FlowBender::new`] does).
    pub fn flowbender(cfg: flowbender::Config) -> Self {
        cfg.validate();
        PathSpec {
            label: format!("flowbender({cfg:?})"),
            build: Arc::new(move |_vhint, rng| Box::new(FlowBender::new(cfg, rng))),
        }
    }

    /// Host-side flowcut/flowlet-gap switching: re-draw V after `gap` of
    /// ACK silence, over `v_range` path options.
    pub fn flowcut(gap: SimTime, v_range: u8) -> Self {
        assert!(gap.as_ps() > 0, "flowcut gap must be positive");
        assert!(v_range >= 1, "v_range must be at least 1");
        PathSpec {
            label: format!("flowcut(gap={}ps,v={v_range})", gap.as_ps()),
            build: Arc::new(move |_vhint, rng| {
                Box::new(FlowcutGap::new(gap.as_ps(), v_range, rng))
            }),
        }
    }

    /// A custom controller factory, for schemes defined outside this
    /// crate. `label` must uniquely describe the configuration (it is the
    /// equality key).
    pub fn custom(
        label: impl Into<String>,
        build: impl Fn(u8, &mut dyn Rng) -> Box<dyn PathController> + Send + Sync + 'static,
    ) -> Self {
        PathSpec {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// Build the controller for one flow.
    pub fn build(&self, vhint: u8, rng: &mut dyn Rng) -> Box<dyn PathController> {
        (self.build)(vhint, rng)
    }

    /// The configuration label (the identity of this spec).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether this is the no-op (static) controller.
    pub fn is_none(&self) -> bool {
        self.label == "static"
    }
}

impl std::fmt::Debug for PathSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PathSpec").field(&self.label).finish()
    }
}

impl PartialEq for PathSpec {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
    }
}

impl Default for PathSpec {
    fn default() -> Self {
        PathSpec::none()
    }
}

/// Configuration of the TCP (New Reno + optional DCTCP + path control)
/// stack.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u32,
    /// Lower bound on the retransmission timeout. Paper: 10 ms.
    pub rto_min: SimTime,
    /// RTO before any RTT sample exists. Datacenter stacks set this near
    /// `rto_min`; we default to `rto_min` as the paper's testbed did.
    pub rto_initial: SimTime,
    /// Duplicate-ACK threshold for fast retransmit (`None` disables fast
    /// retransmit entirely — the DeTail configuration). Linux default 3;
    /// the §4.3 testbed re-ran with 30 as a reordering sanity check.
    pub dupack_threshold: Option<u32>,
    /// DCTCP layer; `None` degrades to plain New Reno over ECN-blind TCP
    /// (marks are then ignored for congestion control, though path
    /// controllers still see them).
    pub dctcp: Option<DctcpConfig>,
    /// The host-side path-control policy each flow runs
    /// ([`PathSpec::none`] for the oblivious ECMP/RPS/DeTail baselines).
    pub path: PathSpec,
    /// Delayed acknowledgments (the DCTCP paper's receiver state machine);
    /// `None` = per-packet ACKs, the exact-echo default used throughout
    /// the experiments.
    pub delack: Option<DelAckConfig>,
    /// Upper bound on the congestion window in bytes, modelling the
    /// receiver's advertised window (Linux auto-tunes to a few MB). Keeps
    /// in-flight data bounded even when no congestion signal arrives
    /// (e.g. a PFC-paused lossless fabric never marks).
    pub max_cwnd: u64,
    /// React to switch-generated congestion notifications (CN packets,
    /// [`netsim::FeedbackConfig`]) with an immediate DCTCP-style cwnd cut
    /// instead of waiting for the ECN echo to travel receiver-to-sender —
    /// the "FastCC" stack. The cut shares the once-per-window gate with
    /// the ordinary ECE reduction, so a CN followed by its echo cuts once.
    pub cn_fast_cc: bool,
}

impl Default for TcpConfig {
    /// The paper's base stack: DCTCP (g = 1/16), RTO_min = 10 ms, dupack
    /// threshold 3, no path control.
    fn default() -> Self {
        TcpConfig {
            mss: MSS,
            init_cwnd_segs: 10,
            rto_min: SimTime::from_ms(10),
            rto_initial: SimTime::from_ms(10),
            dupack_threshold: Some(3),
            dctcp: Some(DctcpConfig::default()),
            path: PathSpec::none(),
            delack: None,
            max_cwnd: 1_000_000,
            cn_fast_cc: false,
        }
    }
}

impl TcpConfig {
    /// The FlowBender stack: DCTCP plus FlowBender with the given config.
    pub fn flowbender(fb: flowbender::Config) -> Self {
        TcpConfig {
            path: PathSpec::flowbender(fb),
            ..TcpConfig::default()
        }
    }

    /// The DeTail host stack: DCTCP with fast retransmit disabled (the
    /// paper disables it because per-packet adaptive routing reorders
    /// heavily and PFC makes the fabric lossless).
    pub fn detail() -> Self {
        TcpConfig {
            dupack_threshold: None,
            ..TcpConfig::default()
        }
    }

    /// A stack running an arbitrary path controller.
    pub fn with_path(path: PathSpec) -> Self {
        TcpConfig {
            path,
            ..TcpConfig::default()
        }
    }

    /// Initial congestion window in bytes.
    pub fn init_cwnd_bytes(&self) -> f64 {
        (self.init_cwnd_segs * self.mss) as f64
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// On out-of-range values.
    pub fn validate(&self) {
        assert!(self.mss > 0, "MSS must be positive");
        assert!(self.init_cwnd_segs > 0, "initial cwnd must be positive");
        assert!(self.rto_min.as_ps() > 0, "RTO_min must be positive");
        if let Some(th) = self.dupack_threshold {
            assert!(th >= 1, "dupack threshold must be >= 1");
        }
        if let Some(d) = self.dctcp {
            assert!(d.g > 0.0 && d.g <= 1.0, "DCTCP g must be in (0,1]");
        }
        if let Some(d) = self.delack {
            assert!(d.every >= 1, "delack count must be >= 1");
            assert!(d.timeout.as_ps() > 0, "delack timeout must be positive");
        }
        assert!(
            self.max_cwnd >= 2 * self.mss as u64,
            "max_cwnd must hold at least two segments"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TcpConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.rto_min, SimTime::from_ms(10));
        assert_eq!(c.dupack_threshold, Some(3));
        let d = c.dctcp.unwrap();
        assert!((d.g - 0.0625).abs() < 1e-12);
        assert!(c.path.is_none());
        assert!(!c.cn_fast_cc, "FastCC is strictly opt-in");
        c.validate();
    }

    #[test]
    fn detail_disables_fast_retransmit() {
        let c = TcpConfig::detail();
        assert_eq!(c.dupack_threshold, None);
        assert!(c.dctcp.is_some());
        c.validate();
    }

    #[test]
    fn flowbender_stack_carries_config() {
        let c = TcpConfig::flowbender(flowbender::Config::default().with_t(0.01));
        assert!(!c.path.is_none());
        assert_eq!(
            c.path,
            PathSpec::flowbender(flowbender::Config::default().with_t(0.01))
        );
        assert_ne!(c.path, PathSpec::flowbender(flowbender::Config::default()));
        c.validate();
    }

    #[test]
    fn path_spec_builds_the_advertised_controller() {
        let mut rng = flowbender::SplitMix64::new(1);
        let c = PathSpec::none().build(5, &mut rng);
        assert_eq!(c.vfield(), 5);
        assert!(!c.active());
        let c = PathSpec::flowbender(flowbender::Config::default()).build(0, &mut rng);
        assert!(c.active());
        assert!(c.as_flowbender().is_some());
        let c = PathSpec::flowcut(SimTime::from_us(100), 8).build(0, &mut rng);
        assert!(c.active());
        assert!(c.as_flowbender().is_none());
    }

    #[test]
    fn path_spec_equality_is_by_label() {
        assert_eq!(PathSpec::none(), PathSpec::none());
        assert_eq!(
            PathSpec::flowcut(SimTime::from_us(100), 8),
            PathSpec::flowcut(SimTime::from_us(100), 8)
        );
        assert_ne!(
            PathSpec::flowcut(SimTime::from_us(100), 8),
            PathSpec::flowcut(SimTime::from_us(500), 8)
        );
    }

    #[test]
    #[should_panic]
    fn zero_mss_rejected() {
        TcpConfig {
            mss: 0,
            ..TcpConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn invalid_flowbender_config_rejected_at_construction() {
        PathSpec::flowbender(flowbender::Config::default().with_t(1.5));
    }
}
