//! # transport — packet-level TCP/DCTCP/UDP endpoints for `netsim`
//!
//! The end-host half of the FlowBender reproduction. Implements the
//! paper's §4.2 stack from scratch:
//!
//! * **TCP New Reno** — slow start, congestion avoidance, duplicate-ACK
//!   fast retransmit and fast recovery, go-back-N retransmission timeouts
//!   with exponential backoff and a 10 ms RTO floor;
//! * **DCTCP** on top (all evaluated schemes run over DCTCP): per-window
//!   `alpha` estimation with gain 1/16 from per-packet ECN echoes, and the
//!   `cwnd *= 1 - alpha/2` multiplicative decrease;
//! * **FlowBender** (from the `flowbender` crate) attached per flow when
//!   configured: DCTCP's window rounds double as FlowBender's RTT epochs;
//! * **UDP** constant-bit-rate sources for the hotspot experiment.
//!
//! [`install_agents`] wires a full simulator: give it the run's
//! [`netsim::FlowSpec`]s and a [`TcpConfig`], and every host gets a
//! [`HostAgent`] owning its senders and receivers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod config;
pub mod receiver;
pub mod rtt;
pub mod sender;
pub mod udp;

pub use agent::{install_agents, install_agents_on, HostAgent};
pub use config::{DctcpConfig, PathSpec, TcpConfig};
pub use receiver::{DelAckConfig, Receiver};
pub use rtt::{RttEstimator, RTO_MAX};
pub use sender::{TcpSender, TimerOutcome};
pub use udp::UdpSender;
